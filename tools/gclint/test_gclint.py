"""Fixture suite pinning gclint's rule contracts.

Two mini-trees under fixtures/ drive every rule from both sides:

  fixtures/broken/  each rule fires, at the expected file and line
  fixtures/clean/   every contract satisfied, including one justified
                    suppression pragma per suppressible situation — proves
                    rules stay quiet when they should

Run via `python3 -m unittest discover tools/gclint` or ctest
(`-R lint.gclint.selftest`).
"""

import contextlib
import io
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import gclint  # noqa: E402  (path set up above)

BROKEN = HERE / "fixtures" / "broken"
CLEAN = HERE / "fixtures" / "clean"


def findings(root, rule):
    """Findings of `rule` on `root`. rule='pragma' audits suppressions only."""
    names = [rule] if rule in gclint.RULES else []
    return [f for f in gclint.run(root, names) if f.rule == rule]


def anchors(found):
    return sorted((f.path, f.line) for f in found)


class TestWireCoverage(unittest.TestCase):
    def test_broken_fires_per_missing_artifact(self):
        found = findings(BROKEN, "wire-coverage")
        # Phase2b lacks decode case, round-trip test, golden/fuzz mention,
        # and (group-tagged family) the consensus-group write in its encode
        # arm; BodyKind::Paxos (the WireBodyKind-spelled tag mode) lacks all
        # five; ClientValue is fully covered and must not appear.
        self.assertEqual(anchors(found),
                         [("src/common/message.hpp", 4)] * 5
                         + [("src/paxos/message.hpp", 7)] * 4)
        messages = " | ".join(f.message for f in found)
        self.assertIn("decode case (case kPaxosPhase2b)", messages)
        self.assertIn("consensus-group tag write", messages)
        self.assertIn("round-trip test", messages)
        self.assertIn("golden-layout or fuzz mention", messages)
        self.assertIn("wire tag mapping (WireBodyKind::Paxos)", messages)
        self.assertIn("encode case (case BodyKind::Paxos)", messages)
        self.assertIn("decode case (case WireBodyKind::Paxos)", messages)
        self.assertNotIn("ClientValue", messages)

    def test_clean_is_quiet(self):
        self.assertEqual(findings(CLEAN, "wire-coverage"), [])


class TestSwitchExhaustiveness(unittest.TestCase):
    def test_broken_flags_protocol_switch_default(self):
        found = findings(BROKEN, "switch-exhaustiveness")
        self.assertEqual(anchors(found), [("src/wire/codec.cpp", 14)])
        self.assertIn("msg.type()", found[0].message)

    def test_raw_tag_switch_is_exempt(self):
        # Both fixtures hold a raw-u8 tag switch with a default arm (the
        # unknown-input rejection path); neither may be flagged.
        for root in (BROKEN, CLEAN):
            for f in findings(root, "switch-exhaustiveness"):
                self.assertNotIn("(tag)", f.message)

    def test_clean_is_quiet(self):
        self.assertEqual(findings(CLEAN, "switch-exhaustiveness"), [])


class TestInvariantTestCoverage(unittest.TestCase):
    def test_broken_fires_both_directions(self):
        found = findings(BROKEN, "invariant-test-coverage")
        self.assertEqual(anchors(found), [
            ("src/check/fixture_invariants.hpp", 3),  # P-FIX-2 untested
            ("tests/test_invariants.cpp", 1),         # P-TYPO-9 unknown
        ])
        messages = " | ".join(f.message for f in found)
        self.assertIn("P-FIX-2 is never exercised", messages)
        self.assertIn("P-TYPO-9", messages)
        self.assertNotIn("P-FIX-1", messages)

    def test_clean_pragma_suppresses_untestable_invariant(self):
        # P-FIX-2 is uncovered in the clean tree too, but carries a
        # justified allow() pragma — the finding must not surface.
        self.assertEqual(findings(CLEAN, "invariant-test-coverage"), [])


class TestConfigWiring(unittest.TestCase):
    def test_broken_fires_cli_report_and_docs(self):
        found = findings(BROKEN, "config-wiring")
        # groups reaches the CLI but not the JSON report or docs (two legs);
        # unwired_knob misses all three.
        self.assertEqual(anchors(found),
                         [("src/core/experiment.hpp", 7)] * 2
                         + [("src/core/experiment.hpp", 8)] * 3)
        messages = " | ".join(f.message for f in found)
        self.assertIn("not wired to a CLI flag", messages)
        self.assertIn("missing from the JSON report", messages)
        self.assertIn("undocumented", messages)
        self.assertIn("ExperimentConfig::groups is missing from the JSON report",
                      messages)
        self.assertNotIn("ExperimentConfig::groups is not wired", messages)
        self.assertNotIn("ExperimentConfig::n ", messages)

    def test_clean_pragma_suppresses_internal_field(self):
        self.assertEqual(findings(CLEAN, "config-wiring"), [])


class TestMetricsHygiene(unittest.TestCase):
    def test_broken_fires_conflict_and_untested(self):
        found = findings(BROKEN, "metrics-hygiene")
        self.assertEqual(anchors(found), [
            ("src/core/metrics.cpp", 7),  # m.orphan untested
            ("src/core/metrics.cpp", 8),  # m.conflict kind conflict
        ])
        messages = " | ".join(f.message for f in found)
        self.assertIn("'m.conflict' is registered with conflicting kinds", messages)
        self.assertIn("'m.orphan' is not snapshot-tested", messages)
        self.assertNotIn("m.tested", messages)

    def test_clean_is_quiet(self):
        self.assertEqual(findings(CLEAN, "metrics-hygiene"), [])


class TestIncludeHygiene(unittest.TestCase):
    def test_broken_fires_violation_and_unknown_layer(self):
        found = findings(BROKEN, "include-hygiene")
        self.assertEqual(anchors(found), [
            ("src/sim/clock.hpp", 2),
            ("src/vendor/widget.hpp", 1),
        ])
        messages = " | ".join(f.message for f in found)
        self.assertIn("layer violation", messages)
        self.assertIn("not covered by the layer table", messages)

    def test_clean_is_quiet(self):
        self.assertEqual(findings(CLEAN, "include-hygiene"), [])


class TestPragmaAudit(unittest.TestCase):
    def test_broken_flags_unknown_rule_and_bare_pragma(self):
        found = findings(BROKEN, "pragma")
        self.assertEqual(anchors(found), [
            ("examples/pragmas.cpp", 1),
            ("examples/pragmas.cpp", 2),
        ])
        messages = " | ".join(f.message for f in sorted(found, key=gclint.Finding.sort_key))
        self.assertIn("unknown rule 'made-up-rule'", messages)
        self.assertIn("no justification", messages)

    def test_clean_justified_pragmas_pass_audit(self):
        self.assertEqual(findings(CLEAN, "pragma"), [])


class TestCleanTree(unittest.TestCase):
    def test_full_run_is_empty(self):
        self.assertEqual(gclint.run(CLEAN, list(gclint.RULES)), [])

    def test_broken_full_run_finding_count(self):
        # One count pin over everything: a rule that starts silently
        # over- or under-matching moves this number.
        self.assertEqual(len(gclint.run(BROKEN, list(gclint.RULES))), 23)


class TestEngine(unittest.TestCase):
    def test_digit_separator_is_not_a_char_literal(self):
        # Regression: 25'000 once swallowed everything to the next quote,
        # hiding struct closing braces from the config-field parser.
        out = gclint.strip_comments_and_strings("int x = 25'000; } int y;")
        self.assertIn("}", out)
        self.assertIn("25'000", out)

    def test_char_literal_contents_are_stripped(self):
        out = gclint.strip_comments_and_strings("char c = '}'; int y;")
        self.assertNotIn("'}'", out)
        self.assertIn("int y;", out)

    def test_masked_contains_ignores_longer_siblings(self):
        siblings = ["Phase2b", "Phase2bAggregate"]
        self.assertFalse(
            gclint.masked_contains("case Phase2bAggregate:", "Phase2b", siblings))
        self.assertTrue(
            gclint.masked_contains("Phase2bAggregate and Phase2b", "Phase2b", siblings))

    def test_finding_formats(self):
        f = gclint.Finding("wire-coverage", "src/a.cpp", 3, "msg")
        self.assertEqual(f.text(), "src/a.cpp:3: [wire-coverage] msg")
        self.assertEqual(
            f.github(),
            "::error file=src/a.cpp,line=3,title=gclint(wire-coverage)::msg")


class TestCli(unittest.TestCase):
    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = gclint.main(argv)
        return code, out.getvalue(), err.getvalue()

    def test_exit_codes(self):
        self.assertEqual(self.run_main(["--root", str(CLEAN)])[0], 0)
        self.assertEqual(self.run_main(["--root", str(BROKEN)])[0], 1)
        self.assertEqual(self.run_main(["--root", str(HERE)])[0], 2)  # no src/
        self.assertEqual(
            self.run_main(["--root", str(CLEAN), "--rules", "no-such-rule"])[0], 2)

    def test_github_format(self):
        code, out, _ = self.run_main(
            ["--root", str(BROKEN), "--format", "github", "--rules", "wire-coverage"])
        self.assertEqual(code, 1)
        self.assertIn("::error file=src/paxos/message.hpp,line=7,"
                      "title=gclint(wire-coverage)::", out)

    def test_rule_subset(self):
        code, out, _ = self.run_main(
            ["--root", str(BROKEN), "--rules", "include-hygiene"])
        self.assertEqual(code, 1)
        self.assertNotIn("wire-coverage", out)

    def test_list_rules(self):
        code, out, _ = self.run_main(["--list-rules"])
        self.assertEqual(code, 0)
        for rule in gclint.RULES:
            # Each rule prints with a non-empty one-line description.
            self.assertRegex(out, rf"(?m)^{rule}: \S")


if __name__ == "__main__":
    unittest.main()
