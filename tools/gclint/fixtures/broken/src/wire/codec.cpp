#include "paxos/message.hpp"

namespace gossipc::wire {

constexpr unsigned char kPaxosClientValue = 1;
constexpr unsigned char kPaxosPhase2b = 5;

int encode(const PaxosMessage& msg) {
    switch (msg.type()) {
        case PaxosMsgType::ClientValue: return kPaxosClientValue + msg.group();
        // Phase2b's arm drops the v3 consensus-group tag — the broken
        // group-tagged-body expectation for wire-coverage.
        case PaxosMsgType::Phase2b: return kPaxosPhase2b;
        default: return -1;
    }
}

int decode(unsigned char tag) {
    // Raw-tag switch: its default is the unknown-input rejection path and
    // must stay exempt. Note kPaxosPhase2b has no case here — the broken
    // wire-coverage expectation.
    switch (tag) {
        case kPaxosClientValue: return 0;
        default: return -1;
    }
}

}  // namespace gossipc::wire
