#pragma once
// P-FIX-1: promise floor never regresses.
// P-FIX-2: decided value never changes.
