#pragma once

enum class BodyKind : unsigned char {
    Paxos = 3,
};
