#pragma once
