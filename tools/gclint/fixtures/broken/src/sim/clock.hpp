#pragma once
#include "core/experiment.hpp"
