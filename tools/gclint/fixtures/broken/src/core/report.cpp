#include "core/experiment.hpp"

namespace gossipc {
int report(const ExperimentConfig& config) { return config.n; }
}  // namespace gossipc
