#pragma once

namespace gossipc {

struct ExperimentConfig {
    int n = 3;
    int groups = 1;
    double unwired_knob = 1.0;
};

}  // namespace gossipc
