#include "stats/registry.hpp"

namespace gossipc {

void fill(MetricsRegistry& registry) {
    registry.counter("m.tested");
    registry.gauge("m.orphan");
    registry.histogram("m.conflict");
    registry.counter("m.conflict");
}

}  // namespace gossipc
