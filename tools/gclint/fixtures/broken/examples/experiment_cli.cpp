#include "core/experiment.hpp"

int main() {
    gossipc::ExperimentConfig cfg;
    cfg.n = 5;
    // groups reaches the CLI (--groups) but not the JSON report or the
    // docs: the broken expectations for config-wiring's other two legs.
    cfg.groups = 2;
    return cfg.n;
}
