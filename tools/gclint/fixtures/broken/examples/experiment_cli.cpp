#include "core/experiment.hpp"

int main() {
    gossipc::ExperimentConfig cfg;
    cfg.n = 5;
    return cfg.n;
}
