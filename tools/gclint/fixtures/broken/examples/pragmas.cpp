// gclint: allow(made-up-rule) this rule does not exist
// gclint: allow(config-wiring)
int main() { return 0; }
