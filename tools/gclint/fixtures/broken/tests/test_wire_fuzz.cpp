// Fuzz corpus seeds cover ClientValue only.
