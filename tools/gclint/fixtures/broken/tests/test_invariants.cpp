// Exercises P-FIX-1 (death test) and the unknown P-TYPO-9.
