#include <gtest/gtest.h>

TEST(WireTest, ClientValueRoundTrip) {}

// Golden layout pins: ClientValue tag 1. (The second enumerator is
// deliberately absent here.)
TEST(WireTest, GoldenLayout) {}
