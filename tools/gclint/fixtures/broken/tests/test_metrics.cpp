// Snapshot covers "m.tested" and "m.conflict" only; the orphaned gauge is
// deliberately absent so the broken fixture trips the snapshot check.
