#include <gtest/gtest.h>

TEST(WireTest, ClientValueRoundTrip) {}
TEST(WireTest, Phase2bRoundTrip) {}
TEST(WireTest, PaxosBodyRoundTrip) {}

// Golden layout pins: ClientValue tag 1, Phase2b tag 5, Paxos body kind 3.
TEST(WireTest, GoldenLayout) {}
