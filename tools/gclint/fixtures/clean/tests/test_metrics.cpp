// Snapshot covers "m.tested".
