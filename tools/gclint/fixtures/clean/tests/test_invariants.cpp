// Exercises P-FIX-1 via a death test.
