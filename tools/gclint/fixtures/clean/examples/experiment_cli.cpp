#include "core/experiment.hpp"

int main() {
    gossipc::ExperimentConfig cfg;
    cfg.n = 5;
    cfg.groups = 4;
    return cfg.n;
}
