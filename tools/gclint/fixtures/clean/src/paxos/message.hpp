#pragma once

namespace gossipc {

enum class PaxosMsgType {
    ClientValue,
    Phase2b,
};

}  // namespace gossipc
