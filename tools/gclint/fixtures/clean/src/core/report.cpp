#include "core/experiment.hpp"

namespace gossipc {
int report(const ExperimentConfig& config) { return config.n + config.groups; }
}  // namespace gossipc
