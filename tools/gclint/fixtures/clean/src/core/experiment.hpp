#pragma once

namespace gossipc {

struct ExperimentConfig {
    int n = 3;
    int groups = 1;
    // gclint: allow(config-wiring) fixture: programmatic-only field
    int internal_only = 0;
};

}  // namespace gossipc
