#include "stats/registry.hpp"

namespace gossipc {

void fill(MetricsRegistry& registry) {
    registry.counter("m.tested");
}

}  // namespace gossipc
