#pragma once

enum class BodyKind : unsigned char {
    // gclint: allow(wire-coverage) Other is the in-memory-only sentinel with no wire form
    Other = 0,
    Paxos = 3,
};
