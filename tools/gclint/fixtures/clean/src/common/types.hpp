#pragma once
