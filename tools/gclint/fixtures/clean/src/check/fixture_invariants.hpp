#pragma once
// P-FIX-1: promise floor never regresses.
// gclint: allow(invariant-test-coverage) P-FIX-2 is a pure postcondition with no corruption hook
// P-FIX-2: decided value never changes.
