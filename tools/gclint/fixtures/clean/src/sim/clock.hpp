#pragma once
#include "common/types.hpp"
