#include "common/message.hpp"
#include "paxos/message.hpp"

namespace gossipc::wire {

constexpr unsigned char kPaxosClientValue = 1;
constexpr unsigned char kPaxosPhase2b = 5;

enum class WireBodyKind : unsigned char { Paxos = 3 };

int encode(const PaxosMessage& msg) {
    // Every arm serializes the v3 consensus-group tag (msg.group()), as the
    // wire-coverage group-tagged-body leg requires per encode case.
    switch (msg.type()) {
        case PaxosMsgType::ClientValue: return kPaxosClientValue + msg.group();
        case PaxosMsgType::Phase2b: return kPaxosPhase2b + msg.group();
    }
    return -1;
}

int decode(unsigned char tag) {
    // Raw-tag switch: default is the unknown-input rejection path, exempt
    // from switch-exhaustiveness by construction.
    switch (tag) {
        case kPaxosClientValue: return 0;
        case kPaxosPhase2b: return 1;
        default: return -1;
    }
}

int encode_kind(BodyKind k) {
    switch (k) {
        case BodyKind::Paxos: return 3;
        case BodyKind::Other: return -1;
    }
    return -1;
}

int route(WireBodyKind k) {
    switch (k) {
        case WireBodyKind::Paxos: return 1;
    }
    return -1;
}

}  // namespace gossipc::wire
