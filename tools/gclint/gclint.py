#!/usr/bin/env python3
"""gclint — protocol-aware consistency checker for the gossip-consensus repo.

The codebase keeps several registries that must stay in lockstep by hand:
message enums and their wire-codec cases, invariant IDs and their death
tests, ExperimentConfig fields and their CLI/report/doc wiring, metric names
and their snapshot tests, and the layering DESIGN.md describes. A generic
linter sees one translation unit at a time and cannot express any of those
contracts; gclint reads the tree as text and enforces them directly.

Rules (each independently suppressible, see below):

  wire-coverage           every PaxosMsgType/RaftMsgType enumerator has a
                          wire tag constant, an encode case, a decode case, a
                          round-trip test in tests/test_wire.cpp, and a
                          golden/fuzz mention.
  switch-exhaustiveness   no `default:` arm in a switch whose controlling
                          expression names a protocol enum (or calls
                          .type()/.kind()); pairs with -Wswitch-enum on the
                          annotated files for the in-file compiler net.
  invariant-test-coverage every invariant ID declared in src/ (P-*/S-*/G-*/
                          C-*/SIM-*) is exercised by tests/test_invariants.cpp,
                          and the test file references no unknown IDs.
  config-wiring           every ExperimentConfig field is read by the CLI
                          parser, rendered in the JSON report, and mentioned
                          in README.md or DESIGN.md.
  metrics-hygiene         every metric name registered against
                          stats/registry.hpp has exactly one kind and appears
                          in a test (snapshot-tested).
  include-hygiene         no src/<layer> header includes a higher layer
                          (the sim->runtime layering of DESIGN.md §3).

Suppression: append `// gclint: allow(<rule>) <justification>` on the
offending line or the line directly above it. The justification is
mandatory; a bare pragma is itself reported. Unknown rule names in pragmas
are reported too, so stale pragmas cannot rot silently.

Usage:
  gclint.py [--root DIR] [--rules r1,r2,...] [--format text|github]
            [--list-rules]

Exit status: 0 clean, 1 findings, 2 usage/config error.

Dependency-free by design (stdlib only): runs anywhere the repo checks out,
including the gcc-only dev container and CI, with no pip step.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Engine

class Finding:
    """One rule violation anchored at file:line."""

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path          # repo-relative, POSIX separators
        self.line = line          # 1-based
        self.message = message

    def sort_key(self):
        return (self.rule, self.path, self.line, self.message)

    def text(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def github(self):
        # GitHub workflow-command format: annotates the PR diff directly.
        return (f"::error file={self.path},line={self.line},"
                f"title=gclint({self.rule})::{self.message}")


PRAGMA_RE = re.compile(r"//\s*gclint:\s*allow\(([A-Za-z0-9_-]+)\)\s*(.*)")


class Tree:
    """Read-cached view of the tree under --root, plus pragma index."""

    def __init__(self, root):
        self.root = Path(root)
        self._cache = {}

    def read(self, rel):
        """File contents, or None if the file does not exist."""
        if rel not in self._cache:
            p = self.root / rel
            self._cache[rel] = p.read_text(errors="replace") if p.is_file() else None
        return self._cache[rel]

    def lines(self, rel):
        text = self.read(rel)
        return text.splitlines() if text is not None else []

    def glob(self, pattern):
        return sorted(
            p.relative_to(self.root).as_posix()
            for p in self.root.glob(pattern)
            if p.is_file()
        )

    def pragmas(self, rel):
        """{line_number: (rule, justification)} for one file (1-based)."""
        out = {}
        for i, line in enumerate(self.lines(rel), start=1):
            m = PRAGMA_RE.search(line)
            if m:
                out[i] = (m.group(1), m.group(2).strip())
        return out


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal contents with spaces.

    Preserves length and newlines so offsets and line numbers computed on the
    stripped text map 1:1 onto the original. Keeps structural analysis
    (brace matching, `switch` detection) from tripping over braces in
    comments or literals.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            # C++14 digit separator (25'000) or a suffixed identifier, not a
            # char literal opening quote.
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Shared parsing helpers

def parse_enum_class(text, name):
    """Enumerator names of `enum class <name>` in `text` (empty if absent)."""
    m = re.search(r"enum\s+class\s+" + re.escape(name) + r"[^{]*\{([^}]*)\}", text)
    if not m:
        return []
    body = re.sub(r"//[^\n]*", "", m.group(1))
    values = []
    for part in body.split(","):
        part = part.split("=")[0].strip()
        if re.fullmatch(r"[A-Za-z_]\w*", part):
            values.append(part)
    return values


def masked_contains(haystack, needle, siblings):
    """True if `needle` occurs in `haystack` not as part of a longer sibling.

    Phase2b must not count a Phase2bAggregate mention as its own: all longer
    sibling names are blanked out of the haystack before searching.
    """
    for s in sorted(siblings, key=len, reverse=True):
        if len(s) > len(needle) and needle in s:
            haystack = haystack.replace(s, "\x00" * len(s))
    return needle in haystack


# --------------------------------------------------------------------------
# Rule: wire-coverage

WIRE_ENUMS = [
    # (enum name, header, wire tag prefix in codec.cpp, decode-case spelling,
    # group-tagged).
    # Paxos/Raft tags are k<Prefix><Value> constants; BodyKind's tags are the
    # WireBodyKind enumerators themselves (codec.hpp pins their values), and
    # its decode switches spell cases as WireBodyKind::<Value>. Group-tagged
    # families (wire v3, DESIGN.md §15) carry an i32 consensus-group id in
    # every body: each encode arm must write it, or a sharded receiver
    # routes the message to group 0 silently.
    ("PaxosMsgType", "src/paxos/message.hpp", "kPaxos", None, True),
    ("RaftMsgType", "src/raft/message.hpp", "kRaft", None, False),
    ("BodyKind", "src/common/message.hpp", None, "WireBodyKind", False),
]
CODEC = "src/wire/codec.cpp"
WIRE_TEST = "tests/test_wire.cpp"
WIRE_FUZZ = "tests/test_wire_fuzz.cpp"


def rule_wire_coverage(tree):
    """Every wire-visible enumerator has a tag, encode/decode cases, a round-trip test, and a golden/fuzz mention."""
    findings = []
    codec = tree.read(CODEC) or ""
    wire_test = tree.read(WIRE_TEST) or ""
    fuzz = tree.read(WIRE_FUZZ) or ""
    test_names = re.findall(r"TEST(?:_F)?\(\s*\w+\s*,\s*(\w+)\s*\)", wire_test)

    for enum_name, header, tag_prefix, decode_enum, group_tagged in WIRE_ENUMS:
        text = tree.read(header)
        if text is None:
            continue
        values = parse_enum_class(text, enum_name)
        for value in values:
            # Anchor findings at the enumerator's declaration line.
            decl = re.search(r"^\s*" + re.escape(value) + r"\b\s*(?:=[^,]*)?,?\s*$",
                             text, re.MULTILINE)
            at = line_of(text, decl.start()) if decl else 1

            def miss(what):
                findings.append(Finding(
                    "wire-coverage", header, at,
                    f"{enum_name}::{value} has no {what}"))

            if tag_prefix is not None:
                tag = tag_prefix + value
                if not re.search(r"\b" + re.escape(tag) + r"\s*=", codec):
                    miss(f"wire tag constant ({tag}) in {CODEC}")
                decode_case = tag
            else:
                tag = f"{decode_enum}::{value}"
                if not re.search(re.escape(tag) + r"\b", codec):
                    miss(f"wire tag mapping ({tag}) in {CODEC}")
                decode_case = tag
            encode_at = codec.find(f"case {enum_name}::{value}")
            if encode_at == -1:
                miss(f"encode case (case {enum_name}::{value}) in {CODEC}")
            elif group_tagged:
                # The arm runs to the next case label (or a bounded window
                # for the last arm); it must serialize the group id.
                arm_end = codec.find("case ", encode_at + 1)
                if arm_end == -1:
                    arm_end = min(encode_at + 2000, len(codec))
                if "group(" not in codec[encode_at:arm_end]:
                    miss(f"consensus-group tag write (group()) in its encode "
                         f"case in {CODEC} — v3 group-tagged bodies must "
                         f"carry their group on the wire")
            if not re.search(r"case\s+" + re.escape(decode_case) + r"\b", codec):
                miss(f"decode case (case {decode_case}) in {CODEC}")
            if not any("RoundTrip" in t and masked_contains(t, value, values)
                       for t in test_names):
                miss(f"round-trip test (*{value}*RoundTrip) in {WIRE_TEST}")
            golden = wire_test[wire_test.find("Golden"):] if "Golden" in wire_test else ""
            if not (masked_contains(fuzz, value, values)
                    or masked_contains(golden, value, values)):
                miss(f"golden-layout or fuzz mention in {WIRE_TEST}/{WIRE_FUZZ}")
    return findings


# --------------------------------------------------------------------------
# Rule: switch-exhaustiveness

# A switch is "protocol-typed" when its controlling expression textually
# names a protocol enum or calls the type()/kind() discriminator. Switches
# over raw wire tags (plain u8 variables) are exempt by construction — their
# `default:` is the unknown-input rejection path. The compiler-side net
# (-Wswitch-enum on annotated files) covers plain-variable enum switches
# this textual heuristic cannot see.
PROTOCOL_SWITCH_RE = re.compile(
    r"PaxosMsgType|RaftMsgType|WireBodyKind|BodyKind|WireError|FrameType"
    r"|GossipStrategy|TraceStage|(?:\.|->)(?:type|kind)\(\)")


def _match_brace(text, open_idx):
    """Offset just past the brace block opening at `open_idx` ('{')."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _switches(clean, start, end):
    """Yields (expr, block_start, block_end) for switches in clean[start:end]."""
    for m in re.finditer(r"\bswitch\s*\(", clean[start:end]):
        open_paren = start + m.end() - 1
        depth, i = 0, open_paren
        while i < end:
            if clean[i] == "(":
                depth += 1
            elif clean[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        expr = clean[open_paren + 1:i]
        brace = clean.find("{", i)
        if brace == -1 or brace >= end:
            continue
        yield expr, brace, _match_brace(clean, brace)


def rule_switch_exhaustiveness(tree):
    """Switches over protocol enums must list every case; raw-u8 tag switches with a rejection default are exempt."""
    findings = []
    for rel in tree.glob("src/**/*.cpp") + tree.glob("src/**/*.hpp"):
        text = tree.read(rel)
        clean = strip_comments_and_strings(text)
        for expr, bstart, bend in _switches(clean, 0, len(clean)):
            if not PROTOCOL_SWITCH_RE.search(expr):
                continue
            # Mask nested switch blocks: their default arms are their own.
            body = list(clean[bstart:bend])
            for _, nstart, nend in _switches(clean, bstart + 1, bend):
                for k in range(nstart - bstart, nend - bstart):
                    if body[k] != "\n":
                        body[k] = " "
            body = "".join(body)
            for dm in re.finditer(r"\bdefault\s*:", body):
                findings.append(Finding(
                    "switch-exhaustiveness", rel,
                    line_of(clean, bstart + dm.start()),
                    f"default arm in switch over protocol enum "
                    f"({expr.strip()}): enumerate every case so a new "
                    f"message type fails the build, not decodes as "
                    f"malformed at runtime"))
    return findings


# --------------------------------------------------------------------------
# Rule: invariant-test-coverage

INVARIANT_ID_RE = re.compile(r"\b(?:[PSGC]-[A-Z]{2,4}-\d+|SIM-\d+)\b")
INVARIANT_TEST = "tests/test_invariants.cpp"


def rule_invariant_test_coverage(tree):
    """Every declared invariant ID is exercised in tests/test_invariants.cpp, and every tested ID exists."""
    findings = []
    declared = {}  # id -> (path, line) of the canonical declaration site
    # src/check/*.hpp is the canonical catalogue; other src files may add
    # IDs at their GC_INVARIANT sites (first occurrence wins as anchor).
    catalogue = tree.glob("src/check/*.hpp") + tree.glob("src/check/*.cpp")
    scan = catalogue + [
        p for p in tree.glob("src/**/*.hpp") + tree.glob("src/**/*.cpp")
        if p not in set(catalogue)]
    for rel in scan:
        for i, line in enumerate(tree.lines(rel), start=1):
            for m in INVARIANT_ID_RE.finditer(line):
                declared.setdefault(m.group(0), (rel, i))

    test_text = tree.read(INVARIANT_TEST) or ""
    tested = set(INVARIANT_ID_RE.findall(test_text))

    for inv_id, (rel, at) in sorted(declared.items()):
        if inv_id not in tested:
            findings.append(Finding(
                "invariant-test-coverage", rel, at,
                f"invariant {inv_id} is never exercised by {INVARIANT_TEST} "
                f"(add a death test tripping it, or a pragma with the "
                f"reason it cannot be tripped)"))
    # The reverse direction: a typo'd ID in the test file silently
    # "covers" nothing; flag IDs the tests claim that src never declares.
    for i, line in enumerate(test_text.splitlines(), start=1):
        for m in INVARIANT_ID_RE.finditer(line):
            if m.group(0) not in declared:
                findings.append(Finding(
                    "invariant-test-coverage", INVARIANT_TEST, i,
                    f"test references invariant {m.group(0)} that no src/ "
                    f"file declares (typo, or the invariant was removed)"))
    return findings


# --------------------------------------------------------------------------
# Rule: config-wiring

CONFIG_HEADER = "src/core/experiment.hpp"
CONFIG_CLI = "examples/experiment_cli.cpp"
CONFIG_REPORT = "src/core/report.cpp"
CONFIG_DOCS = ["README.md", "DESIGN.md"]
FIELD_RE = re.compile(r"^\s*[A-Za-z_][\w:<>,\s.']*?[\s&*]([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")


def experiment_config_fields(tree):
    """[(field, line)] of struct ExperimentConfig in src/core/experiment.hpp."""
    text = tree.read(CONFIG_HEADER)
    if text is None:
        return []
    m = re.search(r"struct\s+ExperimentConfig\s*\{", text)
    if not m:
        return []
    clean = strip_comments_and_strings(text)
    end = _match_brace(clean, text.find("{", m.start()))
    body_start = text.find("{", m.start()) + 1
    fields = []
    offset = body_start
    for raw in text[body_start:end - 1].splitlines(keepends=True):
        fm = FIELD_RE.match(strip_comments_and_strings(raw))
        if fm:
            fields.append((fm.group(1), line_of(text, offset)))
        offset += len(raw)
    return fields


def rule_config_wiring(tree):
    """Every ExperimentConfig field is reachable from the CLI, emitted in the JSON report, and documented."""
    findings = []
    cli = tree.read(CONFIG_CLI) or ""
    report = tree.read(CONFIG_REPORT) or ""
    docs = "\n".join(tree.read(d) or "" for d in CONFIG_DOCS)
    for field, at in experiment_config_fields(tree):
        def miss(what):
            findings.append(Finding(
                "config-wiring", CONFIG_HEADER, at,
                f"ExperimentConfig::{field} {what}"))
        if not re.search(r"\bcfg\." + re.escape(field) + r"\b", cli):
            miss(f"is not wired to a CLI flag in {CONFIG_CLI} (cfg.{field})")
        if not re.search(r"\bconfig\." + re.escape(field) + r"\b", report):
            miss(f"is missing from the JSON report in {CONFIG_REPORT} "
                 f"(config.{field})")
        if not re.search(r"\b" + re.escape(field) + r"\b", docs):
            miss("is undocumented (no mention in README.md or DESIGN.md)")
    return findings


# --------------------------------------------------------------------------
# Rule: metrics-hygiene

METRIC_CALL_RE = re.compile(r"\b(counter|gauge|histogram)\(\s*\"([^\"]+)\"")
# fill_metrics' `set("name", v)` helper registers counters; treat its string
# argument as a counter registration.
METRIC_SET_RE = re.compile(r"\bset\(\s*\"([^\"]+)\"")
# Literals inside a k*Names table are registered in a loop; capture them.
METRIC_TABLE_RE = re.compile(r"k\w*Names\s*\[[^\]]*\]\s*=\s*\{([^;]*)\};", re.DOTALL)


def rule_metrics_hygiene(tree):
    """Metric names keep one kind across the tree and appear in a snapshot test."""
    findings = []
    registered = {}  # name -> {kind: (path, line)}
    for rel in tree.glob("src/**/*.cpp"):
        text = tree.read(rel)
        if "registry" not in text and "MetricsRegistry" not in text:
            continue
        clean_lines = text.splitlines()
        for i, line in enumerate(clean_lines, start=1):
            for kind, name in METRIC_CALL_RE.findall(line):
                registered.setdefault(name, {}).setdefault(kind, (rel, i))
            for name in METRIC_SET_RE.findall(line):
                registered.setdefault(name, {}).setdefault("counter", (rel, i))
        for tm in METRIC_TABLE_RE.finditer(text):
            for sm in re.finditer(r"\"([^\"]+)\"", tm.group(1)):
                at = line_of(text, tm.start(1) + sm.start())
                registered.setdefault(sm.group(1), {}).setdefault(
                    "counter", (rel, at))

    tests = "\n".join(tree.read(p) or "" for p in tree.glob("tests/**/*.cpp"))
    for name, kinds in sorted(registered.items()):
        if len(kinds) > 1:
            rel, at = sorted(kinds.values())[0]
            findings.append(Finding(
                "metrics-hygiene", rel, at,
                f"metric '{name}' is registered with conflicting kinds "
                f"({', '.join(sorted(kinds))}): the registry throws at "
                f"runtime on the second registration"))
        if f'"{name}"' not in tests:
            rel, at = sorted(kinds.values())[0]
            findings.append(Finding(
                "metrics-hygiene", rel, at,
                f"metric '{name}' is not snapshot-tested (no test mentions "
                f"\"{name}\"): renames and drops would go unnoticed"))
    return findings


# --------------------------------------------------------------------------
# Rule: include-hygiene

# The sim->runtime layering of DESIGN.md §3, at header granularity. A header
# may include only headers of the same or a lower rank. paxos/ spans two
# layers: the message/config types sit below the transport (which ships
# them), the protocol machinery above it (it drives the transport). Most
# specific prefix wins.
LAYERS = [
    ("src/common/", 0),
    ("src/check/invariant.hpp", 1),
    ("src/sim/", 1),
    ("src/net/", 2),
    ("src/stats/", 2),
    ("src/overlay/", 3),
    ("src/gossip/", 3),
    ("src/paxos/message.hpp", 3),
    ("src/paxos/value.hpp", 3),
    ("src/paxos/config.hpp", 3),
    ("src/trace/", 4),
    ("src/fault/", 4),
    ("src/transport/", 4),
    ("src/detect/", 5),
    ("src/paxos/", 6),
    ("src/check/", 6),
    ("src/semantic/", 7),
    ("src/group/", 7),
    ("src/workload/", 7),
    ("src/raft/", 8),
    ("src/wire/", 9),
    ("src/runtime/", 10),
    ("src/core/", 11),
]
INCLUDE_RE = re.compile(r"^\s*#include\s+\"([^\"]+)\"")


def layer_rank(rel):
    best = None
    for prefix, rank in LAYERS:
        if rel == prefix or rel.startswith(prefix):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, rank)
    return best[1] if best else None


def rule_include_hygiene(tree):
    """Headers only include downward in the layer table; unknown paths must be added to it."""
    findings = []
    for rel in tree.glob("src/**/*.hpp"):
        my_rank = layer_rank(rel)
        if my_rank is None:
            findings.append(Finding(
                "include-hygiene", rel, 1,
                "file is not covered by the layer table in tools/gclint "
                "(new directory? add it to LAYERS at the right rank)"))
            continue
        for i, line in enumerate(tree.lines(rel), start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            inc = "src/" + m.group(1)
            if tree.read(inc) is None:
                continue  # system/third-party include spelled with quotes
            inc_rank = layer_rank(inc)
            if inc_rank is not None and inc_rank > my_rank:
                findings.append(Finding(
                    "include-hygiene", rel, i,
                    f"layer violation: {rel} (rank {my_rank}) includes "
                    f"{inc} (rank {inc_rank}); lower layers must not "
                    f"depend on higher ones"))
    return findings


# --------------------------------------------------------------------------
# Driver

RULES = {
    "wire-coverage": rule_wire_coverage,
    "switch-exhaustiveness": rule_switch_exhaustiveness,
    "invariant-test-coverage": rule_invariant_test_coverage,
    "config-wiring": rule_config_wiring,
    "metrics-hygiene": rule_metrics_hygiene,
    "include-hygiene": rule_include_hygiene,
}


def apply_suppressions(tree, findings):
    """Filters findings suppressed by pragmas; audits the pragmas themselves.

    A pragma suppresses findings of its rule on its own line and the line
    directly below (so it can sit above a declaration). Pragmas with no
    justification or an unknown rule name are converted into findings — a
    suppression must say why, and must name a rule that exists.
    """
    kept = []
    pragma_cache = {}
    for f in findings:
        if f.path not in pragma_cache:
            pragma_cache[f.path] = tree.pragmas(f.path)
        pragmas = pragma_cache[f.path]
        suppressed = False
        for line in (f.line, f.line - 1):
            hit = pragmas.get(line)
            if hit and hit[0] == f.rule and hit[1]:
                suppressed = True
        if not suppressed:
            kept.append(f)

    # Audit every pragma in every scanned file (not only files with
    # findings): bad pragmas must surface even on otherwise-clean trees.
    for rel in tree.glob("src/**/*.hpp") + tree.glob("src/**/*.cpp") + \
            tree.glob("tests/**/*.cpp") + tree.glob("examples/**/*.cpp"):
        for line_no, (rule, why) in tree.pragmas(rel).items():
            if rule not in RULES:
                kept.append(Finding(
                    "pragma", rel, line_no,
                    f"gclint pragma names unknown rule '{rule}'"))
            elif not why:
                kept.append(Finding(
                    "pragma", rel, line_no,
                    f"gclint allow({rule}) pragma has no justification; "
                    f"say why the finding is acceptable"))
    return kept


def run(root, rule_names):
    tree = Tree(root)
    findings = []
    for name in rule_names:
        findings.extend(RULES[name](tree))
    findings = apply_suppressions(tree, findings)
    findings.sort(key=Finding.sort_key)
    return findings


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="gclint", description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="tree to check (default: the repo containing this "
                         "script)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--format", choices=["text", "github"], default="text",
                    help="github emits ::error workflow commands that "
                         "annotate the PR")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name, fn in RULES.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{name}: {doc[0] if doc else ''}")
        return 0

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[2]
    if not (root / "src").is_dir():
        print(f"gclint: no src/ under {root} (wrong --root?)", file=sys.stderr)
        return 2

    if args.rules:
        names = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in names if r not in RULES]
        if unknown:
            print(f"gclint: unknown rule(s): {', '.join(unknown)} "
                  f"(--list-rules shows the catalogue)", file=sys.stderr)
            return 2
    else:
        names = list(RULES)

    findings = run(root, names)
    for f in findings:
        print(f.github() if args.format == "github" else f.text())
    if findings:
        print(f"gclint: {len(findings)} finding(s) in {root}", file=sys.stderr)
        return 1
    print(f"gclint: clean ({', '.join(names)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed stdout early; the
        # findings it did read are valid, so exit as if truncation is fine.
        sys.exit(1)
