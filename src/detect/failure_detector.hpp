// Timeout-based failure detection for coordinator failover (DESIGN.md §8).
//
// Every process broadcasts a small heartbeat when it has not originated
// protocol traffic for a while (piggybacking: any message a process puts on
// the wire is evidence of liveness, so explicit heartbeats only cover idle
// spells). Receivers track a per-peer last-heard time; a peer silent for
// suspect_after plus a deterministic per-(observer, peer) jitter becomes
// *suspected*. Suspicion is revocable — hearing from a suspected peer fires
// a restore callback (false-positive recovery, e.g. after a healed
// partition). next_live_after() implements the rank-based succession rule:
// the first unsuspected process after the failed one, in id order mod n,
// takes over coordination at a higher round.
//
// Everything is deterministic: the jitter is a pure hash of
// (seed, observer, peer) — no RNG stream is consumed — so replays of a
// seeded run produce byte-identical suspicion/takeover sequences.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "paxos/config.hpp"
#include "transport/transport.hpp"

namespace gossipc {

/// Failover events surfaced to the experiment layer (fault log + counters).
enum class FailoverEvent { Suspect, Restore, Takeover, StepDown };

class FailureDetector {
public:
    struct Counters {
        std::uint64_t heartbeats_sent = 0;
        std::uint64_t heartbeats_suppressed = 0;  ///< protocol traffic piggybacked
        std::uint64_t suspicions = 0;
        std::uint64_t restores = 0;  ///< suspected peers heard from again
    };

    using PeerEventFn = std::function<void(ProcessId, CpuContext&)>;

    /// Reads n/id, the detector timing knobs, and the jitter seed from
    /// `config`. The transport must outlive the detector.
    FailureDetector(const PaxosConfig& config, Transport& transport);

    /// Subscribes to suspicion/restore transitions. Additive: a detector
    /// shared by several consensus groups (DESIGN.md §15) fans each event
    /// out to every subscriber, in subscription order.
    void set_on_suspect(PeerEventFn fn) { on_suspect_.push_back(std::move(fn)); }
    void set_on_restore(PeerEventFn fn) { on_restore_.push_back(std::move(fn)); }
    /// Supplies the learner frontier advertised in outgoing heartbeats.
    void set_frontier_provider(std::function<InstanceId()> fn) {
        frontier_provider_ = std::move(fn);
    }
    /// Multi-group form: one frontier per group, in group order. Takes
    /// precedence over the scalar provider when both are set.
    void set_frontiers_provider(std::function<std::vector<InstanceId>()> fn) {
        frontiers_provider_ = std::move(fn);
    }

    /// Arms the heartbeat and suspicion-sweep timer chains (idempotent).
    /// Peers get one full suspect_after of extra grace at startup so slow
    /// first deliveries (multi-hop gossip) are not misread as failures.
    void start();

    /// Evidence that `peer` is alive at `now` — called for every delivered
    /// message (by its original sender, not the gossip forwarder).
    void observe_alive(ProcessId peer, CpuContext& ctx);

    bool suspects(ProcessId peer) const;
    std::size_t suspected_count() const;

    /// Rank-based succession: the first process after `failed` in id order
    /// (failed+1, failed+2, ... mod n) that is not suspected. This process
    /// itself always counts as live.
    ProcessId next_live_after(ProcessId failed) const;

    /// The deterministic suspicion-deadline jitter applied to `peer`.
    SimTime jitter_for(ProcessId peer) const;

    const Counters& counters() const { return counters_; }

private:
    void heartbeat_tick(CpuContext& ctx);
    void sweep(CpuContext& ctx);

    PaxosConfig config_;
    Transport& transport_;

    struct PeerState {
        SimTime last_heard = SimTime::zero();
        SimTime jitter = SimTime::zero();
        bool suspected = false;
    };
    std::vector<PeerState> peers_;  ///< indexed by ProcessId; self unused

    bool started_ = false;
    std::uint64_t heartbeat_seq_ = 0;
    SimTime last_sweep_ = SimTime::zero();
    Counters counters_;
    std::vector<PeerEventFn> on_suspect_;
    std::vector<PeerEventFn> on_restore_;
    std::function<InstanceId()> frontier_provider_;
    std::function<std::vector<InstanceId>()> frontiers_provider_;
};

}  // namespace gossipc
