#include "detect/failure_detector.hpp"

#include <stdexcept>

namespace gossipc {

FailureDetector::FailureDetector(const PaxosConfig& config, Transport& transport)
    : config_(config), transport_(transport) {
    if (config_.n <= 0 || config_.id < 0 || config_.id >= config_.n) {
        throw std::invalid_argument("FailureDetector: bad config");
    }
    peers_.resize(static_cast<std::size_t>(config_.n));
    const std::int64_t range = config_.suspicion_jitter_max.as_nanos() + 1;
    for (ProcessId p = 0; p < config_.n; ++p) {
        const std::uint64_t h =
            mix64(config_.seed ^ hash_combine(static_cast<std::uint64_t>(config_.id),
                                              static_cast<std::uint64_t>(p)));
        peers_[static_cast<std::size_t>(p)].jitter =
            SimTime::nanos(static_cast<std::int64_t>(h % static_cast<std::uint64_t>(range)));
    }
}

void FailureDetector::start() {
    if (started_) return;
    started_ = true;
    transport_.post([this](CpuContext& ctx) {
        // Startup grace: allow one extra suspect_after before the first
        // heartbeat must have arrived — cold gossip pipelines can take
        // several hops' latency to deliver the first one.
        for (PeerState& ps : peers_) ps.last_heard = ctx.now() + config_.suspect_after;
        last_sweep_ = ctx.now();
    });
    transport_.schedule_every(config_.heartbeat_interval,
                              [this](CpuContext& ctx) { heartbeat_tick(ctx); });
    transport_.schedule_every(config_.detector_sweep_interval,
                              [this](CpuContext& ctx) { sweep(ctx); });
}

void FailureDetector::observe_alive(ProcessId peer, CpuContext& ctx) {
    if (peer < 0 || peer >= config_.n || peer == config_.id) return;
    PeerState& ps = peers_[static_cast<std::size_t>(peer)];
    ps.last_heard = ctx.now();
    if (ps.suspected) {
        ps.suspected = false;
        ++counters_.restores;
        for (const PeerEventFn& fn : on_restore_) fn(peer, ctx);
    }
}

bool FailureDetector::suspects(ProcessId peer) const {
    if (peer < 0 || peer >= config_.n || peer == config_.id) return false;
    return peers_[static_cast<std::size_t>(peer)].suspected;
}

std::size_t FailureDetector::suspected_count() const {
    std::size_t count = 0;
    for (const PeerState& ps : peers_) count += ps.suspected ? 1 : 0;
    return count;
}

ProcessId FailureDetector::next_live_after(ProcessId failed) const {
    for (int k = 1; k <= config_.n; ++k) {
        const auto candidate = static_cast<ProcessId>((failed + k) % config_.n);
        if (candidate == config_.id || !suspects(candidate)) return candidate;
    }
    return failed;  // unreachable: this process itself is always a candidate
}

SimTime FailureDetector::jitter_for(ProcessId peer) const {
    if (peer < 0 || peer >= config_.n) return SimTime::zero();
    return peers_[static_cast<std::size_t>(peer)].jitter;
}

void FailureDetector::heartbeat_tick(CpuContext& ctx) {
    // Piggybacking: protocol traffic this process originated recently is
    // already refreshing peers' deadlines. The half-interval threshold
    // tolerates the small CPU-time skew between the timer chain and the
    // origination stamps of previous heartbeats.
    const SimTime quiet = SimTime::nanos(config_.heartbeat_interval.as_nanos() / 2);
    if (config_.heartbeat_piggyback && ctx.now() - transport_.last_origination() < quiet) {
        ++counters_.heartbeats_suppressed;
        return;
    }
    ++counters_.heartbeats_sent;
    PaxosMessagePtr hb;
    if (frontiers_provider_) {
        hb = std::make_shared<HeartbeatMsg>(config_.id, heartbeat_seq_++,
                                            frontiers_provider_());
    } else {
        const InstanceId frontier = frontier_provider_ ? frontier_provider_() : 1;
        hb = std::make_shared<HeartbeatMsg>(config_.id, heartbeat_seq_++, frontier);
    }
    transport_.broadcast(std::move(hb), ctx);
}

void FailureDetector::sweep(CpuContext& ctx) {
    const SimTime now = ctx.now();
    // A gap in the sweep chain means this process was crashed (ticks are
    // dropped while down). Re-baseline every deadline instead of mass-
    // suspecting all peers from stale timestamps — a freshly restarted
    // process must not conclude it is the only survivor and take over.
    if (last_sweep_ != SimTime::zero() &&
        now - last_sweep_ > config_.detector_sweep_interval * 4) {
        for (PeerState& ps : peers_) ps.last_heard = now;
    }
    last_sweep_ = now;
    for (ProcessId p = 0; p < config_.n; ++p) {
        if (p == config_.id) continue;
        PeerState& ps = peers_[static_cast<std::size_t>(p)];
        if (ps.suspected) continue;
        if (now - ps.last_heard >= config_.suspect_after + ps.jitter) {
            ps.suspected = true;
            ++counters_.suspicions;
            for (const PeerEventFn& fn : on_suspect_) fn(p, ctx);
        }
    }
}

}  // namespace gossipc
