// Wide-area latency model.
//
// The North Virginia row reproduces Table 1 of the paper exactly (one-way
// latencies from the coordinator's region to the other twelve). The rest of
// the 13x13 matrix is synthesized from public AWS inter-region measurements;
// only the coordinator row is specified by the paper, and the gossip results
// depend on the overall geographic structure rather than exact off-row
// values (documented in DESIGN.md).
#pragma once

#include <array>

#include "common/types.hpp"
#include "net/region.hpp"

namespace gossipc {

class LatencyModel {
public:
    /// The AWS model used by all experiments.
    static const LatencyModel& aws();

    /// Builds a model with uniform one-way latency between distinct regions
    /// (useful for tests that need symmetric geography).
    static LatencyModel uniform(SimTime wan_one_way, SimTime intra = SimTime::micros(250));

    /// One-way latency between two regions; intra-region if a == b.
    SimTime one_way(Region a, Region b) const;

    /// Round-trip latency between two regions.
    SimTime rtt(Region a, Region b) const { return one_way(a, b) * 2; }

    SimTime intra_region() const { return intra_; }

private:
    LatencyModel() = default;

    std::array<std::array<SimTime, kNumRegions>, kNumRegions> one_way_{};
    SimTime intra_ = SimTime::micros(250);
};

}  // namespace gossipc
