#include "net/latency_model.hpp"

#include <stdexcept>

namespace gossipc {
namespace {

// One-way latencies in milliseconds, upper triangle; row/column order follows
// the Region enum. Row 0 (North Virginia) is Table 1 of the paper, verbatim.
// The remaining entries are synthesized from public AWS inter-region RTT
// measurements (c. 2021), halved to one-way.
constexpr double kOneWayMs[kNumRegions][kNumRegions] = {
    //        NV   CAN  NCA  ORE  LON  IRL  FRA   SP  TYO  BOM  SYD  ICN  SIN
    /*NV */ {  0,    7,  30,  39,  38,  33,  44,  58,  73,  93,  98,  87, 105},
    /*CAN*/ {  7,    0,  35,  30,  42,  38,  49,  63,  78,  98, 102,  90, 108},
    /*NCA*/ { 30,   35,   0,  11,  71,  67,  75,  86,  52, 113,  72,  62,  84},
    /*ORE*/ { 39,   30,  11,   0,  75,  70,  79,  91,  49, 109,  70,  60,  82},
    /*LON*/ { 38,   42,  71,  75,   0,   6,   8,  94, 105,  56, 140, 120,  85},
    /*IRL*/ { 33,   38,  67,  70,   6,   0,  13,  90, 110,  61, 132, 118,  89},
    /*FRA*/ { 44,   49,  75,  79,   8,  13,   0, 100, 112,  55, 145, 115,  80},
    /*SP */ { 58,   63,  86,  91,  94,  90, 100,   0, 128, 150, 160, 135, 165},
    /*TYO*/ { 73,   78,  52,  49, 105, 110, 112, 128,   0,  60,  52,  17,  35},
    /*BOM*/ { 93,   98, 113, 109,  56,  61,  55, 150,  60,   0, 110,  75,  30},
    /*SYD*/ { 98,  102,  72,  70, 140, 132, 145, 160,  52, 110,   0,  65,  45},
    /*ICN*/ { 87,   90,  62,  60, 120, 118, 115, 135,  17,  75,  65,   0,  38},
    /*SIN*/ {105,  108,  84,  82,  85,  89,  80, 165,  35,  30,  45,  38,   0},
};

}  // namespace

const LatencyModel& LatencyModel::aws() {
    static const LatencyModel model = [] {
        LatencyModel m;
        for (int a = 0; a < kNumRegions; ++a) {
            for (int b = 0; b < kNumRegions; ++b) {
                m.one_way_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
                    SimTime::millis(kOneWayMs[a][b]);
            }
        }
        m.intra_ = SimTime::micros(250);
        return m;
    }();
    return model;
}

LatencyModel LatencyModel::uniform(SimTime wan_one_way, SimTime intra) {
    LatencyModel m;
    for (int a = 0; a < kNumRegions; ++a) {
        for (int b = 0; b < kNumRegions; ++b) {
            m.one_way_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
                (a == b) ? intra : wan_one_way;
        }
    }
    m.intra_ = intra;
    return m;
}

SimTime LatencyModel::one_way(Region a, Region b) const {
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (ia >= kNumRegions || ib >= kNumRegions) {
        throw std::out_of_range("LatencyModel::one_way: bad region");
    }
    if (a == b) return intra_;
    return one_way_[ia][ib];
}

}  // namespace gossipc
