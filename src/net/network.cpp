#include "net/network.hpp"

#include <utility>

namespace gossipc {

Network::Network(Simulator& sim, const LatencyModel& latency, int n, Params params)
    : sim_(sim),
      latency_(latency),
      params_(params),
      allowed_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), false),
      jitter_rng_(Rng::derive(params.seed, "net-jitter")),
      fault_rng_(Rng::derive(params.seed, "net-fault")) {
    if (n <= 0) throw std::invalid_argument("Network: n must be positive");
    nodes_.reserve(static_cast<std::size_t>(n));
    for (ProcessId id = 0; id < n; ++id) {
        nodes_.push_back(
            std::make_unique<Node>(sim, *this, id, region_of_process(id, n), params.node));
    }
}

Node& Network::node(ProcessId id) {
    return *nodes_.at(static_cast<std::size_t>(id));
}

const Node& Network::node(ProcessId id) const {
    return *nodes_.at(static_cast<std::size_t>(id));
}

std::size_t Network::link_index(ProcessId a, ProcessId b) const {
    return static_cast<std::size_t>(a) * nodes_.size() + static_cast<std::size_t>(b);
}

void Network::allow_link(ProcessId a, ProcessId b) {
    if (a == b) throw std::invalid_argument("Network::allow_link: self link");
    allowed_.at(link_index(a, b)) = true;
    allowed_.at(link_index(b, a)) = true;
}

void Network::allow_all_links() {
    for (ProcessId a = 0; a < size(); ++a) {
        for (ProcessId b = 0; b < size(); ++b) {
            if (a != b) allowed_[link_index(a, b)] = true;
        }
    }
}

bool Network::link_allowed(ProcessId a, ProcessId b) const {
    if (a < 0 || b < 0 || a >= size() || b >= size() || a == b) return false;
    return allowed_[link_index(a, b)];
}

SimTime Network::propagation_delay(ProcessId a, ProcessId b) const {
    return latency_.one_way(node(a).region(), node(b).region());
}

void Network::LinkChannel::push(SimTime arrival, NetMessage msg) {
    // FIFO per directed link: a later send never overtakes an earlier one.
    if (arrival < last_arrival) arrival = last_arrival;
    last_arrival = arrival;
    queue.emplace_back(arrival, std::move(msg));
    if (!scheduled) {
        scheduled = true;
        sim->schedule_delivery(arrival, *this, NetMessage{});
    }
}

void Network::LinkChannel::deliver_event(NetMessage /*unused*/) {
    scheduled = false;
    if (queue.empty()) return;
    NetMessage msg = std::move(queue.front().second);
    queue.pop_front();
    if (!queue.empty()) {
        scheduled = true;
        sim->schedule_delivery(queue.front().first, *this, NetMessage{});
    }
    dest->arrival(std::move(msg));
}

void Network::transmit(const NetMessage& msg, SimTime depart) {
    if (!link_allowed(msg.from, msg.to)) {
        throw std::logic_error("Network::transmit: link not allowed between processes " +
                               std::to_string(msg.from) + " and " + std::to_string(msg.to));
    }
    ++total_transmissions_;
    const std::size_t idx = link_index(msg.from, msg.to);
    if (!cut_.empty() && cut_[idx]) {
        ++fault_counters_.cut_drops;
        return;
    }
    const SimTime base = propagation_delay(msg.from, msg.to);
    double factor = 1.0;
    if (params_.jitter_frac > 0.0) {
        factor = 1.0 - params_.jitter_frac + 2.0 * params_.jitter_frac * jitter_rng_.uniform01();
    }
    const auto latency_ns =
        static_cast<std::int64_t>(static_cast<double>(base.as_nanos()) * factor);
    const auto serialization_ns = static_cast<std::int64_t>(
        1000.0 * static_cast<double>(msg.wire_size()) / params_.bandwidth_bytes_per_us);
    SimTime arrive = depart + SimTime::nanos(latency_ns + serialization_ns);

    // Structured link faults (fault engine): the rng is consumed only on
    // faulted links, so runs without an active fault window are unchanged.
    const LinkFaultSpec* fault = link_fault(msg.from, msg.to);
    bool fifo = true;
    if (fault != nullptr) {
        if (fault->loss > 0.0 && fault_rng_.chance(fault->loss)) {
            ++fault_counters_.loss_drops;
            return;
        }
        arrive += fault->extra_delay;
        if (fault->reorder_window > SimTime::zero()) {
            arrive += SimTime::nanos(
                fault_rng_.uniform_int(0, fault->reorder_window.as_nanos()));
            fifo = false;
            ++fault_counters_.reordered;
        }
        if (fault->duplicate > 0.0 && fault_rng_.chance(fault->duplicate)) {
            // The copy takes the out-of-order path; a duplicate that also
            // overtakes the original is exactly the interesting case.
            ++fault_counters_.duplicates;
            sim_.schedule_delivery(arrive, node(msg.to), msg);
        }
    }
    if (!fifo) {
        sim_.schedule_delivery(arrive, node(msg.to), msg);
        return;
    }

    if (channels_.empty()) channels_.resize(allowed_.size());
    auto& channel = channels_[idx];
    if (!channel) {
        channel = std::make_unique<LinkChannel>();
        channel->sim = &sim_;
        channel->dest = &node(msg.to);
    }
    channel->push(arrive, msg);
}

void Network::set_uniform_loss(double p) {
    for (auto& n : nodes_) {
        if (loss_streams_installed_) {
            n->set_loss_rate(p);
        } else {
            n->set_loss(p, Rng::derive(params_.seed,
                                       0x10f5ULL ^ static_cast<std::uint64_t>(n->id())));
        }
    }
    loss_streams_installed_ = true;
}

void Network::set_link_cut(ProcessId a, ProcessId b, bool cut) {
    if (a == b || a < 0 || b < 0 || a >= size() || b >= size()) {
        throw std::invalid_argument("Network::set_link_cut: bad link");
    }
    if (cut_.empty()) {
        if (!cut) return;
        cut_.resize(allowed_.size(), false);
    }
    cut_[link_index(a, b)] = cut;
    cut_[link_index(b, a)] = cut;
}

bool Network::link_cut(ProcessId a, ProcessId b) const {
    if (cut_.empty() || a < 0 || b < 0 || a >= size() || b >= size()) return false;
    return cut_[link_index(a, b)];
}

void Network::clear_all_cuts() {
    cut_.clear();
}

void Network::set_link_fault(ProcessId from, ProcessId to, LinkFaultSpec spec) {
    if (from == to || from < 0 || to < 0 || from >= size() || to >= size()) {
        throw std::invalid_argument("Network::set_link_fault: bad link");
    }
    link_faults_[link_index(from, to)] = spec;
}

void Network::clear_link_fault(ProcessId from, ProcessId to) {
    link_faults_.erase(link_index(from, to));
}

const LinkFaultSpec* Network::link_fault(ProcessId from, ProcessId to) const {
    if (link_faults_.empty()) return nullptr;
    const auto it = link_faults_.find(link_index(from, to));
    return it == link_faults_.end() ? nullptr : &it->second;
}

}  // namespace gossipc
