// Forwarding header: the message envelope lives in common/ so the simulator
// can carry deliveries without a layering inversion.
#pragma once

#include "common/message.hpp"
