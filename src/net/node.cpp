#include "net/node.hpp"

#include <algorithm>
#include <utility>

#include "net/network.hpp"

namespace gossipc {

Node::Node(Simulator& sim, Network& network, ProcessId id, Region region, Params params)
    : sim_(sim), network_(network), id_(id), region_(region), params_(params) {}

void Node::set_loss(double p, Rng rng) {
    loss_rate_ = std::clamp(p, 0.0, 1.0);
    loss_rng_ = std::move(rng);
}

void Node::set_loss_rate(double p) {
    loss_rate_ = std::clamp(p, 0.0, 1.0);
    if (loss_rate_ > 0.0 && !loss_rng_) {
        throw std::logic_error("Node::set_loss_rate: no loss stream installed");
    }
}

SimTime Node::message_cost(SimTime base, std::uint32_t bytes) const {
    const auto byte_ns = static_cast<std::int64_t>(params_.cpu_ns_per_byte * bytes);
    return base + SimTime::nanos(byte_ns);
}

void Node::arrival(NetMessage msg) {
    ++counters_.arrivals;
    if (crashed_) return;
    if (loss_rate_ > 0.0 && loss_rng_ && loss_rng_->chance(loss_rate_)) {
        ++counters_.loss_drops;
        return;
    }
    const std::size_t pending = tasks_.size();
    if (pending >= params_.task_queue_cap) {
        ++counters_.queue_drops;
        return;
    }
    counters_.bytes_received += msg.wire_size();
    PendingTask task;
    task.msg = std::move(msg);
    task.droppable = true;
    tasks_.push_back(std::move(task));
    schedule_drain();
}

void Node::post(Task task) {
    if (crashed_) return;
    PendingTask t;
    t.fn = std::move(task);
    tasks_.push_back(std::move(t));
    schedule_drain();
}

void Node::run_task(PendingTask& task, CpuContext& ctx) {
    if (task.msg.body) {
        ctx.consume(message_cost(params_.recv_cost, task.msg.wire_size()));
        ++counters_.received;
        if (handler_) handler_(task.msg, ctx);
    } else if (task.fn) {
        task.fn(ctx);
    }
}

void Node::transmit_in_task(NetMessage msg, CpuContext& ctx) {
    if (crashed_) return;
    ctx.consume(message_cost(params_.send_cost, msg.wire_size()));
    ++counters_.sent;
    counters_.bytes_sent += msg.wire_size();
    network_.transmit(msg, ctx.now());
}

void Node::post_transmit(NetMessage msg) {
    post([this, msg = std::move(msg)](CpuContext& ctx) { transmit_in_task(msg, ctx); });
}

void Node::crash() {
    crashed_ = true;
    tasks_.clear();
}

void Node::recover() {
    crashed_ = false;
    cpu_free_at_ = sim_.now();
}

SimTime Node::backlog() const {
    const SimTime now = sim_.now();
    return cpu_free_at_ > now ? cpu_free_at_ - now : SimTime::zero();
}

void Node::schedule_drain() {
    if (drain_scheduled_) return;
    drain_scheduled_ = true;
    const SimTime at = std::max(sim_.now(), cpu_free_at_);
    sim_.schedule_at(at, [this] { drain(); });
}

void Node::drain() {
    drain_scheduled_ = false;
    if (crashed_) {
        tasks_.clear();
        return;
    }
    CpuContext ctx{std::max(sim_.now(), cpu_free_at_)};
    // Tasks posted while draining (by handlers) are processed in the same
    // batch, preserving FIFO order at the correct virtual times.
    while (!tasks_.empty()) {
        PendingTask task = std::move(tasks_.front());
        tasks_.pop_front();
        run_task(task, ctx);
        if (crashed_) {
            tasks_.clear();
            return;
        }
    }
    cpu_free_at_ = ctx.now();
}

}  // namespace gossipc
