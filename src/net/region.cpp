#include "net/region.hpp"

namespace gossipc {

std::string_view region_name(Region r) {
    switch (r) {
        case Region::NorthVirginia: return "N.Virginia";
        case Region::Canada: return "Canada";
        case Region::NorthCalifornia: return "N.California";
        case Region::Oregon: return "Oregon";
        case Region::London: return "London";
        case Region::Ireland: return "Ireland";
        case Region::Frankfurt: return "Frankfurt";
        case Region::SaoPaulo: return "S.Paulo";
        case Region::Tokyo: return "Tokyo";
        case Region::Mumbai: return "Mumbai";
        case Region::Sydney: return "Sydney";
        case Region::Seoul: return "Seoul";
        case Region::Singapore: return "Singapore";
    }
    return "?";
}

Region region_of_process(ProcessId id, int /*n*/) {
    if (id == 0) return kCoordinatorRegion;
    // Processes 1..n-1 fill regions round-robin starting from NorthVirginia,
    // giving the paper's even spread (e.g. n=53: coordinator + 4 per region).
    return static_cast<Region>((id - 1) % kNumRegions);
}

std::array<Region, kNumRegions> all_regions() {
    std::array<Region, kNumRegions> out{};
    for (int i = 0; i < kNumRegions; ++i) out[static_cast<std::size_t>(i)] = static_cast<Region>(i);
    return out;
}

}  // namespace gossipc
