// The 13 AWS regions used in the paper's evaluation (Section 4.2) and the
// mapping of processes to regions ("evenly spread among 13 AWS regions",
// coordinator in North Virginia).
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"

namespace gossipc {

enum class Region : int {
    NorthVirginia = 0,
    Canada,
    NorthCalifornia,
    Oregon,
    London,
    Ireland,
    Frankfurt,
    SaoPaulo,
    Tokyo,
    Mumbai,
    Sydney,
    Seoul,
    Singapore,
};

inline constexpr int kNumRegions = 13;

/// The coordinator's region in all of the paper's experiments.
inline constexpr Region kCoordinatorRegion = Region::NorthVirginia;

std::string_view region_name(Region r);

/// Region of process `id` in a deployment of `n` processes: process 0 (the
/// coordinator) is in North Virginia; the others are spread round-robin over
/// the 13 regions, matching the paper's 1/4/8-per-region placements for
/// n = 13, 53, 105.
Region region_of_process(ProcessId id, int n);

/// All 13 regions in enum order.
std::array<Region, kNumRegions> all_regions();

}  // namespace gossipc
