// The simulated wide-area network: nodes, links, and transmission.
//
// Links must be explicitly allowed (partially connected network graph);
// attempting to transmit over a missing link is a logic error, which catches
// protocol code that silently assumes full connectivity. Link delay is the
// one-way regional latency (with small multiplicative jitter) plus a
// serialization term proportional to message size.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/node.hpp"
#include "net/region.hpp"
#include "sim/simulator.hpp"

namespace gossipc {

/// A structured fault window on one *directed* link (fault engine, DESIGN.md
/// §7): independent loss, a deterministic delay spike, probabilistic
/// duplication, and reordering. Asymmetric faults are expressed by installing
/// different specs on the two directions of a link.
struct LinkFaultSpec {
    /// Probability that a traversal is dropped in flight.
    double loss = 0.0;
    /// Added to every traversal's propagation delay (delay spike).
    SimTime extra_delay = SimTime::zero();
    /// Probability that a traversal is delivered twice (the copy bypasses
    /// the FIFO channel, so it may also arrive out of order).
    double duplicate = 0.0;
    /// When non-zero, each traversal gets uniform extra delay in
    /// [0, reorder_window] and bypasses the FIFO channel — later sends can
    /// overtake earlier ones, modelling multipath/UDP-like reordering.
    SimTime reorder_window = SimTime::zero();

    bool active() const {
        return loss > 0.0 || extra_delay > SimTime::zero() || duplicate > 0.0 ||
               reorder_window > SimTime::zero();
    }
};

class Network {
public:
    struct Params {
        Node::Params node;
        /// Link bandwidth; 125 bytes/us = 1 Gbit/s.
        double bandwidth_bytes_per_us = 125.0;
        /// Uniform multiplicative jitter on latency: factor in [1-j, 1+j].
        double jitter_frac = 0.02;
        std::uint64_t seed = 1;
    };

    Network(Simulator& sim, const LatencyModel& latency, int n, Params params);

    int size() const { return static_cast<int>(nodes_.size()); }
    Node& node(ProcessId id);
    const Node& node(ProcessId id) const;

    /// Allows bidirectional communication between a and b.
    void allow_link(ProcessId a, ProcessId b);
    void allow_all_links();
    bool link_allowed(ProcessId a, ProcessId b) const;

    /// Ships a message; schedules arrival at the destination node. `depart`
    /// is the (virtual CPU) time the sender finished serializing it.
    /// Throws std::logic_error if the link is not allowed.
    void transmit(const NetMessage& msg, SimTime depart);

    /// One-way propagation delay between two processes (no jitter, no
    /// serialization) — used by analysis and tests.
    SimTime propagation_delay(ProcessId a, ProcessId b) const;

    const LatencyModel& latency_model() const { return latency_; }

    /// Sets the same receive-loss rate on every node (Section 4.5 fault
    /// injection). Each node's loss stream is derived from the network seed
    /// and the node id exactly once (on the first call); later calls only
    /// adjust the rate — re-deriving would rewind the streams and replay the
    /// same drop pattern, silently correlating drops across the phases of a
    /// run that changes the rate mid-flight.
    void set_uniform_loss(double p);

    /// Cuts or restores both directions of a link (partition primitive).
    /// Transmissions over a cut link are dropped silently (counted), unlike
    /// disallowed links, which are logic errors.
    void set_link_cut(ProcessId a, ProcessId b, bool cut);
    bool link_cut(ProcessId a, ProcessId b) const;
    /// Restores every cut link (partition heal).
    void clear_all_cuts();

    /// Installs a structured fault window on the directed link from -> to
    /// (replacing any previous spec); clear_link_fault removes it. Faults on
    /// links that are never used are inert.
    void set_link_fault(ProcessId from, ProcessId to, LinkFaultSpec spec);
    void clear_link_fault(ProcessId from, ProcessId to);
    const LinkFaultSpec* link_fault(ProcessId from, ProcessId to) const;

    /// Drops, duplicates, and reorders caused by injected link faults/cuts.
    struct FaultCounters {
        std::uint64_t cut_drops = 0;    ///< transmissions dropped by a cut link
        std::uint64_t loss_drops = 0;   ///< dropped by link-fault loss
        std::uint64_t duplicates = 0;   ///< extra copies delivered
        std::uint64_t reordered = 0;    ///< traversals sent down the reorder path
    };
    const FaultCounters& fault_counters() const { return fault_counters_; }

    std::uint64_t total_transmissions() const { return total_transmissions_; }

private:
    /// A directed link delivers messages FIFO (libp2p channels ride on TCP).
    /// Only the head-of-line message holds an event in the simulator heap,
    /// which keeps the heap small regardless of the number of messages in
    /// flight.
    struct LinkChannel final : DeliveryTarget {
        Simulator* sim = nullptr;
        Node* dest = nullptr;
        std::deque<std::pair<SimTime, NetMessage>> queue;
        bool scheduled = false;
        SimTime last_arrival = SimTime::zero();

        void push(SimTime arrival, NetMessage msg);
        void deliver_event(NetMessage unused) override;
    };

    std::size_t link_index(ProcessId a, ProcessId b) const;

    Simulator& sim_;
    const LatencyModel& latency_;
    Params params_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<bool> allowed_;  // n*n adjacency
    std::vector<bool> cut_;      // n*n partition cuts, lazy (empty = none)
    std::unordered_map<std::size_t, LinkFaultSpec> link_faults_;  // by link index
    std::vector<std::unique_ptr<LinkChannel>> channels_;  // directed, lazy
    Rng jitter_rng_;
    Rng fault_rng_;  ///< consumed only on faulted links, so fault-free runs
                     ///< are bit-identical with and without the engine
    bool loss_streams_installed_ = false;
    FaultCounters fault_counters_;
    std::uint64_t total_transmissions_ = 0;
};

}  // namespace gossipc
