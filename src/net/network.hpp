// The simulated wide-area network: nodes, links, and transmission.
//
// Links must be explicitly allowed (partially connected network graph);
// attempting to transmit over a missing link is a logic error, which catches
// protocol code that silently assumes full connectivity. Link delay is the
// one-way regional latency (with small multiplicative jitter) plus a
// serialization term proportional to message size.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/node.hpp"
#include "net/region.hpp"
#include "sim/simulator.hpp"

namespace gossipc {

class Network {
public:
    struct Params {
        Node::Params node;
        /// Link bandwidth; 125 bytes/us = 1 Gbit/s.
        double bandwidth_bytes_per_us = 125.0;
        /// Uniform multiplicative jitter on latency: factor in [1-j, 1+j].
        double jitter_frac = 0.02;
        std::uint64_t seed = 1;
    };

    Network(Simulator& sim, const LatencyModel& latency, int n, Params params);

    int size() const { return static_cast<int>(nodes_.size()); }
    Node& node(ProcessId id);
    const Node& node(ProcessId id) const;

    /// Allows bidirectional communication between a and b.
    void allow_link(ProcessId a, ProcessId b);
    void allow_all_links();
    bool link_allowed(ProcessId a, ProcessId b) const;

    /// Ships a message; schedules arrival at the destination node. `depart`
    /// is the (virtual CPU) time the sender finished serializing it.
    /// Throws std::logic_error if the link is not allowed.
    void transmit(const NetMessage& msg, SimTime depart);

    /// One-way propagation delay between two processes (no jitter, no
    /// serialization) — used by analysis and tests.
    SimTime propagation_delay(ProcessId a, ProcessId b) const;

    const LatencyModel& latency_model() const { return latency_; }

    /// Sets the same receive-loss rate on every node (Section 4.5 fault
    /// injection); seeds derive from the network seed and the node id.
    void set_uniform_loss(double p);

    std::uint64_t total_transmissions() const { return total_transmissions_; }

private:
    /// A directed link delivers messages FIFO (libp2p channels ride on TCP).
    /// Only the head-of-line message holds an event in the simulator heap,
    /// which keeps the heap small regardless of the number of messages in
    /// flight.
    struct LinkChannel final : DeliveryTarget {
        Simulator* sim = nullptr;
        Node* dest = nullptr;
        std::deque<std::pair<SimTime, NetMessage>> queue;
        bool scheduled = false;
        SimTime last_arrival = SimTime::zero();

        void push(SimTime arrival, NetMessage msg);
        void deliver_event(NetMessage unused) override;
    };

    std::size_t link_index(ProcessId a, ProcessId b) const;

    Simulator& sim_;
    const LatencyModel& latency_;
    Params params_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<bool> allowed_;  // n*n adjacency
    std::vector<std::unique_ptr<LinkChannel>> channels_;  // directed, lazy
    Rng jitter_rng_;
    std::uint64_t total_transmissions_ = 0;
};

}  // namespace gossipc
