// Per-process execution model: a serial CPU with a FIFO task queue.
//
// Every message received and every message transmitted consumes CPU time
// (a base cost plus a per-byte cost), so queueing delay and saturation
// emerge naturally under load — this stands in for the paper's t2.medium
// instances. Receive tasks are dropped when the task queue overflows,
// mirroring libp2p-era behaviour ("our implementation may discard messages
// when queues connecting different routines are full"). Receive-side random
// loss injection implements the fault model of Section 4.5.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "net/region.hpp"
#include "sim/simulator.hpp"

namespace gossipc {

class Network;

/// Virtual CPU clock handed to tasks; tasks account for the work they do by
/// calling consume(). Effects of a task (e.g. transmissions) are stamped at
/// the task's current virtual time.
class CpuContext {
public:
    explicit CpuContext(SimTime start) : vt_(start) {}

    SimTime now() const { return vt_; }
    void consume(SimTime cost) { vt_ += cost; }

private:
    SimTime vt_;
};

class Node final : public DeliveryTarget {
public:
    struct Params {
        // Defaults calibrated so that, like in the paper's evaluation, the
        // Gossip setup at n=105 saturates somewhat above 104 submissions/s
        // (t2.medium instances running Go + libp2p are slow per message).
        /// CPU cost to process one received message (excl. per-byte part).
        SimTime recv_cost = SimTime::micros(6);
        /// CPU cost to transmit one message (excl. per-byte part).
        SimTime send_cost = SimTime::micros(2);
        /// CPU nanoseconds per payload byte (both directions).
        double cpu_ns_per_byte = 2.0;
        /// Receive tasks pending before further receives are dropped.
        std::size_t task_queue_cap = 50'000;
    };

    struct Counters {
        std::uint64_t arrivals = 0;        ///< messages that reached this node
        std::uint64_t loss_drops = 0;      ///< dropped by injected loss
        std::uint64_t queue_drops = 0;     ///< dropped by task-queue overflow
        std::uint64_t received = 0;        ///< processed by the upper layer
        std::uint64_t sent = 0;            ///< transmissions issued
        std::uint64_t bytes_received = 0;
        std::uint64_t bytes_sent = 0;
    };

    using ReceiveHandler = std::function<void(const NetMessage&, CpuContext&)>;
    using Task = std::function<void(CpuContext&)>;

    Node(Simulator& sim, Network& network, ProcessId id, Region region, Params params);

    ProcessId id() const { return id_; }
    Region region() const { return region_; }
    const Counters& counters() const { return counters_; }
    const Params& params() const { return params_; }
    Simulator& simulator() { return sim_; }

    void set_receive_handler(ReceiveHandler handler) { handler_ = std::move(handler); }

    /// Enables receive-side random message loss with probability `p`.
    void set_loss(double p, Rng rng);
    /// Adjusts the loss rate without touching the loss stream — rewinding an
    /// in-use stream would correlate drops across phases of a run.
    /// Requires a stream (set_loss) before any non-zero rate.
    void set_loss_rate(double p);
    bool has_loss_stream() const { return loss_rng_.has_value(); }
    double loss_rate() const { return loss_rate_; }

    /// Called by the Network when a transmission arrives over a link.
    void arrival(NetMessage msg);

    /// DeliveryTarget: the simulator's typed delivery lane lands here.
    void deliver_event(NetMessage msg) override { arrival(std::move(msg)); }

    /// Posts generic CPU work (control tasks are never dropped).
    void post(Task task);

    /// Transmits from within a running task: consumes send CPU at the task's
    /// virtual time and ships the message. Requires an allowed link.
    void transmit_in_task(NetMessage msg, CpuContext& ctx);

    /// Convenience for timer-driven sends: posts a task that transmits.
    void post_transmit(NetMessage msg);

    /// Crash the process: pending tasks are discarded and all arrivals are
    /// dropped until recover() is called. (Durable protocol state is kept by
    /// the upper layers, modelling stable storage.)
    void crash();
    void recover();
    bool crashed() const { return crashed_; }

    /// CPU backlog: how far the virtual CPU clock is ahead of real sim time.
    SimTime backlog() const;

private:
    void schedule_drain();
    void drain();

    SimTime message_cost(SimTime base, std::uint32_t bytes) const;

    Simulator& sim_;
    Network& network_;
    ProcessId id_;
    Region region_;
    Params params_;
    ReceiveHandler handler_;

    /// Receive tasks carry the message directly (no closure allocation on
    /// the hot path); control tasks carry a callback.
    struct PendingTask {
        NetMessage msg;  // receive task iff msg.body != nullptr
        Task fn;
        bool droppable = false;
    };
    void run_task(PendingTask& task, CpuContext& ctx);

    std::deque<PendingTask> tasks_;
    SimTime cpu_free_at_ = SimTime::zero();
    bool drain_scheduled_ = false;
    bool crashed_ = false;

    double loss_rate_ = 0.0;
    std::optional<Rng> loss_rng_;

    Counters counters_;
};

}  // namespace gossipc
