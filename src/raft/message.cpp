#include "raft/message.hpp"

#include <sstream>

namespace gossipc {

const char* raft_msg_type_name(RaftMsgType t) {
    switch (t) {
        case RaftMsgType::ClientForward: return "ClientForward";
        case RaftMsgType::Append: return "Append";
        case RaftMsgType::Ack: return "Ack";
        case RaftMsgType::AckAggregate: return "AckAggregate";
        case RaftMsgType::Commit: return "Commit";
    }
    return "?";
}

std::string RaftMessage::describe() const {
    std::ostringstream oss;
    oss << "raft:" << raft_msg_type_name(type()) << "(from=" << sender() << ")";
    return oss.str();
}

std::uint64_t RaftMessage::key_base() const {
    return hash_combine(hash_combine(0x4af7ULL, static_cast<std::uint64_t>(type())),
                        static_cast<std::uint64_t>(sender()));
}

std::uint64_t ClientForwardMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(value_.id.client));
    k = hash_combine(k, static_cast<std::uint64_t>(value_.id.seq));
    return hash_combine(k, static_cast<std::uint64_t>(attempt_));
}

std::uint64_t AppendMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(term_));
    k = hash_combine(k, static_cast<std::uint64_t>(index_));
    return hash_combine(k, value_.digest());
}

std::uint64_t AckMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(term_));
    k = hash_combine(k, static_cast<std::uint64_t>(index_));
    return hash_combine(k, value_digest_);
}

std::uint64_t AckAggregateMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(term_));
    k = hash_combine(k, static_cast<std::uint64_t>(index_));
    k = hash_combine(k, value_digest_);
    for (const ProcessId s : senders_) k = hash_combine(k, static_cast<std::uint64_t>(s));
    return k;
}

std::uint64_t CommitMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(term_));
    k = hash_combine(k, static_cast<std::uint64_t>(index_));
    return hash_combine(k, value_digest_);
}

}  // namespace gossipc
