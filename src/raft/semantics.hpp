// Semantic Gossip rules for Raft-style replication — the transfer of the
// Paxos rules (Section 4.7 / 5.1 of the paper):
//   F1' — a Commit notice sent to a peer makes that index's Acks obsolete.
//   F2' — a majority of identical Acks sent to a peer makes further Acks
//         for that index redundant.
//   A1' — pending identical Acks (same term, index, digest) are merged into
//         one multi-sender AckAggregate; reversible.
// The replication protocol itself is untouched, exactly as with Paxos.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "gossip/hooks.hpp"
#include "raft/message.hpp"
#include "semantic/peer_view.hpp"

namespace gossipc {

class RaftSemantics final : public GossipHooks {
public:
    struct Options {
        bool filtering = true;
        bool aggregation = true;
    };

    struct Stats {
        std::uint64_t filtered_acks = 0;
        std::uint64_t aggregates_built = 0;
        std::uint64_t messages_merged = 0;
        std::uint64_t disaggregations = 0;
    };

    RaftSemantics(ProcessId self, int quorum, Options options);

    bool validate(const GossipAppMessage& msg, ProcessId peer) override;
    std::vector<GossipAppMessage> aggregate(std::vector<GossipAppMessage> pending,
                                            ProcessId peer) override;
    std::vector<GossipAppMessage> disaggregate(const GossipAppMessage& msg) override;

    const Stats& stats() const { return stats_; }

private:
    PeerView& view(ProcessId peer);

    ProcessId self_;
    int quorum_;
    Options options_;
    std::unordered_map<ProcessId, PeerView> views_;
    Stats stats_;
};

}  // namespace gossipc
