#include "raft/semantics.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace gossipc {

RaftSemantics::RaftSemantics(ProcessId self, int quorum, Options options)
    : self_(self), quorum_(quorum), options_(options) {}

PeerView& RaftSemantics::view(ProcessId peer) {
    auto it = views_.find(peer);
    if (it == views_.end()) it = views_.emplace(peer, PeerView{quorum_}).first;
    return it->second;
}

bool RaftSemantics::validate(const GossipAppMessage& msg, ProcessId peer) {
    if (!options_.filtering) return true;
    if (!msg.payload || msg.payload->kind() != BodyKind::Raft) return true;
    const auto raft = std::static_pointer_cast<const RaftMessage>(msg.payload);
    switch (raft->type()) {
        case RaftMsgType::Ack: {
            const auto& m = static_cast<const AckMsg&>(*raft);
            PeerView& pv = view(peer);
            if (pv.knows_decision(m.index())) {
                ++stats_.filtered_acks;
                return false;
            }
            const int votes = pv.record_vote(m.index(), m.term(), m.value_digest(), m.sender());
            if (votes >= quorum_) pv.mark_decision(m.index());
            return true;
        }
        case RaftMsgType::AckAggregate: {
            const auto& m = static_cast<const AckAggregateMsg&>(*raft);
            PeerView& pv = view(peer);
            if (pv.knows_decision(m.index())) {
                ++stats_.filtered_acks;
                return false;
            }
            int votes = 0;
            for (const ProcessId s : m.senders()) {
                votes = pv.record_vote(m.index(), m.term(), m.value_digest(), s);
            }
            if (votes >= quorum_) pv.mark_decision(m.index());
            return true;
        }
        case RaftMsgType::Commit: {
            const auto& m = static_cast<const CommitMsg&>(*raft);
            view(peer).mark_decision(m.index());
            return true;
        }
        case RaftMsgType::ClientForward:
        case RaftMsgType::Append:
            // No filtering rule applies: forwards and appends are unique
            // per (index, term) and must always reach the leader/followers.
            return true;
    }
    return true;
}

std::vector<GossipAppMessage> RaftSemantics::aggregate(std::vector<GossipAppMessage> pending,
                                                       ProcessId peer) {
    (void)peer;
    if (!options_.aggregation || pending.size() < 2) return pending;
    using Key = std::tuple<LogIndex, Term, std::uint64_t>;
    struct Group {
        std::vector<std::size_t> indices;
        std::vector<ProcessId> senders;
    };
    std::map<Key, Group> groups;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const auto& payload = pending[i].payload;
        if (!payload || payload->kind() != BodyKind::Raft) continue;
        const auto raft = std::static_pointer_cast<const RaftMessage>(payload);
        if (raft->type() != RaftMsgType::Ack) continue;
        const auto& m = static_cast<const AckMsg&>(*raft);
        Group& g = groups[Key{m.index(), m.term(), m.value_digest()}];
        g.indices.push_back(i);
        if (std::find(g.senders.begin(), g.senders.end(), m.sender()) == g.senders.end()) {
            g.senders.push_back(m.sender());
        }
    }
    std::vector<bool> drop(pending.size(), false);
    std::vector<GossipAppMessage> replacement(pending.size());
    for (auto& [key, g] : groups) {
        if (g.indices.size() < 2) continue;
        const auto& [index, term, digest] = key;
        auto agg = std::make_shared<AckAggregateMsg>(self_, term, index, digest, g.senders);
        GossipAppMessage out;
        out.id = agg->unique_key();
        out.origin = self_;
        out.aggregated = true;
        out.payload = std::move(agg);
        replacement[g.indices.front()] = std::move(out);
        for (std::size_t j = 1; j < g.indices.size(); ++j) drop[g.indices[j]] = true;
        ++stats_.aggregates_built;
        stats_.messages_merged += g.indices.size() - 1;
    }
    std::vector<GossipAppMessage> out;
    out.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (drop[i]) continue;
        out.push_back(replacement[i].payload ? std::move(replacement[i])
                                             : std::move(pending[i]));
    }
    return out;
}

std::vector<GossipAppMessage> RaftSemantics::disaggregate(const GossipAppMessage& msg) {
    if (!msg.payload || msg.payload->kind() != BodyKind::Raft) return {msg};
    const auto raft = std::static_pointer_cast<const RaftMessage>(msg.payload);
    if (raft->type() != RaftMsgType::AckAggregate) return {msg};
    const auto& m = static_cast<const AckAggregateMsg&>(*raft);
    ++stats_.disaggregations;
    std::vector<GossipAppMessage> out;
    out.reserve(m.senders().size());
    for (const ProcessId sender : m.senders()) {
        auto single = std::make_shared<AckMsg>(sender, m.term(), m.index(), m.value_digest());
        GossipAppMessage app;
        app.id = single->unique_key();
        app.origin = sender;
        app.payload = std::move(single);
        out.push_back(std::move(app));
    }
    return out;
}

}  // namespace gossipc
