// A Raft-style replica over the gossip layer: the leader assigns log indices
// to client values and replicates them with Append; followers acknowledge;
// everyone commits an index once a majority of identical acks is seen (or a
// Commit notice from the leader arrives); committed values are delivered in
// index order with no gaps.
//
// Regular (fail-free) operation only: no elections, no log conflicts — the
// scope in which the paper says the semantic extensions transfer directly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "gossip/gossip_node.hpp"
#include "raft/message.hpp"

namespace gossipc {

struct RaftConfig {
    int n = 0;
    ProcessId id = -1;
    ProcessId leader = 0;
    Term term = 1;

    int quorum() const { return n / 2 + 1; }
};

class RaftReplica {
public:
    using CommitListener = std::function<void(LogIndex, const Value&, CpuContext&)>;

    struct Counters {
        std::uint64_t appends_sent = 0;  ///< leader replications
        std::uint64_t acks_sent = 0;
        std::uint64_t commits_sent = 0;
        std::uint64_t committed = 0;  ///< delivered in order
    };

    /// Installs itself as the gossip node's application deliver callback.
    RaftReplica(const RaftConfig& config, GossipNode& gossip);

    /// Client entry point: replicates directly when this replica is the
    /// leader, forwards otherwise.
    void submit(const Value& value, CpuContext& ctx);
    void post_submit(const Value& value);

    void set_commit_listener(CommitListener fn) { commit_listener_ = std::move(fn); }

    const RaftConfig& config() const { return config_; }
    bool is_leader() const { return config_.id == config_.leader; }
    LogIndex commit_frontier() const { return frontier_; }
    const Counters& counters() const { return counters_; }

    /// Committed value at `index` (delivered log), if any.
    std::optional<Value> committed_value(LogIndex index) const;

private:
    void on_deliver(const GossipAppMessage& msg, CpuContext& ctx);
    void handle_append(const AppendMsg& msg, CpuContext& ctx);
    void handle_ack(const AckMsg& msg, CpuContext& ctx);
    void handle_commit(const CommitMsg& msg, CpuContext& ctx);
    void replicate(const Value& value, CpuContext& ctx);
    void mark_committed(LogIndex index, std::uint64_t digest, bool via_quorum, CpuContext& ctx);
    void try_deliver(CpuContext& ctx);
    void broadcast(RaftMessagePtr msg, CpuContext& ctx);

    RaftConfig config_;
    GossipNode& gossip_;
    CommitListener commit_listener_;

    LogIndex next_index_ = 1;  ///< leader's next unused slot
    std::set<ValueId> seen_values_;

    struct Slot {
        std::optional<Value> value;  // from Append
        std::map<std::uint64_t, std::set<ProcessId>> acks;  // digest -> voters
        bool committed = false;
        std::uint64_t committed_digest = 0;
    };
    std::map<LogIndex, Slot> slots_;
    std::map<LogIndex, Value> log_;  ///< delivered prefix
    LogIndex frontier_ = 1;

    Counters counters_;
};

}  // namespace gossipc
