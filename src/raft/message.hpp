// Raft-style leader replication messages.
//
// The paper (Section 5.1) observes that in the absence of failures Raft and
// Paxos operate identically — the leader broadcasts values that a majority
// must acknowledge — "which makes the semantic extensions proposed for the
// regular operation of Paxos easily applicable to a gossip-based Raft
// deployment". This module substantiates that claim: Append/Ack/Commit play
// the roles of Phase 2a/2b/Decision, with terms in place of rounds.
// Leader election and log-conflict resolution are out of scope (the paper's
// techniques target regular operation).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/message.hpp"
#include "paxos/value.hpp"

namespace gossipc {

enum class RaftMsgType {
    ClientForward,
    Append,
    Ack,
    AckAggregate,
    Commit,
};

const char* raft_msg_type_name(RaftMsgType t);

/// Raft log index; commits are delivered in index order with no gaps.
using LogIndex = std::int64_t;
/// Raft term (the round analogue).
using Term = std::int32_t;

class RaftMessage : public MessageBody {
public:
    explicit RaftMessage(ProcessId sender) : sender_(sender) {}

    virtual RaftMsgType type() const = 0;
    ProcessId sender() const { return sender_; }
    virtual std::uint64_t unique_key() const = 0;

    BodyKind kind() const override { return BodyKind::Raft; }
    std::string describe() const override;

protected:
    std::uint64_t key_base() const;

private:
    ProcessId sender_;
};

using RaftMessagePtr = std::shared_ptr<const RaftMessage>;

/// A client value forwarded to the leader.
class ClientForwardMsg final : public RaftMessage {
public:
    ClientForwardMsg(ProcessId sender, Value value, std::int32_t attempt = 0)
        : RaftMessage(sender), value_(value), attempt_(attempt) {}

    RaftMsgType type() const override { return RaftMsgType::ClientForward; }
    const Value& value() const { return value_; }
    std::int32_t attempt() const { return attempt_; }

    std::uint32_t wire_size() const override { return 24 + value_.size_bytes; }
    std::uint64_t unique_key() const override;

private:
    Value value_;
    std::int32_t attempt_;
};

/// AppendEntries (single entry): the leader replicates `value` at `index`.
class AppendMsg final : public RaftMessage {
public:
    AppendMsg(ProcessId leader, Term term, LogIndex index, Value value)
        : RaftMessage(leader), term_(term), index_(index), value_(value) {}

    RaftMsgType type() const override { return RaftMsgType::Append; }
    Term term() const { return term_; }
    LogIndex index() const { return index_; }
    const Value& value() const { return value_; }

    std::uint32_t wire_size() const override { return 32 + value_.size_bytes; }
    std::uint64_t unique_key() const override;

private:
    Term term_;
    LogIndex index_;
    Value value_;
};

/// A follower's acknowledgement — the Phase 2b analogue (digest, not value).
class AckMsg final : public RaftMessage {
public:
    AckMsg(ProcessId follower, Term term, LogIndex index, std::uint64_t value_digest)
        : RaftMessage(follower), term_(term), index_(index), value_digest_(value_digest) {}

    RaftMsgType type() const override { return RaftMsgType::Ack; }
    Term term() const { return term_; }
    LogIndex index() const { return index_; }
    std::uint64_t value_digest() const { return value_digest_; }

    std::uint32_t wire_size() const override { return 48; }
    std::uint64_t unique_key() const override;

private:
    Term term_;
    LogIndex index_;
    std::uint64_t value_digest_;
};

/// Identical acks merged by the semantic-aggregation rule (reversible).
class AckAggregateMsg final : public RaftMessage {
public:
    AckAggregateMsg(ProcessId aggregator, Term term, LogIndex index,
                    std::uint64_t value_digest, std::vector<ProcessId> senders)
        : RaftMessage(aggregator),
          term_(term),
          index_(index),
          value_digest_(value_digest),
          senders_(std::move(senders)) {}

    RaftMsgType type() const override { return RaftMsgType::AckAggregate; }
    Term term() const { return term_; }
    LogIndex index() const { return index_; }
    std::uint64_t value_digest() const { return value_digest_; }
    const std::vector<ProcessId>& senders() const { return senders_; }

    std::uint32_t wire_size() const override {
        return 48 + 4 * static_cast<std::uint32_t>(senders_.size());
    }
    std::uint64_t unique_key() const override;

private:
    Term term_;
    LogIndex index_;
    std::uint64_t value_digest_;
    std::vector<ProcessId> senders_;
};

/// Leader's commit notice — the Decision analogue.
class CommitMsg final : public RaftMessage {
public:
    CommitMsg(ProcessId leader, Term term, LogIndex index, std::uint64_t value_digest)
        : RaftMessage(leader), term_(term), index_(index), value_digest_(value_digest) {}

    RaftMsgType type() const override { return RaftMsgType::Commit; }
    Term term() const { return term_; }
    LogIndex index() const { return index_; }
    std::uint64_t value_digest() const { return value_digest_; }

    std::uint32_t wire_size() const override { return 48; }
    std::uint64_t unique_key() const override;

private:
    Term term_;
    LogIndex index_;
    std::uint64_t value_digest_;
};

}  // namespace gossipc
