#include "raft/replica.hpp"

#include <stdexcept>

namespace gossipc {

RaftReplica::RaftReplica(const RaftConfig& config, GossipNode& gossip)
    : config_(config), gossip_(gossip) {
    if (config_.n <= 0 || config_.id < 0 || config_.id >= config_.n) {
        throw std::invalid_argument("RaftReplica: bad config");
    }
    gossip_.set_deliver(
        [this](const GossipAppMessage& msg, CpuContext& ctx) { on_deliver(msg, ctx); });
}

void RaftReplica::broadcast(RaftMessagePtr msg, CpuContext& ctx) {
    GossipAppMessage app;
    app.id = msg->unique_key();
    app.origin = config_.id;
    app.payload = std::move(msg);
    gossip_.broadcast(std::move(app), ctx);
}

void RaftReplica::submit(const Value& value, CpuContext& ctx) {
    if (is_leader()) {
        replicate(value, ctx);
    } else {
        broadcast(std::make_shared<ClientForwardMsg>(config_.id, value), ctx);
    }
}

void RaftReplica::post_submit(const Value& value) {
    gossip_.node().post([this, value](CpuContext& ctx) { submit(value, ctx); });
}

void RaftReplica::replicate(const Value& value, CpuContext& ctx) {
    if (!seen_values_.insert(value.id).second) return;  // duplicate forward
    const LogIndex index = next_index_++;
    ++counters_.appends_sent;
    broadcast(std::make_shared<AppendMsg>(config_.id, config_.term, index, value), ctx);
}

void RaftReplica::on_deliver(const GossipAppMessage& msg, CpuContext& ctx) {
    if (!msg.payload || msg.payload->kind() != BodyKind::Raft) return;
    const auto raft = std::static_pointer_cast<const RaftMessage>(msg.payload);
    switch (raft->type()) {
        case RaftMsgType::ClientForward:
            if (is_leader()) {
                replicate(static_cast<const ClientForwardMsg&>(*raft).value(), ctx);
            }
            break;
        case RaftMsgType::Append:
            handle_append(static_cast<const AppendMsg&>(*raft), ctx);
            break;
        case RaftMsgType::Ack:
            handle_ack(static_cast<const AckMsg&>(*raft), ctx);
            break;
        case RaftMsgType::AckAggregate:
            // Reversible aggregates are unpacked by the gossip layer.
            break;
        case RaftMsgType::Commit:
            handle_commit(static_cast<const CommitMsg&>(*raft), ctx);
            break;
    }
}

void RaftReplica::handle_append(const AppendMsg& msg, CpuContext& ctx) {
    if (msg.term() != config_.term) return;  // single-term regular operation
    if (msg.index() < frontier_) return;     // already committed & delivered
    slots_[msg.index()].value = msg.value();
    ++counters_.acks_sent;
    // broadcast() self-delivers our own Ack synchronously; if it completes
    // the quorum, try_deliver() erases this slot — no reference into slots_
    // may be held across the call.
    broadcast(std::make_shared<AckMsg>(config_.id, msg.term(), msg.index(),
                                       msg.value().digest()),
              ctx);
    const auto it = slots_.find(msg.index());
    if (it != slots_.end() && it->second.committed) {
        try_deliver(ctx);  // value may unblock delivery
    }
}

void RaftReplica::handle_ack(const AckMsg& msg, CpuContext& ctx) {
    if (msg.term() != config_.term || msg.index() < frontier_) return;
    Slot& slot = slots_[msg.index()];
    if (slot.committed) return;
    auto& voters = slot.acks[msg.value_digest()];
    voters.insert(msg.sender());
    if (static_cast<int>(voters.size()) >= config_.quorum()) {
        mark_committed(msg.index(), msg.value_digest(), /*via_quorum=*/true, ctx);
    }
}

void RaftReplica::handle_commit(const CommitMsg& msg, CpuContext& ctx) {
    if (msg.term() != config_.term || msg.index() < frontier_) return;
    Slot& slot = slots_[msg.index()];
    if (!slot.committed) {
        mark_committed(msg.index(), msg.value_digest(), /*via_quorum=*/false, ctx);
    }
}

void RaftReplica::mark_committed(LogIndex index, std::uint64_t digest, bool via_quorum,
                                 CpuContext& ctx) {
    Slot& slot = slots_[index];
    slot.committed = true;
    slot.committed_digest = digest;
    slot.acks.clear();
    if (via_quorum && is_leader()) {
        ++counters_.commits_sent;
        broadcast(std::make_shared<CommitMsg>(config_.id, config_.term, index, digest), ctx);
    }
    try_deliver(ctx);
}

void RaftReplica::try_deliver(CpuContext& ctx) {
    while (true) {
        const auto it = slots_.find(frontier_);
        if (it == slots_.end() || !it->second.committed) return;
        const Slot& slot = it->second;
        if (!slot.value || slot.value->digest() != slot.committed_digest) return;
        const Value value = *slot.value;
        log_.emplace(frontier_, value);
        ++counters_.committed;
        const LogIndex delivered = frontier_;
        slots_.erase(it);
        ++frontier_;
        if (commit_listener_) commit_listener_(delivered, value, ctx);
    }
}

std::optional<Value> RaftReplica::committed_value(LogIndex index) const {
    const auto it = log_.find(index);
    if (it == log_.end()) return std::nullopt;
    return it->second;
}

}  // namespace gossipc
