// Recently-seen message cache (duplication check of Figure 2).
//
// A fixed-size, 4-way set-associative cache of message identifiers with
// FIFO replacement within each set; each set stores four 32-bit tags, so a
// lookup touches a single cache line. Registering an id before delivering/
// forwarding prevents (with high probability) a message from being processed
// more than once; replacement means a very old message can be re-processed,
// which is harmless for Paxos — exactly the paper's "no actual guarantee of
// a deliver-and-forward once behavior". A ~1e-9 tag-collision chance can
// drop a legitimate first delivery, which gossip redundancy masks.
// Constant memory, O(1) operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gossip/hooks.hpp"

namespace gossipc {

class SeenCache {
public:
    /// `capacity` is rounded up to a power-of-two number of 4-entry sets;
    /// `slot_count()` reports the actual rounded-up size.
    explicit SeenCache(std::size_t capacity);

    /// Registers `id`; returns true if it was not present (i.e. the message
    /// is new and should be delivered/forwarded).
    bool insert_if_new(GossipMsgId id);

    bool contains(GossipMsgId id) const;

    /// The capacity requested at construction (occupancy metrics should use
    /// `slot_count()` — the real number of tag slots after rounding up).
    std::size_t capacity() const { return requested_; }
    std::size_t slot_count() const { return slots_.size(); }
    std::uint64_t evictions() const { return evictions_; }

private:
    static constexpr std::size_t kWays = 4;
    /// Ids are already well-mixed hashes but 0 marks an empty slot.
    static std::uint64_t key_of(GossipMsgId id) { return id == 0 ? 0x9e3779b9ULL : id; }
    static std::uint32_t tag_of(std::uint64_t h) {
        const auto t = static_cast<std::uint32_t>(h >> 32);
        return t == 0 ? 1 : t;
    }

    std::size_t requested_;
    std::size_t mask_;  ///< number of sets - 1
    std::vector<std::uint32_t> slots_;
    std::vector<std::uint8_t> cursor_;  ///< per-set FIFO replacement cursor
    std::uint64_t evictions_ = 0;
};

}  // namespace gossipc
