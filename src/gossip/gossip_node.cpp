#include "gossip/gossip_node.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "check/invariant.hpp"
#include "trace/tracer.hpp"

namespace gossipc {

std::string GossipEnvelope::describe() const {
    std::ostringstream oss;
    oss << "gossip[id=" << msg_.id << " origin=" << msg_.origin
        << (msg_.aggregated ? " aggregated" : "") << " "
        << (msg_.payload ? msg_.payload->describe() : std::string{"<null>"}) << "]";
    return oss.str();
}

std::string PullDigest::describe() const {
    std::ostringstream oss;
    oss << "pull-digest[" << ids_.size() << " ids]";
    return oss.str();
}

GossipNode::GossipNode(Node& node, std::vector<ProcessId> peers, Params params,
                       GossipHooks& hooks)
    : node_(node),
      peers_(std::move(peers)),
      params_(params),
      hooks_(hooks),
      seen_(params.seen_cache_capacity),
      rng_(Rng::derive(params.seed, 0x60551ULL ^ static_cast<std::uint64_t>(node.id()))),
      queues_(peers_.size()),
      peer_active_(peers_.size(), true) {
    node_.set_receive_handler(
        [this](const NetMessage& msg, CpuContext& ctx) { on_net_receive(msg, ctx); });
    if (params_.strategy != GossipStrategy::Push && !peers_.empty()) {
        schedule_pull_round();
    }
}

void GossipNode::broadcast(GossipAppMessage msg, CpuContext& ctx) {
    // G-AGG-1: aggregates exist only on the wire, between aggregation at a
    // sender's drain and disaggregation on receive; the application never
    // broadcasts one (it could not interpret it on delivery either).
    GC_INVARIANT(!msg.aggregated,
                 "aggregated gossip message %016llx entered the broadcast path at node %d",
                 static_cast<unsigned long long>(msg.id), node_.id());
    ++counters_.broadcasts;
    if (!seen_.insert_if_new(msg.id)) return;  // re-broadcast of a known id
    if (tracer_) {
        tracer_->record(ctx.now(), trace::Stage::Originate, node_.id(), -1, msg);
        tracer_->record(ctx.now(), trace::Stage::Deliver, node_.id(), -1, msg);
    }
    remember(msg);
    ++counters_.delivered;
    hooks_.on_deliver(msg);
    if (deliver_) deliver_(msg, ctx);
    if (params_.strategy != GossipStrategy::Pull) {
        forward(msg, /*exclude=*/-1);
    } else if (params_.pipeline) {
        ++counters_.pipelined_forwards;
        forward(msg, /*exclude=*/-1);
    }
}

void GossipNode::post_broadcast(GossipAppMessage msg) {
    node_.post([this, msg = std::move(msg)](CpuContext& ctx) { broadcast(msg, ctx); });
}

void GossipNode::on_net_receive(const NetMessage& net_msg, CpuContext& ctx) {
    if (!net_msg.body) return;
    if (net_msg.body->kind() == BodyKind::PullDigest) {
        serve_digest(static_cast<const PullDigest&>(*net_msg.body), net_msg.from, ctx);
        return;
    }
    if (net_msg.body->kind() != BodyKind::GossipEnvelope) return;  // not for us
    ++counters_.envelopes_received;
    const GossipAppMessage& wire_msg =
        static_cast<const GossipEnvelope&>(*net_msg.body).message();
    if (wire_msg.aggregated) {
        // Reversible aggregation: reconstruct the original messages and
        // process each as a regular message.
        std::vector<GossipAppMessage> originals = hooks_.disaggregate(wire_msg);
        for (auto& m : originals) {
            m.hops = wire_msg.hops;  // the originals travelled as the aggregate
            ++counters_.messages_received;
            if (tracer_) {
                tracer_->record(ctx.now(), trace::Stage::Disaggregate, node_.id(),
                                net_msg.from, m);
            }
            accept(m, net_msg.from, ctx);
        }
    } else {
        ++counters_.messages_received;
        accept(wire_msg, net_msg.from, ctx);
    }
}

void GossipNode::accept(const GossipAppMessage& msg, ProcessId received_from, CpuContext& ctx) {
    // G-AGG-1 (receive side): disaggregation must have reversed the
    // aggregation rule before a message reaches the delivery path.
    GC_INVARIANT(!msg.aggregated,
                 "aggregated gossip message %016llx reached the delivery path at node %d",
                 static_cast<unsigned long long>(msg.id), node_.id());
    if (tracer_) tracer_->record(ctx.now(), trace::Stage::Receive, node_.id(), received_from, msg);
    if (!seen_.insert_if_new(msg.id)) {
        ++counters_.duplicates;
        if (tracer_) {
            tracer_->record(ctx.now(), trace::Stage::DuplicateDrop, node_.id(),
                            received_from, msg);
        }
        return;
    }
    if (tracer_) tracer_->record(ctx.now(), trace::Stage::Deliver, node_.id(), -1, msg);
    remember(msg);
    ++counters_.delivered;
    hooks_.on_deliver(msg);
    if (deliver_) deliver_(msg, ctx);
    if (params_.strategy != GossipStrategy::Pull) {
        forward(msg, received_from);
    } else if (params_.pipeline) {
        // Pipelined anti-entropy: relay in the step that validated the
        // message rather than waiting out the round boundary. The pull
        // rounds still run and repair anything a restricted fanout missed.
        ++counters_.pipelined_forwards;
        forward(msg, received_from);
    }
}

bool GossipNode::add_peer(ProcessId peer) {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (peers_[i] != peer) continue;
        if (peer_active_[i]) return false;
        peer_active_[i] = true;
        queues_[i].pending.clear();  // stale forwards from before the churn-out
        ++counters_.peers_added;
        return true;
    }
    peers_.push_back(peer);
    queues_.emplace_back();
    peer_active_.push_back(true);
    ++counters_.peers_added;
    return true;
}

bool GossipNode::remove_peer(ProcessId peer) {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (peers_[i] != peer || !peer_active_[i]) continue;
        peer_active_[i] = false;
        queues_[i].pending.clear();
        ++counters_.peers_removed;
        return true;
    }
    return false;
}

bool GossipNode::is_peer(ProcessId peer) const {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (peers_[i] == peer && peer_active_[i]) return true;
    }
    return false;
}

std::size_t GossipNode::active_peer_count() const {
    std::size_t count = 0;
    for (const bool active : peer_active_) count += active ? 1 : 0;
    return count;
}

std::size_t GossipNode::queued_backlog() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (peer_active_[i]) total += queues_[i].pending.size();
    }
    return total;
}

void GossipNode::forward(const GossipAppMessage& msg, ProcessId exclude) {
    std::vector<std::size_t> targets;
    targets.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (peers_[i] == exclude || !peer_active_[i]) continue;
        targets.push_back(i);
    }
    if (params_.fanout > 0 && targets.size() > params_.fanout) {
        // Restricted fanout — unless adaptive widening sees enough backlog
        // to justify flooding the whole neighbourhood. The rng is consumed
        // only on the restricted path, so fanout = 0 runs stay byte-
        // identical to classic flooding.
        if (params_.adaptive_fanout && queued_backlog() >= params_.fanout_pressure) {
            ++counters_.fanout_widened;
        } else {
            for (std::size_t j = 0; j < params_.fanout; ++j) {
                // Partial Fisher-Yates: first `fanout` slots become a
                // uniform subset without shuffling the whole vector.
                const auto pick = j + static_cast<std::size_t>(rng_.uniform_int(
                    0, static_cast<std::int64_t>(targets.size() - 1 - j)));
                std::swap(targets[j], targets[pick]);
            }
            targets.resize(params_.fanout);
            ++counters_.fanout_limited;
        }
    }
    for (const std::size_t i : targets) {
        PeerQueue& q = queues_[i];
        if (q.pending.size() >= params_.peer_queue_cap) {
            ++counters_.send_queue_drops;
            if (tracer_) {
                tracer_->record(node_.simulator().now(), trace::Stage::QueueDrop,
                                node_.id(), peers_[i], msg);
            }
            continue;
        }
        if (q.pending.empty()) q.oldest_enqueued = node_.simulator().now();
        q.pending.push_back(msg);
        if (!q.drain_scheduled) {
            q.drain_scheduled = true;
            node_.post([this, i](CpuContext& ctx) { drain_peer(i, ctx); });
        } else if (params_.batch_size > 1 && q.pending.size() >= params_.batch_size) {
            // The queue filled while a batching deadline was pending: drain
            // now (the deadline drain finds an empty queue and is a no-op).
            node_.post([this, i](CpuContext& ctx) { drain_peer(i, ctx); });
        }
    }
}

void GossipNode::drain_peer(std::size_t peer_idx, CpuContext& ctx) {
    PeerQueue& q = queues_[peer_idx];
    q.drain_scheduled = false;
    if (!peer_active_[peer_idx]) {  // churned out while the drain was pending
        q.pending.clear();
        return;
    }
    if (q.pending.empty()) return;
    if (params_.batch_size > 1 && q.pending.size() < params_.batch_size) {
        // Batching: hold the queue until it fills or the delay expires.
        const SimTime deadline = q.oldest_enqueued + params_.batch_delay;
        if (ctx.now() < deadline) {
            q.drain_scheduled = true;
            node_.simulator().schedule_at(deadline, [this, peer_idx] {
                node_.post([this, peer_idx](CpuContext& c) { drain_peer(peer_idx, c); });
            });
            return;
        }
    }
    const ProcessId peer = peers_[peer_idx];
    std::vector<GossipAppMessage> pending;
    pending.swap(q.pending);
    const std::size_t before = pending.size();
    ctx.consume(params_.aggregate_cost_per_msg * static_cast<std::int64_t>(before));
    std::vector<GossipAppMessage> inputs;
    if (tracer_) inputs = pending;  // copy for the aggregation diff (traced runs only)
    std::vector<GossipAppMessage> batch = hooks_.aggregate(std::move(pending), peer);
    if (batch.size() < before) {
        counters_.aggregated_away += before - batch.size();
    }
    if (tracer_) trace_aggregation(inputs, batch, peer);
    for (const auto& m : batch) {
        send_to_peer(m, peer, ctx);
    }
}

void GossipNode::trace_aggregation(const std::vector<GossipAppMessage>& inputs,
                                   std::vector<GossipAppMessage>& outputs, ProcessId peer) {
    // Inputs whose id vanished from the output were merged into an aggregate;
    // outputs with a fresh id are the aggregates built. Pass-through batches
    // (the common case) produce no events.
    std::unordered_set<GossipMsgId> out_ids;
    for (const auto& o : outputs) out_ids.insert(o.id);
    std::unordered_set<GossipMsgId> in_ids;
    std::uint16_t merged_hops = 0;
    const SimTime now = node_.simulator().now();
    for (const auto& in : inputs) {
        in_ids.insert(in.id);
        if (out_ids.contains(in.id)) continue;
        merged_hops = std::max(merged_hops, in.hops);
        tracer_->record(now, trace::Stage::Aggregate, node_.id(), peer, in);
    }
    for (auto& out : outputs) {
        if (in_ids.contains(out.id)) continue;
        out.hops = merged_hops;  // an aggregate inherits its farthest-travelled input
        tracer_->record(now, trace::Stage::AggregateBuilt, node_.id(), peer, out);
    }
}

void GossipNode::send_to_peer(const GossipAppMessage& msg, ProcessId peer, CpuContext& ctx) {
    ctx.consume(params_.validate_cost);
    if (!hooks_.validate(msg, peer)) {
        ++counters_.filtered;
        if (tracer_) tracer_->record(ctx.now(), trace::Stage::FilterDrop, node_.id(), peer, msg);
        return;
    }
    ++counters_.envelopes_sent;
    if (tracer_) tracer_->record(ctx.now(), trace::Stage::Forward, node_.id(), peer, msg);
    GossipAppMessage out = msg;
    ++out.hops;
    node_.transmit_in_task(
        NetMessage{node_.id(), peer, std::make_shared<GossipEnvelope>(std::move(out))}, ctx);
}

void GossipNode::remember(const GossipAppMessage& msg) {
    if (params_.store_capacity == 0) return;
    store_.push_back(msg);
    if (store_.size() > params_.store_capacity) store_.pop_front();
}

void GossipNode::schedule_pull_round() {
    // Jitter the period slightly so rounds of different nodes interleave.
    const auto base = params_.pull_interval.as_nanos();
    const auto jitter = rng_.uniform_int(-base / 8, base / 8);
    node_.simulator().schedule_after(SimTime::nanos(base + jitter), [this] {
        node_.post([this](CpuContext& ctx) { run_pull_round(ctx); });
        schedule_pull_round();
    });
}

void GossipNode::run_pull_round(CpuContext& ctx) {
    std::vector<std::size_t> active;
    active.reserve(peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (peer_active_[i]) active.push_back(i);
    }
    if (active.empty()) return;
    // An empty digest is still sent: it is exactly how a node that has
    // nothing learns what it is missing.
    ++counters_.pull_rounds;
    const auto idx = active[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1))];
    std::vector<GossipMsgId> ids;
    const std::size_t count = std::min(params_.digest_max, store_.size());
    ids.reserve(count);
    for (std::size_t i = store_.size() - count; i < store_.size(); ++i) {
        ids.push_back(store_[i].id);
    }
    node_.transmit_in_task(
        NetMessage{node_.id(), peers_[idx], std::make_shared<PullDigest>(std::move(ids))}, ctx);
}

void GossipNode::serve_digest(const PullDigest& digest, ProcessId requester, CpuContext& ctx) {
    const std::unordered_set<GossipMsgId> have(digest.ids().begin(), digest.ids().end());
    for (const auto& m : store_) {
        if (have.contains(m.id)) continue;
        ctx.consume(params_.validate_cost);
        if (!hooks_.validate(m, requester)) {
            ++counters_.filtered;
            if (tracer_) {
                tracer_->record(ctx.now(), trace::Stage::FilterDrop, node_.id(), requester, m);
            }
            continue;
        }
        ++counters_.pull_served;
        ++counters_.envelopes_sent;
        if (tracer_) tracer_->record(ctx.now(), trace::Stage::Forward, node_.id(), requester, m);
        GossipAppMessage out = m;
        ++out.hops;
        node_.transmit_in_task(
            NetMessage{node_.id(), requester, std::make_shared<GossipEnvelope>(std::move(out))},
            ctx);
    }
}

}  // namespace gossipc
