#include "gossip/sliding_bloom.hpp"

#include <cmath>
#include <stdexcept>

#include "common/types.hpp"

namespace gossipc {

SlidingBloom::SlidingBloom(std::size_t expected_per_generation) {
    if (expected_per_generation == 0) {
        throw std::invalid_argument("SlidingBloom: expected_per_generation must be > 0");
    }
    // Standard sizing for p = 1%: m = -n ln p / (ln 2)^2 ~= 9.59 n, k ~= 7.
    bits_ = static_cast<std::size_t>(
        std::ceil(9.585 * static_cast<double>(expected_per_generation)));
    bits_ = std::max<std::size_t>(bits_, 64);
    hashes_ = 7;
    capacity_ = expected_per_generation;
    current_.assign((bits_ + 63) / 64, 0);
    previous_.assign((bits_ + 63) / 64, 0);
}

bool SlidingBloom::in(const std::vector<std::uint64_t>& gen, GossipMsgId id) const {
    std::uint64_t h = mix64(id);
    for (int i = 0; i < hashes_; ++i) {
        const std::size_t bit = static_cast<std::size_t>(h % bits_);
        if (!(gen[bit / 64] & (1ULL << (bit % 64)))) return false;
        h = mix64(h + 0x9e3779b97f4a7c15ULL);
    }
    return true;
}

void SlidingBloom::set(std::vector<std::uint64_t>& gen, GossipMsgId id) {
    std::uint64_t h = mix64(id);
    for (int i = 0; i < hashes_; ++i) {
        const std::size_t bit = static_cast<std::size_t>(h % bits_);
        gen[bit / 64] |= 1ULL << (bit % 64);
        h = mix64(h + 0x9e3779b97f4a7c15ULL);
    }
}

bool SlidingBloom::probably_contains(GossipMsgId id) const {
    return in(current_, id) || in(previous_, id);
}

bool SlidingBloom::insert_if_new(GossipMsgId id) {
    if (in(current_, id)) return false;
    // An id present only in `previous_` is still a duplicate, but it must be
    // refreshed into `current_` — otherwise a still-hot message survives only
    // one rotation instead of the advertised two generations.
    const bool fresh = !in(previous_, id);
    set(current_, id);
    if (++current_count_ >= capacity_) {
        previous_.swap(current_);
        std::fill(current_.begin(), current_.end(), 0);
        current_count_ = 0;
        ++rotations_;
    }
    return fresh;
}

}  // namespace gossipc
