// The gossip layer of one process (Figure 2 of the paper).
//
// Push dissemination: a locally broadcast message is delivered locally and
// enqueued to every peer's send queue; a received message is checked against
// the recently-seen cache and, if new, delivered and forwarded to every peer
// but its sender. Send routines drain per-peer queues on the node's CPU; at
// drain time the semantic hooks get their chance: aggregate() over the
// pending batch, then validate() per message.
//
// Pull and push-pull dissemination (anti-entropy rounds exchanging digests of
// recently seen messages) are provided as extensions — the paper adopts push
// but notes the techniques extend to other strategies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "gossip/hooks.hpp"
#include "gossip/seen_cache.hpp"
#include "net/node.hpp"

namespace gossipc {

namespace trace {
class Tracer;
}

/// Wire form of a gossiped application message.
class GossipEnvelope final : public MessageBody {
public:
    explicit GossipEnvelope(GossipAppMessage msg)
        : msg_(std::move(msg)),
          wire_size_(kHeaderBytes + (msg_.payload ? msg_.payload->wire_size() : 0)) {}

    const GossipAppMessage& message() const { return msg_; }

    std::uint32_t wire_size() const override { return wire_size_; }
    std::string describe() const override;
    BodyKind kind() const override { return BodyKind::GossipEnvelope; }

    static constexpr std::uint32_t kHeaderBytes = 16;

private:
    GossipAppMessage msg_;
    std::uint32_t wire_size_;  ///< memoized; bodies are immutable
};

/// Wire form of a pull-round digest: ids the requester already has.
class PullDigest final : public MessageBody {
public:
    explicit PullDigest(std::vector<GossipMsgId> ids) : ids_(std::move(ids)) {}

    const std::vector<GossipMsgId>& ids() const { return ids_; }

    std::uint32_t wire_size() const override {
        return 16 + static_cast<std::uint32_t>(ids_.size()) * 8;
    }
    std::string describe() const override;
    BodyKind kind() const override { return BodyKind::PullDigest; }

private:
    std::vector<GossipMsgId> ids_;
};

enum class GossipStrategy { Push, Pull, PushPull };

class GossipNode {
public:
    struct Params {
        /// Large enough that ids are not forgotten while their message is
        /// still in flight (forgetting causes re-forwarding storms); 32-bit
        /// tags keep this at 1MB per node.
        std::size_t seen_cache_capacity = 1 << 18;
        /// Pending messages per peer before new forwards are dropped.
        std::size_t peer_queue_cap = 8192;
        /// CPU cost of one validate() evaluation.
        SimTime validate_cost = SimTime::nanos(200);
        /// CPU cost of considering one pending message for aggregation.
        SimTime aggregate_cost_per_msg = SimTime::nanos(150);
        GossipStrategy strategy = GossipStrategy::Push;
        /// Anti-entropy round period for Pull/PushPull.
        SimTime pull_interval = SimTime::millis(25);
        /// Recent-message store used to answer pull rounds.
        std::size_t store_capacity = 4096;
        /// Max ids advertised per digest.
        std::size_t digest_max = 1024;
        /// Network-level batching (for the aggregation-vs-batching ablation
        /// of Section 3.2): a send queue is drained only once it holds
        /// `batch_size` messages or the oldest has waited `batch_delay`.
        /// Unlike semantic aggregation this postpones sends at low load.
        std::size_t batch_size = 1;  ///< 1 = batching disabled
        SimTime batch_delay = SimTime::millis(5);
        /// Pipelined dissemination (DESIGN.md §14): under the Pull strategy
        /// a validated message is forwarded in the same simulator step it
        /// was accepted, instead of parking in the store until the next
        /// anti-entropy round answers a digest. Push already pipelines;
        /// the anti-entropy rounds keep running as a repair backstop.
        bool pipeline = false;
        /// Forward each message to this many randomly chosen active peers
        /// instead of all of them. 0 = every peer (classic flooding).
        std::size_t fanout = 0;
        /// Adaptive fanout: when the total send-queue backlog reaches
        /// `fanout_pressure` pending messages, a restricted fanout widens
        /// back to every peer — under load, relays spread work across the
        /// whole neighbourhood instead of funnelling it through few links.
        bool adaptive_fanout = false;
        std::size_t fanout_pressure = 64;
        std::uint64_t seed = 1;
    };

    struct Counters {
        std::uint64_t broadcasts = 0;          ///< local broadcasts
        std::uint64_t envelopes_received = 0;  ///< gossip envelopes processed
        std::uint64_t messages_received = 0;   ///< after disaggregation
        std::uint64_t duplicates = 0;          ///< dropped by the seen cache
        std::uint64_t delivered = 0;           ///< handed to the application
        std::uint64_t filtered = 0;            ///< dropped by validate()
        std::uint64_t aggregated_away = 0;     ///< pending msgs replaced by aggregates
        std::uint64_t envelopes_sent = 0;      ///< envelopes transmitted to peers
        std::uint64_t send_queue_drops = 0;    ///< forwards dropped (peer queue full)
        std::uint64_t pull_rounds = 0;
        std::uint64_t pull_served = 0;         ///< messages sent in response to digests
        std::uint64_t peers_added = 0;         ///< overlay churn: edges (re-)attached
        std::uint64_t peers_removed = 0;       ///< overlay churn: edges detached
        std::uint64_t pipelined_forwards = 0;  ///< Pull-mode same-step forwards
        std::uint64_t fanout_limited = 0;      ///< forwards restricted to a subset
        std::uint64_t fanout_widened = 0;      ///< restrictions lifted under pressure
    };

    using DeliverFn = std::function<void(const GossipAppMessage&, CpuContext&)>;

    /// `hooks` must outlive the node. Installs itself as the node's receive
    /// handler and, for Pull/PushPull, starts the anti-entropy timer.
    GossipNode(Node& node, std::vector<ProcessId> peers, Params params, GossipHooks& hooks);

    /// Sets the application delivery callback (the consensus protocol's
    /// "delivery queue" consumer).
    void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

    /// Attaches the message-lifecycle tracer (null detaches). Every recording
    /// site is guarded by the null check, so an untraced node pays nothing.
    void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

    /// Broadcasts from within a running CPU task (e.g. a protocol handler).
    void broadcast(GossipAppMessage msg, CpuContext& ctx);

    /// Broadcasts from outside the CPU (e.g. a client submission event).
    void post_broadcast(GossipAppMessage msg);

    /// Overlay churn (fault engine): attaches a peer mid-run, or re-activates
    /// a previously removed one. Returns false if already an active peer.
    /// The caller must ensure the network link is allowed.
    bool add_peer(ProcessId peer);
    /// Detaches a peer mid-run; its pending forwards are dropped. Returns
    /// false if not an active peer. Slots are tombstoned, not erased, so
    /// in-flight drain tasks keep their indices.
    bool remove_peer(ProcessId peer);
    bool is_peer(ProcessId peer) const;
    std::size_t active_peer_count() const;

    const Counters& counters() const { return counters_; }
    /// All peer slots ever attached, including churned-out (inactive) ones;
    /// use is_peer() for current adjacency.
    const std::vector<ProcessId>& peers() const { return peers_; }
    Node& node() { return node_; }

private:
    void on_net_receive(const NetMessage& msg, CpuContext& ctx);
    void accept(const GossipAppMessage& msg, ProcessId received_from, CpuContext& ctx);
    void forward(const GossipAppMessage& msg, ProcessId exclude);
    /// Total pending messages across active peer queues (fanout pressure).
    std::size_t queued_backlog() const;
    void drain_peer(std::size_t peer_idx, CpuContext& ctx);
    void send_to_peer(const GossipAppMessage& msg, ProcessId peer, CpuContext& ctx);
    void trace_aggregation(const std::vector<GossipAppMessage>& inputs,
                           std::vector<GossipAppMessage>& outputs, ProcessId peer);
    void remember(const GossipAppMessage& msg);
    void schedule_pull_round();
    void run_pull_round(CpuContext& ctx);
    void serve_digest(const PullDigest& digest, ProcessId requester, CpuContext& ctx);

    Node& node_;
    std::vector<ProcessId> peers_;
    Params params_;
    GossipHooks& hooks_;
    DeliverFn deliver_;
    trace::Tracer* tracer_ = nullptr;
    SeenCache seen_;
    Rng rng_;

    struct PeerQueue {
        std::vector<GossipAppMessage> pending;
        bool drain_scheduled = false;
        SimTime oldest_enqueued = SimTime::zero();  ///< batching deadline base
    };
    std::vector<PeerQueue> queues_;      // parallel to peers_
    std::vector<bool> peer_active_;      // parallel to peers_ (churn tombstones)

    // Recent messages kept to answer pull digests.
    std::deque<GossipAppMessage> store_;

    Counters counters_;
};

}  // namespace gossipc
