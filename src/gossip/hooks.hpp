// The gossip layer's semantic-extension interface (Section 3.3 of the paper).
//
// The consensus protocol controls the gossip layer by implementing:
//   validate(Message, Peer) -> bool          (semantic filtering)
//   aggregate(Message[], Peer) -> Message[]  (semantic aggregation)
//   disaggregate(Message) -> Message[]       (reversible-rule reconstruction)
// Default implementations are pass-through, which yields classic gossip.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace gossipc {

/// Unique message identifier, defined by the application "to prevent hash
/// collisions" (Section 3.3); keys the recently-seen cache.
using GossipMsgId = std::uint64_t;

/// A message as seen by the gossip layer: an application payload plus the
/// gossip-relevant metadata.
struct GossipAppMessage {
    GossipMsgId id = 0;
    ProcessId origin = -1;     ///< process that broadcast (or aggregated) it
    BodyPtr payload;           ///< immutable application body
    bool aggregated = false;   ///< built by an aggregation rule
    /// Network hops travelled so far: 0 at broadcast, incremented per
    /// transmission; disaggregated messages inherit their aggregate's count.
    std::uint16_t hops = 0;
};

class GossipHooks {
public:
    virtual ~GossipHooks() = default;

    /// Invoked by a Send routine when it is ready to send `msg` to `peer`.
    /// Returning false filters the message out (it is dropped for this peer).
    virtual bool validate(const GossipAppMessage& msg, ProcessId peer) {
        (void)msg;
        (void)peer;
        return true;
    }

    /// Invoked by a Send routine with the pending messages for `peer`.
    /// The returned messages (original and/or aggregated) are sent in order.
    virtual std::vector<GossipAppMessage> aggregate(std::vector<GossipAppMessage> pending,
                                                    ProcessId peer) {
        (void)peer;
        return pending;
    }

    /// Invoked when a message marked as aggregated is received. For
    /// reversible rules, returns the reconstructed original messages; they
    /// are then processed as regular messages (seen-cache checked, delivered,
    /// forwarded). Non-aggregated input must be returned unchanged.
    virtual std::vector<GossipAppMessage> disaggregate(const GossipAppMessage& msg) {
        return {msg};
    }

    /// Observation point: every message delivered to the application also
    /// passes here, letting a hook track protocol state without touching the
    /// consensus implementation.
    virtual void on_deliver(const GossipAppMessage& msg) { (void)msg; }
};

/// Classic gossip: all hooks are pass-through.
class PassThroughHooks final : public GossipHooks {};

}  // namespace gossipc
