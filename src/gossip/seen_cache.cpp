#include "gossip/seen_cache.hpp"

#include <stdexcept>

namespace gossipc {

SeenCache::SeenCache(std::size_t capacity) : requested_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SeenCache: capacity must be > 0");
    std::size_t sets = 1;
    while (sets * kWays < capacity) sets <<= 1;
    mask_ = sets - 1;
    slots_.assign(sets * kWays, 0);
    cursor_.assign(sets, 0);
}

bool SeenCache::insert_if_new(GossipMsgId id) {
    const std::uint64_t h = mix64(key_of(id));
    const std::uint32_t tag = tag_of(h);
    const std::size_t base = (h & mask_) * kWays;
    for (std::size_t w = 0; w < kWays; ++w) {
        if (slots_[base + w] == tag) return false;
    }
    const std::size_t set = base / kWays;
    std::uint8_t& cur = cursor_[set];
    if (slots_[base + cur] != 0) ++evictions_;
    slots_[base + cur] = tag;
    cur = static_cast<std::uint8_t>((cur + 1) % kWays);
    return true;
}

bool SeenCache::contains(GossipMsgId id) const {
    const std::uint64_t h = mix64(key_of(id));
    const std::uint32_t tag = tag_of(h);
    const std::size_t base = (h & mask_) * kWays;
    for (std::size_t w = 0; w < kWays; ++w) {
        if (slots_[base + w] == tag) return true;
    }
    return false;
}

}  // namespace gossipc
