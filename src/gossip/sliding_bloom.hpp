// Sliding Bloom filter — the alternative duplicate-suppression structure the
// paper points to (Naor & Yogev, 2013). Two generations of plain Bloom
// filters: inserts go to the current generation; membership checks consult
// both; when the current generation fills up, the old one is discarded.
// Constant memory; false positives cause a (rare) legitimate message to be
// treated as duplicate, which gossip redundancy masks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gossip/hooks.hpp"

namespace gossipc {

class SlidingBloom {
public:
    /// `expected_per_generation` items per generation at ~1% false-positive
    /// rate for the standard k/m sizing.
    explicit SlidingBloom(std::size_t expected_per_generation);

    /// Returns true if `id` was (probably) not seen yet, inserting it.
    bool insert_if_new(GossipMsgId id);

    bool probably_contains(GossipMsgId id) const;

    std::size_t bits_per_generation() const { return bits_; }
    std::uint64_t generation_rotations() const { return rotations_; }

private:
    bool in(const std::vector<std::uint64_t>& gen, GossipMsgId id) const;
    void set(std::vector<std::uint64_t>& gen, GossipMsgId id);

    std::size_t bits_;
    int hashes_;
    std::size_t capacity_;
    std::size_t current_count_ = 0;
    std::uint64_t rotations_ = 0;
    std::vector<std::uint64_t> current_;
    std::vector<std::uint64_t> previous_;
};

}  // namespace gossipc
