// Result serialization: JSON and CSV renderings of an experiment's
// configuration and outcome, for scripting around the CLI runner and for
// archiving sweeps.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace gossipc {

/// JSON object with the configuration and every reported metric.
std::string to_json(const ExperimentConfig& config, const ExperimentResult& result);

/// Header line matching to_csv_row's columns.
std::string csv_header();

/// One CSV row (no trailing newline).
std::string to_csv_row(const ExperimentConfig& config, const ExperimentResult& result);

}  // namespace gossipc
