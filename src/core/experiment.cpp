#include "core/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include <fstream>

#include "check/failover_invariants.hpp"
#include "check/paxos_invariants.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/message.hpp"
#include "wire/codec.hpp"

namespace gossipc {

const char* setup_name(Setup s) {
    switch (s) {
        case Setup::Baseline: return "Baseline";
        case Setup::Gossip: return "Gossip";
        case Setup::SemanticGossip: return "SemanticGossip";
    }
    return "?";
}

Deployment::Deployment(const ExperimentConfig& config) : config_(config) {
    if (config.n < 3) throw std::invalid_argument("Deployment: n must be >= 3");
    if (config.groups < 1 || config.groups > static_cast<int>(wire::kMaxGroupFrontiers)) {
        throw std::invalid_argument("Deployment: groups out of range");
    }
    sim_ = std::make_unique<Simulator>();

    Network::Params net_params;
    net_params.node = config.node_params;
    net_params.bandwidth_bytes_per_us = config.bandwidth_bytes_per_us;
    net_params.jitter_frac = config.jitter_frac;
    net_params.seed = config.seed;
    network_ = std::make_unique<Network>(*sim_, LatencyModel::aws(), config.n, net_params);

    const bool gossip_setup = config.setup != Setup::Baseline;
    if (gossip_setup) {
        overlay_ = config.overlay ? *config.overlay
                                  : make_connected_overlay(config.n, config.overlay_seed);
        if (overlay_->size() != config.n) {
            throw std::invalid_argument("Deployment: overlay size != n");
        }
        for (const auto& [a, b] : overlay_->edges()) network_->allow_link(a, b);
    } else if (config.failover || config.groups > 1) {
        // Baseline + failover: the star around process 0 cannot survive the
        // hub's death (a successor could not reach anyone), so failover runs
        // use the full mesh the paper's Baseline implicitly assumes the
        // datacenter fabric to provide. Multi-group runs need it too: rank
        // placement puts group coordinators on every process.
        network_->allow_all_links();
    } else {
        // Baseline: the coordinator communicates directly with every process
        // (fully connected star; Section 4.1).
        for (ProcessId p = 1; p < config.n; ++p) network_->allow_link(0, p);
    }

    if (config.loss_rate > 0.0) network_->set_uniform_loss(config.loss_rate);

    for (ProcessId id = 0; id < config.n; ++id) {
        PaxosConfig pc;
        pc.n = config.n;
        pc.id = id;
        pc.coordinator = 0;
        pc.timeouts_enabled = config.timeouts_enabled;
        pc.seed = config.seed;
        pc.retransmit_jitter_max = config.retransmit_jitter_max;
        pc.failover_enabled = config.failover;
        pc.heartbeat_interval = config.heartbeat_interval;
        // Semantic filtering drops redundant Phase 2b en route, so origin
        // traffic is not evidence of remote audibility: a busy acceptor
        // would suppress its heartbeats yet look dead three hops away.
        pc.heartbeat_piggyback = config.setup != Setup::SemanticGossip;
        pc.suspect_after = config.suspect_after;
        pc.detector_sweep_interval = config.detector_sweep_interval;
        pc.suspicion_jitter_max = config.suspicion_jitter_max;
        pc.batch_size = config.batch_size;
        pc.batch_delay = config.batch_delay;
        pc.pending_cap = config.pending_cap;

        if (gossip_setup) {
            if (config.setup == Setup::SemanticGossip) {
                hooks_.push_back(
                    std::make_unique<PaxosSemantics>(id, pc.quorum(), config.semantic));
            } else {
                hooks_.push_back(std::make_unique<PassThroughHooks>());
            }
            GossipNode::Params gp = config.gossip_params;
            gp.seed = config.seed;
            gp.strategy = config.strategy;
            gp.pipeline = config.pipeline;
            gp.fanout = config.fanout;
            gp.adaptive_fanout = config.adaptive_fanout;
            gossip_nodes_.push_back(std::make_unique<GossipNode>(
                network_->node(id), overlay_->neighbors(id), gp, *hooks_.back()));
            transports_.push_back(std::make_unique<GossipTransport>(*gossip_nodes_.back()));
        } else {
            transports_.push_back(std::make_unique<DirectTransport>(*network_, id));
        }
        shards_.push_back(
            std::make_unique<group::GroupShard>(pc, *transports_.back(), config.groups));
        for (GroupId g = 0; g < config.groups; ++g) {
            const bool tag_group = config.groups > 1;
            shards_.back()->process(g).set_failover_listener(
                [this, id, g, tag_group](FailoverEvent event, ProcessId subject,
                                         Round round, CpuContext& ctx) {
                    std::ostringstream line;
                    line << ctx.now().as_nanos() << ' ';
                    switch (event) {
                        case FailoverEvent::Suspect:
                            line << "suspect p" << subject << " by p" << id;
                            break;
                        case FailoverEvent::Restore:
                            line << "restore p" << subject << " by p" << id;
                            break;
                        case FailoverEvent::Takeover:
                            line << "takeover p" << id << " round " << round;
                            break;
                        case FailoverEvent::StepDown:
                            line << "step-down p" << id << " round " << round << " to p"
                                 << subject;
                            break;
                    }
                    // Group-stamped only in sharded runs so single-group
                    // fault logs stay byte-identical with pre-group replays.
                    if (tag_group) line << " g" << g;
                    failover_log_.push_back(line.str());
                });
        }
    }

    if (config.trace || !config.trace_jsonl_path.empty()) {
        tracer_ = std::make_unique<trace::Tracer>(config.trace_capacity);
        // The probe classifies Paxos bodies so trace events carry the message
        // type and consensus instance without the trace layer knowing Paxos.
        tracer_->set_payload_probe([](const MessageBody& body) {
            trace::PayloadInfo info;
            if (body.kind() != BodyKind::Paxos) return info;
            const auto& pm = static_cast<const PaxosMessage&>(body);
            info.type = static_cast<std::int16_t>(pm.type());
            info.type_name = paxos_msg_type_name(pm.type());
            info.group = pm.group();
            switch (pm.type()) {
                case PaxosMsgType::Phase2a:
                    info.instance = static_cast<const Phase2aMsg&>(pm).instance();
                    break;
                case PaxosMsgType::Phase2b:
                    info.instance = static_cast<const Phase2bMsg&>(pm).instance();
                    break;
                case PaxosMsgType::Phase2bAggregate:
                    info.instance = static_cast<const Phase2bAggregateMsg&>(pm).instance();
                    break;
                case PaxosMsgType::Decision:
                    info.instance = static_cast<const DecisionMsg&>(pm).instance();
                    break;
                case PaxosMsgType::LearnRequest:
                    info.instance = static_cast<const LearnRequestMsg&>(pm).instance();
                    break;
                case PaxosMsgType::GroupBatch:
                    // Spans groups by construction: joinable per entry, not
                    // per envelope.
                    info.group = -1;
                    break;
                case PaxosMsgType::ClientValue:
                case PaxosMsgType::Phase1a:
                case PaxosMsgType::Phase1b:
                case PaxosMsgType::Heartbeat:
                    // Not bound to a single consensus instance; traced with
                    // the type tag only.
                    break;
            }
            return info;
        });
        for (auto& g : gossip_nodes_) g->set_tracer(tracer_.get());
        for (PaxosProcess* p : process_ptrs()) p->set_tracer(tracer_.get());
    }

#if GC_ENABLE_INVARIANTS
    // Always-on correctness observer (debug/sanitizer builds): Paxos safety
    // invariants are re-checked continuously while the experiment runs.
    if (config.invariant_probe_events > 0) {
        invariants_ = std::make_unique<check::InvariantChecker>();
        // Each consensus group is an independent Paxos instance space, so
        // agreement/acceptor/failover checks register per group over that
        // group's process on every node.
        std::vector<check::PaxosCheckHandles> handles;
        for (GroupId g = 0; g < config.groups; ++g) {
            std::vector<const Learner*> learners;
            std::vector<const Acceptor*> acceptors;
            std::vector<const PaxosProcess*> procs;
            for (auto& s : shards_) {
                learners.push_back(&s->process(g).learner());
                acceptors.push_back(&s->process(g).acceptor());
                procs.push_back(&s->process(g));
            }
            handles.push_back(check::register_paxos_checks(
                *invariants_, std::move(learners), std::move(acceptors)));
            check::register_failover_checks(*invariants_, std::move(procs));
        }
        forget_monitor_ = [handles = std::move(handles)](std::size_t id) {
            for (const auto& h : handles) h.forget_process(id);
        };
        sim_->set_probe(config.invariant_probe_events, [this] { invariants_->run_all(); });
    }
#endif

    // Fault engine: merge the explicit schedule with a generated chaos
    // schedule (if any) and arm the injector. Armed before the workload so
    // fault events land in the queue ahead of same-instant protocol traffic.
    FaultSchedule schedule = config.faults;
    if (config.chaos) {
        const std::uint64_t cseed = config.chaos_seed != 0 ? config.chaos_seed : config.seed;
        schedule.merge(generate_chaos(config.n, /*coordinator=*/0, *config.chaos, cseed,
                                      overlay_ ? &*overlay_ : nullptr, config.groups));
    }
    if (!schedule.empty()) {
        FaultInjector::Hooks hooks;
        hooks.gossip_node = [this](ProcessId p) { return gossip_node(p); };
        hooks.wipe_state = [this](ProcessId p) { wipe_process_state(p); };
        hooks.overlay = overlay_ ? &*overlay_ : nullptr;
        injector_ = std::make_unique<FaultInjector>(*sim_, *network_, std::move(schedule),
                                                    std::move(hooks));
        injector_->arm();
    }

    Workload::Params wp;
    wp.total_rate = config.total_rate;
    wp.num_clients = config.num_clients;
    wp.value_size = config.value_size;
    wp.warmup = config.warmup;
    wp.measure = config.measure;
    wp.drain = config.drain;
    wp.seed = config.seed;
    std::vector<std::vector<PaxosProcess*>> hosts;
    hosts.reserve(shards_.size());
    for (auto& s : shards_) {
        std::vector<PaxosProcess*> node;
        node.reserve(static_cast<std::size_t>(config.groups));
        for (GroupId g = 0; g < config.groups; ++g) node.push_back(&s->process(g));
        hosts.push_back(std::move(node));
    }
    workload_ = std::make_unique<Workload>(*sim_, std::move(hosts), LatencyModel::aws(), wp);
}

std::vector<PaxosProcess*> Deployment::process_ptrs() {
    std::vector<PaxosProcess*> out;
    out.reserve(shards_.size() * static_cast<std::size_t>(config_.groups));
    for (auto& s : shards_) {
        for (GroupId g = 0; g < config_.groups; ++g) out.push_back(&s->process(g));
    }
    return out;
}

GossipNode* Deployment::gossip_node(ProcessId id) {
    if (gossip_nodes_.empty()) return nullptr;
    return gossip_nodes_.at(static_cast<std::size_t>(id)).get();
}

void Deployment::wipe_process_state(ProcessId id) {
    auto& shard = *shards_.at(static_cast<std::size_t>(id));
    for (GroupId g = 0; g < config_.groups; ++g) shard.process(g).wipe_state();
    if (forget_monitor_) forget_monitor_(static_cast<std::size_t>(id));
}

PaxosSemantics* Deployment::semantics(ProcessId id) {
    if (config_.setup != Setup::SemanticGossip) return nullptr;
    return static_cast<PaxosSemantics*>(hooks_.at(static_cast<std::size_t>(id)).get());
}

void Deployment::start_processes() {
    for (auto& s : shards_) s->post_start();
}

MessageStats Deployment::message_stats() const {
    MessageStats ms;
    for (ProcessId id = 0; id < config_.n; ++id) {
        const auto& nc = network_->node(id).counters();
        ms.net_arrivals += nc.arrivals;
        ms.net_sent += nc.sent;
        ms.net_loss_drops += nc.loss_drops;
        ms.net_queue_drops += nc.queue_drops;
        ms.bytes_sent += nc.bytes_sent;
    }
    ms.coordinator_arrivals = network_->node(0).counters().arrivals;
    for (const auto& g : gossip_nodes_) {
        const auto& gc = g->counters();
        ms.gossip_envelopes_received += gc.envelopes_received;
        ms.gossip_messages_received += gc.messages_received;
        ms.gossip_duplicates += gc.duplicates;
        ms.gossip_delivered += gc.delivered;
        ms.gossip_filtered += gc.filtered;
        ms.gossip_aggregated_away += gc.aggregated_away;
        ms.gossip_send_queue_drops += gc.send_queue_drops;
    }
    return ms;
}

ExperimentResult Deployment::collect() {
    if (invariants_) invariants_->run_all();  // final whole-run safety check
    ExperimentResult result;
    result.workload = workload_->result();
    result.messages = message_stats();
    if (overlay_) {
        result.overlay = analyze_overlay(*overlay_);
        result.median_rtt = median_rtt_from_coordinator(*overlay_, LatencyModel::aws());
    }
    if (config_.setup == Setup::SemanticGossip) {
        for (auto& h : hooks_) {
            const auto& st = static_cast<PaxosSemantics&>(*h).stats();
            result.semantic.filtered_phase2b += st.filtered_phase2b;
            result.semantic.aggregates_built += st.aggregates_built;
            result.semantic.messages_merged += st.messages_merged;
            result.semantic.disaggregations += st.disaggregations;
            result.semantic.cross_group_batches += st.cross_group_batches;
            result.semantic.cross_group_merged += st.cross_group_merged;
        }
    }
    result.decisions_at_coordinator = shards_.front()->process(0).learner().delivered_count();
    result.group_decided.reserve(static_cast<std::size_t>(config_.groups));
    for (GroupId g = 0; g < config_.groups; ++g) {
        const ProcessId home = group::placement_coordinator(g, config_.n);
        result.group_decided.push_back(
            shards_.at(static_cast<std::size_t>(home))->process(g).learner().delivered_count());
    }
    for (const PaxosProcess* p : process_ptrs()) {
        result.failover.takeovers += p->counters().takeovers;
        result.failover.step_downs += p->counters().step_downs;
    }
    // Detector counters per node, not per process: a sharded node's groups
    // share one detector, which must not be multi-counted.
    for (const auto& s : shards_) {
        if (const FailureDetector* d = s->detector()) {
            result.failover.heartbeats_sent += d->counters().heartbeats_sent;
            result.failover.heartbeats_suppressed += d->counters().heartbeats_suppressed;
            result.failover.suspicions += d->counters().suspicions;
            result.failover.restores += d->counters().restores;
        }
    }
    if (injector_) {
        result.fault_log = injector_->log();
        result.faults_injected = injector_->counters().applied;
    }
    if (!failover_log_.empty()) {
        // Interleave failover events with injected faults by timestamp; the
        // sort is stable so same-instant events keep their emission order.
        result.fault_log.insert(result.fault_log.end(), failover_log_.begin(),
                                failover_log_.end());
        std::stable_sort(result.fault_log.begin(), result.fault_log.end(),
                         [](const std::string& a, const std::string& b) {
                             return std::strtoll(a.c_str(), nullptr, 10) <
                                    std::strtoll(b.c_str(), nullptr, 10);
                         });
    }
    fill_metrics(result);
    result.metrics = registry_.snapshot();
    if (tracer_ && !config_.trace_jsonl_path.empty()) {
        std::ofstream os(config_.trace_jsonl_path);
        tracer_->export_jsonl(os);
    }
    return result;
}

void Deployment::fill_metrics(const ExperimentResult& result) {
    // set() (not add()) throughout so a repeated collect() stays idempotent.
    const auto set = [this](const char* name, std::uint64_t v) {
        registry_.counter(name).set(v);
    };

    const Workload::Result& w = result.workload;
    set("workload.submitted", w.submitted);
    set("workload.submitted_in_window", w.submitted_in_window);
    set("workload.completed", w.completed);
    set("workload.not_ordered", w.not_ordered);
    registry_.gauge("workload.throughput").set(w.throughput);
    registry_.gauge("workload.offered_load").set(w.offered_load);
    Histogram& latencies = registry_.histogram("workload.latency_ms");
    latencies.clear();
    latencies.merge(w.latencies);

    const MessageStats& ms = result.messages;
    set("net.arrivals", ms.net_arrivals);
    set("net.sent", ms.net_sent);
    set("net.loss_drops", ms.net_loss_drops);
    set("net.queue_drops", ms.net_queue_drops);
    set("net.bytes_sent", ms.bytes_sent);
    set("net.coordinator_arrivals", ms.coordinator_arrivals);

    GossipNode::Counters gc;
    for (const auto& g : gossip_nodes_) {
        const auto& c = g->counters();
        gc.broadcasts += c.broadcasts;
        gc.envelopes_received += c.envelopes_received;
        gc.messages_received += c.messages_received;
        gc.duplicates += c.duplicates;
        gc.delivered += c.delivered;
        gc.filtered += c.filtered;
        gc.aggregated_away += c.aggregated_away;
        gc.envelopes_sent += c.envelopes_sent;
        gc.send_queue_drops += c.send_queue_drops;
        gc.pull_rounds += c.pull_rounds;
        gc.pull_served += c.pull_served;
        gc.peers_added += c.peers_added;
        gc.peers_removed += c.peers_removed;
        gc.pipelined_forwards += c.pipelined_forwards;
        gc.fanout_limited += c.fanout_limited;
        gc.fanout_widened += c.fanout_widened;
    }
    set("gossip.broadcasts", gc.broadcasts);
    set("gossip.envelopes_received", gc.envelopes_received);
    set("gossip.envelopes_sent", gc.envelopes_sent);
    set("gossip.messages_received", gc.messages_received);
    set("gossip.duplicates", gc.duplicates);
    set("gossip.delivered", gc.delivered);
    set("gossip.filtered", gc.filtered);
    set("gossip.aggregated_away", gc.aggregated_away);
    set("gossip.send_queue_drops", gc.send_queue_drops);
    set("gossip.pull_rounds", gc.pull_rounds);
    set("gossip.pull_served", gc.pull_served);

    const std::vector<PaxosProcess*> all_processes = process_ptrs();
    PaxosProcess::Counters pc;
    for (const PaxosProcess* p : all_processes) {
        const auto& c = p->counters();
        pc.values_submitted += c.values_submitted;
        pc.messages_handled += c.messages_handled;
        pc.learn_requests_sent += c.learn_requests_sent;
        pc.learn_requests_answered += c.learn_requests_answered;
        pc.value_retransmissions += c.value_retransmissions;
        for (std::size_t t = 0; t < PaxosProcess::Counters::kNumMsgTypes; ++t) {
            pc.handled_by_type[t] += c.handled_by_type[t];
        }
    }
    Coordinator::Counters cc;
    for (const PaxosProcess* p : all_processes) {
        if (const Coordinator* coord = p->coordinator()) {
            const auto& c = coord->counters();
            cc.values_shed += c.values_shed;
            cc.batches_proposed += c.batches_proposed;
            cc.batched_values += c.batched_values;
            cc.timer_flushes += c.timer_flushes;
        }
    }
    set("paxos.values_shed", cc.values_shed);
    set("paxos.batches_proposed", cc.batches_proposed);
    set("paxos.batched_values", cc.batched_values);
    set("paxos.batch_timer_flushes", cc.timer_flushes);
    set("gossip.pipelined_forwards", gc.pipelined_forwards);
    set("gossip.fanout_limited", gc.fanout_limited);
    set("gossip.fanout_widened", gc.fanout_widened);

    set("paxos.values_submitted", pc.values_submitted);
    set("paxos.messages_handled", pc.messages_handled);
    set("paxos.learn_requests_sent", pc.learn_requests_sent);
    set("paxos.learn_requests_answered", pc.learn_requests_answered);
    set("paxos.value_retransmissions", pc.value_retransmissions);
    set("paxos.decisions_at_coordinator", result.decisions_at_coordinator);
    static constexpr const char* kHandledNames[PaxosProcess::Counters::kNumMsgTypes] = {
        "paxos.handled.client_value",      "paxos.handled.phase1a",
        "paxos.handled.phase1b",           "paxos.handled.phase2a",
        "paxos.handled.phase2b",           "paxos.handled.phase2b_aggregate",
        "paxos.handled.decision",          "paxos.handled.learn_request",
        "paxos.handled.heartbeat",         "paxos.handled.group_batch"};
    for (std::size_t t = 0; t < PaxosProcess::Counters::kNumMsgTypes; ++t) {
        set(kHandledNames[t], pc.handled_by_type[t]);
    }

    set("semantic.filtered_phase2b", result.semantic.filtered_phase2b);
    set("semantic.aggregates_built", result.semantic.aggregates_built);
    set("semantic.messages_merged", result.semantic.messages_merged);
    set("semantic.disaggregations", result.semantic.disaggregations);
    set("semantic.cross_group_batches", result.semantic.cross_group_batches);
    set("semantic.cross_group_merged", result.semantic.cross_group_merged);

    // Multi-group sharding (DESIGN.md §15): dispatcher activity plus one
    // decided/submitted/takeovers triple per group under paxos.g<id>.*, with
    // an aggregate rollup over all groups.
    group::GroupDispatcher::Counters dc;
    for (const auto& s : shards_) {
        const auto& c = s->dispatcher().counters();
        dc.routed += c.routed;
        dc.heartbeats_fanned += c.heartbeats_fanned;
        dc.unroutable += c.unroutable;
    }
    set("group.routed", dc.routed);
    set("group.heartbeats_fanned", dc.heartbeats_fanned);
    set("group.unroutable", dc.unroutable);
    set("paxos.groups", static_cast<std::uint64_t>(config_.groups));
    std::uint64_t decided_total = 0;
    std::uint64_t decided_min = ~0ULL;
    for (GroupId g = 0; g < config_.groups; ++g) {
        const std::uint64_t decided =
            result.group_decided.at(static_cast<std::size_t>(g));
        std::uint64_t submitted = 0;
        std::uint64_t takeovers = 0;
        for (const auto& s : shards_) {
            submitted += s->process(g).counters().values_submitted;
            takeovers += s->process(g).counters().takeovers;
        }
        const std::string prefix = "paxos.g" + std::to_string(g);
        registry_.counter(prefix + ".decided").set(decided);
        registry_.counter(prefix + ".submitted").set(submitted);
        registry_.counter(prefix + ".takeovers").set(takeovers);
        decided_total += decided;
        decided_min = std::min(decided_min, decided);
    }
    set("paxos.groups.decided_total", decided_total);
    set("paxos.groups.decided_min", decided_min);

    set("failover.heartbeats_sent", result.failover.heartbeats_sent);
    set("failover.heartbeats_suppressed", result.failover.heartbeats_suppressed);
    set("failover.suspicions", result.failover.suspicions);
    set("failover.restores", result.failover.restores);
    set("failover.takeovers", result.failover.takeovers);
    set("failover.step_downs", result.failover.step_downs);
    set("fault.injected", result.faults_injected);

    set("sim.events", sim_->events_executed());
    set("sim.deliveries", sim_->deliveries_executed());
    set("sim.callbacks", sim_->callbacks_executed());
    set("sim.faults", sim_->faults_executed());
    registry_.gauge("sim.queue_depth").set(static_cast<double>(sim_->pending_events()));
    registry_.gauge("sim.queue_depth_max")
        .set(static_cast<double>(sim_->max_pending_events()));

    if (tracer_) {
        set("trace.recorded", tracer_->recorded());
        set("trace.evicted", tracer_->evicted());
    }
}

ExperimentResult Deployment::run() {
    start_processes();
    workload_->start();
    sim_->run_until(workload_->total_duration());
    return collect();
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
    Deployment deployment(config);
    return deployment.run();
}

}  // namespace gossipc
