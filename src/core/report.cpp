#include "core/report.hpp"

#include <sstream>

namespace gossipc {
namespace {

const char* strategy_name(GossipStrategy s) {
    switch (s) {
        case GossipStrategy::Push: return "push";
        case GossipStrategy::Pull: return "pull";
        case GossipStrategy::PushPull: return "push-pull";
    }
    return "?";
}

/// Minimal JSON string escaping; fault-log lines are ASCII but quotes and
/// backslashes must not break the document.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/// Looks one metric up in the result's registry snapshot (0 when absent, so
/// rows built from results without metrics stay well-formed).
std::uint64_t metric_count(const ExperimentResult& result, const std::string& name) {
    for (const auto& s : result.metrics) {
        if (s.name == name) return static_cast<std::uint64_t>(s.value);
    }
    return 0;
}

}  // namespace

std::string to_json(const ExperimentConfig& config, const ExperimentResult& result) {
    const auto& w = result.workload;
    const auto& m = result.messages;
    std::ostringstream o;
    o << "{\n";
    o << "  \"config\": {"
      << "\"setup\": \"" << setup_name(config.setup) << "\""
      << ", \"n\": " << config.n
      << ", \"groups\": " << config.groups
      << ", \"rate\": " << config.total_rate
      << ", \"value_size\": " << config.value_size
      << ", \"loss_rate\": " << config.loss_rate
      << ", \"timeouts\": " << (config.timeouts_enabled ? "true" : "false")
      << ", \"strategy\": \"" << strategy_name(config.strategy) << "\""
      << ", \"filtering\": " << (config.semantic.filtering ? "true" : "false")
      << ", \"aggregation\": " << (config.semantic.aggregation ? "true" : "false")
      << ", \"seed\": " << config.seed
      << ", \"overlay_seed\": " << config.overlay_seed
      << ", \"warmup_s\": " << config.warmup.as_seconds()
      << ", \"measure_s\": " << config.measure.as_seconds()
      << ", \"drain_s\": " << config.drain.as_seconds()
      << ", \"num_clients\": " << config.num_clients
      << ", \"heartbeat_interval_s\": " << config.heartbeat_interval.as_seconds()
      << ", \"suspect_after_s\": " << config.suspect_after.as_seconds()
      << ", \"detector_sweep_interval_s\": " << config.detector_sweep_interval.as_seconds()
      << ", \"suspicion_jitter_max_s\": " << config.suspicion_jitter_max.as_seconds()
      << ", \"retransmit_jitter_max_s\": " << config.retransmit_jitter_max.as_seconds()
      << ", \"invariant_probe_events\": " << config.invariant_probe_events
      << ", \"bandwidth_bytes_per_us\": " << config.bandwidth_bytes_per_us
      << ", \"jitter_frac\": " << config.jitter_frac
      << ", \"gossip_batch_size\": " << config.gossip_params.batch_size
      << ", \"batch_size\": " << config.batch_size
      << ", \"batch_delay_s\": " << config.batch_delay.as_seconds()
      << ", \"pending_cap\": " << config.pending_cap
      << ", \"pipeline\": " << (config.pipeline ? "true" : "false")
      << ", \"fanout\": " << config.fanout
      << ", \"adaptive_fanout\": " << (config.adaptive_fanout ? "true" : "false")
      << ", \"trace\": " << (config.trace ? "true" : "false")
      << ", \"trace_capacity\": " << config.trace_capacity
      << ", \"trace_jsonl_path\": \"" << json_escape(config.trace_jsonl_path) << "\"},\n";
    o << "  \"workload\": {"
      << "\"throughput\": " << w.throughput
      << ", \"offered\": " << w.offered_load
      << ", \"submitted\": " << w.submitted
      << ", \"completed\": " << w.completed
      << ", \"not_ordered\": " << w.not_ordered
      << ", \"latency_ms\": {"
      << "\"mean\": " << w.latencies.mean()
      << ", \"stddev\": " << w.latencies.stddev()
      << ", \"p50\": " << w.latencies.percentile(50)
      << ", \"p95\": " << w.latencies.percentile(95)
      << ", \"p99\": " << w.latencies.percentile(99)
      << ", \"max\": " << w.latencies.max() << "}},\n";
    o << "  \"messages\": {"
      << "\"net_arrivals\": " << m.net_arrivals
      << ", \"net_sent\": " << m.net_sent
      << ", \"loss_drops\": " << m.net_loss_drops
      << ", \"queue_drops\": " << m.net_queue_drops
      << ", \"bytes_sent\": " << m.bytes_sent
      << ", \"gossip_received\": " << m.gossip_messages_received
      << ", \"duplicates\": " << m.gossip_duplicates
      << ", \"duplicate_fraction\": " << m.duplicate_fraction()
      << ", \"delivered\": " << m.gossip_delivered
      << ", \"coordinator_arrivals\": " << m.coordinator_arrivals << "},\n";
    o << "  \"semantic\": {"
      << "\"filtered_phase2b\": " << result.semantic.filtered_phase2b
      << ", \"aggregates_built\": " << result.semantic.aggregates_built
      << ", \"messages_merged\": " << result.semantic.messages_merged
      << ", \"disaggregations\": " << result.semantic.disaggregations << "},\n";
    // Per-group decided counts (DESIGN.md §15): index g is the measured-window
    // delivery count at group g's placement coordinator. Length == config.groups.
    o << "  \"groups\": {\"decided\": [";
    for (std::size_t i = 0; i < result.group_decided.size(); ++i) {
        if (i != 0) o << ", ";
        o << result.group_decided[i];
    }
    o << "]},\n";
    o << "  \"overlay\": {"
      << "\"average_degree\": " << result.overlay.average_degree
      << ", \"diameter_hops\": " << result.overlay.diameter_hops
      << ", \"median_rtt_ms\": " << result.median_rtt.as_millis() << "},\n";
    o << "  \"failover\": {"
      << "\"enabled\": " << (config.failover ? "true" : "false")
      << ", \"suspicions\": " << result.failover.suspicions
      << ", \"restores\": " << result.failover.restores
      << ", \"takeovers\": " << result.failover.takeovers
      << ", \"step_downs\": " << result.failover.step_downs
      << ", \"heartbeats_sent\": " << result.failover.heartbeats_sent
      << ", \"heartbeats_suppressed\": " << result.failover.heartbeats_suppressed << "},\n";
    o << "  \"faults\": {"
      << "\"profile\": \"" << (config.chaos ? json_escape(config.chaos->name) : "") << "\""
      << ", \"chaos_seed\": " << (config.chaos_seed != 0 ? config.chaos_seed : config.seed)
      << ", \"injected\": " << result.faults_injected << ", \"log\": [";
    for (std::size_t i = 0; i < result.fault_log.size(); ++i) {
        if (i != 0) o << ", ";
        o << '"' << json_escape(result.fault_log[i]) << '"';
    }
    o << "]},\n";
    // Unified registry snapshot (DESIGN.md §9): one entry per metric, sorted
    // by name. Counters/gauges are scalars; histograms expand to a summary.
    o << "  \"metrics\": {";
    for (std::size_t i = 0; i < result.metrics.size(); ++i) {
        const MetricsRegistry::Sample& s = result.metrics[i];
        if (i != 0) o << ", ";
        o << '"' << json_escape(s.name) << "\": ";
        if (s.kind == MetricsRegistry::Kind::Histogram) {
            o << "{\"count\": " << s.value << ", \"mean\": " << s.mean
              << ", \"p50\": " << s.p50 << ", \"p99\": " << s.p99
              << ", \"max\": " << s.max << "}";
        } else {
            o << s.value;
        }
    }
    o << "}\n";
    o << "}";
    return o.str();
}

std::string csv_header() {
    return "setup,n,groups,rate,loss_rate,timeouts,strategy,filtering,aggregation,seed,"
           "throughput,latency_mean_ms,latency_p50_ms,latency_p95_ms,latency_p99_ms,"
           "latency_stddev_ms,submitted,completed,not_ordered,net_arrivals,net_sent,"
           "loss_drops,queue_drops,gossip_received,duplicates,delivered,filtered_2b,"
           "merged_2b,median_rtt_ms,chaos_profile,faults_injected,failover,suspicions,"
           "takeovers,step_downs,sim_events,sim_deliveries,sim_queue_depth_max,"
           "paxos_handled_phase2b,bytes_sent";
}

std::string to_csv_row(const ExperimentConfig& config, const ExperimentResult& result) {
    const auto& w = result.workload;
    const auto& m = result.messages;
    std::ostringstream o;
    o << setup_name(config.setup) << ',' << config.n << ',' << config.groups << ','
      << config.total_rate << ','
      << config.loss_rate << ',' << (config.timeouts_enabled ? 1 : 0) << ','
      << strategy_name(config.strategy) << ',' << (config.semantic.filtering ? 1 : 0) << ','
      << (config.semantic.aggregation ? 1 : 0) << ',' << config.seed << ','
      << w.throughput << ',' << w.latencies.mean() << ',' << w.latencies.percentile(50) << ','
      << w.latencies.percentile(95) << ',' << w.latencies.percentile(99) << ','
      << w.latencies.stddev() << ',' << w.submitted << ',' << w.completed << ','
      << w.not_ordered << ',' << m.net_arrivals << ',' << m.net_sent << ','
      << m.net_loss_drops << ',' << m.net_queue_drops << ',' << m.gossip_messages_received
      << ',' << m.gossip_duplicates << ',' << m.gossip_delivered << ','
      << result.semantic.filtered_phase2b << ',' << result.semantic.messages_merged << ','
      << result.median_rtt.as_millis() << ','
      << (config.chaos ? config.chaos->name : "") << ',' << result.faults_injected << ','
      << (config.failover ? 1 : 0) << ',' << result.failover.suspicions << ','
      << result.failover.takeovers << ',' << result.failover.step_downs << ','
      << metric_count(result, "sim.events") << ','
      << metric_count(result, "sim.deliveries") << ','
      << metric_count(result, "sim.queue_depth_max") << ','
      << metric_count(result, "paxos.handled.phase2b") << ',' << m.bytes_sent;
    return o.str();
}

}  // namespace gossipc
