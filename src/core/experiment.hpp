// End-to-end experiment construction and execution: builds one of the
// paper's three setups (Baseline / Gossip / Semantic Gossip) on the
// simulated WAN, runs the open-loop workload, and collects the metrics the
// evaluation section reports.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "fault/chaos.hpp"
#include "fault/injector.hpp"
#include "gossip/gossip_node.hpp"
#include "group/shard.hpp"
#include "net/network.hpp"
#include "overlay/analysis.hpp"
#include "overlay/graph.hpp"
#include "paxos/process.hpp"
#include "semantic/paxos_semantics.hpp"
#include "sim/simulator.hpp"
#include "stats/counters.hpp"
#include "stats/registry.hpp"
#include "trace/tracer.hpp"
#include "transport/direct_transport.hpp"
#include "transport/gossip_transport.hpp"
#include "workload/workload.hpp"

namespace gossipc {

enum class Setup { Baseline, Gossip, SemanticGossip };

const char* setup_name(Setup s);

struct ExperimentConfig {
    Setup setup = Setup::Gossip;
    int n = 13;
    /// Independent consensus groups sharded over the same processes and the
    /// same gossip substrate (DESIGN.md §15). Group g's initial coordinator
    /// is process g mod n; client values route to groups by key hash. 1 keeps
    /// the paper's single-group behaviour bit-for-bit.
    int groups = 1;

    // Workload.
    double total_rate = 100.0;  ///< submissions/s over all clients
    int num_clients = 13;
    std::uint32_t value_size = 1024;
    SimTime warmup = SimTime::seconds(1);
    SimTime measure = SimTime::seconds(5);
    SimTime drain = SimTime::seconds(2);

    // Fault injection (Section 4.5 / DESIGN.md §7). `loss_rate` is the
    // paper's uniform receive-side loss; `faults` is an explicit schedule of
    // typed fault events; `chaos` additionally samples a schedule from
    // (chaos_seed, profile) — both are merged and replayed by the
    // deployment's FaultInjector.
    double loss_rate = 0.0;
    bool timeouts_enabled = true;

    // Failure detection + coordinator failover (DESIGN.md §8). Off by
    // default: the detector, heartbeats, and succession logic are only wired
    // when `failover` is set, and a fault-free failover run replays the same
    // fault log as a non-failover run (empty) when the detector never fires.
    bool failover = false;
    SimTime heartbeat_interval = SimTime::millis(100);
    SimTime suspect_after = SimTime::millis(450);
    SimTime detector_sweep_interval = SimTime::millis(50);
    SimTime suspicion_jitter_max = SimTime::millis(60);
    /// Seed-derived jitter cap on coordinator Phase 2a retransmission and
    /// submission-repair backoff (applies regardless of `failover`).
    SimTime retransmit_jitter_max = SimTime::millis(150);

    // `faults` is a programmatic schedule of arbitrary timed closures with
    // no scalar CLI/JSON form; scripts build it in code, and --chaos covers
    // the declarative case.
    // gclint: allow(config-wiring) programmatic-only structured field
    FaultSchedule faults;
    std::optional<ChaosProfile> chaos;
    /// Seed for chaos generation; 0 means "reuse `seed`". Splitting the two
    /// lets a sweep hold the deployment fixed while varying only the chaos.
    std::uint64_t chaos_seed = 0;

    // Overlay (Gossip setups). The same overlay_seed is used across setups
    // of one system size, enforcing the paper's fixed-overlay methodology;
    // `overlay` overrides generation entirely (Figures 7/8).
    std::uint64_t overlay_seed = 42;
    // `overlay` is an explicit adjacency override for tests that pin a
    // topology; the CLI/JSON surface is --overlay-seed.
    // gclint: allow(config-wiring) programmatic-only structured field
    std::optional<Graph> overlay;

    // Semantic techniques (Semantic Gossip setup; ablations toggle these).
    PaxosSemantics::Options semantic{true, true};

    GossipStrategy strategy = GossipStrategy::Push;

    // Coordinator-side value batching + pipelined dissemination (DESIGN.md
    // §14). batch_size = 1 keeps the paper's one-value-per-instance
    // behaviour; >= 2 packs queued client values into composite Paxos
    // values, flushed when the batch fills or batch_delay elapses.
    std::uint32_t batch_size = 1;
    SimTime batch_delay = SimTime::millis(5);
    /// Coordinator backpressure: pending client values beyond this cap are
    /// shed (counted in paxos.values_shed) instead of growing the queue
    /// without bound.
    std::size_t pending_cap = 1 << 16;
    /// Pull-strategy pipelining: forward validated messages in the same
    /// simulator step instead of parking them for the next anti-entropy
    /// round.
    bool pipeline = false;
    /// Gossip fanout restriction (0 = flood all peers) and its adaptive
    /// widening under send-queue pressure.
    std::size_t fanout = 0;
    bool adaptive_fanout = false;

    /// Gossip-layer tuning (cache sizes, batching ablation, pull interval).
    /// `seed` and `strategy` inside are overridden by the fields above.
    GossipNode::Params gossip_params{};

    // Substrate calibration. `node_params`'s scalar knobs are surfaced
    // individually (--bandwidth, --jitter-frac); its remaining members are
    // calibration constants fixed by the paper.
    // gclint: allow(config-wiring) nested calibration struct, knobs surfaced individually
    Node::Params node_params{};
    double bandwidth_bytes_per_us = 125.0;
    double jitter_frac = 0.02;

    /// Runtime invariant checking (debug/sanitizer builds only): the Paxos
    /// safety checks run every this-many simulator events and once more when
    /// results are collected. 0 disables the periodic probe. No effect in
    /// builds with GC_INVARIANTS off — the checks compile out.
    std::uint64_t invariant_probe_events = 25'000;

    // Observability (DESIGN.md §9). Message-lifecycle tracing is opt-in;
    // when off, no tracer exists and every recording site is a skipped null
    // check (zero-cost). `trace_jsonl_path` (implies `trace`) additionally
    // exports the ring as JSONL at collect time.
    bool trace = false;
    std::size_t trace_capacity = 1 << 16;
    std::string trace_jsonl_path;

    std::uint64_t seed = 1;
};

struct ExperimentResult {
    Workload::Result workload;
    MessageStats messages;
    PaxosSemantics::Stats semantic;  ///< zeros outside Semantic Gossip
    OverlayStats overlay;            ///< default for Baseline
    SimTime median_rtt = SimTime::zero();  ///< overlay RTT median (gossip setups)
    std::uint64_t decisions_at_coordinator = 0;
    /// Delivered count at each group's placement coordinator, in group order
    /// (size == groups; a single-group run has one entry).
    std::vector<std::uint64_t> group_decided;

    /// Failure-detection / failover activity aggregated over all processes
    /// (zeros when failover is disabled or the detector never fired).
    struct FailoverStats {
        std::uint64_t heartbeats_sent = 0;
        std::uint64_t heartbeats_suppressed = 0;
        std::uint64_t suspicions = 0;
        std::uint64_t restores = 0;
        std::uint64_t takeovers = 0;
        std::uint64_t step_downs = 0;
    };
    FailoverStats failover;

    /// Injected-fault log: one line per fault event in execution order,
    /// byte-identical across replays of the same config (empty when the run
    /// had no fault schedule). Failover runs interleave suspicion/takeover/
    /// step-down events at their timestamps.
    std::vector<std::string> fault_log;
    std::uint64_t faults_injected = 0;  ///< applied events (skips excluded)

    /// Unified metrics snapshot (DESIGN.md §9): every component counter under
    /// its registry name, sorted by name. Rendered as the "metrics" object of
    /// the JSON report.
    std::vector<MetricsRegistry::Sample> metrics;
};

/// A fully wired deployment; exposed so examples and tests can drive the
/// pieces directly. Non-copyable; owns every component.
class Deployment {
public:
    explicit Deployment(const ExperimentConfig& config);
    Deployment(const Deployment&) = delete;
    Deployment& operator=(const Deployment&) = delete;

    /// Starts processes and workload, runs warmup+measure+drain.
    ExperimentResult run();

    /// Starts processes only (no workload); callers drive the simulator.
    void start_processes();

    Simulator& simulator() { return *sim_; }
    Network& network() { return *network_; }
    /// Node id's group-0 process (the whole node in a single-group run).
    PaxosProcess& process(ProcessId id) {
        return shards_.at(static_cast<std::size_t>(id))->process(0);
    }
    /// Node id's process for consensus group g.
    PaxosProcess& process(ProcessId id, GroupId g) {
        return shards_.at(static_cast<std::size_t>(id))->process(g);
    }
    /// Node id's multi-group stack (dispatcher, shared detector, processes).
    group::GroupShard& shard(ProcessId id) {
        return *shards_.at(static_cast<std::size_t>(id));
    }
    int groups() const { return config_.groups; }
    /// Every process, node-major then group order (n * groups entries).
    std::vector<PaxosProcess*> process_ptrs();
    Workload& workload() { return *workload_; }
    const ExperimentConfig& config() const { return config_; }
    const Graph* overlay() const { return overlay_ ? &*overlay_ : nullptr; }
    GossipNode* gossip_node(ProcessId id);
    PaxosSemantics* semantics(ProcessId id);
    /// The deployment's invariant checker; null when invariants are compiled
    /// out or the probe is disabled in the config.
    check::InvariantChecker* invariants() { return invariants_.get(); }
    /// The deployment's fault injector; null when the config has no fault
    /// schedule and no chaos profile.
    FaultInjector* fault_injector() { return injector_.get(); }
    /// The message-lifecycle tracer; null unless the config enables tracing.
    trace::Tracer* tracer() { return tracer_.get(); }
    /// The unified metrics registry. Populated from component counters at
    /// collect(); callers may register custom metrics before that.
    MetricsRegistry& metrics() { return registry_; }

    /// Wipes one node's durable state (acceptor + learner of every group),
    /// re-baselining its shadow monitors so the loss is not itself reported
    /// as a safety violation. Used by the fault engine for wipe-marked
    /// restarts.
    void wipe_process_state(ProcessId id);

    /// Collects the deployment-wide message statistics (any time).
    MessageStats message_stats() const;
    ExperimentResult collect();

private:
    /// Pulls every component counter into the metrics registry (collect()).
    void fill_metrics(const ExperimentResult& result);

    ExperimentConfig config_;
    std::unique_ptr<Simulator> sim_;
    std::unique_ptr<Network> network_;
    std::optional<Graph> overlay_;
    std::vector<std::unique_ptr<GossipHooks>> hooks_;
    std::vector<std::unique_ptr<GossipNode>> gossip_nodes_;
    std::vector<std::unique_ptr<Transport>> transports_;
    /// One multi-group stack per node; a single-group run is a shard of one.
    std::vector<std::unique_ptr<group::GroupShard>> shards_;
    std::unique_ptr<Workload> workload_;
    std::unique_ptr<check::InvariantChecker> invariants_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<trace::Tracer> tracer_;
    MetricsRegistry registry_;
    /// Failover events (suspect/restore/takeover/step-down) in emission
    /// order; merged into the fault log at collect().
    std::vector<std::string> failover_log_;
    /// Re-baselines one process's shadow monitors after a state wipe; bound
    /// only when invariants are compiled in and enabled.
    std::function<void(std::size_t)> forget_monitor_;
};

/// Convenience: build, run, and collect in one call.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace gossipc
