// Umbrella header: the public API of the Gossip Consensus library.
//
// Quickstart:
//   #include "core/semantic_gossip.hpp"
//   gossipc::ExperimentConfig cfg;
//   cfg.setup = gossipc::Setup::SemanticGossip;
//   cfg.n = 13;
//   cfg.total_rate = 100.0;
//   auto result = gossipc::run_experiment(cfg);
//   // result.workload.latencies.mean(), result.workload.throughput, ...
//
// For finer control, build a Deployment and drive the Simulator directly, or
// assemble the layers by hand (Network -> GossipNode(+hooks) ->
// GossipTransport -> PaxosProcess -> Workload).
#pragma once

#include "core/experiment.hpp"
#include "fault/chaos.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/injector.hpp"
#include "gossip/gossip_node.hpp"
#include "gossip/hooks.hpp"
#include "gossip/seen_cache.hpp"
#include "gossip/sliding_bloom.hpp"
#include "net/latency_model.hpp"
#include "net/network.hpp"
#include "net/region.hpp"
#include "overlay/analysis.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/process.hpp"
#include "semantic/paxos_semantics.hpp"
#include "sim/simulator.hpp"
#include "stats/registry.hpp"
#include "stats/saturation.hpp"
#include "stats/timeseries.hpp"
#include "trace/tracer.hpp"
#include "transport/direct_transport.hpp"
#include "transport/gossip_transport.hpp"
#include "workload/workload.hpp"
