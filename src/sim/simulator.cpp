#include "sim/simulator.hpp"

#include <utility>

namespace gossipc {

void Simulator::schedule_at(SimTime at, EventQueue::Callback fn) {
    if (at < now_) at = now_;
    queue_.push(at, std::move(fn));
}

Timer Simulator::schedule_timer(SimTime delay, EventQueue::Callback fn) {
    auto alive = std::make_shared<bool>(true);
    schedule_after(delay, [alive, fn = std::move(fn)]() {
        if (*alive) {
            *alive = false;
            fn();
        }
    });
    return Timer{std::move(alive)};
}

bool Simulator::step() {
    if (stopped_ || queue_.empty()) return false;
    now_ = queue_.next_time();
    auto entry = queue_.pop();
    ++events_executed_;
    entry.execute();
    return true;
}

void Simulator::run_until(SimTime t) {
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
        step();
    }
    if (!stopped_ && now_ < t) now_ = t;
}

bool Simulator::run_until_idle(std::uint64_t max_events) {
    std::uint64_t executed = 0;
    while (!stopped_ && !queue_.empty() && executed < max_events) {
        step();
        ++executed;
    }
    return queue_.empty();
}

void Simulator::reset() {
    queue_.clear();
    now_ = SimTime::zero();
    events_executed_ = 0;
    stopped_ = false;
}

}  // namespace gossipc
