#include "sim/simulator.hpp"

#include <utility>

#include "check/invariant.hpp"

namespace gossipc {

void Simulator::schedule_at(SimTime at, EventQueue::Callback fn) {
    if (at < now_) at = now_;
    queue_.push(at, std::move(fn));
}

void Simulator::schedule_fault(SimTime at, EventQueue::Callback fn) {
    if (at < now_) at = now_;
    queue_.push_fault(at, std::move(fn));
}

Timer Simulator::schedule_timer(SimTime delay, EventQueue::Callback fn) {
    auto alive = std::make_shared<bool>(true);
    schedule_after(delay, [alive, fn = std::move(fn)]() {
        if (*alive) {
            *alive = false;
            fn();
        }
    });
    return Timer{std::move(alive)};
}

bool Simulator::step() {
    if (stopped_ || queue_.empty()) return false;
    // SIM-1: simulated time never runs backwards — every schedule path clamps
    // to `now`, so a past-dated event means queue or clamping corruption.
    GC_INVARIANT(queue_.next_time() >= now_,
                 "event scheduled in the past: next=%lld now=%lld",
                 static_cast<long long>(queue_.next_time().as_nanos()),
                 static_cast<long long>(now_.as_nanos()));
    now_ = queue_.next_time();
    auto entry = queue_.pop();
    ++events_executed_;
    if (entry.fault) {
        ++faults_executed_;
    } else if (entry.target != nullptr) {
        ++deliveries_executed_;
    } else {
        ++callbacks_executed_;
    }
    entry.execute();
    if (probe_every_ != 0 && events_executed_ % probe_every_ == 0) probe_();
    return true;
}

void Simulator::run_until(SimTime t) {
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
        step();
    }
    if (!stopped_ && now_ < t) now_ = t;
}

bool Simulator::run_until_idle(std::uint64_t max_events) {
    std::uint64_t executed = 0;
    while (!stopped_ && !queue_.empty() && executed < max_events) {
        step();
        ++executed;
    }
    return queue_.empty();
}

void Simulator::reset() {
    queue_.clear();
    now_ = SimTime::zero();
    events_executed_ = 0;
    faults_executed_ = 0;
    deliveries_executed_ = 0;
    callbacks_executed_ = 0;
    stopped_ = false;
}

}  // namespace gossipc
