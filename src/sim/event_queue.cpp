#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gossipc {

void EventQueue::push(SimTime at, Callback fn) {
    Entry e;
    e.at = at;
    e.seq = next_seq_++;
    e.fn = std::move(fn);
    heap_.push(std::move(e));
    max_size_ = std::max(max_size_, heap_.size());
}

void EventQueue::push_delivery(SimTime at, DeliveryTarget& target, NetMessage msg) {
    Entry e;
    e.at = at;
    e.seq = next_seq_++;
    e.target = &target;
    e.msg = std::move(msg);
    heap_.push(std::move(e));
    max_size_ = std::max(max_size_, heap_.size());
}

void EventQueue::push_fault(SimTime at, Callback fn) {
    Entry e;
    e.at = at;
    e.seq = next_seq_++;
    e.fault = true;
    e.fn = std::move(fn);
    heap_.push(std::move(e));
    max_size_ = std::max(max_size_, heap_.size());
}

SimTime EventQueue::next_time() const {
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_.top().at;
}

EventQueue::Entry EventQueue::pop() {
    if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
    // priority_queue::top() is const; the entry must be moved out, so we
    // const_cast the known-mutable entry before popping. This is the
    // standard idiom for move-only payloads in std::priority_queue.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    return e;
}

void EventQueue::clear() {
    while (!heap_.empty()) heap_.pop();
    next_seq_ = 0;
}

}  // namespace gossipc
