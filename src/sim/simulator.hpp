// Single-threaded discrete-event simulator.
//
// The simulator owns the clock and the event queue. Components schedule
// callbacks; `run_until`/`run_for` advance the clock by executing events in
// deterministic order. Cancellable timers are provided for protocol timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace gossipc {

/// Handle to a scheduled timer; cancelling prevents the callback from firing.
/// Safe to destroy before or after the timer fires.
class Timer {
public:
    Timer() = default;

    void cancel() {
        if (alive_) *alive_ = false;
        alive_.reset();
    }
    bool pending() const { return alive_ && *alive_; }

private:
    friend class Simulator;
    explicit Timer(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
    std::shared_ptr<bool> alive_;
};

class Simulator {
public:
    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    SimTime now() const { return now_; }
    std::uint64_t events_executed() const { return events_executed_; }
    std::uint64_t faults_executed() const { return faults_executed_; }
    /// Executed events by kind: message deliveries vs. generic callbacks
    /// (timers, control flow). Faults are counted separately above.
    std::uint64_t deliveries_executed() const { return deliveries_executed_; }
    std::uint64_t callbacks_executed() const { return callbacks_executed_; }
    /// High-water mark of the pending-event queue.
    std::size_t max_pending_events() const { return queue_.max_size(); }

    /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
    void schedule_at(SimTime at, EventQueue::Callback fn);

    /// Schedules `fn` after the given delay.
    void schedule_after(SimTime delay, EventQueue::Callback fn) {
        schedule_at(now_ + delay, std::move(fn));
    }

    /// Schedules a message delivery (typed fast path; no closure).
    void schedule_delivery(SimTime at, DeliveryTarget& target, NetMessage msg) {
        if (at < now_) at = now_;
        queue_.push_delivery(at, target, std::move(msg));
    }

    /// Schedules an injected-fault event at absolute time `at` (clamped to
    /// now if in the past). Fault events are first-class queue entries: at
    /// equal timestamps they execute before every ordinary event, so a fault
    /// scheduled for T always hits before protocol activity at T.
    void schedule_fault(SimTime at, EventQueue::Callback fn);

    /// Schedules a cancellable callback after `delay`.
    [[nodiscard]] Timer schedule_timer(SimTime delay, EventQueue::Callback fn);

    /// Executes the next event, if any. Returns false when the queue is empty
    /// or the simulator was stopped.
    bool step();

    /// Runs events with time <= t, then advances the clock to t.
    void run_until(SimTime t);
    void run_for(SimTime d) { run_until(now_ + d); }

    /// Runs until the queue drains or `max_events` more events execute.
    /// Returns true if the queue drained.
    bool run_until_idle(std::uint64_t max_events = 100'000'000);

    /// Makes step()/run_* return immediately; cleared by reset().
    void stop() { stopped_ = true; }
    bool stopped() const { return stopped_; }

    /// Clears all pending events and rewinds the clock to zero.
    void reset();

#if GC_ENABLE_INVARIANTS
    // Test-only corruption hook (invariant death tests): enqueues a callback
    // at `at` without the schedule-path clamp, planting the past-dated event
    // that SIM-1 exists to catch.
    void debug_schedule_at_unclamped(SimTime at, EventQueue::Callback fn) {
        queue_.push(at, std::move(fn));
    }
#endif

    std::size_t pending_events() const { return queue_.size(); }

    /// Installs an observer invoked after every `every_events`-th executed
    /// event (0 or an empty fn disables). The invariant layer hooks its
    /// whole-system checks here; the per-event cost when set is one modulo.
    void set_probe(std::uint64_t every_events, std::function<void()> fn) {
        probe_every_ = fn ? every_events : 0;
        probe_ = std::move(fn);
    }

private:
    EventQueue queue_;
    SimTime now_ = SimTime::zero();
    std::uint64_t events_executed_ = 0;
    std::uint64_t faults_executed_ = 0;
    std::uint64_t deliveries_executed_ = 0;
    std::uint64_t callbacks_executed_ = 0;
    bool stopped_ = false;
    std::uint64_t probe_every_ = 0;
    std::function<void()> probe_;
};

}  // namespace gossipc
