// Deterministic event queue: a min-heap ordered by (time, insertion sequence).
// Ties are broken by insertion order so runs are exactly reproducible.
//
// Three event flavours share the heap: generic callbacks (timers, control
// flow), message deliveries, and injected faults. Deliveries are carried as
// a typed (DeliveryTarget*, NetMessage) pair instead of a closure — the
// delivery path dominates event volume, and avoiding a std::function
// allocation per message keeps large simulations fast. Fault events are
// callbacks flagged so that, at equal timestamps, they execute before
// ordinary events: a crash or partition scheduled for time T hits before any
// protocol activity at T, which makes fault schedules adversarial and their
// effect independent of unrelated same-instant traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/message.hpp"
#include "common/types.hpp"

namespace gossipc {

class EventQueue {
public:
    using Callback = std::function<void()>;

    struct Entry {
        SimTime at;
        std::uint64_t seq = 0;
        bool fault = false;                // injected fault (fires first at ties)
        Callback fn;                       // empty for deliveries
        DeliveryTarget* target = nullptr;  // non-null for deliveries
        NetMessage msg;

        void execute() {
            if (target != nullptr) {
                target->deliver_event(std::move(msg));
            } else if (fn) {
                fn();
            }
        }
    };

    /// Enqueues `fn` to run at time `at`.
    void push(SimTime at, Callback fn);

    /// Enqueues a message delivery at time `at`.
    void push_delivery(SimTime at, DeliveryTarget& target, NetMessage msg);

    /// Enqueues an injected-fault callback at time `at`. At equal timestamps
    /// fault entries execute before every ordinary entry (faults among
    /// themselves keep insertion order).
    void push_fault(SimTime at, Callback fn);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    /// High-water mark of `size()` over the queue's lifetime.
    std::size_t max_size() const { return max_size_; }

    /// Time of the earliest pending event. Requires !empty().
    SimTime next_time() const;

    /// Removes and returns the earliest pending event. Requires !empty().
    Entry pop();

    void clear();

private:
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            if (a.fault != b.fault) return b.fault;  // faults first
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t next_seq_ = 0;
    std::size_t max_size_ = 0;
};

}  // namespace gossipc
