#include "wire/datagram.hpp"

namespace gossipc::wire {

std::size_t datagram_wire_size(std::span<const DatagramSub> subs) {
    std::size_t total = kDatagramHeaderBytes;
    for (const DatagramSub& s : subs) total += kDatagramSubHeaderBytes + s.body.size();
    return total;
}

std::vector<std::uint8_t> encode_datagram(const DatagramHeader& header,
                                          std::span<const DatagramSub> subs) {
    WireWriter w;
    w.u32(kDatagramMagic);
    w.u8(kWireVersion);
    w.u8(header.epoch);
    w.u16(static_cast<std::uint16_t>(subs.size()));
    w.i32(header.sender);
    w.u32(header.seq);
    w.u32(header.ack);
    w.u32(header.ack_bits);
    for (const DatagramSub& s : subs) {
        w.u8(s.reliable ? 1 : 0);
        w.u32(s.rel_id);
        w.u32(static_cast<std::uint32_t>(s.body.size()));
        w.bytes(s.body);
    }
    return w.take();
}

WireError decode_datagram(std::span<const std::uint8_t> data, DatagramView& out) {
    out.subs.clear();
    if (data.size() > kMaxDatagramBytes) return WireError::Oversized;
    WireReader r(data);
    const std::uint32_t magic = r.u32();
    if (r.ok() && magic != kDatagramMagic) return WireError::BadMagic;
    const std::uint8_t version = r.u8();
    if (r.ok() && version != kWireVersion) return WireError::BadVersion;
    out.header.epoch = r.u8();  // any value is a valid incarnation
    const std::uint16_t count = r.u16();
    out.header.sender = r.i32();
    out.header.seq = r.u32();
    out.header.ack = r.u32();
    out.header.ack_bits = r.u32();
    if (!r.ok()) return r.error();
    if (out.header.sender < 0) return WireError::BadField;
    // Pure-ack datagrams are unsequenced; sequenced delivery only exists for
    // datagrams that carry sub-envelopes.
    if (out.header.seq == 0 && count != 0) return WireError::BadField;
    // Each sub-envelope costs at least its sub-header: a count that cannot
    // fit the remaining bytes is rejected before any per-sub work.
    if (static_cast<std::size_t>(count) * kDatagramSubHeaderBytes > r.remaining()) {
        return WireError::Truncated;
    }
    out.subs.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
        DatagramSubView sub;
        const std::uint8_t sflags = r.u8();
        sub.rel_id = r.u32();
        const std::uint32_t len = r.u32();
        if (!r.ok()) return r.error();
        if ((sflags & ~std::uint8_t{1}) != 0) return WireError::BadField;
        sub.reliable = (sflags & 1) != 0;
        if (sub.reliable != (sub.rel_id != 0)) return WireError::BadField;
        sub.body = r.bytes(len);
        if (!r.ok()) return r.error();
        out.subs.push_back(sub);
    }
    r.expect_end();
    return r.ok() ? WireError::None : r.error();
}

}  // namespace gossipc::wire
