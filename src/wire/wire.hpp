// Wire-format primitives (DESIGN.md §10): little-endian integer encoding
// behind a growable writer and a strictly bounds-checked reader.
//
// Every decode path in src/wire/ is built on WireReader, whose accessors
// refuse to read past the end of the buffer and record the first error they
// hit. Decoders therefore never index out of bounds on truncated or
// corrupted input — they return a WireError instead (never abort/UB), which
// is what the malformed-frame fuzz corpus pins down.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace gossipc::wire {

/// Wire format version; bumped on any layout change. Shared by the frame
/// header and the body codec; golden byte-layout tests in tests/test_wire.cpp
/// pin version 3 against accidental drift (v2 added the u16 batch-component
/// count to every encoded value, DESIGN.md §14; v3 added the i32 group id to
/// every Paxos body, per-group heartbeat frontiers, and the cross-group
/// GroupBatch body, DESIGN.md §15).
inline constexpr std::uint8_t kWireVersion = 3;

/// Decode failure classification. Encoders cannot fail; every decoder
/// returns the first error encountered, leaving the partial output unused.
enum class WireError : std::uint8_t {
    None = 0,
    Truncated,      ///< input ended before the announced structure did
    TrailingBytes,  ///< structure ended but input bytes remain
    Oversized,      ///< announced length exceeds the wire-format cap
    BadMagic,       ///< frame does not start with kFrameMagic
    BadVersion,     ///< frame version is not kWireVersion
    BadFrameType,   ///< unknown frame type tag
    BadBodyKind,    ///< unknown body kind tag
    BadMsgType,     ///< unknown Paxos/Raft message type tag
    LimitExceeded,  ///< list length field exceeds its per-type cap
    BadField,       ///< field value outside its legal domain
};

const char* wire_error_name(WireError e);

/// Append-only little-endian byte sink.
class WireWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { append(&v, sizeof v); }
    void u32(std::uint32_t v) { append(&v, sizeof v); }
    void u64(std::uint64_t v) { append(&v, sizeof v); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void bytes(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

    std::size_t size() const { return buf_.size(); }
    const std::vector<std::uint8_t>& data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    /// Patches a previously written u32 (length back-fill).
    void patch_u32(std::size_t offset, std::uint32_t v) {
        std::memcpy(buf_.data() + offset, &v, sizeof v);
    }

private:
    void append(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
        static_assert(std::endian::native == std::endian::little,
                      "wire format assumes a little-endian host");
    }

    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader. The first failed read latches
/// `error()`; all subsequent reads return zero values and keep the error.
class WireReader {
public:
    explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8() { return read<std::uint8_t>(); }
    std::uint16_t u16() { return read<std::uint16_t>(); }
    std::uint32_t u32() { return read<std::uint32_t>(); }
    std::uint64_t u64() { return read<std::uint64_t>(); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    /// Views the next `n` bytes and advances past them. On underrun latches
    /// Truncated and returns an empty span.
    std::span<const std::uint8_t> bytes(std::size_t n) {
        if (!ok()) return {};
        if (remaining() < n) {
            fail(WireError::Truncated);
            return {};
        }
        const auto view = data_.subspan(pos_, n);
        pos_ += n;
        return view;
    }

    std::size_t remaining() const { return data_.size() - pos_; }
    std::size_t pos() const { return pos_; }
    bool ok() const { return error_ == WireError::None; }
    WireError error() const { return error_; }
    /// Offending tag byte of a latched BadBodyKind/BadMsgType (0 otherwise).
    std::uint8_t error_tag() const { return error_tag_; }
    /// Byte offset of the read that latched the error.
    std::size_t error_offset() const { return error_offset_; }

    /// Records a decode error (no-op if one is already latched, so the
    /// earliest failure wins).
    void fail(WireError e) { fail_at(e, 0, pos_); }

    /// Records a decode error caused by a specific tag byte: the unknown
    /// body-kind or message-type value and the offset it was read from.
    /// Feeds the typed DecodeError that decode_body() reports.
    void fail_at(WireError e, std::uint8_t tag, std::size_t offset) {
        if (error_ != WireError::None) return;
        error_ = e;
        error_tag_ = tag;
        error_offset_ = offset;
    }

    /// Decoding of one structure is complete: any unread bytes are an error.
    void expect_end() {
        if (ok() && remaining() != 0) fail(WireError::TrailingBytes);
    }

private:
    template <typename T>
    T read() {
        if (!ok()) return T{};
        if (remaining() < sizeof(T)) {
            fail(WireError::Truncated);
            return T{};
        }
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    WireError error_ = WireError::None;
    std::uint8_t error_tag_ = 0;
    std::size_t error_offset_ = 0;
};

}  // namespace gossipc::wire
