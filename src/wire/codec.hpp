// Versioned binary codec for every message body the system puts on a real
// wire (DESIGN.md §10): all ten Paxos message types (including the
// multi-sender aggregated Phase 2b, failure-detector heartbeats, and the
// cross-group GroupBatch), the five Raft types, gossip envelopes, and pull
// digests. Every Paxos body carries its group id right after the sender
// (DESIGN.md §15), so a sharded deployment's traffic stays distinguishable
// end to end.
//
// The encoding is little-endian and self-describing one level deep: a body
// starts with a kind tag (BodyKind), protocol bodies follow with a message
// type tag, and variable-length lists carry an explicit element count that
// is validated against a hard cap before any allocation. Decoding is strict:
// truncated, oversized, or trailing bytes are errors, never UB — the wire
// fuzz suite (tests/test_wire_fuzz.cpp) runs the malformed corpus under
// ASan+UBSan to keep it that way.
//
// Simulator-derived payloads model a value by its size, so the codec ships
// `Value::size_bytes` rather than a payload blob; everything that defines a
// message's identity (and hence its gossip `unique_key`) round-trips
// exactly, which keeps duplicate suppression and semantic aggregation
// byte-compatible between simulated and real deployments.
#pragma once

#include <span>
#include <vector>

#include "gossip/gossip_node.hpp"
#include "paxos/message.hpp"
#include "raft/message.hpp"
#include "wire/wire.hpp"

namespace gossipc::wire {

// Hard caps enforced before allocating on decode. A frame announcing more
// is rejected with Oversized/LimitExceeded instead of being trusted.
inline constexpr std::uint32_t kMaxValueBytes = 1u << 24;      ///< 16 MiB payload model
inline constexpr std::uint32_t kMaxListEntries = 1u << 16;     ///< senders / accepted entries
inline constexpr std::uint32_t kMaxDigestIds = 1u << 20;       ///< pull-digest ids
inline constexpr std::uint32_t kMaxBatchEntries = 1u << 12;    ///< composite-value / group-batch entries
inline constexpr std::uint32_t kMaxGroupFrontiers = 1u << 10;  ///< per-group heartbeat frontiers

/// Body kind tags as written on the wire (decoupled from the in-memory
/// BodyKind enum so reordering that enum cannot silently change the format).
enum class WireBodyKind : std::uint8_t {
    GossipEnvelope = 1,
    PullDigest = 2,
    Paxos = 3,
    Raft = 4,
};

/// Typed decode failure: which classification was latched, the offending
/// tag byte for BadBodyKind/BadMsgType (zero for other errors), and the
/// byte offset of the read that failed. Diagnostics-quality context — a
/// daemon can log exactly which unknown tag a peer sent and where.
struct DecodeError {
    WireError code = WireError::None;
    std::uint8_t tag = 0;
    std::size_t offset = 0;
};

struct DecodedBody {
    BodyPtr body;  ///< null iff error != None
    WireError error = WireError::None;
    DecodeError detail{};  ///< detail.code == error

    bool ok() const { return error == WireError::None; }
};

/// Serializes any encodable body into `out`. Returns false (writing
/// nothing) for body kinds with no wire form (BodyKind::Other test doubles).
bool encode_body(const MessageBody& body, WireWriter& out);

/// Convenience: encode into a fresh buffer. Empty result means unencodable.
std::vector<std::uint8_t> encode_body(const MessageBody& body);

/// Decodes one body occupying the whole of `data` (trailing bytes are an
/// error). On failure the returned body is null and `error` says why.
DecodedBody decode_body(std::span<const std::uint8_t> data);

}  // namespace gossipc::wire
