#include "wire/codec.hpp"

#include <memory>
#include <optional>
#include <utility>

namespace gossipc::wire {

const char* wire_error_name(WireError e) {
    switch (e) {
        case WireError::None: return "none";
        case WireError::Truncated: return "truncated";
        case WireError::TrailingBytes: return "trailing-bytes";
        case WireError::Oversized: return "oversized";
        case WireError::BadMagic: return "bad-magic";
        case WireError::BadVersion: return "bad-version";
        case WireError::BadFrameType: return "bad-frame-type";
        case WireError::BadBodyKind: return "bad-body-kind";
        case WireError::BadMsgType: return "bad-msg-type";
        case WireError::LimitExceeded: return "limit-exceeded";
        case WireError::BadField: return "bad-field";
    }
    return "?";
}

namespace {

// Message type tags as written on the wire. Decoupled from the in-memory
// enums: the golden-layout tests pin these numbers, so a reorder of
// PaxosMsgType/RaftMsgType cannot silently change the format.
enum : std::uint8_t {
    kPaxosClientValue = 1,
    kPaxosPhase1a = 2,
    kPaxosPhase1b = 3,
    kPaxosPhase2a = 4,
    kPaxosPhase2b = 5,
    kPaxosPhase2bAggregate = 6,
    kPaxosDecision = 7,
    kPaxosLearnRequest = 8,
    kPaxosHeartbeat = 9,
    kPaxosGroupBatch = 10,
};

enum : std::uint8_t {
    kRaftClientForward = 1,
    kRaftAppend = 2,
    kRaftAck = 3,
    kRaftAckAggregate = 4,
    kRaftCommit = 5,
};

// Envelope flag bits (u8): the remaining bits must be zero on decode.
constexpr std::uint8_t kEnvelopeAggregated = 0x01;

// Tag-to-enum mapping, the single place unknown wire bytes are rejected.
// These switches are over raw u8 values, so a default arm is their
// unknown-input rejection path; every switch over the *enums* below is
// exhaustive with no default (enforced by -Wswitch-enum on this file and
// gclint's switch-exhaustiveness rule), so adding a message type fails the
// build until its decode case exists.
std::optional<PaxosMsgType> paxos_type_from_tag(std::uint8_t tag) {
    switch (tag) {
        case kPaxosClientValue: return PaxosMsgType::ClientValue;
        case kPaxosPhase1a: return PaxosMsgType::Phase1a;
        case kPaxosPhase1b: return PaxosMsgType::Phase1b;
        case kPaxosPhase2a: return PaxosMsgType::Phase2a;
        case kPaxosPhase2b: return PaxosMsgType::Phase2b;
        case kPaxosPhase2bAggregate: return PaxosMsgType::Phase2bAggregate;
        case kPaxosDecision: return PaxosMsgType::Decision;
        case kPaxosLearnRequest: return PaxosMsgType::LearnRequest;
        case kPaxosHeartbeat: return PaxosMsgType::Heartbeat;
        case kPaxosGroupBatch: return PaxosMsgType::GroupBatch;
        default: return std::nullopt;
    }
}

std::optional<RaftMsgType> raft_type_from_tag(std::uint8_t tag) {
    switch (tag) {
        case kRaftClientForward: return RaftMsgType::ClientForward;
        case kRaftAppend: return RaftMsgType::Append;
        case kRaftAck: return RaftMsgType::Ack;
        case kRaftAckAggregate: return RaftMsgType::AckAggregate;
        case kRaftCommit: return RaftMsgType::Commit;
        default: return std::nullopt;
    }
}

std::optional<WireBodyKind> body_kind_from_tag(std::uint8_t tag) {
    switch (tag) {
        case static_cast<std::uint8_t>(WireBodyKind::GossipEnvelope):
            return WireBodyKind::GossipEnvelope;
        case static_cast<std::uint8_t>(WireBodyKind::PullDigest):
            return WireBodyKind::PullDigest;
        case static_cast<std::uint8_t>(WireBodyKind::Paxos):
            return WireBodyKind::Paxos;
        case static_cast<std::uint8_t>(WireBodyKind::Raft):
            return WireBodyKind::Raft;
        default: return std::nullopt;
    }
}

// A value is the (client, seq, size) triple followed by a u16 component
// count: 0 for plain client values, else the coordinator-batch components
// (DESIGN.md §14), each encoded as a bare triple. Components carry no count
// of their own, so nested batches are unrepresentable on the wire.
void put_value(const Value& v, WireWriter& out) {
    out.i32(v.id.client);
    out.i64(v.id.seq);
    out.u32(v.size_bytes);
    out.u16(static_cast<std::uint16_t>(v.batch.size()));
    for (const Value& c : v.batch) {
        out.i32(c.id.client);
        out.i64(c.id.seq);
        out.u32(c.size_bytes);
    }
}

Value get_value(WireReader& in) {
    Value v;
    v.id.client = in.i32();
    v.id.seq = in.i64();
    v.size_bytes = in.u32();
    if (in.ok() && v.size_bytes > kMaxValueBytes) in.fail(WireError::Oversized);
    const std::uint16_t count = in.u16();
    if (in.ok() && count > kMaxBatchEntries) {
        in.fail(WireError::LimitExceeded);
        return v;
    }
    // Truncation pre-check before reserving: each component is 16 bytes.
    if (in.ok() && in.remaining() < static_cast<std::size_t>(count) * 16u) {
        in.fail(WireError::Truncated);
        return v;
    }
    v.batch.reserve(count);
    for (std::uint16_t i = 0; i < count && in.ok(); ++i) {
        Value c;
        c.id.client = in.i32();
        c.id.seq = in.i64();
        c.size_bytes = in.u32();
        if (in.ok() && c.size_bytes > kMaxValueBytes) in.fail(WireError::Oversized);
        v.batch.push_back(std::move(c));
    }
    return v;
}

void put_value_id(const ValueId& id, WireWriter& out) {
    out.i32(id.client);
    out.i64(id.seq);
}

ValueId get_value_id(WireReader& in) {
    ValueId id;
    id.client = in.i32();
    id.seq = in.i64();
    return id;
}

void put_senders(const std::vector<ProcessId>& senders, WireWriter& out) {
    out.u32(static_cast<std::uint32_t>(senders.size()));
    for (const ProcessId s : senders) out.i32(s);
}

std::vector<ProcessId> get_senders(WireReader& in) {
    const std::uint32_t count = in.u32();
    if (in.ok() && count > kMaxListEntries) {
        in.fail(WireError::LimitExceeded);
        return {};
    }
    // Cheap truncation pre-check before reserving: each entry is 4 bytes.
    if (in.ok() && in.remaining() < count * 4u) {
        in.fail(WireError::Truncated);
        return {};
    }
    std::vector<ProcessId> senders;
    senders.reserve(count);
    for (std::uint32_t i = 0; i < count && in.ok(); ++i) senders.push_back(in.i32());
    return senders;
}

// ---- Paxos ----------------------------------------------------------------

void encode_paxos(const PaxosMessage& msg, WireWriter& out) {
    switch (msg.type()) {
        case PaxosMsgType::ClientValue: {
            const auto& m = static_cast<const ClientValueMsg&>(msg);
            out.u8(kPaxosClientValue);
            out.i32(m.sender());
            out.i32(m.group());
            put_value(m.value(), out);
            out.i32(m.attempt());
            out.i32(m.target());
            out.u8(m.forwarded() ? 1 : 0);
            return;
        }
        case PaxosMsgType::Phase1a: {
            const auto& m = static_cast<const Phase1aMsg&>(msg);
            out.u8(kPaxosPhase1a);
            out.i32(m.sender());
            out.i32(m.group());
            out.i32(m.round());
            out.i64(m.from_instance());
            return;
        }
        case PaxosMsgType::Phase1b: {
            const auto& m = static_cast<const Phase1bMsg&>(msg);
            out.u8(kPaxosPhase1b);
            out.i32(m.sender());
            out.i32(m.group());
            out.i32(m.round());
            out.i64(m.from_instance());
            out.u32(static_cast<std::uint32_t>(m.accepted().size()));
            for (const AcceptedEntry& e : m.accepted()) {
                out.i64(e.instance);
                out.i32(e.vround);
                put_value(e.value, out);
            }
            return;
        }
        case PaxosMsgType::Phase2a: {
            const auto& m = static_cast<const Phase2aMsg&>(msg);
            out.u8(kPaxosPhase2a);
            out.i32(m.sender());
            out.i32(m.group());
            out.i64(m.instance());
            out.i32(m.round());
            put_value(m.value(), out);
            out.i32(m.attempt());
            return;
        }
        case PaxosMsgType::Phase2b: {
            const auto& m = static_cast<const Phase2bMsg&>(msg);
            out.u8(kPaxosPhase2b);
            out.i32(m.sender());
            out.i32(m.group());
            out.i64(m.instance());
            out.i32(m.round());
            put_value_id(m.value_id(), out);
            out.u64(m.value_digest());
            out.i32(m.attempt());
            return;
        }
        case PaxosMsgType::Phase2bAggregate: {
            const auto& m = static_cast<const Phase2bAggregateMsg&>(msg);
            out.u8(kPaxosPhase2bAggregate);
            out.i32(m.sender());
            out.i32(m.group());
            out.i64(m.instance());
            out.i32(m.round());
            put_value_id(m.value_id(), out);
            out.u64(m.value_digest());
            put_senders(m.senders(), out);
            out.i32(m.attempt());
            return;
        }
        case PaxosMsgType::Decision: {
            const auto& m = static_cast<const DecisionMsg&>(msg);
            out.u8(kPaxosDecision);
            out.i32(m.sender());
            out.i32(m.group());
            out.i64(m.instance());
            put_value_id(m.value_id(), out);
            out.u64(m.value_digest());
            out.u8(m.full_value() ? 1 : 0);
            if (m.full_value()) put_value(*m.full_value(), out);
            out.i32(m.attempt());
            return;
        }
        case PaxosMsgType::LearnRequest: {
            const auto& m = static_cast<const LearnRequestMsg&>(msg);
            out.u8(kPaxosLearnRequest);
            out.i32(m.sender());
            out.i32(m.group());
            out.i64(m.instance());
            out.i32(m.attempt());
            out.i32(m.target());
            return;
        }
        case PaxosMsgType::Heartbeat: {
            const auto& m = static_cast<const HeartbeatMsg&>(msg);
            out.u8(kPaxosHeartbeat);
            out.i32(m.sender());
            out.i32(m.group());
            out.u64(m.seq());
            // v3: one frontier per group (count >= 1 by construction).
            out.u16(static_cast<std::uint16_t>(m.frontiers().size()));
            for (const InstanceId f : m.frontiers()) out.i64(f);
            return;
        }
        case PaxosMsgType::GroupBatch: {
            const auto& m = static_cast<const GroupBatchMsg&>(msg);
            out.u8(kPaxosGroupBatch);
            out.i32(m.sender());
            out.i32(m.group());
            out.u8(m.verb() == PaxosMsgType::Decision ? kPaxosDecision : kPaxosPhase2b);
            out.u16(static_cast<std::uint16_t>(m.entries().size()));
            // Entries are complete Paxos bodies (tag, sender, group, fields),
            // so the unpacked originals regenerate their exact gossip ids.
            for (const PaxosMessagePtr& e : m.entries()) encode_paxos(*e, out);
            return;
        }
    }
}

/// `nested` is true when decoding a GroupBatch entry: a batch inside a batch
/// is malformed (mirroring the envelope's nested-envelope rejection), which
/// also bounds decode recursion to depth two.
std::shared_ptr<PaxosMessage> decode_paxos(WireReader& in, bool nested = false) {
    const std::size_t tag_offset = in.pos();
    const std::uint8_t tag = in.u8();
    const ProcessId sender = in.i32();
    const GroupId group = in.i32();
    if (!in.ok()) return nullptr;
    const std::optional<PaxosMsgType> type = paxos_type_from_tag(tag);
    if (!type) {
        in.fail_at(WireError::BadMsgType, tag, tag_offset);
        return nullptr;
    }
    std::shared_ptr<PaxosMessage> msg;
    switch (*type) {
        case PaxosMsgType::ClientValue: {
            const Value value = get_value(in);
            const std::int32_t attempt = in.i32();
            const ProcessId target = in.i32();
            const std::uint8_t forwarded = in.u8();
            if (in.ok() && forwarded > 1) in.fail(WireError::BadField);
            if (!in.ok()) return nullptr;
            msg = std::make_shared<ClientValueMsg>(sender, value, attempt, target,
                                                   forwarded != 0);
            break;
        }
        case PaxosMsgType::Phase1a: {
            const Round round = in.i32();
            const InstanceId from = in.i64();
            if (!in.ok()) return nullptr;
            msg = std::make_shared<Phase1aMsg>(sender, round, from);
            break;
        }
        case PaxosMsgType::Phase1b: {
            const Round round = in.i32();
            const InstanceId from = in.i64();
            const std::uint32_t count = in.u32();
            if (in.ok() && count > kMaxListEntries) in.fail(WireError::LimitExceeded);
            // Each entry is at least 30 bytes (instance + vround + a plain
            // value with its u16 batch count); reject sizes the input
            // cannot hold.
            if (in.ok() && in.remaining() < count * 30u) in.fail(WireError::Truncated);
            if (!in.ok()) return nullptr;
            std::vector<AcceptedEntry> accepted;
            accepted.reserve(count);
            for (std::uint32_t i = 0; i < count && in.ok(); ++i) {
                AcceptedEntry e;
                e.instance = in.i64();
                e.vround = in.i32();
                e.value = get_value(in);
                accepted.push_back(e);
            }
            if (!in.ok()) return nullptr;
            msg = std::make_shared<Phase1bMsg>(sender, round, from, std::move(accepted));
            break;
        }
        case PaxosMsgType::Phase2a: {
            const InstanceId instance = in.i64();
            const Round round = in.i32();
            const Value value = get_value(in);
            const std::int32_t attempt = in.i32();
            if (!in.ok()) return nullptr;
            msg = std::make_shared<Phase2aMsg>(sender, instance, round, value, attempt);
            break;
        }
        case PaxosMsgType::Phase2b: {
            const InstanceId instance = in.i64();
            const Round round = in.i32();
            const ValueId id = get_value_id(in);
            const std::uint64_t digest = in.u64();
            const std::int32_t attempt = in.i32();
            if (!in.ok()) return nullptr;
            msg = std::make_shared<Phase2bMsg>(sender, instance, round, id, digest, attempt);
            break;
        }
        case PaxosMsgType::Phase2bAggregate: {
            const InstanceId instance = in.i64();
            const Round round = in.i32();
            const ValueId id = get_value_id(in);
            const std::uint64_t digest = in.u64();
            std::vector<ProcessId> senders = get_senders(in);
            const std::int32_t attempt = in.i32();
            if (!in.ok()) return nullptr;
            msg = std::make_shared<Phase2bAggregateMsg>(sender, instance, round, id, digest,
                                                        std::move(senders), attempt);
            break;
        }
        case PaxosMsgType::Decision: {
            const InstanceId instance = in.i64();
            const ValueId id = get_value_id(in);
            const std::uint64_t digest = in.u64();
            const std::uint8_t has_value = in.u8();
            if (in.ok() && has_value > 1) in.fail(WireError::BadField);
            std::optional<Value> full;
            if (in.ok() && has_value) full = get_value(in);
            const std::int32_t attempt = in.i32();
            if (!in.ok()) return nullptr;
            msg = std::make_shared<DecisionMsg>(sender, instance, id, digest, full, attempt);
            break;
        }
        case PaxosMsgType::LearnRequest: {
            const InstanceId instance = in.i64();
            const std::int32_t attempt = in.i32();
            const ProcessId target = in.i32();
            if (!in.ok()) return nullptr;
            msg = std::make_shared<LearnRequestMsg>(sender, instance, attempt, target);
            break;
        }
        case PaxosMsgType::Heartbeat: {
            const std::uint64_t seq = in.u64();
            const std::uint16_t count = in.u16();
            if (in.ok() && (count == 0 || count > kMaxGroupFrontiers)) {
                in.fail(WireError::BadField);
            }
            if (in.ok() && in.remaining() < static_cast<std::size_t>(count) * 8u) {
                in.fail(WireError::Truncated);
            }
            if (!in.ok()) return nullptr;
            std::vector<InstanceId> frontiers;
            frontiers.reserve(count);
            for (std::uint16_t i = 0; i < count && in.ok(); ++i) frontiers.push_back(in.i64());
            if (!in.ok()) return nullptr;
            msg = std::make_shared<HeartbeatMsg>(sender, seq, std::move(frontiers));
            break;
        }
        case PaxosMsgType::GroupBatch: {
            const std::size_t verb_offset = in.pos();
            const std::uint8_t verb_tag = in.u8();
            const std::uint16_t count = in.u16();
            if (!in.ok()) return nullptr;
            if (nested || (verb_tag != kPaxosPhase2b && verb_tag != kPaxosDecision)) {
                // Batches pack plain digest-sized messages only; a nested
                // batch (or any other verb) is malformed.
                in.fail_at(WireError::BadField, verb_tag, verb_offset);
                return nullptr;
            }
            if (count > kMaxBatchEntries) {
                in.fail(WireError::LimitExceeded);
                return nullptr;
            }
            const PaxosMsgType verb = verb_tag == kPaxosDecision ? PaxosMsgType::Decision
                                                                 : PaxosMsgType::Phase2b;
            std::vector<PaxosMessagePtr> entries;
            entries.reserve(count);
            for (std::uint16_t i = 0; i < count && in.ok(); ++i) {
                std::shared_ptr<PaxosMessage> entry = decode_paxos(in, /*nested=*/true);
                if (!in.ok() || entry == nullptr) return nullptr;
                if (entry->type() != verb) {
                    in.fail(WireError::BadField);
                    return nullptr;
                }
                entries.push_back(std::move(entry));
            }
            if (!in.ok()) return nullptr;
            msg = std::make_shared<GroupBatchMsg>(sender, verb, std::move(entries));
            break;
        }
    }
    if (msg != nullptr) msg->set_group(group);
    return msg;
}

// ---- Raft -----------------------------------------------------------------

void encode_raft(const RaftMessage& msg, WireWriter& out) {
    switch (msg.type()) {
        case RaftMsgType::ClientForward: {
            const auto& m = static_cast<const ClientForwardMsg&>(msg);
            out.u8(kRaftClientForward);
            out.i32(m.sender());
            put_value(m.value(), out);
            out.i32(m.attempt());
            return;
        }
        case RaftMsgType::Append: {
            const auto& m = static_cast<const AppendMsg&>(msg);
            out.u8(kRaftAppend);
            out.i32(m.sender());
            out.i32(m.term());
            out.i64(m.index());
            put_value(m.value(), out);
            return;
        }
        case RaftMsgType::Ack: {
            const auto& m = static_cast<const AckMsg&>(msg);
            out.u8(kRaftAck);
            out.i32(m.sender());
            out.i32(m.term());
            out.i64(m.index());
            out.u64(m.value_digest());
            return;
        }
        case RaftMsgType::AckAggregate: {
            const auto& m = static_cast<const AckAggregateMsg&>(msg);
            out.u8(kRaftAckAggregate);
            out.i32(m.sender());
            out.i32(m.term());
            out.i64(m.index());
            out.u64(m.value_digest());
            put_senders(m.senders(), out);
            return;
        }
        case RaftMsgType::Commit: {
            const auto& m = static_cast<const CommitMsg&>(msg);
            out.u8(kRaftCommit);
            out.i32(m.sender());
            out.i32(m.term());
            out.i64(m.index());
            out.u64(m.value_digest());
            return;
        }
    }
}

BodyPtr decode_raft(WireReader& in) {
    const std::size_t tag_offset = in.pos();
    const std::uint8_t tag = in.u8();
    const ProcessId sender = in.i32();
    if (!in.ok()) return nullptr;
    const std::optional<RaftMsgType> type = raft_type_from_tag(tag);
    if (!type) {
        in.fail_at(WireError::BadMsgType, tag, tag_offset);
        return nullptr;
    }
    switch (*type) {
        case RaftMsgType::ClientForward: {
            const Value value = get_value(in);
            const std::int32_t attempt = in.i32();
            if (!in.ok()) return nullptr;
            return std::make_shared<ClientForwardMsg>(sender, value, attempt);
        }
        case RaftMsgType::Append: {
            const Term term = in.i32();
            const LogIndex index = in.i64();
            const Value value = get_value(in);
            if (!in.ok()) return nullptr;
            return std::make_shared<AppendMsg>(sender, term, index, value);
        }
        case RaftMsgType::Ack: {
            const Term term = in.i32();
            const LogIndex index = in.i64();
            const std::uint64_t digest = in.u64();
            if (!in.ok()) return nullptr;
            return std::make_shared<AckMsg>(sender, term, index, digest);
        }
        case RaftMsgType::AckAggregate: {
            const Term term = in.i32();
            const LogIndex index = in.i64();
            const std::uint64_t digest = in.u64();
            std::vector<ProcessId> senders = get_senders(in);
            if (!in.ok()) return nullptr;
            return std::make_shared<AckAggregateMsg>(sender, term, index, digest,
                                                     std::move(senders));
        }
        case RaftMsgType::Commit: {
            const Term term = in.i32();
            const LogIndex index = in.i64();
            const std::uint64_t digest = in.u64();
            if (!in.ok()) return nullptr;
            return std::make_shared<CommitMsg>(sender, term, index, digest);
        }
    }
    return nullptr;  // unreachable: every case returns
}

// ---- Envelope / digest ----------------------------------------------------

bool encode_inner(const MessageBody& body, WireWriter& out);

void encode_envelope(const GossipEnvelope& env, WireWriter& out) {
    const GossipAppMessage& msg = env.message();
    out.u8(static_cast<std::uint8_t>(WireBodyKind::GossipEnvelope));
    out.u64(msg.id);
    out.i32(msg.origin);
    out.u16(msg.hops);
    out.u8(msg.aggregated ? kEnvelopeAggregated : 0);
    if (msg.payload) encode_inner(*msg.payload, out);
}

BodyPtr decode_envelope(WireReader& in) {
    GossipAppMessage msg;
    msg.id = in.u64();
    msg.origin = in.i32();
    msg.hops = in.u16();
    const std::uint8_t flags = in.u8();
    if (in.ok() && (flags & ~kEnvelopeAggregated) != 0) in.fail(WireError::BadField);
    msg.aggregated = (flags & kEnvelopeAggregated) != 0;
    if (!in.ok()) return nullptr;
    const std::size_t kind_offset = in.pos();
    const std::uint8_t kind = in.u8();
    if (!in.ok()) return nullptr;
    const std::optional<WireBodyKind> body_kind = body_kind_from_tag(kind);
    if (!body_kind) {
        in.fail_at(WireError::BadBodyKind, kind, kind_offset);
        return nullptr;
    }
    switch (*body_kind) {
        case WireBodyKind::Paxos:
            msg.payload = decode_paxos(in);
            break;
        case WireBodyKind::Raft:
            msg.payload = decode_raft(in);
            break;
        case WireBodyKind::GossipEnvelope:
        case WireBodyKind::PullDigest:
            // Envelopes carry protocol bodies only; a nested envelope or
            // digest is malformed.
            in.fail_at(WireError::BadBodyKind, kind, kind_offset);
            return nullptr;
    }
    if (!in.ok()) return nullptr;
    return std::make_shared<GossipEnvelope>(std::move(msg));
}

void encode_digest(const PullDigest& digest, WireWriter& out) {
    out.u8(static_cast<std::uint8_t>(WireBodyKind::PullDigest));
    out.u32(static_cast<std::uint32_t>(digest.ids().size()));
    for (const GossipMsgId id : digest.ids()) out.u64(id);
}

BodyPtr decode_digest(WireReader& in) {
    const std::uint32_t count = in.u32();
    if (in.ok() && count > kMaxDigestIds) in.fail(WireError::LimitExceeded);
    if (in.ok() && in.remaining() < count * 8u) in.fail(WireError::Truncated);
    if (!in.ok()) return nullptr;
    std::vector<GossipMsgId> ids;
    ids.reserve(count);
    for (std::uint32_t i = 0; i < count && in.ok(); ++i) ids.push_back(in.u64());
    if (!in.ok()) return nullptr;
    return std::make_shared<PullDigest>(std::move(ids));
}

bool encode_inner(const MessageBody& body, WireWriter& out) {
    switch (body.kind()) {
        case BodyKind::GossipEnvelope:
            encode_envelope(static_cast<const GossipEnvelope&>(body), out);
            return true;
        case BodyKind::PullDigest:
            encode_digest(static_cast<const PullDigest&>(body), out);
            return true;
        case BodyKind::Paxos:
            out.u8(static_cast<std::uint8_t>(WireBodyKind::Paxos));
            encode_paxos(static_cast<const PaxosMessage&>(body), out);
            return true;
        case BodyKind::Raft:
            out.u8(static_cast<std::uint8_t>(WireBodyKind::Raft));
            encode_raft(static_cast<const RaftMessage&>(body), out);
            return true;
        case BodyKind::Other:
            return false;
    }
    return false;
}

}  // namespace

bool encode_body(const MessageBody& body, WireWriter& out) { return encode_inner(body, out); }

std::vector<std::uint8_t> encode_body(const MessageBody& body) {
    WireWriter out;
    if (!encode_body(body, out)) return {};
    return out.take();
}

DecodedBody decode_body(std::span<const std::uint8_t> data) {
    WireReader in(data);
    const std::uint8_t kind = in.u8();
    BodyPtr body;
    if (in.ok()) {
        const std::optional<WireBodyKind> body_kind = body_kind_from_tag(kind);
        if (!body_kind) {
            in.fail_at(WireError::BadBodyKind, kind, 0);
        } else {
            switch (*body_kind) {
                case WireBodyKind::GossipEnvelope:
                    body = decode_envelope(in);
                    break;
                case WireBodyKind::PullDigest:
                    body = decode_digest(in);
                    break;
                case WireBodyKind::Paxos:
                    body = decode_paxos(in);
                    break;
                case WireBodyKind::Raft:
                    body = decode_raft(in);
                    break;
            }
        }
    }
    in.expect_end();
    if (!in.ok()) {
        return DecodedBody{nullptr, in.error(),
                           DecodeError{in.error(), in.error_tag(), in.error_offset()}};
    }
    return DecodedBody{std::move(body), WireError::None, DecodeError{}};
}

}  // namespace gossipc::wire
