// Length-prefixed framing for the TCP byte stream (DESIGN.md §10).
//
// Every frame starts with a fixed 12-byte header:
//
//   offset  size  field
//   0       4     magic     0x47435746 ("GCWF", little-endian)
//   4       1     version   kWireVersion
//   5       1     type      FrameType
//   6       2     flags     reserved, must be zero
//   8       4     length    payload bytes that follow
//
// The parser is incremental (feed() arbitrary byte chunks, pull complete
// frames) and strict: a bad magic, unknown version/type, non-zero flags, or
// a length above kMaxFramePayload poisons the stream — the connection must
// be dropped, since framing can no longer be trusted. Truncation is not an
// error for the parser (more bytes may arrive); it is for the one-shot
// decode_frame() used by tests and tools.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wire/wire.hpp"

namespace gossipc::wire {

inline constexpr std::uint32_t kFrameMagic = 0x47435746;  // "FWCG" on the wire (LE)
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Hard cap on one frame's payload; frames announcing more are rejected
/// before any buffering. Generous enough for a Phase 1b reporting
/// kMaxListEntries accepted values.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB

enum class FrameType : std::uint8_t {
    /// Connection handshake: identifies the sending process. Payload:
    /// i32 sender id, i32 cluster size.
    Hello = 1,
    /// One encoded message body (wire/codec.hpp layout).
    Body = 2,
};

struct Hello {
    ProcessId sender = -1;
    std::int32_t cluster_size = 0;
};

/// One parsed frame. `payload` views the parser's internal buffer and is
/// valid only until the next feed()/next() call.
struct Frame {
    FrameType type = FrameType::Body;
    std::span<const std::uint8_t> payload;
};

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> encode_hello_frame(const Hello& hello);

/// Decodes a Hello payload (strict: exact length).
WireError decode_hello(std::span<const std::uint8_t> payload, Hello& out);

/// One-shot decode of a buffer holding exactly one frame (tests, tools).
/// Returns Truncated if `data` ends early, TrailingBytes if it runs long.
WireError decode_frame(std::span<const std::uint8_t> data, FrameType& type,
                       std::span<const std::uint8_t>& payload);

/// Incremental stream-to-frame assembler, one per connection.
class FrameParser {
public:
    enum class Result {
        Frame,     ///< `out` holds the next complete frame
        NeedMore,  ///< no complete frame buffered yet
        Corrupt,   ///< stream poisoned (error()); drop the connection
    };

    void feed(std::span<const std::uint8_t> data) {
        buf_.insert(buf_.end(), data.begin(), data.end());
    }

    /// Extracts the next complete frame. After Result::Corrupt every further
    /// call returns Corrupt — re-synchronizing an untrusted stream is not
    /// attempted.
    Result next(Frame& out);

    WireError error() const { return error_; }
    std::size_t buffered() const { return buf_.size() - consumed_; }

private:
    std::vector<std::uint8_t> buf_;
    std::size_t consumed_ = 0;  ///< bytes of buf_ already handed out
    WireError error_ = WireError::None;
};

}  // namespace gossipc::wire
