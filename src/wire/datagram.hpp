// Datagram framing for the UDP transport (DESIGN.md §12).
//
// Where the TCP stream uses 12-byte length-prefixed frames (wire/frame.hpp),
// a datagram is self-delimiting: one UDP packet carries one datagram, which
// clusters up to count sub-envelopes behind a fixed 24-byte header:
//
//   offset  size  field
//   0       4     magic      0x47435744 ("DWCG", little-endian)
//   4       1     version    kWireVersion
//   5       1     epoch      sender's link incarnation (wraps mod 256); a
//                            change tells the receiver the sender restarted
//                            its link layer, so seq/rel_id dedup state for
//                            that peer must be reset
//   6       2     count      sub-envelopes that follow
//   8       4     sender     process id of the sending node
//   12      4     seq        per-link datagram sequence number (1-based);
//                            0 marks an unsequenced pure-ack/keepalive
//                            datagram, which must carry count == 0
//   16      4     ack        highest seq received from the destination
//                            (0 = nothing received yet)
//   20      4     ack_bits   bit i set => seq `ack - 1 - i` was received
//                            (a 32-deep selective-ack history window)
//
// Each sub-envelope is a 9-byte sub-header followed by one encoded message
// body (wire/codec.hpp layout):
//
//   offset  size  field
//   0       1     flags      bit 0 = reliable; other bits must be zero
//   1       4     rel_id     per-link reliable-envelope id (>= 1 iff the
//                            reliable flag is set, 0 otherwise)
//   5       4     length     body bytes that follow
//
// Decoding is strict and allocation-free: truncated sub-envelopes, lengths
// overrunning the datagram, a count that lies, reserved bits, and trailing
// bytes are all typed errors, never UB — a datagram that fails to decode is
// dropped whole (datagrams are droppable by definition; the reliability
// layer re-sends what mattered). The fuzz suite drives this decoder with
// the same malformed-corpus machinery as the stream framing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wire/wire.hpp"

namespace gossipc::wire {

inline constexpr std::uint32_t kDatagramMagic = 0x47435744;  // "DWCG" on the wire (LE)
inline constexpr std::size_t kDatagramHeaderBytes = 24;
inline constexpr std::size_t kDatagramSubHeaderBytes = 9;
/// Hard cap on one datagram's total size: the largest payload a UDP/IPv4
/// packet can carry. Anything above is rejected before parsing sub-envelopes.
inline constexpr std::uint32_t kMaxDatagramBytes = 65507;

struct DatagramHeader {
    ProcessId sender = -1;
    std::uint8_t epoch = 0;      ///< sender's link incarnation
    std::uint32_t seq = 0;       ///< 0 = unsequenced (pure ack/keepalive)
    std::uint32_t ack = 0;       ///< 0 = nothing received yet
    std::uint32_t ack_bits = 0;  ///< selective-ack window behind `ack`
};

/// One sub-envelope to encode: an already-encoded body plus its reliability
/// tag. `rel_id` must be >= 1 iff `reliable`.
struct DatagramSub {
    bool reliable = false;
    std::uint32_t rel_id = 0;
    std::vector<std::uint8_t> body;
};

/// One decoded sub-envelope; `body` views the input buffer.
struct DatagramSubView {
    bool reliable = false;
    std::uint32_t rel_id = 0;
    std::span<const std::uint8_t> body;
};

/// One decoded datagram; sub bodies view the input buffer and are valid only
/// while it lives.
struct DatagramView {
    DatagramHeader header;
    std::vector<DatagramSubView> subs;
};

/// Serialized size of a datagram carrying `subs` (header + sub-headers +
/// body bytes) — what UdpLink packs against the MTU budget.
std::size_t datagram_wire_size(std::span<const DatagramSub> subs);

std::vector<std::uint8_t> encode_datagram(const DatagramHeader& header,
                                          std::span<const DatagramSub> subs);

/// Strict one-shot decode of one datagram occupying all of `data`.
/// On failure `out` is unspecified and the error says why.
WireError decode_datagram(std::span<const std::uint8_t> data, DatagramView& out);

}  // namespace gossipc::wire
