#include "wire/frame.hpp"

#include <cstring>

namespace gossipc::wire {

namespace {

void put_header(WireWriter& out, FrameType type, std::uint32_t length) {
    out.u32(kFrameMagic);
    out.u8(kWireVersion);
    out.u8(static_cast<std::uint8_t>(type));
    out.u16(0);  // flags, reserved
    out.u32(length);
}

/// Validates a 12-byte header; returns the payload length via `length`.
WireError check_header(WireReader& in, FrameType& type, std::uint32_t& length) {
    const std::uint32_t magic = in.u32();
    const std::uint8_t version = in.u8();
    const std::uint8_t type_tag = in.u8();
    const std::uint16_t flags = in.u16();
    length = in.u32();
    if (!in.ok()) return in.error();
    if (magic != kFrameMagic) return WireError::BadMagic;
    if (version != kWireVersion) return WireError::BadVersion;
    if (type_tag != static_cast<std::uint8_t>(FrameType::Hello) &&
        type_tag != static_cast<std::uint8_t>(FrameType::Body)) {
        return WireError::BadFrameType;
    }
    if (flags != 0) return WireError::BadField;
    if (length > kMaxFramePayload) return WireError::Oversized;
    type = static_cast<FrameType>(type_tag);
    return WireError::None;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
    WireWriter out;
    put_header(out, type, static_cast<std::uint32_t>(payload.size()));
    out.bytes(payload);
    return out.take();
}

std::vector<std::uint8_t> encode_hello_frame(const Hello& hello) {
    WireWriter payload;
    payload.i32(hello.sender);
    payload.i32(hello.cluster_size);
    return encode_frame(FrameType::Hello, payload.data());
}

WireError decode_hello(std::span<const std::uint8_t> payload, Hello& out) {
    WireReader in(payload);
    out.sender = in.i32();
    out.cluster_size = in.i32();
    in.expect_end();
    if (in.ok() && (out.sender < 0 || out.cluster_size <= 0 ||
                    out.sender >= out.cluster_size)) {
        in.fail(WireError::BadField);
    }
    return in.error();
}

WireError decode_frame(std::span<const std::uint8_t> data, FrameType& type,
                       std::span<const std::uint8_t>& payload) {
    if (data.size() < kFrameHeaderBytes) return WireError::Truncated;
    WireReader in(data.first(kFrameHeaderBytes));
    std::uint32_t length = 0;
    if (const WireError e = check_header(in, type, length); e != WireError::None) return e;
    if (data.size() - kFrameHeaderBytes < length) return WireError::Truncated;
    if (data.size() - kFrameHeaderBytes > length) return WireError::TrailingBytes;
    payload = data.subspan(kFrameHeaderBytes, length);
    return WireError::None;
}

FrameParser::Result FrameParser::next(Frame& out) {
    if (error_ != WireError::None) return Result::Corrupt;
    // Compact once the consumed prefix dominates the buffer, so a long-lived
    // connection does not grow its buffer without bound.
    if (consumed_ > 0 && (consumed_ >= buf_.size() || consumed_ > (64u << 10))) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    const std::span<const std::uint8_t> avail(buf_.data() + consumed_,
                                              buf_.size() - consumed_);
    if (avail.size() < kFrameHeaderBytes) return Result::NeedMore;
    WireReader in(avail.first(kFrameHeaderBytes));
    FrameType type{};
    std::uint32_t length = 0;
    if (const WireError e = check_header(in, type, length); e != WireError::None) {
        error_ = e;
        return Result::Corrupt;
    }
    if (avail.size() - kFrameHeaderBytes < length) return Result::NeedMore;
    out.type = type;
    out.payload = avail.subspan(kFrameHeaderBytes, length);
    consumed_ += kFrameHeaderBytes + length;
    return Result::Frame;
}

}  // namespace gossipc::wire
