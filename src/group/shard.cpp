#include "group/shard.hpp"

#include <stdexcept>

namespace gossipc::group {

GroupShard::GroupShard(const PaxosConfig& base, Transport& substrate, int num_groups)
    : dispatcher_(substrate, num_groups) {
    if (num_groups <= 0) {
        throw std::invalid_argument("GroupShard: num_groups must be positive");
    }
    if (base.failover_enabled) {
        // One detector per node, on the raw substrate: heartbeats are
        // per-node (group-independent liveness), and the piggyback rule must
        // see the origination clock that all groups share.
        detector_ = std::make_unique<FailureDetector>(base, substrate);
        detector_->set_frontiers_provider([this] { return frontiers(); });
    }
    processes_.reserve(static_cast<std::size_t>(num_groups));
    for (GroupId g = 0; g < num_groups; ++g) {
        PaxosConfig pc = base;
        pc.group = g;
        pc.num_groups = num_groups;
        pc.coordinator = placement_coordinator(g, base.n);
        processes_.push_back(
            std::make_unique<PaxosProcess>(pc, dispatcher_.facade(g), detector_.get()));
    }
}

void GroupShard::post_start() {
    for (auto& p : processes_) p->post_start();
}

void GroupShard::post_submit(const Value& value) {
    const GroupId g = group_for_value(value.id, num_groups());
    process(g).post_submit(value);
}

std::vector<InstanceId> GroupShard::frontiers() const {
    std::vector<InstanceId> out;
    out.reserve(processes_.size());
    for (const auto& p : processes_) out.push_back(p->learner().frontier());
    return out;
}

}  // namespace gossipc::group
