// One node's multi-group consensus stack (DESIGN.md §15): N independent
// PaxosProcess instances — one per consensus group, with rank-spread
// placement — multiplexed over a single shared transport substrate by a
// GroupDispatcher, with one shared FailureDetector observing the node's
// peers for every group at once.
//
// The shard is deliberately thin: each group's PaxosProcess is the unmodified
// single-group implementation, handed a per-group Transport facade and (when
// failover is on) the shared detector. Suspicions fan out to every group's
// succession logic; heartbeats advertise one learner frontier per group.
#pragma once

#include <memory>
#include <vector>

#include "detect/failure_detector.hpp"
#include "group/group_transport.hpp"
#include "group/router.hpp"
#include "paxos/process.hpp"

namespace gossipc::group {

class GroupShard {
public:
    /// Builds the per-group stacks on top of `substrate` (not owned; must
    /// outlive the shard). `base` carries this node's deployment-wide config;
    /// its `group`, `num_groups`, and `coordinator` fields are overwritten
    /// per group (coordinator by rank placement, DESIGN.md §15).
    GroupShard(const PaxosConfig& base, Transport& substrate, int num_groups);

    GroupShard(const GroupShard&) = delete;
    GroupShard& operator=(const GroupShard&) = delete;

    int num_groups() const { return static_cast<int>(processes_.size()); }
    PaxosProcess& process(GroupId g) {
        return *processes_.at(static_cast<std::size_t>(g));
    }
    const PaxosProcess& process(GroupId g) const {
        return *processes_.at(static_cast<std::size_t>(g));
    }
    GroupDispatcher& dispatcher() { return dispatcher_; }
    const GroupDispatcher& dispatcher() const { return dispatcher_; }
    /// The node's shared detector; null when failover is disabled.
    FailureDetector* detector() { return detector_.get(); }
    const FailureDetector* detector() const { return detector_.get(); }

    /// Starts every group's protocol (and, through the first one, the shared
    /// detector's heartbeat/sweep chains).
    void post_start();

    /// Routes a submission to its group by the deterministic key router and
    /// posts it onto the node's CPU.
    void post_submit(const Value& value);

    /// One learner frontier per group, in group order (heartbeat payload).
    std::vector<InstanceId> frontiers() const;

private:
    GroupDispatcher dispatcher_;
    std::unique_ptr<FailureDetector> detector_;
    std::vector<std::unique_ptr<PaxosProcess>> processes_;
};

}  // namespace gossipc::group
