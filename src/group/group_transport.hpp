// Group multiplexing over one shared transport substrate (DESIGN.md §15).
//
// A sharded node runs one PaxosProcess per consensus group, but exactly one
// network stack: one gossip node (or direct/UDP transport), one overlay
// membership, one failure detector. GroupDispatcher is the seam between the
// two cardinalities. It owns a per-group Transport facade; each group's
// protocol stack binds to its facade as if it had the substrate to itself:
//
//  * outbound — the facade stamps its group id on every message, then
//    forwards to the substrate, so traffic of all groups shares envelopes,
//    links, and the origination clock the detector's piggyback rule reads;
//  * inbound — the dispatcher takes the substrate's single deliver callback
//    and routes each message to the facade of its group() tag. Heartbeats
//    are the exception: they are per-node, carry one learner frontier per
//    group, and fan out to every facade.
//
// Messages with a group tag outside [0, groups) — a peer running a different
// --groups — are counted and dropped, never delivered to the wrong group.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "transport/transport.hpp"

namespace gossipc::group {

class GroupDispatcher;

/// The per-group view of the shared substrate. All scheduling primitives
/// pass straight through (timers run on the node's one CPU); sends stamp the
/// group tag first.
class GroupTransport final : public Transport {
public:
    GroupTransport(Transport& substrate, GroupId group)
        : substrate_(substrate), group_(group) {}

    ProcessId self() const override { return substrate_.self(); }
    void broadcast(PaxosMessagePtr msg, CpuContext& ctx) override;
    void send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) override;
    void schedule(SimTime delay, std::function<void(CpuContext&)> fn) override {
        substrate_.schedule(delay, std::move(fn));
    }
    void schedule_every(SimTime period, std::function<void(CpuContext&)> fn) override {
        substrate_.schedule_every(period, std::move(fn));
    }
    void post(std::function<void(CpuContext&)> fn) override {
        substrate_.post(std::move(fn));
    }

    GroupId group() const { return group_; }

private:
    friend class GroupDispatcher;
    /// Dispatcher-side entry: hands a routed message to this group's stack.
    void deliver_from_substrate(const PaxosMessagePtr& msg, CpuContext& ctx) {
        deliver_up(msg, ctx);
    }
    /// Stamps the group tag. Outbound messages are freshly constructed by
    /// their send site (nothing retains a cross-group alias), so the stamp
    /// is safe; re-sends through the same facade re-stamp the same value.
    PaxosMessagePtr stamped(PaxosMessagePtr msg) const;

    Transport& substrate_;
    GroupId group_;
};

/// Routes the substrate's inbound stream to per-group facades.
class GroupDispatcher {
public:
    struct Counters {
        std::uint64_t routed = 0;             ///< messages delivered to a group
        std::uint64_t heartbeats_fanned = 0;  ///< heartbeat copies delivered
        std::uint64_t unroutable = 0;         ///< group tag outside [0, groups)
    };

    /// Takes over `substrate`'s deliver callback. The dispatcher must
    /// outlive every bound protocol stack.
    GroupDispatcher(Transport& substrate, int num_groups);

    GroupDispatcher(const GroupDispatcher&) = delete;
    GroupDispatcher& operator=(const GroupDispatcher&) = delete;

    Transport& facade(GroupId g) { return *facades_.at(static_cast<std::size_t>(g)); }
    int num_groups() const { return static_cast<int>(facades_.size()); }
    Transport& substrate() { return substrate_; }
    const Counters& counters() const { return counters_; }

private:
    void route(const PaxosMessagePtr& msg, CpuContext& ctx);

    Transport& substrate_;
    std::vector<std::unique_ptr<GroupTransport>> facades_;
    Counters counters_;
};

}  // namespace gossipc::group
