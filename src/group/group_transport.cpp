#include "group/group_transport.hpp"

#include <stdexcept>

namespace gossipc::group {

PaxosMessagePtr GroupTransport::stamped(PaxosMessagePtr msg) const {
    if (msg && msg->group() != group_) {
        // Send sites construct their messages fresh (Paxos, the coordinator,
        // and the repair paths all make_shared at the call site), so the
        // const_cast mutates an object no other group can alias. The tag is
        // part of the message identity from here on: unique_key() folds it.
        const_cast<PaxosMessage&>(*msg).set_group(group_);
    }
    return msg;
}

void GroupTransport::broadcast(PaxosMessagePtr msg, CpuContext& ctx) {
    substrate_.broadcast(stamped(std::move(msg)), ctx);
}

void GroupTransport::send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) {
    substrate_.send(to, stamped(std::move(msg)), ctx);
}

GroupDispatcher::GroupDispatcher(Transport& substrate, int num_groups)
    : substrate_(substrate) {
    if (num_groups <= 0) {
        throw std::invalid_argument("GroupDispatcher: num_groups must be positive");
    }
    facades_.reserve(static_cast<std::size_t>(num_groups));
    for (GroupId g = 0; g < num_groups; ++g) {
        facades_.push_back(std::make_unique<GroupTransport>(substrate_, g));
    }
    substrate_.set_deliver(
        [this](const PaxosMessagePtr& msg, CpuContext& ctx) { route(msg, ctx); });
}

void GroupDispatcher::route(const PaxosMessagePtr& msg, CpuContext& ctx) {
    if (!msg) return;
    if (msg->type() == PaxosMsgType::Heartbeat) {
        // Per-node liveness evidence with one frontier per group: every
        // group's process reads its own slot (and feeds the one shared
        // detector, whose observe_alive is idempotent per delivery).
        for (auto& f : facades_) {
            ++counters_.heartbeats_fanned;
            f->deliver_from_substrate(msg, ctx);
        }
        return;
    }
    const GroupId g = msg->group();
    if (g < 0 || g >= static_cast<GroupId>(facades_.size())) {
        ++counters_.unroutable;
        return;
    }
    ++counters_.routed;
    facades_[static_cast<std::size_t>(g)]->deliver_from_substrate(msg, ctx);
}

}  // namespace gossipc::group
