// Deterministic client-side routing for multi-group sharded consensus
// (DESIGN.md §15).
//
// A deployment with `groups` consensus groups partitions the keyspace by a
// pure hash: every router — clients, daemons, benchmarks — maps the same key
// to the same group with no coordination and no lookup table. Placement is
// rank-based for the same reason: group g's initial coordinator is process
// g mod n, spreading the per-group proposer load across the cluster while
// leaving the per-group round arithmetic (round_owner / round_for) untouched.
#pragma once

#include "common/types.hpp"

namespace gossipc::group {

/// Maps an opaque routing key to its consensus group. mix64 decorrelates
/// adjacent keys so sequential ids spread evenly.
inline GroupId group_for_key(std::uint64_t key, int num_groups) {
    if (num_groups <= 1) return 0;
    return static_cast<GroupId>(mix64(key) % static_cast<std::uint64_t>(num_groups));
}

/// The routing key of a client value: client id and per-client sequence
/// folded together, so one client's stream spreads across groups.
inline std::uint64_t value_routing_key(const ValueId& id) {
    return hash_combine(static_cast<std::uint64_t>(id.client),
                        static_cast<std::uint64_t>(id.seq));
}

inline GroupId group_for_value(const ValueId& id, int num_groups) {
    return group_for_key(value_routing_key(id), num_groups);
}

/// Rank-based placement: the process initially coordinating group g.
inline ProcessId placement_coordinator(GroupId g, int n) {
    return static_cast<ProcessId>(static_cast<int>(g) % n);
}

}  // namespace gossipc::group
