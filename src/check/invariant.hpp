// Runtime invariant layer (correctness tooling).
//
// GC_INVARIANT(cond, fmt, ...) states a protocol or data-structure invariant
// at the point where it must hold. In debug and sanitizer builds a violated
// invariant prints the condition, location, and a printf-formatted context
// message to stderr and aborts — wrong protocol states die loudly at the
// first observable violation instead of surfacing as wrong benchmark numbers.
// In release builds (GC_ENABLE_INVARIANTS=0, set by the build system) the
// macro compiles out entirely: the condition and the format arguments are
// type-checked but never evaluated.
//
// The build system defines GC_ENABLE_INVARIANTS on every target (see the
// GC_INVARIANTS CMake option); the NDEBUG fallback below only covers
// non-CMake consumers of the headers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#ifndef GC_ENABLE_INVARIANTS
#ifdef NDEBUG
#define GC_ENABLE_INVARIANTS 0
#else
#define GC_ENABLE_INVARIANTS 1
#endif
#endif

namespace gossipc::check {

/// Prints the failed condition and formatted diagnostics, then aborts.
[[noreturn]] void invariant_failed(const char* condition, const char* file, int line,
                                   const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

namespace detail {
/// Swallows the macro arguments in disabled builds so that variables used
/// only in invariant messages do not become "unused" warnings. Sits behind
/// `if (false)`, so nothing is ever evaluated at runtime.
template <typename... Args>
inline void sink(Args&&... /*args*/) {}
}  // namespace detail

/// Observer running registered whole-system checks (e.g. cross-learner
/// agreement) at points chosen by the host: the simulator invokes it through
/// an event-count probe, the experiment driver after a run. Each check is a
/// closure over the components it inspects and fails via GC_INVARIANT.
class InvariantChecker {
public:
    using CheckFn = std::function<void()>;

    void add_check(std::string name, CheckFn fn) {
        checks_.push_back(Named{std::move(name), std::move(fn)});
    }

    /// Runs every registered check once.
    void run_all() {
        for (const Named& c : checks_) c.fn();
        ++runs_;
    }

    std::size_t check_count() const { return checks_.size(); }
    std::uint64_t runs() const { return runs_; }

private:
    struct Named {
        std::string name;
        CheckFn fn;
    };
    std::vector<Named> checks_;
    std::uint64_t runs_ = 0;
};

}  // namespace gossipc::check

#if GC_ENABLE_INVARIANTS
#define GC_INVARIANT(cond, ...)                                                       \
    do {                                                                              \
        if (!(cond)) [[unlikely]] {                                                   \
            ::gossipc::check::invariant_failed(#cond, __FILE__, __LINE__,             \
                                               __VA_ARGS__);                          \
        }                                                                             \
    } while (0)
#else
#define GC_INVARIANT(cond, ...)                                                       \
    do {                                                                              \
        if (false) {                                                                  \
            ::gossipc::check::detail::sink(!(cond), __VA_ARGS__);                     \
        }                                                                             \
    } while (0)
#endif
