#include "check/invariant.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gossipc::check {

void invariant_failed(const char* condition, const char* file, int line, const char* fmt,
                      ...) {
    std::fprintf(stderr, "\nINVARIANT VIOLATION: %s\n  at %s:%d\n  ", condition, file, line);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

}  // namespace gossipc::check
