// Coordinator-succession safety invariants (failover, DESIGN.md §8).
//
// A shadow monitor over the deployment's processes fails via GC_INVARIANT on
// any transition the succession protocol forbids —
//   * an active coordinator working a round it does not own
//     (round_owner(r) != id: rounds encode coordinator identity),
//   * two processes actively coordinating the same round at the same
//     observation (takeover without the predecessor's round being dead),
//   * a process's active coordination round moving backwards.
// Concurrent active coordinators at *different* rounds are legitimate — that
// is exactly the takeover window — and Paxos agreement (paxos_invariants)
// guards safety through it.
#pragma once

#include <map>
#include <vector>

#include "check/invariant.hpp"
#include "common/types.hpp"

namespace gossipc {
class PaxosProcess;
}  // namespace gossipc

namespace gossipc::check {

/// Shadow of which processes are actively coordinating and at which rounds.
/// The same process set (same order) must be passed to every observe().
class CoordinatorMonitor {
public:
    void observe(const std::vector<const PaxosProcess*>& processes);

private:
    std::vector<Round> highest_active_round_;  // per process, 0 = never active
};

/// Registers the coordinator-succession checks over a deployment's
/// processes. The pointed-to processes must outlive `checker`.
void register_failover_checks(InvariantChecker& checker,
                              std::vector<const PaxosProcess*> processes);

}  // namespace gossipc::check
