// Semantic-gossip soundness invariants (Section 3.2 of the paper).
//
// The gossip-layer optimisations are only trustworthy when their soundness
// conditions are machine-checked: filtering may drop nothing but provably
// obsolete Phase 2b traffic, and aggregation must be losslessly reversible.
// check_aggregation_roundtrip() re-derives reversibility on every batch the
// aggregation hook produces: the set of Phase 2b votes — (sender, instance,
// round, digest) — recoverable by disaggregating the output must equal the
// votes of the input, and every non-Phase-2b message must pass through
// untouched. In release builds both checks compile to empty inlines.
#pragma once

#include <vector>

#include "check/invariant.hpp"
#include "gossip/hooks.hpp"

namespace gossipc {
class Phase2bAggregateMsg;
}

namespace gossipc::check {

#if GC_ENABLE_INVARIANTS

/// G-AGG-2: an aggregate carries a non-empty set of distinct senders. A
/// duplicated sender would double-count one acceptor's vote toward a quorum,
/// breaking the filtering rule's soundness at every downstream peer.
void check_aggregate_wellformed(const Phase2bAggregateMsg& msg);

/// S-AGG-1: aggregation is losslessly reversible (see file comment). Fails
/// via GC_INVARIANT when a vote or a non-Phase-2b message was lost, invented,
/// or altered between `before` (the pending batch) and `after` (the batch
/// actually sent).
void check_aggregation_roundtrip(const std::vector<GossipAppMessage>& before,
                                 const std::vector<GossipAppMessage>& after);

#else

inline void check_aggregate_wellformed(const Phase2bAggregateMsg& /*msg*/) {}
inline void check_aggregation_roundtrip(const std::vector<GossipAppMessage>& /*before*/,
                                        const std::vector<GossipAppMessage>& /*after*/) {}

#endif

}  // namespace gossipc::check
