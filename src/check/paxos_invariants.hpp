// Paxos safety invariants checked continuously at runtime.
//
// The monitors are shadow models: each observe() compares a component's
// externally visible state against the previous snapshot and fails via
// GC_INVARIANT on any transition Paxos forbids —
//   * an acceptor's promise floor moving backwards,
//   * an accepted (instance, vround) changing its value,
//   * a learner's delivery frontier regressing or disagreeing with its
//     delivered count,
//   * two learners deciding different values for one instance (agreement).
// register_paxos_checks() bundles them for a whole deployment; the
// experiment driver runs the bundle through the simulator's event probe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "check/invariant.hpp"
#include "common/types.hpp"

namespace gossipc {
class Acceptor;
class Learner;
}  // namespace gossipc

namespace gossipc::check {

/// Shadow of one acceptor's promise/accept state.
class AcceptorMonitor {
public:
    void observe(const Acceptor& acceptor);

    /// Forgets the shadow after a deliberate durable-state wipe (fault
    /// engine): the next observe() re-baselines instead of reporting the
    /// wipe as a promise/vote regression. Ordinary crash/recovery (durable
    /// state preserved) must NOT call this — the monitor stays armed.
    void forget() {
        last_floor_ = 0;
        accepted_.clear();
    }

private:
    Round last_floor_ = 0;
    /// instance -> (vround, value digest) at the previous observation.
    std::map<InstanceId, std::pair<Round, std::uint64_t>> accepted_;
};

/// Cross-learner agreement plus per-learner delivery consistency. The same
/// learner set (same order) must be passed to every observe().
class AgreementMonitor {
public:
    void observe(const std::vector<const Learner*>& learners);

    /// Re-baselines learner i's frontier shadow after a durable-state wipe.
    /// Cross-learner agreement stays fully armed: re-learned decisions are
    /// still checked against the digests recorded before the wipe.
    void forget_learner(std::size_t i) {
        if (i < last_frontier_.size()) last_frontier_[i] = 1;
    }

private:
    /// instance -> digest of the first decision observed anywhere.
    std::map<InstanceId, std::uint64_t> decided_digest_;
    /// Instances below this are delivered by every learner and cross-checked;
    /// they can no longer change and are retired from the map.
    InstanceId floor_ = 1;
    std::vector<InstanceId> last_frontier_;  // per learner
};

/// Hooks into the registered monitors for events the checks cannot infer on
/// their own. Only a deliberate wipe needs one: crash/recovery with durable
/// state preserved keeps every monitor armed, unchanged.
struct PaxosCheckHandles {
    /// Clears process i's shadow state (acceptor + learner frontier) after a
    /// durable-state wipe; without it the monitors would report the wipe
    /// itself as a safety violation.
    std::function<void(std::size_t)> forget_process;
};

/// Registers the standard Paxos safety checks over a deployment's processes:
/// one AcceptorMonitor per acceptor and one AgreementMonitor across all
/// learners. The pointed-to components must outlive `checker`.
PaxosCheckHandles register_paxos_checks(InvariantChecker& checker,
                                        std::vector<const Learner*> learners,
                                        std::vector<const Acceptor*> acceptors);

}  // namespace gossipc::check
