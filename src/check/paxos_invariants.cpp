#include "check/paxos_invariants.hpp"

#include <algorithm>
#include <memory>

#include "paxos/acceptor.hpp"
#include "paxos/learner.hpp"

namespace gossipc::check {

namespace {
inline long long ll(InstanceId v) { return static_cast<long long>(v); }
inline unsigned long long ull(std::uint64_t v) { return static_cast<unsigned long long>(v); }
}  // namespace

void AcceptorMonitor::observe(const Acceptor& acceptor) {
    // P-ACC-2: the promise floor only rises (an acceptor never un-promises).
    GC_INVARIANT(acceptor.promise_floor() >= last_floor_,
                 "acceptor promise floor moved backwards: %d -> %d", last_floor_,
                 acceptor.promise_floor());
    last_floor_ = acceptor.promise_floor();

    std::map<InstanceId, std::pair<Round, std::uint64_t>> next;
    for (const AcceptedEntry& e : acceptor.accepted_snapshot()) {
        const std::uint64_t digest = e.value.digest();
        if (const auto it = accepted_.find(e.instance); it != accepted_.end()) {
            const auto& [prev_vround, prev_digest] = it->second;
            // P-ACC-3: re-acceptance happens only at a round at least as high.
            GC_INVARIANT(e.vround >= prev_vround,
                         "accepted round moved backwards in instance %lld: %d -> %d",
                         ll(e.instance), prev_vround, e.vround);
            // P-ACC-4: the vote cast in a given (instance, vround) is final.
            GC_INVARIANT(e.vround > prev_vround || digest == prev_digest,
                         "accepted value changed within round %d of instance %lld "
                         "(digest %016llx -> %016llx)",
                         e.vround, ll(e.instance), ull(prev_digest), ull(digest));
        }
        next.emplace(e.instance, std::pair{e.vround, digest});
    }
    // Entries missing from the snapshot were garbage-collected below the
    // decision frontier (forget_below) — dropping them is legitimate.
    accepted_ = std::move(next);
}

void AgreementMonitor::observe(const std::vector<const Learner*>& learners) {
    if (learners.empty()) return;
    last_frontier_.resize(learners.size(), 1);
    InstanceId max_seen = 0;
    InstanceId min_frontier = learners.front()->frontier();
    for (std::size_t i = 0; i < learners.size(); ++i) {
        const Learner& l = *learners[i];
        // P-LRN-2: the delivery frontier never regresses.
        GC_INVARIANT(l.frontier() >= last_frontier_[i],
                     "learner %zu delivery frontier moved backwards: %lld -> %lld", i,
                     ll(last_frontier_[i]), ll(l.frontier()));
        // P-LRN-3: in-order gapless delivery starting at instance 1 means the
        // frontier and the delivered count move in lockstep.
        GC_INVARIANT(l.frontier() == static_cast<InstanceId>(l.delivered_count()) + 1,
                     "learner %zu frontier %lld inconsistent with %llu delivered values",
                     i, ll(l.frontier()), ull(l.delivered_count()));
        last_frontier_[i] = l.frontier();
        max_seen = std::max(max_seen, l.highest_seen());
        min_frontier = std::min(min_frontier, l.frontier());
    }

    // P-AGR-1 (agreement): every decision observed for an instance — at any
    // learner, at any time — carries the same value digest.
    for (InstanceId inst = floor_; inst <= max_seen; ++inst) {
        for (std::size_t i = 0; i < learners.size(); ++i) {
            const Learner& l = *learners[i];
            if (!l.knows_decision(inst)) continue;
            const auto digest = l.decided_digest(inst);
            if (!digest) continue;  // delivered and truncated: content gone
            const auto it = decided_digest_.try_emplace(inst, *digest).first;
            GC_INVARIANT(it->second == *digest,
                         "agreement violated: instance %lld decided as digest %016llx "
                         "and as %016llx (learner %zu)",
                         ll(inst), ull(it->second), ull(*digest), i);
        }
    }

    // Instances every learner has delivered can no longer change; retire them.
    while (floor_ < min_frontier) {
        decided_digest_.erase(floor_);
        ++floor_;
    }
}

PaxosCheckHandles register_paxos_checks(InvariantChecker& checker,
                                        std::vector<const Learner*> learners,
                                        std::vector<const Acceptor*> acceptors) {
    auto agreement = std::make_shared<AgreementMonitor>();
    checker.add_check("paxos-agreement",
                      [agreement, learners = std::move(learners)] {
                          agreement->observe(learners);
                      });
    auto monitors = std::make_shared<std::vector<AcceptorMonitor>>(acceptors.size());
    checker.add_check("paxos-acceptors", [monitors, acceptors = std::move(acceptors)] {
        for (std::size_t i = 0; i < acceptors.size(); ++i) {
            (*monitors)[i].observe(*acceptors[i]);
        }
    });
    PaxosCheckHandles handles;
    handles.forget_process = [agreement, monitors](std::size_t i) {
        agreement->forget_learner(i);
        if (i < monitors->size()) (*monitors)[i].forget();
    };
    return handles;
}

}  // namespace gossipc::check
