#include "check/gossip_invariants.hpp"

#if GC_ENABLE_INVARIANTS

#include <set>
#include <tuple>

#include "paxos/message.hpp"

namespace gossipc::check {

namespace {

/// One Phase 2b vote, identified by what matters to the protocol — including
/// the consensus group, so a cross-group repack can never pass the roundtrip
/// check by trading a vote in one group for the same-numbered instance in
/// another. The retransmission attempt is deliberately excluded: merging an
/// original and its retransmission is content-preserving.
using VoteKey = std::tuple<GroupId, ProcessId, InstanceId, Round, std::uint64_t>;

struct Flattened {
    std::set<VoteKey> votes;             ///< Phase 2b content, aggregates expanded
    std::multiset<GossipMsgId> others;   ///< everything else, by gossip id
};

void flatten_paxos(const PaxosMessage& paxos, GossipMsgId id, Flattened& f) {
    if (paxos.type() == PaxosMsgType::Phase2b) {
        const auto& b = static_cast<const Phase2bMsg&>(paxos);
        f.votes.insert(
            VoteKey{b.group(), b.sender(), b.instance(), b.round(), b.value_digest()});
    } else if (paxos.type() == PaxosMsgType::Phase2bAggregate) {
        const auto& a = static_cast<const Phase2bAggregateMsg&>(paxos);
        for (const ProcessId s : a.senders()) {
            f.votes.insert(
                VoteKey{a.group(), s, a.instance(), a.round(), a.value_digest()});
        }
    } else if (paxos.type() == PaxosMsgType::GroupBatch) {
        // Cross-group envelopes (rule X1) are transparent to the roundtrip:
        // what they carry must flatten to exactly what went in, entry ids
        // standing in for the original gossip ids (they are equal — the
        // packed entries are the original message objects).
        const auto& batch = static_cast<const GroupBatchMsg&>(paxos);
        for (const PaxosMessagePtr& entry : batch.entries()) {
            flatten_paxos(*entry, entry->unique_key(), f);
        }
    } else {
        f.others.insert(id);
    }
}

Flattened flatten(const std::vector<GossipAppMessage>& msgs) {
    Flattened f;
    for (const GossipAppMessage& m : msgs) {
        if (m.payload && m.payload->kind() == BodyKind::Paxos) {
            flatten_paxos(static_cast<const PaxosMessage&>(*m.payload), m.id, f);
        } else {
            f.others.insert(m.id);
        }
    }
    return f;
}

}  // namespace

void check_aggregate_wellformed(const Phase2bAggregateMsg& msg) {
    GC_INVARIANT(!msg.senders().empty(), "aggregate for instance %lld carries no senders",
                 static_cast<long long>(msg.instance()));
    const std::set<ProcessId> distinct(msg.senders().begin(), msg.senders().end());
    GC_INVARIANT(distinct.size() == msg.senders().size(),
                 "aggregate for instance %lld carries duplicate senders "
                 "(%zu distinct of %zu)",
                 static_cast<long long>(msg.instance()), distinct.size(),
                 msg.senders().size());
}

void check_aggregation_roundtrip(const std::vector<GossipAppMessage>& before,
                                 const std::vector<GossipAppMessage>& after) {
    const Flattened in = flatten(before);
    const Flattened out = flatten(after);
    GC_INVARIANT(in.votes == out.votes,
                 "aggregation altered the Phase 2b vote set (%zu votes in, %zu out)",
                 in.votes.size(), out.votes.size());
    GC_INVARIANT(in.others == out.others,
                 "aggregation altered non-Phase-2b messages (%zu in, %zu out)",
                 in.others.size(), out.others.size());
}

}  // namespace gossipc::check

#endif  // GC_ENABLE_INVARIANTS
