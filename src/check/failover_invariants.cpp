#include "check/failover_invariants.hpp"

#include <memory>
#include <utility>

#include "paxos/process.hpp"

namespace gossipc::check {

void CoordinatorMonitor::observe(const std::vector<const PaxosProcess*>& processes) {
    highest_active_round_.resize(processes.size(), 0);
    std::map<Round, ProcessId> active_round_owner;
    for (std::size_t i = 0; i < processes.size(); ++i) {
        const PaxosProcess& p = *processes[i];
        const Coordinator* c = p.coordinator();
        if (!c || !c->active()) continue;
        const Round round = c->round();
        // Round 0 means activated but Phase 1 not yet begun (the start task
        // is still queued); there is no round to validate yet.
        if (round == 0) continue;
        // P-CRD-1: a coordinator only works rounds it owns — round numbers
        // encode coordinator identity, which is what keeps concurrent
        // coordinators from ever sharing a round.
        GC_INVARIANT(p.config().round_owner(round) == p.config().id,
                     "process %d actively coordinating round %d owned by %d",
                     p.config().id, round, p.config().round_owner(round));
        // P-CRD-2: at most one active coordinator per round.
        const auto [it, inserted] = active_round_owner.emplace(round, p.config().id);
        GC_INVARIANT(inserted, "round %d actively coordinated by both %d and %d", round,
                     it->second, p.config().id);
        // P-CRD-3: a process never re-activates at a lower round than it
        // already coordinated (activate() starts strictly above every round
        // it has observed).
        GC_INVARIANT(round >= highest_active_round_[i],
                     "process %d active coordination round moved backwards: %d -> %d",
                     p.config().id, highest_active_round_[i], round);
        highest_active_round_[i] = round;
    }
}

void register_failover_checks(InvariantChecker& checker,
                              std::vector<const PaxosProcess*> processes) {
    auto monitor = std::make_shared<CoordinatorMonitor>();
    checker.add_check("coordinator-succession",
                      [monitor, processes = std::move(processes)] {
                          monitor->observe(processes);
                      });
}

}  // namespace gossipc::check
