// Message-lifecycle tracer (DESIGN.md §9): records the path of every gossiped
// message — origination, per-hop relays, duplicate/filter/queue drops,
// aggregation and disaggregation, delivery, and the final Paxos decide — into
// a bounded ring of timestamped events, exportable as JSONL.
//
// The trace id is the gossip message id (the application's unique_key, minted
// when the message is broadcast), so all events of one message across all
// nodes share a key. The tracer is paxos-agnostic: a settable payload probe
// classifies application bodies (message type, consensus instance) without
// this layer depending on the protocol.
//
// Zero-cost when disabled: components hold a `Tracer*` that is null unless a
// run opts in, and every recording site is guarded by that null check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "common/types.hpp"
#include "gossip/hooks.hpp"

namespace gossipc::trace {

/// One step in a message's lifecycle. Drop stages record why a copy of the
/// message went no further at the recording node.
enum class Stage : std::uint8_t {
    Originate,       ///< minted by a local broadcast
    Receive,         ///< arrived from `peer`, before the duplicate check
    DuplicateDrop,   ///< dropped by the recently-seen cache
    FilterDrop,      ///< dropped by the semantic validate() hook, for `peer`
    Aggregate,       ///< merged into an aggregate bound for `peer`
    AggregateBuilt,  ///< an aggregate message was built, bound for `peer`
    Disaggregate,    ///< reconstructed from an aggregate received from `peer`
    Forward,         ///< transmitted to `peer`
    QueueDrop,       ///< forward dropped: `peer`'s send queue was full
    Deliver,         ///< handed to the application at the recording node
    Decide,          ///< consensus delivered the instance at the recording node
};

const char* stage_name(Stage s);

/// What the payload probe reports about an application body. `type` is an
/// application-defined small integer (PaxosMsgType here), `type_name` a
/// static string for export, `instance` the consensus instance (or -1),
/// `group` the consensus group (or -1 for bodies spanning groups, so sharded
/// JSONL exports stay joinable per shard — DESIGN.md §15).
struct PayloadInfo {
    std::int16_t type = -1;
    const char* type_name = nullptr;
    InstanceId instance = -1;
    GroupId group = -1;
};

struct Event {
    SimTime at = SimTime::zero();
    Stage stage = Stage::Originate;
    ProcessId node = -1;  ///< process recording the event
    ProcessId peer = -1;  ///< sender (Receive/Disaggregate) or destination
    GossipMsgId msg = 0;  ///< the trace id
    std::uint16_t hops = 0;
    std::int16_t type = -1;
    const char* type_name = nullptr;
    InstanceId instance = -1;
    GroupId group = -1;  ///< consensus group of the payload (or -1)
};

class Tracer {
public:
    using PayloadProbe = std::function<PayloadInfo(const MessageBody&)>;

    /// Keeps the most recent `capacity` events; older ones are overwritten
    /// (the overwrite count is reported as `evicted()`).
    explicit Tracer(std::size_t capacity = 1 << 16);

    void set_payload_probe(PayloadProbe probe) { probe_ = std::move(probe); }

    /// Records one lifecycle event for a gossiped message. `peer` is -1 where
    /// no counterparty applies (Originate, Deliver).
    void record(SimTime at, Stage stage, ProcessId node, ProcessId peer,
                const GossipAppMessage& msg);

    /// Records a consensus-level event that has no gossip message attached
    /// anymore (Decide: the learner delivered `instance` in `group`).
    void record_decide(SimTime at, ProcessId node, InstanceId instance, GroupId group = 0);

    /// Events currently in the ring, oldest first.
    std::vector<Event> events() const;

    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t recorded() const { return recorded_; }
    /// Events overwritten because the ring was full.
    std::uint64_t evicted() const { return recorded_ > count_ ? recorded_ - count_ : 0; }

    /// One JSON object per line, oldest first. Message ids are emitted as
    /// decimal strings (they do not fit a JSON double).
    void export_jsonl(std::ostream& os) const;

private:
    void push(const Event& e);

    std::vector<Event> ring_;
    std::size_t head_ = 0;   ///< next write position
    std::size_t count_ = 0;  ///< valid entries, <= ring_.size()
    std::uint64_t recorded_ = 0;
    PayloadProbe probe_;
};

}  // namespace gossipc::trace
