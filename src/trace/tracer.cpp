#include "trace/tracer.hpp"

#include <stdexcept>

namespace gossipc::trace {

const char* stage_name(Stage s) {
    switch (s) {
        case Stage::Originate: return "originate";
        case Stage::Receive: return "receive";
        case Stage::DuplicateDrop: return "duplicate_drop";
        case Stage::FilterDrop: return "filter_drop";
        case Stage::Aggregate: return "aggregate";
        case Stage::AggregateBuilt: return "aggregate_built";
        case Stage::Disaggregate: return "disaggregate";
        case Stage::Forward: return "forward";
        case Stage::QueueDrop: return "queue_drop";
        case Stage::Deliver: return "deliver";
        case Stage::Decide: return "decide";
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity) {
    if (capacity == 0) throw std::invalid_argument("Tracer: capacity must be > 0");
    ring_.resize(capacity);
}

void Tracer::push(const Event& e) {
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size()) ++count_;
    ++recorded_;
}

void Tracer::record(SimTime at, Stage stage, ProcessId node, ProcessId peer,
                    const GossipAppMessage& msg) {
    Event e;
    e.at = at;
    e.stage = stage;
    e.node = node;
    e.peer = peer;
    e.msg = msg.id;
    e.hops = msg.hops;
    if (probe_ && msg.payload) {
        const PayloadInfo info = probe_(*msg.payload);
        e.type = info.type;
        e.type_name = info.type_name;
        e.instance = info.instance;
        e.group = info.group;
    }
    push(e);
}

void Tracer::record_decide(SimTime at, ProcessId node, InstanceId instance, GroupId group) {
    Event e;
    e.at = at;
    e.stage = Stage::Decide;
    e.node = node;
    e.instance = instance;
    e.group = group;
    push(e);
}

std::vector<Event> Tracer::events() const {
    std::vector<Event> out;
    out.reserve(count_);
    const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

void Tracer::export_jsonl(std::ostream& os) const {
    for (const Event& e : events()) {
        os << "{\"t_ns\":" << e.at.as_nanos() << ",\"stage\":\"" << stage_name(e.stage)
           << "\",\"node\":" << e.node;
        if (e.peer >= 0) os << ",\"peer\":" << e.peer;
        if (e.msg != 0) os << ",\"msg\":\"" << e.msg << "\",\"hops\":" << e.hops;
        if (e.type_name != nullptr) os << ",\"type\":\"" << e.type_name << "\"";
        if (e.instance >= 0) os << ",\"instance\":" << e.instance;
        if (e.group >= 0) os << ",\"group\":" << e.group;
        os << "}\n";
    }
}

}  // namespace gossipc::trace
