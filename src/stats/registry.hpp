// Unified metrics registry (DESIGN.md §9): named counter/gauge/histogram
// handles behind which the scattered per-component counters (gossip node,
// Paxos process, failure detector, fault injector, simulator) are collected
// into one snapshot for the JSON/CSV report.
//
// Naming convention: dot-separated `<subsystem>.<metric>` in snake_case —
// `gossip.duplicates`, `paxos.handled.phase2b`, `sim.queue_depth_max`.
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (node-based storage), so hot paths can cache them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace gossipc {

class MetricsRegistry {
public:
    enum class Kind { Counter, Gauge, Histogram };

    struct Counter {
        std::uint64_t value = 0;
        void add(std::uint64_t delta = 1) { value += delta; }
        void set(std::uint64_t v) { value = v; }
    };

    struct Gauge {
        double value = 0.0;
        void set(double v) { value = v; }
    };

    /// One metric in a snapshot. Counters/gauges use `value`; histograms
    /// additionally fill count/mean/percentiles (`value` is the count).
    struct Sample {
        std::string name;
        Kind kind = Kind::Counter;
        double value = 0.0;
        double mean = 0.0;
        double p50 = 0.0;
        double p99 = 0.0;
        double max = 0.0;
    };

    /// Finds or creates the named metric. Re-registering an existing name
    /// with a different kind throws std::logic_error.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }
    std::size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

    /// All metrics, sorted by name (deterministic report order).
    std::vector<Sample> snapshot() const;

private:
    void check_unique(const std::string& name, Kind kind) const;

    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

}  // namespace gossipc
