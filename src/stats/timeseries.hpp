// Time-series instrumentation: samples a numeric probe at a fixed simulated
// interval, giving per-run dynamics (throughput ramp, CPU backlog growth at
// saturation, loss bursts) that end-of-run aggregates hide.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace gossipc {

class TimeSeries {
public:
    struct Point {
        SimTime at;
        double value;
    };

    /// Samples `probe` every `interval` until `until` (inclusive start at
    /// `interval`). The probe sees cumulative state; use `deltas()` for
    /// rates.
    TimeSeries(Simulator& sim, SimTime interval, SimTime until,
               std::function<double()> probe);

    const std::vector<Point>& points() const { return points_; }

    /// Successive differences divided by the interval (per-second rate for
    /// cumulative counters).
    std::vector<Point> rates() const;

    double max_value() const;
    double last_value() const;

private:
    void arm(SimTime at);

    Simulator& sim_;
    SimTime interval_;
    SimTime until_;
    std::function<double()> probe_;
    std::vector<Point> points_;
};

}  // namespace gossipc
