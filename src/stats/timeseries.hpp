// Time-series instrumentation: samples a numeric probe at a fixed simulated
// interval, giving per-run dynamics (throughput ramp, CPU backlog growth at
// saturation, loss bursts) that end-of-run aggregates hide.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace gossipc {

class TimeSeries {
public:
    struct Point {
        SimTime at;
        double value;
    };

    /// Samples `probe` every `interval` until `until` (inclusive start at
    /// `interval`; a point exactly at `until` is taken). The probe sees
    /// cumulative state; use `rates()` for rates.
    TimeSeries(Simulator& sim, SimTime interval, SimTime until,
               std::function<double()> probe);

    const std::vector<Point>& points() const { return points_; }

    /// Successive differences divided by the interval (per-second rate).
    ///
    /// Precondition: the probe must be a cumulative, monotonically
    /// non-decreasing counter — the first delta is baselined against 0, which
    /// is meaningless for a gauge (queue depth, backlog). Throws
    /// std::logic_error if a sample decreases, the signature of a gauge probe
    /// being misused here.
    std::vector<Point> rates() const;

    double max_value() const;
    double last_value() const;

private:
    void arm(SimTime at);

    Simulator& sim_;
    SimTime interval_;
    SimTime until_;
    std::function<double()> probe_;
    std::vector<Point> points_;
};

}  // namespace gossipc
