#include "stats/saturation.hpp"

namespace gossipc {

SaturationResult find_saturation(const std::vector<SweepPoint>& sweep) {
    SaturationResult result;
    double best_power = -1.0;
    std::size_t last_valid = 0;
    bool any_valid = false;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        if (sweep[i].latency_ms <= 0.0) continue;
        any_valid = true;
        last_valid = i;
        const double power = sweep[i].throughput / sweep[i].latency_ms;
        if (power > best_power) {
            best_power = power;
            result.index = i;
        }
    }
    // Saturated only when the sweep measured past the knee: some valid point
    // after the max-power one has strictly lower power. A monotonically
    // rising sweep ends at its own best point and proves nothing about where
    // saturation lies.
    result.saturated = any_valid && result.index != last_valid;
    return result;
}

std::size_t saturation_index(const std::vector<SweepPoint>& sweep) {
    return find_saturation(sweep).index;
}

}  // namespace gossipc
