#include "stats/saturation.hpp"

namespace gossipc {

std::size_t saturation_index(const std::vector<SweepPoint>& sweep) {
    std::size_t best = 0;
    double best_power = -1.0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        if (sweep[i].latency_ms <= 0.0) continue;
        const double power = sweep[i].throughput / sweep[i].latency_ms;
        if (power > best_power) {
            best_power = power;
            best = i;
        }
    }
    return best;
}

}  // namespace gossipc
