#include "stats/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace gossipc {

void MetricsRegistry::check_unique(const std::string& name, Kind kind) const {
    if (kind != Kind::Counter && counters_.contains(name)) {
        throw std::logic_error("MetricsRegistry: '" + name + "' already registered as counter");
    }
    if (kind != Kind::Gauge && gauges_.contains(name)) {
        throw std::logic_error("MetricsRegistry: '" + name + "' already registered as gauge");
    }
    if (kind != Kind::Histogram && histograms_.contains(name)) {
        throw std::logic_error("MetricsRegistry: '" + name +
                               "' already registered as histogram");
    }
}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
    check_unique(name, Kind::Counter);
    return counters_[name];
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(const std::string& name) {
    check_unique(name, Kind::Gauge);
    return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    check_unique(name, Kind::Histogram);
    return histograms_[name];
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
    std::vector<Sample> out;
    out.reserve(size());
    for (const auto& [name, c] : counters_) {
        Sample s;
        s.name = name;
        s.kind = Kind::Counter;
        s.value = static_cast<double>(c.value);
        out.push_back(std::move(s));
    }
    for (const auto& [name, g] : gauges_) {
        Sample s;
        s.name = name;
        s.kind = Kind::Gauge;
        s.value = g.value;
        out.push_back(std::move(s));
    }
    for (const auto& [name, h] : histograms_) {
        Sample s;
        s.name = name;
        s.kind = Kind::Histogram;
        s.value = static_cast<double>(h.count());
        if (!h.empty()) {
            s.mean = h.mean();
            s.p50 = h.percentile(50.0);
            s.p99 = h.percentile(99.0);
            s.max = h.max();
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const Sample& a, const Sample& b) { return a.name < b.name; });
    return out;
}

}  // namespace gossipc
