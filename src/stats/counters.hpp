// Aggregated message-level statistics across a deployment — the quantities
// Section 4.3 reports (messages received per process, duplicate share,
// messages delivered to Paxos, filtering/aggregation effect).
#pragma once

#include <cstdint>

namespace gossipc {

struct MessageStats {
    // Network level (per deployment totals).
    std::uint64_t net_arrivals = 0;
    std::uint64_t net_sent = 0;
    std::uint64_t net_loss_drops = 0;
    std::uint64_t net_queue_drops = 0;
    std::uint64_t bytes_sent = 0;

    // Gossip level.
    std::uint64_t gossip_envelopes_received = 0;
    std::uint64_t gossip_messages_received = 0;  ///< after disaggregation
    std::uint64_t gossip_duplicates = 0;
    std::uint64_t gossip_delivered = 0;  ///< handed to Paxos
    std::uint64_t gossip_filtered = 0;
    std::uint64_t gossip_aggregated_away = 0;
    std::uint64_t gossip_send_queue_drops = 0;

    // Coordinator-specific (Baseline redundancy comparison).
    std::uint64_t coordinator_arrivals = 0;

    double duplicate_fraction() const {
        return gossip_messages_received == 0
                   ? 0.0
                   : static_cast<double>(gossip_duplicates) /
                         static_cast<double>(gossip_messages_received);
    }

    /// Messages received by an average process (network arrivals / n).
    double arrivals_per_process(int n) const {
        return n == 0 ? 0.0 : static_cast<double>(net_arrivals) / n;
    }
};

}  // namespace gossipc
