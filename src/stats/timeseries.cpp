#include "stats/timeseries.hpp"

#include <stdexcept>

namespace gossipc {

TimeSeries::TimeSeries(Simulator& sim, SimTime interval, SimTime until,
                       std::function<double()> probe)
    : sim_(sim), interval_(interval), until_(until), probe_(std::move(probe)) {
    if (interval.as_nanos() <= 0) {
        throw std::invalid_argument("TimeSeries: interval must be positive");
    }
    arm(sim_.now() + interval_);
}

void TimeSeries::arm(SimTime at) {
    if (at > until_) return;
    sim_.schedule_at(at, [this, at] {
        points_.push_back(Point{at, probe_()});
        arm(at + interval_);
    });
}

std::vector<TimeSeries::Point> TimeSeries::rates() const {
    std::vector<Point> out;
    double prev = 0.0;
    for (const auto& p : points_) {
        if (p.value < prev) {
            throw std::logic_error(
                "TimeSeries::rates: sample decreased; probe is not a cumulative "
                "counter (gauge probes have no meaningful rate)");
        }
        out.push_back(Point{p.at, (p.value - prev) / interval_.as_seconds()});
        prev = p.value;
    }
    return out;
}

double TimeSeries::max_value() const {
    double best = 0.0;
    for (const auto& p : points_) best = std::max(best, p.value);
    return best;
}

double TimeSeries::last_value() const {
    return points_.empty() ? 0.0 : points_.back().value;
}

}  // namespace gossipc
