#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gossipc {

double Histogram::mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (const double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::ensure_sorted() const {
    if (sorted_ && sorted_samples_.size() == samples_.size()) return;
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
    sorted_ = true;
}

double Histogram::percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("Histogram::percentile: bad p");
    ensure_sorted();
    if (p == 0.0) return sorted_samples_.front();
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted_samples_.size())));
    return sorted_samples_[std::min(rank, sorted_samples_.size()) - 1];
}

std::vector<std::pair<double, double>> Histogram::cdf(std::size_t points) const {
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points == 0) return out;
    ensure_sorted();
    out.reserve(points);
    for (std::size_t i = 1; i <= points; ++i) {
        const double frac = static_cast<double>(i) / static_cast<double>(points);
        const auto idx = static_cast<std::size_t>(
            std::ceil(frac * static_cast<double>(sorted_samples_.size()))) - 1;
        out.emplace_back(sorted_samples_[std::min(idx, sorted_samples_.size() - 1)], frac);
    }
    return out;
}

void Histogram::merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
}

}  // namespace gossipc
