// Latency sample accumulator: mean, standard deviation, percentiles, CDF.
#pragma once

#include <cstddef>
#include <vector>

namespace gossipc {

class Histogram {
public:
    void add(double sample) { samples_.push_back(sample); }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;

    /// p in [0, 100]; nearest-rank on the sorted samples.
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    /// CDF as `points` evenly spaced (value, cumulative fraction) pairs.
    std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

    const std::vector<double>& samples() const { return samples_; }

    void merge(const Histogram& other);
    void clear() {
        samples_.clear();
        sorted_samples_.clear();
        sorted_ = false;
    }

private:
    void ensure_sorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_samples_;
    mutable bool sorted_ = false;
};

}  // namespace gossipc
