// Saturation-point detection for throughput/latency sweeps (Figure 3): the
// highlighted point maximizes the throughput-to-latency ratio ("power" knee);
// past it, load increases buy little throughput at relevant latency cost.
#pragma once

#include <cstddef>
#include <vector>

namespace gossipc {

struct SweepPoint {
    double offered_load = 0.0;   ///< client submissions/s
    double throughput = 0.0;     ///< decided values/s
    double latency_ms = 0.0;     ///< average end-to-end latency
};

/// Knee detection result. `saturated` is false when the sweep never showed a
/// downturn — the max-power point is the last valid point, so the "knee" is
/// really just the edge of the measured range and the true saturation
/// throughput lies beyond it. Callers must not present an unsaturated index
/// as a saturation point without flagging it.
struct SaturationResult {
    std::size_t index = 0;
    bool saturated = false;
};

/// Finds the saturation point (max throughput/latency ratio) and whether the
/// sweep actually saturated (a valid point past the knee has strictly lower
/// power). Returns {0, false} for an empty sweep or one with no positive
/// latencies.
SaturationResult find_saturation(const std::vector<SweepPoint>& sweep);

/// Index of the saturation point (max throughput/latency ratio). Returns 0
/// for an empty sweep. Prefer find_saturation(): this shorthand cannot
/// distinguish a real knee from a sweep that never saturated.
std::size_t saturation_index(const std::vector<SweepPoint>& sweep);

}  // namespace gossipc
