// Saturation-point detection for throughput/latency sweeps (Figure 3): the
// highlighted point maximizes the throughput-to-latency ratio ("power" knee);
// past it, load increases buy little throughput at relevant latency cost.
#pragma once

#include <cstddef>
#include <vector>

namespace gossipc {

struct SweepPoint {
    double offered_load = 0.0;   ///< client submissions/s
    double throughput = 0.0;     ///< decided values/s
    double latency_ms = 0.0;     ///< average end-to-end latency
};

/// Index of the saturation point (max throughput/latency ratio). Returns 0
/// for an empty sweep.
std::size_t saturation_index(const std::vector<SweepPoint>& sweep);

}  // namespace gossipc
