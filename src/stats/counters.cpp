#include "stats/counters.hpp"

// MessageStats is header-only; this translation unit anchors the target.
