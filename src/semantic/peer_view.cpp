#include "semantic/peer_view.hpp"

#include <stdexcept>

namespace gossipc {

PeerView::PeerView(int quorum) : quorum_(quorum) {
    if (quorum <= 0) throw std::invalid_argument("PeerView: quorum must be positive");
}

bool PeerView::knows_decision(InstanceId instance) const {
    return instance < floor_ || known_.contains(instance);
}

void PeerView::mark_decision(InstanceId instance) {
    if (knows_decision(instance)) return;
    known_.insert(instance);
    votes_.erase(instance);
    compress();
}

void PeerView::compress() {
    auto it = known_.begin();
    while (it != known_.end() && *it == floor_) {
        ++floor_;
        it = known_.erase(it);
    }
    // Entries below the floor (possible when marks arrive out of order) are
    // redundant.
    known_.erase(known_.begin(), known_.lower_bound(floor_));
    votes_.erase(votes_.begin(), votes_.lower_bound(floor_));
}

int PeerView::record_vote(InstanceId instance, Round round, std::uint64_t digest,
                          ProcessId sender) {
    if (knows_decision(instance)) return quorum_;
    auto& senders = votes_[instance][VoteKey{round, digest}];
    senders.insert(sender);
    return static_cast<int>(senders.size());
}

}  // namespace gossipc
