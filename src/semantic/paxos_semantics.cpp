#include "semantic/paxos_semantics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "check/gossip_invariants.hpp"

namespace gossipc {

PaxosSemantics::PaxosSemantics(ProcessId self, int quorum, Options options)
    : self_(self), quorum_(quorum), options_(options) {}

PeerView& PaxosSemantics::view(ProcessId peer, GroupId group) {
    auto it = views_.find({peer, group});
    if (it == views_.end()) {
        it = views_.emplace(std::make_pair(peer, group), PeerView{quorum_}).first;
    }
    return it->second;
}

const PeerView* PaxosSemantics::view_of(ProcessId peer, GroupId group) const {
    const auto it = views_.find({peer, group});
    return it == views_.end() ? nullptr : &it->second;
}

bool PaxosSemantics::validate_plain(const PaxosMessage& paxos, ProcessId peer) {
    switch (paxos.type()) {
        case PaxosMsgType::Phase2b: {
            const auto& m = static_cast<const Phase2bMsg&>(paxos);
            PeerView& pv = view(peer, m.group());
            if (pv.knows_decision(m.instance())) {
                ++stats_.filtered_phase2b;
                return false;
            }
            const int votes =
                pv.record_vote(m.instance(), m.round(), m.value_digest(), m.sender());
            if (votes >= quorum_) pv.mark_decision(m.instance());
            return true;
        }
        case PaxosMsgType::Phase2bAggregate: {
            const auto& m = static_cast<const Phase2bAggregateMsg&>(paxos);
            // G-AGG-2: a malformed aggregate (duplicate or missing senders)
            // would double-count one acceptor's vote toward the quorum below
            // and could mark a decision the peer cannot actually learn.
            check::check_aggregate_wellformed(m);
            PeerView& pv = view(peer, m.group());
            if (pv.knows_decision(m.instance())) {
                ++stats_.filtered_phase2b;
                return false;
            }
            int votes = 0;
            for (const ProcessId s : m.senders()) {
                votes = pv.record_vote(m.instance(), m.round(), m.value_digest(), s);
            }
            if (votes >= quorum_) pv.mark_decision(m.instance());
            return true;
        }
        case PaxosMsgType::Decision: {
            const auto& m = static_cast<const DecisionMsg&>(paxos);
            PeerView& pv = view(peer, m.group());
            pv.mark_decision(m.instance());
            // gclint: allow(invariant-test-coverage) S-FLT-1 asserts a
            // postcondition of the mark_decision call on the previous line;
            // PeerView is a pure container with no forgetting path or debug
            // corruption hook, so no test can trip it without adding one.
            // S-FLT-1: the sent Decision must be visible in the peer view
            // immediately — filtering rule F1 is only sound while the view
            // remembers every Decision this process forwarded to the peer.
            GC_INVARIANT(pv.knows_decision(m.instance()),
                         "peer view lost the decision just marked for instance %lld",
                         static_cast<long long>(m.instance()));
            return true;
        }
        case PaxosMsgType::GroupBatch:
            // Handled entry-by-entry in validate(); never reaches here.
            return true;
        case PaxosMsgType::ClientValue:
        case PaxosMsgType::Phase1a:
        case PaxosMsgType::Phase1b:
        case PaxosMsgType::Phase2a:
        case PaxosMsgType::LearnRequest:
        case PaxosMsgType::Heartbeat:
            // No filtering rule applies (rules F1/F2 concern the Phase 2b
            // vote-counting path and Decisions only, Section 3.2).
            return true;
    }
    return true;
}

bool PaxosSemantics::validate(const GossipAppMessage& msg, ProcessId peer) {
    if (!options_.filtering) return true;
    if (!msg.payload || msg.payload->kind() != BodyKind::Paxos) return true;
    const auto paxos = std::static_pointer_cast<const PaxosMessage>(msg.payload);
    if (paxos->type() == PaxosMsgType::GroupBatch) {
        // A cross-group batch is dropped only when every entry is provably
        // obsolete for this peer; a partially-useful batch still ships whole
        // (filtering is an optimisation — extra entries are merely redundant,
        // and their vote/decision effects on the peer view are recorded
        // either way so F1/F2 stay sound downstream).
        const auto& batch = static_cast<const GroupBatchMsg&>(*paxos);
        bool any_useful = batch.entries().empty();
        for (const PaxosMessagePtr& entry : batch.entries()) {
            if (validate_plain(*entry, peer)) any_useful = true;
        }
        return any_useful;
    }
    return validate_plain(*paxos, peer);
}

std::vector<GossipAppMessage> PaxosSemantics::aggregate(std::vector<GossipAppMessage> pending,
                                                        ProcessId peer) {
    (void)peer;
    if (!options_.aggregation || pending.size() < 2) return pending;
#if GC_ENABLE_INVARIANTS
    const std::vector<GossipAppMessage> before = pending;  // for S-AGG-1 below
#endif

    // Group Phase 2b messages by (group, instance, round, digest); groups of
    // two or more are merged into one multi-sender message placed at the
    // position of the group's first member. The consensus group is part of
    // the key: instance numbers from different groups are unrelated, so
    // merging across groups here would invent votes (rule X1 below packs
    // cross-group traffic reversibly instead).
    using Key = std::tuple<GroupId, InstanceId, Round, std::uint64_t>;
    struct Group {
        std::vector<std::size_t> indices;
        std::vector<ProcessId> senders;
        ValueId value_id{};
        std::int32_t max_attempt = 0;
    };
    std::map<Key, Group> groups;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const auto& payload = pending[i].payload;
        if (!payload || payload->kind() != BodyKind::Paxos) continue;
        const auto paxos = std::static_pointer_cast<const PaxosMessage>(payload);
        if (paxos->type() != PaxosMsgType::Phase2b) continue;
        const auto& m = static_cast<const Phase2bMsg&>(*paxos);
        Group& g = groups[Key{m.group(), m.instance(), m.round(), m.value_digest()}];
        g.indices.push_back(i);
        if (std::find(g.senders.begin(), g.senders.end(), m.sender()) == g.senders.end()) {
            g.senders.push_back(m.sender());
        }
        g.value_id = m.value_id();
        g.max_attempt = std::max(g.max_attempt, m.attempt());
    }

    std::vector<bool> drop(pending.size(), false);
    std::vector<GossipAppMessage> replacement(pending.size());
    for (auto& [key, g] : groups) {
        if (g.indices.size() < 2) continue;
        const auto& [group, instance, round, digest] = key;
        auto agg = std::make_shared<Phase2bAggregateMsg>(self_, instance, round, g.value_id,
                                                         digest, g.senders, g.max_attempt);
        agg->set_group(group);
        GossipAppMessage out;
        out.id = agg->unique_key();
        out.origin = self_;
        out.aggregated = true;
        out.payload = std::move(agg);
        replacement[g.indices.front()] = std::move(out);
        for (std::size_t j = 1; j < g.indices.size(); ++j) drop[g.indices[j]] = true;
        ++stats_.aggregates_built;
        stats_.messages_merged += g.indices.size() - 1;
    }

    std::vector<GossipAppMessage> out;
    out.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (drop[i]) continue;
        if (replacement[i].payload) {
            out.push_back(std::move(replacement[i]));
        } else {
            out.push_back(std::move(pending[i]));
        }
    }
    // X1 runs after A1: whatever same-verb plain traffic is left and spans
    // two or more groups shares one envelope to the peer.
    pack_cross_group(out);
#if GC_ENABLE_INVARIANTS
    // S-AGG-1: aggregation is losslessly reversible — the receiver must be
    // able to reconstruct exactly the Phase 2b votes this batch carried.
    check::check_aggregation_roundtrip(before, out);
#endif
    return out;
}

void PaxosSemantics::pack_cross_group(std::vector<GossipAppMessage>& batch) {
    // Rule X1 (DESIGN.md §15): same-verb plain Phase 2b / Decision messages
    // for *different* consensus groups, pending for the same peer, are
    // packed into one GroupBatch envelope placed at the position of the
    // first member. Entries keep their identity (the receiver unpacks the
    // byte-identical originals), so this is reversible like A1. Single-group
    // deployments never trigger it — the batch must span at least two
    // groups — which keeps the groups=1 message flow exactly the classic one.
    for (const PaxosMsgType verb : {PaxosMsgType::Phase2b, PaxosMsgType::Decision}) {
        std::vector<std::size_t> indices;
        std::vector<PaxosMessagePtr> entries;
        bool multi_group = false;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto& payload = batch[i].payload;
            if (!payload || payload->kind() != BodyKind::Paxos) continue;
            auto paxos = std::static_pointer_cast<const PaxosMessage>(payload);
            if (paxos->type() != verb) continue;
            if (!entries.empty() && paxos->group() != entries.front()->group()) {
                multi_group = true;
            }
            indices.push_back(i);
            entries.push_back(std::move(paxos));
        }
        if (!multi_group || entries.size() < 2) continue;
        stats_.cross_group_merged += entries.size() - 1;
        ++stats_.cross_group_batches;
        auto packed = std::make_shared<GroupBatchMsg>(self_, verb, std::move(entries));
        GossipAppMessage env;
        env.id = packed->unique_key();
        env.origin = self_;
        env.aggregated = true;  // the receiving gossip layer must unpack it
        env.payload = std::move(packed);
        batch[indices.front()] = std::move(env);
        // Erase the folded members back-to-front so indices stay valid.
        for (std::size_t j = indices.size(); j-- > 1;) {
            batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(indices[j]));
        }
    }
}

std::vector<GossipAppMessage> PaxosSemantics::disaggregate(const GossipAppMessage& msg) {
    if (!msg.payload || msg.payload->kind() != BodyKind::Paxos) return {msg};
    const auto paxos = std::static_pointer_cast<const PaxosMessage>(msg.payload);
    if (paxos->type() == PaxosMsgType::GroupBatch) {
        // X1 unpack: the entries ARE the original messages (same object
        // identity as packed), so ids and dedup behaviour match the
        // never-packed path exactly.
        const auto& batch = static_cast<const GroupBatchMsg&>(*paxos);
        ++stats_.disaggregations;
        std::vector<GossipAppMessage> out;
        out.reserve(batch.entries().size());
        for (const PaxosMessagePtr& entry : batch.entries()) {
            GossipAppMessage app;
            app.id = entry->unique_key();
            app.origin = entry->sender();
            app.payload = entry;
            app.hops = msg.hops;
            out.push_back(std::move(app));
        }
        return out;
    }
    if (paxos->type() != PaxosMsgType::Phase2bAggregate) return {msg};
    const auto& m = static_cast<const Phase2bAggregateMsg&>(*paxos);
    ++stats_.disaggregations;
    std::vector<GossipAppMessage> out;
    out.reserve(m.senders().size());
    for (const ProcessId sender : m.senders()) {
        auto single = std::make_shared<Phase2bMsg>(sender, m.instance(), m.round(),
                                                   m.value_id(), m.value_digest(), m.attempt());
        single->set_group(m.group());
        GossipAppMessage app;
        // Reconstructed messages carry the same id the original Phase 2b
        // would have, so the seen cache deduplicates across paths.
        app.id = single->unique_key();
        app.origin = sender;
        app.payload = std::move(single);
        out.push_back(std::move(app));
    }
    return out;
}

}  // namespace gossipc
