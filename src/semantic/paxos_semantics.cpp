#include "semantic/paxos_semantics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "check/gossip_invariants.hpp"

namespace gossipc {

PaxosSemantics::PaxosSemantics(ProcessId self, int quorum, Options options)
    : self_(self), quorum_(quorum), options_(options) {}

PeerView& PaxosSemantics::view(ProcessId peer) {
    auto it = views_.find(peer);
    if (it == views_.end()) {
        it = views_.emplace(peer, PeerView{quorum_}).first;
    }
    return it->second;
}

const PeerView* PaxosSemantics::view_of(ProcessId peer) const {
    const auto it = views_.find(peer);
    return it == views_.end() ? nullptr : &it->second;
}

bool PaxosSemantics::validate(const GossipAppMessage& msg, ProcessId peer) {
    if (!options_.filtering) return true;
    if (!msg.payload || msg.payload->kind() != BodyKind::Paxos) return true;
    const auto paxos = std::static_pointer_cast<const PaxosMessage>(msg.payload);
    switch (paxos->type()) {
        case PaxosMsgType::Phase2b: {
            const auto& m = static_cast<const Phase2bMsg&>(*paxos);
            PeerView& pv = view(peer);
            if (pv.knows_decision(m.instance())) {
                ++stats_.filtered_phase2b;
                return false;
            }
            const int votes =
                pv.record_vote(m.instance(), m.round(), m.value_digest(), m.sender());
            if (votes >= quorum_) pv.mark_decision(m.instance());
            return true;
        }
        case PaxosMsgType::Phase2bAggregate: {
            const auto& m = static_cast<const Phase2bAggregateMsg&>(*paxos);
            // G-AGG-2: a malformed aggregate (duplicate or missing senders)
            // would double-count one acceptor's vote toward the quorum below
            // and could mark a decision the peer cannot actually learn.
            check::check_aggregate_wellformed(m);
            PeerView& pv = view(peer);
            if (pv.knows_decision(m.instance())) {
                ++stats_.filtered_phase2b;
                return false;
            }
            int votes = 0;
            for (const ProcessId s : m.senders()) {
                votes = pv.record_vote(m.instance(), m.round(), m.value_digest(), s);
            }
            if (votes >= quorum_) pv.mark_decision(m.instance());
            return true;
        }
        case PaxosMsgType::Decision: {
            const auto& m = static_cast<const DecisionMsg&>(*paxos);
            PeerView& pv = view(peer);
            pv.mark_decision(m.instance());
            // gclint: allow(invariant-test-coverage) S-FLT-1 asserts a
            // postcondition of the mark_decision call on the previous line;
            // PeerView is a pure container with no forgetting path or debug
            // corruption hook, so no test can trip it without adding one.
            // S-FLT-1: the sent Decision must be visible in the peer view
            // immediately — filtering rule F1 is only sound while the view
            // remembers every Decision this process forwarded to the peer.
            GC_INVARIANT(pv.knows_decision(m.instance()),
                         "peer view lost the decision just marked for instance %lld",
                         static_cast<long long>(m.instance()));
            return true;
        }
        case PaxosMsgType::ClientValue:
        case PaxosMsgType::Phase1a:
        case PaxosMsgType::Phase1b:
        case PaxosMsgType::Phase2a:
        case PaxosMsgType::LearnRequest:
        case PaxosMsgType::Heartbeat:
            // No filtering rule applies (rules F1/F2 concern the Phase 2b
            // vote-counting path and Decisions only, Section 3.2).
            return true;
    }
    return true;
}

std::vector<GossipAppMessage> PaxosSemantics::aggregate(std::vector<GossipAppMessage> pending,
                                                        ProcessId peer) {
    (void)peer;
    if (!options_.aggregation || pending.size() < 2) return pending;
#if GC_ENABLE_INVARIANTS
    const std::vector<GossipAppMessage> before = pending;  // for S-AGG-1 below
#endif

    // Group Phase 2b messages by (instance, round, digest); groups of two or
    // more are merged into one multi-sender message placed at the position
    // of the group's first member.
    using Key = std::tuple<InstanceId, Round, std::uint64_t>;
    struct Group {
        std::vector<std::size_t> indices;
        std::vector<ProcessId> senders;
        ValueId value_id{};
        std::int32_t max_attempt = 0;
    };
    std::map<Key, Group> groups;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const auto& payload = pending[i].payload;
        if (!payload || payload->kind() != BodyKind::Paxos) continue;
        const auto paxos = std::static_pointer_cast<const PaxosMessage>(payload);
        if (paxos->type() != PaxosMsgType::Phase2b) continue;
        const auto& m = static_cast<const Phase2bMsg&>(*paxos);
        Group& g = groups[Key{m.instance(), m.round(), m.value_digest()}];
        g.indices.push_back(i);
        if (std::find(g.senders.begin(), g.senders.end(), m.sender()) == g.senders.end()) {
            g.senders.push_back(m.sender());
        }
        g.value_id = m.value_id();
        g.max_attempt = std::max(g.max_attempt, m.attempt());
    }

    std::vector<bool> drop(pending.size(), false);
    std::vector<GossipAppMessage> replacement(pending.size());
    for (auto& [key, g] : groups) {
        if (g.indices.size() < 2) continue;
        const auto& [instance, round, digest] = key;
        auto agg = std::make_shared<Phase2bAggregateMsg>(self_, instance, round, g.value_id,
                                                         digest, g.senders, g.max_attempt);
        GossipAppMessage out;
        out.id = agg->unique_key();
        out.origin = self_;
        out.aggregated = true;
        out.payload = std::move(agg);
        replacement[g.indices.front()] = std::move(out);
        for (std::size_t j = 1; j < g.indices.size(); ++j) drop[g.indices[j]] = true;
        ++stats_.aggregates_built;
        stats_.messages_merged += g.indices.size() - 1;
    }

    std::vector<GossipAppMessage> out;
    out.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (drop[i]) continue;
        if (replacement[i].payload) {
            out.push_back(std::move(replacement[i]));
        } else {
            out.push_back(std::move(pending[i]));
        }
    }
#if GC_ENABLE_INVARIANTS
    // S-AGG-1: aggregation is losslessly reversible — the receiver must be
    // able to reconstruct exactly the Phase 2b votes this batch carried.
    check::check_aggregation_roundtrip(before, out);
#endif
    return out;
}

std::vector<GossipAppMessage> PaxosSemantics::disaggregate(const GossipAppMessage& msg) {
    if (!msg.payload || msg.payload->kind() != BodyKind::Paxos) return {msg};
    const auto paxos = std::static_pointer_cast<const PaxosMessage>(msg.payload);
    if (paxos->type() != PaxosMsgType::Phase2bAggregate) return {msg};
    const auto& m = static_cast<const Phase2bAggregateMsg&>(*paxos);
    ++stats_.disaggregations;
    std::vector<GossipAppMessage> out;
    out.reserve(m.senders().size());
    for (const ProcessId sender : m.senders()) {
        auto single = std::make_shared<Phase2bMsg>(sender, m.instance(), m.round(),
                                                   m.value_id(), m.value_digest(), m.attempt());
        GossipAppMessage app;
        // Reconstructed messages carry the same id the original Phase 2b
        // would have, so the seen cache deduplicates across paths.
        app.id = single->unique_key();
        app.origin = sender;
        app.payload = std::move(single);
        out.push_back(std::move(app));
    }
    return out;
}

}  // namespace gossipc
