// Semantic Gossip for Paxos (Section 3.2): the gossip-layer hooks that
// exploit Paxos message semantics without modifying Paxos.
//
// Filtering rules:
//   F1 — a Decision for an instance renders Phase 2b messages of that
//        instance obsolete: once a Decision was sent to a peer, no further
//        Phase 2b for that instance is forwarded to it.
//   F2 — identical Phase 2b messages from a majority of distinct senders
//        let a process learn the decision: once a quorum of such votes was
//        sent to a peer, further Phase 2b for that instance are redundant.
//
// Aggregation rule (reversible):
//   A1 — pending Phase 2b messages for the same (instance, round, value)
//        differ only by sender; they are replaced by a single multi-sender
//        message of essentially the same size. The receiver reconstructs the
//        originals (disaggregate), so Paxos never sees the aggregate.
//
// Multi-group sharding (DESIGN.md §15): every rule is group-scoped — peer
// views are kept per (peer, group) so instance numbers never collide across
// groups — and one cross-group rule is added:
//   X1 — pending same-verb traffic (plain Phase 2b or Decisions) for
//        *different* groups bound to the same peer is packed into a single
//        GroupBatch envelope. Like A1 it is reversible: the receiver unpacks
//        the original messages, ids intact, before Paxos sees them.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "gossip/hooks.hpp"
#include "paxos/message.hpp"
#include "semantic/peer_view.hpp"

namespace gossipc {

class PaxosSemantics final : public GossipHooks {
public:
    struct Options {
        bool filtering = true;
        bool aggregation = true;
    };

    struct Stats {
        std::uint64_t filtered_phase2b = 0;   ///< 2b (or aggregates) dropped
        std::uint64_t aggregates_built = 0;   ///< aggregate messages created
        std::uint64_t messages_merged = 0;    ///< single 2b replaced by aggregates
        std::uint64_t disaggregations = 0;    ///< aggregates unpacked on receive
        std::uint64_t cross_group_batches = 0;  ///< X1 GroupBatch envelopes built
        std::uint64_t cross_group_merged = 0;   ///< messages folded into X1 batches
    };

    PaxosSemantics(ProcessId self, int quorum, Options options);

    bool validate(const GossipAppMessage& msg, ProcessId peer) override;
    std::vector<GossipAppMessage> aggregate(std::vector<GossipAppMessage> pending,
                                            ProcessId peer) override;
    std::vector<GossipAppMessage> disaggregate(const GossipAppMessage& msg) override;

    const Stats& stats() const { return stats_; }
    const Options& options() const { return options_; }

    /// Peer-view accessor for tests and diagnostics (group-scoped; the
    /// default selects the sole view of a single-group deployment).
    const PeerView* view_of(ProcessId peer, GroupId group = 0) const;

private:
    PeerView& view(ProcessId peer, GroupId group);
    /// Applies filtering rules F1/F2 to one plain Paxos message (never an
    /// aggregate or batch) bound for `peer`; false means provably obsolete.
    bool validate_plain(const PaxosMessage& paxos, ProcessId peer);
    /// X1: packs same-verb cross-group traffic in `batch` into GroupBatch
    /// envelopes (in place). No-op unless at least two groups are present.
    void pack_cross_group(std::vector<GossipAppMessage>& batch);

    ProcessId self_;
    int quorum_;
    Options options_;
    std::map<std::pair<ProcessId, GroupId>, PeerView> views_;
    Stats stats_;
};

}  // namespace gossipc
