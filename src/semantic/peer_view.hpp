// Per-peer knowledge summary kept by the semantic filtering rules.
//
// "The evaluation of the semantic filtering rules can be seen as a
// lightweight execution of the consensus protocol on behalf of a peer"
// (Section 3.2): for each peer we track which instances the peer is expected
// to already know the decision of, based on the messages previously sent to
// it — a Decision, or identical Phase 2b messages from a majority of
// distinct senders.
//
// Memory is bounded: known instances are compressed into a floor (all
// instances below it known) plus a sparse set, and vote tracking is dropped
// as soon as an instance becomes known.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/types.hpp"

namespace gossipc {

class PeerView {
public:
    explicit PeerView(int quorum);

    /// True if the peer is expected to already know the decision of
    /// `instance` from the messages previously sent to it.
    bool knows_decision(InstanceId instance) const;

    /// Records that a Decision for `instance` was sent to the peer.
    void mark_decision(InstanceId instance);

    /// Records that a Phase 2b vote by `sender` for (instance, round,
    /// digest) was sent to the peer. Returns the number of distinct senders
    /// recorded for that key (the caller marks the decision at quorum).
    int record_vote(InstanceId instance, Round round, std::uint64_t digest, ProcessId sender);

    int quorum() const { return quorum_; }

    /// Instances with live vote-tracking state (diagnostics/tests).
    std::size_t tracked_instances() const { return votes_.size(); }
    /// Known instances not yet compressed into the floor (diagnostics).
    std::size_t sparse_known() const { return known_.size(); }
    InstanceId known_floor() const { return floor_; }

private:
    void compress();

    int quorum_;
    InstanceId floor_ = 1;  ///< every instance < floor_ is known
    std::set<InstanceId> known_;
    using VoteKey = std::pair<Round, std::uint64_t>;
    std::map<InstanceId, std::map<VoteKey, std::set<ProcessId>>> votes_;
};

}  // namespace gossipc
