#include "fault/chaos.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace gossipc {

ChaosProfile ChaosProfile::light() {
    ChaosProfile p;
    p.name = "light";
    p.crashes = 1;
    p.wipe_prob = 0.0;
    p.partitions = 1;
    p.link_faults = 1;
    p.link_loss_max = 0.2;
    p.churn_ops = 2;
    return p;
}

ChaosProfile ChaosProfile::moderate() {
    return ChaosProfile{};
}

ChaosProfile ChaosProfile::heavy() {
    ChaosProfile p;
    p.name = "heavy";
    p.crashes = 4;
    p.wipe_prob = 0.5;
    p.partitions = 2;
    p.link_faults = 6;
    p.link_loss_max = 0.6;
    p.link_delay_max = SimTime::millis(60);
    p.link_duplicate_max = 0.5;
    p.link_reorder_max = SimTime::millis(8);
    p.churn_ops = 8;
    return p;
}

ChaosProfile ChaosProfile::heavy_failover() {
    ChaosProfile p = heavy();
    p.name = "heavy-failover";
    p.permanent_coordinator_crash = true;
    return p;
}

namespace {

/// Places a fault window inside [slot_begin, slot_end]: the length is drawn
/// from [min_len, max_len] (clamped to the slot), the offset uniformly.
std::pair<SimTime, SimTime> place_window(Rng& rng, SimTime slot_begin, SimTime slot_end,
                                         SimTime min_len, SimTime max_len) {
    const std::int64_t slot = std::max<std::int64_t>(
        slot_end.as_nanos() - slot_begin.as_nanos(), 1);
    const std::int64_t lo = std::min(min_len.as_nanos(), slot);
    const std::int64_t hi = std::min(max_len.as_nanos(), slot);
    const std::int64_t len = rng.uniform_int(std::min(lo, hi), std::max(lo, hi));
    const std::int64_t t0 =
        slot_begin.as_nanos() + rng.uniform_int(0, slot - len);
    return {SimTime::nanos(t0), SimTime::nanos(t0 + len)};
}

/// One directed link to target with a fault window: a random overlay edge
/// when an overlay is given, a random coordinator spoke otherwise (Baseline
/// star — the only links that exist there).
std::pair<ProcessId, ProcessId> pick_link(Rng& rng, int n, ProcessId coordinator,
                                          const Graph* overlay) {
    if (overlay != nullptr && overlay->edge_count() > 0) {
        const auto edges = overlay->edges();
        const auto& e = edges[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1))];
        return rng.chance(0.5) ? std::pair{e.first, e.second}
                               : std::pair{e.second, e.first};
    }
    auto spoke = static_cast<ProcessId>(rng.uniform_int(0, n - 1));
    if (spoke == coordinator) spoke = (spoke + 1) % n;
    return rng.chance(0.5) ? std::pair{coordinator, spoke} : std::pair{spoke, coordinator};
}

}  // namespace

FaultSchedule generate_chaos(int n, ProcessId coordinator, const ChaosProfile& profile,
                             std::uint64_t seed, const Graph* overlay, int num_groups) {
    if (n < 3) throw std::invalid_argument("generate_chaos: n must be >= 3");
    if (num_groups < 1) {
        throw std::invalid_argument("generate_chaos: num_groups must be >= 1");
    }
    FaultSchedule schedule;
    Rng rng = Rng::derive(seed, "chaos");
    const SimTime window_end = profile.start + profile.horizon;

    // Crashes: disjoint slots keep at most one process down at a time.
    for (int i = 0; i < profile.crashes; ++i) {
        const SimTime slot_begin =
            profile.start + SimTime::nanos(profile.horizon.as_nanos() * i / profile.crashes);
        const SimTime slot_end =
            profile.start +
            SimTime::nanos(profile.horizon.as_nanos() * (i + 1) / profile.crashes);
        const auto [down, up] =
            place_window(rng, slot_begin, slot_end, profile.crash_min, profile.crash_max);
        auto victim = static_cast<ProcessId>(rng.uniform_int(0, n - 1));
        if (victim == coordinator && profile.permanent_coordinator_crash) {
            // The coordinator is already permanently down in this profile;
            // redirect the slot to a process that can still be taken down.
            victim = (victim + 1) % n;
        }
        // Wipes never target a process that leads some consensus group: the
        // configured coordinator, plus — under multi-group rank placement
        // (DESIGN.md §15) — every node id below the group count. The check
        // short-circuits before the RNG draw exactly as the single-group
        // rule did, so num_groups = 1 schedules are byte-identical.
        const bool leads_some_group =
            victim == coordinator ||
            (num_groups > 1 && victim < static_cast<ProcessId>(std::min(num_groups, n)));
        const bool wipe = !leads_some_group && rng.chance(profile.wipe_prob);
        schedule.crash(down, victim, wipe);
        schedule.restart(up, victim);
    }

    // Permanent coordinator crash (failover stress): no matching restart.
    // Scheduled after the slot loop but with a fixed in-window timestamp;
    // it draws nothing from the RNG, so the rest of the schedule is
    // unchanged relative to the same profile without it.
    if (profile.permanent_coordinator_crash) {
        const SimTime at =
            profile.start + SimTime::nanos(static_cast<std::int64_t>(
                                static_cast<double>(profile.horizon.as_nanos()) *
                                profile.coordinator_crash_frac));
        schedule.crash(at, coordinator, /*wipe=*/false);
    }

    // Partitions: a minority side excluding the coordinator, healed in-slot.
    for (int i = 0; i < profile.partitions; ++i) {
        const SimTime slot_begin =
            profile.start +
            SimTime::nanos(profile.horizon.as_nanos() * i / profile.partitions);
        const SimTime slot_end =
            profile.start +
            SimTime::nanos(profile.horizon.as_nanos() * (i + 1) / profile.partitions);
        const auto [cut, heal] = place_window(rng, slot_begin, slot_end,
                                              profile.partition_min, profile.partition_max);
        const auto side_size =
            static_cast<std::int32_t>(rng.uniform_int(1, std::max(1, (n - 1) / 2)));
        const auto members = rng.sample_distinct(n, side_size, coordinator);
        std::vector<ProcessId> side(members.begin(), members.end());
        schedule.partition(cut, std::move(side));
        schedule.heal(heal);
    }

    // Asymmetric link-fault windows; may overlap each other and everything
    // else (that is the point).
    for (int i = 0; i < profile.link_faults; ++i) {
        const auto [from, to] = pick_link(rng, n, coordinator, overlay);
        const auto [begin, end] = place_window(rng, profile.start, window_end,
                                               profile.link_fault_min, profile.link_fault_max);
        LinkFaultSpec spec;
        spec.loss = rng.uniform01() * profile.link_loss_max;
        spec.extra_delay =
            SimTime::nanos(rng.uniform_int(0, profile.link_delay_max.as_nanos()));
        spec.duplicate = rng.uniform01() * profile.link_duplicate_max;
        spec.reorder_window =
            SimTime::nanos(rng.uniform_int(0, profile.link_reorder_max.as_nanos()));
        schedule.link_fault(begin, from, to, spec);
        schedule.link_fault_end(end, from, to);
    }

    // Overlay churn: only meaningful with a gossip overlay.
    if (overlay != nullptr && overlay->edge_count() > 0) {
        for (int i = 0; i < profile.churn_ops; ++i) {
            const std::int64_t latest =
                window_end.as_nanos() - profile.churn_revert_min.as_nanos();
            const SimTime t0 = SimTime::nanos(
                rng.uniform_int(profile.start.as_nanos(), std::max(profile.start.as_nanos(), latest)));
            const std::int64_t revert_len = rng.uniform_int(
                profile.churn_revert_min.as_nanos(), profile.churn_revert_max.as_nanos());
            const SimTime t1 = SimTime::nanos(
                std::min(t0.as_nanos() + revert_len, window_end.as_nanos()));
            if (i % 2 == 0) {
                // Drop an existing edge, re-add it later. The injector skips
                // the drop when it would disconnect the overlay.
                const auto edges = overlay->edges();
                const auto& e = edges[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1))];
                schedule.churn_drop(t0, e.first, e.second);
                schedule.churn_add(t1, e.first, e.second);
            } else {
                // Wire a fresh random edge, tear it down later.
                const auto a = static_cast<ProcessId>(rng.uniform_int(0, n - 1));
                auto b = static_cast<ProcessId>(rng.uniform_int(0, n - 2));
                if (b >= a) ++b;
                schedule.churn_add(t0, a, b);
                schedule.churn_drop(t1, a, b);
            }
        }
    }

    return schedule;
}

}  // namespace gossipc
