#include "fault/datagram_faults.hpp"

#include <cstdio>

#include "common/rng.hpp"

namespace gossipc::fault {

DatagramFate DatagramFaultModel::decide(const DatagramFaultSpec& spec, ProcessId from,
                                        ProcessId to, std::uint64_t seq) const {
    // One independent stream per (link, seq). Every roll is drawn
    // unconditionally and in a fixed order, so changing one spec field never
    // shifts the draws behind the others — a corpus pinned with loss-only
    // faults stays valid when duplication is turned on for the same seed.
    const std::uint64_t link = hash_combine(
        hash_combine(static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)),
                     static_cast<std::uint64_t>(static_cast<std::uint32_t>(to))),
        seq);
    Rng rng = Rng::derive(seed_, link);

    const double loss_roll = rng.uniform01();
    const double dup_roll = rng.uniform01();
    const double delay_frac = rng.uniform01();
    const double dup_delay_frac = rng.uniform01();
    const double trunc_roll = rng.uniform01();
    const double keep_roll = rng.uniform01();

    DatagramFate fate;
    if (loss_roll < spec.loss) {
        fate.drop = true;
        return fate;  // dropped datagrams have no further fate
    }
    if (spec.reorder_window > SimTime::zero()) {
        fate.delay = SimTime::nanos(static_cast<std::int64_t>(
            delay_frac * static_cast<double>(spec.reorder_window.as_nanos())));
    }
    if (dup_roll < spec.duplicate) {
        fate.duplicate = true;
        const SimTime window = spec.reorder_window > SimTime::zero()
                                   ? spec.reorder_window
                                   : SimTime::millis(1);
        fate.duplicate_delay = SimTime::nanos(static_cast<std::int64_t>(
            dup_delay_frac * static_cast<double>(window.as_nanos())));
    }
    if (trunc_roll < spec.truncate) {
        fate.truncated = true;
        // Keep between 10% and 90% of the datagram: always lose real bytes,
        // never the whole thing (total loss is what `loss` models).
        fate.keep_frac = 0.1 + 0.8 * keep_roll;
    }
    return fate;
}

std::string DatagramFaultModel::describe(ProcessId from, ProcessId to, std::uint64_t seq,
                                         const DatagramFate& fate) {
    if (fate.clean()) return {};
    char buf[160];
    std::string line;
    std::snprintf(buf, sizeof buf, "%d->%d seq=%llu", from, to,
                  static_cast<unsigned long long>(seq));
    line += buf;
    if (fate.drop) {
        line += " drop";
        return line;
    }
    if (fate.delay > SimTime::zero()) {
        std::snprintf(buf, sizeof buf, " delay_ns=%lld",
                      static_cast<long long>(fate.delay.as_nanos()));
        line += buf;
    }
    if (fate.duplicate) {
        std::snprintf(buf, sizeof buf, " dup_delay_ns=%lld",
                      static_cast<long long>(fate.duplicate_delay.as_nanos()));
        line += buf;
    }
    if (fate.truncated) {
        std::snprintf(buf, sizeof buf, " trunc_keep=%.6f", fate.keep_frac);
        line += buf;
    }
    return line;
}

}  // namespace gossipc::fault
