#include "fault/fault_schedule.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace gossipc {

namespace {

struct DescribeVisitor {
    std::ostringstream& o;

    void operator()(const CrashFault& f) {
        o << "crash p" << f.process << (f.wipe_state ? " wipe" : " preserve");
    }
    void operator()(const RestartFault& f) { o << "restart p" << f.process; }
    void operator()(const PartitionFault& f) {
        std::vector<ProcessId> side = f.side;
        std::sort(side.begin(), side.end());
        o << "partition {";
        for (std::size_t i = 0; i < side.size(); ++i) {
            if (i != 0) o << ',';
            o << side[i];
        }
        o << '}';
    }
    void operator()(const HealFault&) { o << "heal"; }
    void operator()(const LinkFaultStart& f) {
        o << "link-fault " << f.from << "->" << f.to << " loss=" << f.spec.loss
          << " delay_ns=" << f.spec.extra_delay.as_nanos() << " dup=" << f.spec.duplicate
          << " reorder_ns=" << f.spec.reorder_window.as_nanos();
    }
    void operator()(const LinkFaultEnd& f) {
        o << "link-fault-end " << f.from << "->" << f.to;
    }
    void operator()(const ChurnDropEdge& f) {
        o << "churn-drop " << f.a << "-" << f.b;
    }
    void operator()(const ChurnAddEdge& f) {
        o << "churn-add " << f.a << "-" << f.b;
    }
};

}  // namespace

std::string describe(const FaultAction& action) {
    std::ostringstream o;
    std::visit(DescribeVisitor{o}, action);
    return o.str();
}

void FaultSchedule::add(SimTime at, FaultAction action) {
    // Insert before the first strictly-later event: equal times keep
    // insertion order, matching the simulator queue's tie-break.
    const auto pos = std::upper_bound(
        events_.begin(), events_.end(), at,
        [](SimTime t, const FaultEvent& e) { return t < e.at; });
    events_.insert(pos, FaultEvent{at, std::move(action)});
}

void FaultSchedule::crash(SimTime at, ProcessId process, bool wipe_state) {
    add(at, CrashFault{process, wipe_state});
}

void FaultSchedule::restart(SimTime at, ProcessId process) {
    add(at, RestartFault{process});
}

void FaultSchedule::partition(SimTime at, std::vector<ProcessId> side) {
    add(at, PartitionFault{std::move(side)});
}

void FaultSchedule::heal(SimTime at) {
    add(at, HealFault{});
}

void FaultSchedule::link_fault(SimTime at, ProcessId from, ProcessId to, LinkFaultSpec spec) {
    add(at, LinkFaultStart{from, to, spec});
}

void FaultSchedule::link_fault_end(SimTime at, ProcessId from, ProcessId to) {
    add(at, LinkFaultEnd{from, to});
}

void FaultSchedule::churn_drop(SimTime at, ProcessId a, ProcessId b) {
    add(at, ChurnDropEdge{a, b});
}

void FaultSchedule::churn_add(SimTime at, ProcessId a, ProcessId b) {
    add(at, ChurnAddEdge{a, b});
}

void FaultSchedule::merge(const FaultSchedule& other) {
    for (const FaultEvent& e : other.events()) add(e.at, e.action);
}

std::string FaultSchedule::describe() const {
    std::ostringstream o;
    for (const FaultEvent& e : events_) {
        o << e.at.as_nanos() << ' ' << gossipc::describe(e.action) << '\n';
    }
    return o.str();
}

}  // namespace gossipc
