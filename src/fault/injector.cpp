#include "fault/injector.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "gossip/gossip_node.hpp"
#include "overlay/random_overlay.hpp"

namespace gossipc {

FaultInjector::FaultInjector(Simulator& sim, Network& network, FaultSchedule schedule,
                             Hooks hooks)
    : sim_(sim), network_(network), schedule_(std::move(schedule)), hooks_(std::move(hooks)) {
    for (const FaultEvent& e : schedule_.events()) {
        if (const auto* crash = std::get_if<CrashFault>(&e.action)) {
            if (crash->process < 0 || crash->process >= network_.size()) {
                throw std::invalid_argument("FaultInjector: crash targets unknown process");
            }
        } else if (const auto* restart = std::get_if<RestartFault>(&e.action)) {
            if (restart->process < 0 || restart->process >= network_.size()) {
                throw std::invalid_argument("FaultInjector: restart targets unknown process");
            }
        } else if (const auto* part = std::get_if<PartitionFault>(&e.action)) {
            for (const ProcessId p : part->side) {
                if (p < 0 || p >= network_.size()) {
                    throw std::invalid_argument("FaultInjector: partition side out of range");
                }
            }
        }
    }
}

FaultInjector::FaultInjector(Simulator& sim, Network& network, FaultSchedule schedule)
    : FaultInjector(sim, network, std::move(schedule), Hooks{}) {}

void FaultInjector::arm() {
    if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
    armed_ = true;
    for (std::size_t i = 0; i < schedule_.events().size(); ++i) {
        const FaultEvent& e = schedule_.events()[i];
        sim_.schedule_fault(e.at, [this, &e] { apply(e); });
    }
}

void FaultInjector::record(const FaultAction& action) {
    std::ostringstream o;
    o << sim_.now().as_nanos() << ' ' << describe(action);
    log_.push_back(o.str());
    ++counters_.applied;
}

void FaultInjector::record_skip(const FaultAction& action, const char* reason) {
    std::ostringstream o;
    o << sim_.now().as_nanos() << ' ' << describe(action) << " [skipped: " << reason << ']';
    log_.push_back(o.str());
    ++counters_.skipped;
}

void FaultInjector::apply(const FaultEvent& event) {
    if (const auto* f = std::get_if<CrashFault>(&event.action)) {
        apply_crash(*f);
    } else if (const auto* f = std::get_if<RestartFault>(&event.action)) {
        apply_restart(*f);
    } else if (const auto* f = std::get_if<PartitionFault>(&event.action)) {
        apply_partition(*f);
    } else if (std::get_if<HealFault>(&event.action) != nullptr) {
        apply_heal();
    } else if (const auto* f = std::get_if<LinkFaultStart>(&event.action)) {
        network_.set_link_fault(f->from, f->to, f->spec);
        ++counters_.link_faults;
        record(event.action);
    } else if (const auto* f = std::get_if<LinkFaultEnd>(&event.action)) {
        network_.clear_link_fault(f->from, f->to);
        ++counters_.link_fault_ends;
        record(event.action);
    } else if (const auto* f = std::get_if<ChurnDropEdge>(&event.action)) {
        apply_churn_drop(*f);
    } else if (const auto* f = std::get_if<ChurnAddEdge>(&event.action)) {
        apply_churn_add(*f);
    }
}

void FaultInjector::apply_crash(const CrashFault& f) {
    Node& node = network_.node(f.process);
    if (node.crashed()) {
        record_skip(CrashFault{f.process, f.wipe_state}, "already crashed");
        return;
    }
    node.crash();
    // The wipe is deferred to the restart: durable state is unobservable
    // while the process is down, and a process that never restarts is
    // indistinguishable from one whose disk burned.
    wipe_on_restart_[f.process] = f.wipe_state;
    ++counters_.crashes;
    record(CrashFault{f.process, f.wipe_state});
}

void FaultInjector::apply_restart(const RestartFault& f) {
    Node& node = network_.node(f.process);
    if (!node.crashed()) {
        record_skip(RestartFault{f.process}, "not crashed");
        return;
    }
    node.recover();
    ++counters_.restarts;
    const auto it = wipe_on_restart_.find(f.process);
    if (it != wipe_on_restart_.end() && it->second) {
        if (hooks_.wipe_state) {
            hooks_.wipe_state(f.process);
            ++counters_.wipes;
        } else {
            record_skip(RestartFault{f.process}, "wipe requested but no wipe hook");
            return;
        }
    }
    record(RestartFault{f.process});
}

void FaultInjector::apply_partition(const PartitionFault& f) {
    std::vector<bool> in_side(static_cast<std::size_t>(network_.size()), false);
    for (const ProcessId p : f.side) in_side[static_cast<std::size_t>(p)] = true;
    for (ProcessId a = 0; a < network_.size(); ++a) {
        if (!in_side[static_cast<std::size_t>(a)]) continue;
        for (ProcessId b = 0; b < network_.size(); ++b) {
            if (in_side[static_cast<std::size_t>(b)] || a == b) continue;
            if (network_.link_allowed(a, b)) network_.set_link_cut(a, b, true);
        }
    }
    ++counters_.partitions;
    record(PartitionFault{f.side});
}

void FaultInjector::apply_heal() {
    network_.clear_all_cuts();
    ++counters_.heals;
    record(HealFault{});
}

void FaultInjector::apply_churn_drop(const ChurnDropEdge& f) {
    if (hooks_.overlay == nullptr || !hooks_.gossip_node) {
        record_skip(ChurnDropEdge{f.a, f.b}, "no overlay");
        return;
    }
    if (!hooks_.overlay->has_edge(f.a, f.b)) {
        record_skip(ChurnDropEdge{f.a, f.b}, "edge absent");
        return;
    }
    // Refuse churn that would disconnect the overlay: gossip over a
    // disconnected overlay cannot converge, and real churned membership
    // re-establishes connectivity. The check is O(V+E) on a copy.
    Graph probe = *hooks_.overlay;
    probe.remove_edge(f.a, f.b);
    if (!is_connected(probe)) {
        record_skip(ChurnDropEdge{f.a, f.b}, "would disconnect overlay");
        return;
    }
    hooks_.overlay->remove_edge(f.a, f.b);
    if (GossipNode* ga = hooks_.gossip_node(f.a)) ga->remove_peer(f.b);
    if (GossipNode* gb = hooks_.gossip_node(f.b)) gb->remove_peer(f.a);
    ++counters_.edges_dropped;
    record(ChurnDropEdge{f.a, f.b});
}

void FaultInjector::apply_churn_add(const ChurnAddEdge& f) {
    if (hooks_.overlay == nullptr || !hooks_.gossip_node) {
        record_skip(ChurnAddEdge{f.a, f.b}, "no overlay");
        return;
    }
    if (hooks_.overlay->has_edge(f.a, f.b)) {
        record_skip(ChurnAddEdge{f.a, f.b}, "edge present");
        return;
    }
    hooks_.overlay->add_edge(f.a, f.b);
    if (!network_.link_allowed(f.a, f.b)) network_.allow_link(f.a, f.b);
    if (GossipNode* ga = hooks_.gossip_node(f.a)) ga->add_peer(f.b);
    if (GossipNode* gb = hooks_.gossip_node(f.b)) gb->add_peer(f.a);
    ++counters_.edges_added;
    record(ChurnAddEdge{f.a, f.b});
}

std::string FaultInjector::rendered_log() const {
    std::ostringstream o;
    for (const std::string& line : log_) o << line << '\n';
    return o.str();
}

}  // namespace gossipc
