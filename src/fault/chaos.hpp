// Seeded chaos-schedule generation (DESIGN.md §7).
//
// A ChaosProfile describes fault *intensity* (how many crashes, partitions,
// link-fault windows, and churn operations, and how severe each may be);
// generate_chaos() samples a concrete FaultSchedule from (profile, seed).
// Every run is replayable from the pair: the generator derives one RNG
// stream from the seed and draws from it in a fixed order, so the same
// (profile, seed, topology) always yields the identical schedule.
//
// Generated schedules are self-resolving: every crash has a restart, every
// partition a heal, every link-fault window an end, and every dropped
// overlay edge a re-add, all within [start, start + horizon]. Safety must
// hold throughout; liveness assertions belong after the horizon. The one
// exception is permanent_coordinator_crash: the coordinator goes down and
// never restarts, so liveness additionally requires failover (DESIGN.md §8)
// — profiles with it set are only meaningful on failover-enabled runs.
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault_schedule.hpp"
#include "overlay/graph.hpp"

namespace gossipc {

struct ChaosProfile {
    std::string name = "moderate";

    /// Faults are injected within [start, start + horizon] and all resolved
    /// by the end of the window.
    SimTime start = SimTime::millis(250);
    SimTime horizon = SimTime::seconds(2);

    // Crash/restart cycles. Windows are placed in disjoint time slots, so at
    // most one process is down at any instant and a quorum stays live.
    int crashes = 2;
    /// Probability that a crash loses durable storage (never applied to the
    /// configured coordinator — without failover a wiped proposal ledger is
    /// not a recoverable state, and keeping the exclusion makes every
    /// profile valid on both failover and non-failover runs).
    double wipe_prob = 0.25;
    SimTime crash_min = SimTime::millis(100);
    SimTime crash_max = SimTime::millis(500);

    /// Crash the coordinator permanently (no restart) partway through the
    /// window, at start + horizon * coordinator_crash_frac. The regular
    /// crash slots then avoid the coordinator (it is already down for good).
    /// Requires failover for liveness.
    bool permanent_coordinator_crash = false;
    double coordinator_crash_frac = 0.25;

    // Partition/heal cycles, also in disjoint slots. The side is a minority
    // never containing the coordinator, so the majority keeps deciding and
    // the healed side must catch up.
    int partitions = 1;
    SimTime partition_min = SimTime::millis(200);
    SimTime partition_max = SimTime::millis(800);

    // Structured per-link fault windows (asymmetric: one direction each).
    int link_faults = 3;
    double link_loss_max = 0.4;
    SimTime link_delay_max = SimTime::millis(30);
    double link_duplicate_max = 0.3;
    SimTime link_reorder_max = SimTime::millis(4);
    SimTime link_fault_min = SimTime::millis(200);
    SimTime link_fault_max = SimTime::millis(900);

    // Overlay churn operations: alternately drop-then-re-add an existing
    // edge and add-then-drop a fresh edge.
    int churn_ops = 4;
    SimTime churn_revert_min = SimTime::millis(150);
    SimTime churn_revert_max = SimTime::millis(600);

    static ChaosProfile light();
    static ChaosProfile moderate();
    static ChaosProfile heavy();
    /// heavy() plus a permanent coordinator crash: the failover stress
    /// profile (only survivable with failover enabled).
    static ChaosProfile heavy_failover();
};

/// Samples a fault schedule for an n-process deployment. `overlay` (when
/// present) targets link faults and churn at real overlay edges; without it
/// (Baseline star) link faults target coordinator links and churn is
/// omitted. `num_groups` > 1 widens the wipe exclusion from the configured
/// coordinator to every rank-placed group coordinator (nodes 0..groups-1,
/// DESIGN.md §15); num_groups = 1 schedules are byte-identical to before
/// the parameter existed. Deterministic in (n, coordinator, profile, seed,
/// overlay, num_groups).
FaultSchedule generate_chaos(int n, ProcessId coordinator, const ChaosProfile& profile,
                             std::uint64_t seed, const Graph* overlay = nullptr,
                             int num_groups = 1);

}  // namespace gossipc
