// Deterministic datagram-boundary fault model for the UDP runtime
// (DESIGN.md §12).
//
// Mirrors the simulator's LinkFaultSpec semantics (loss, duplication,
// reordering) at the datagram boundary and adds MTU truncation — the one
// fault class a datagram transport has that a stream transport does not.
// Every decision is a pure function of (seed, from, to, seq): the model
// keeps no state, so the same seed replays the exact same per-datagram
// fate regardless of wall-clock interleaving. That is what lets the lossy
// in-process harness (runtime/lossy_link.hpp) produce byte-identical fault
// logs across runs, and what the pinned corpus in tests/test_regressions.cpp
// freezes against drift.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace gossipc::fault {

/// A structured fault window on one *directed* datagram link. Field
/// semantics match net/network.hpp's LinkFaultSpec where they overlap;
/// `truncate` is datagram-specific (a slice off the tail, as an MTU
/// mismatch or a clipped fragment would produce).
struct DatagramFaultSpec {
    /// Probability that a datagram is dropped in flight.
    double loss = 0.0;
    /// Probability that a datagram is delivered twice (the copy gets its own
    /// delay draw, so it may also arrive out of order).
    double duplicate = 0.0;
    /// When non-zero, each datagram gets uniform extra delay in
    /// [0, reorder_window] — later sends can overtake earlier ones.
    SimTime reorder_window = SimTime::zero();
    /// Probability that a datagram arrives with its tail sliced off (the
    /// kept fraction is drawn per datagram). Truncated datagrams must be
    /// rejected cleanly by the datagram codec, never crash it.
    double truncate = 0.0;
    /// Deterministic extra one-way delay added to every delivery on the
    /// link (mirrors LinkFaultSpec::extra_delay). Applied by the harness on
    /// top of the per-datagram fate; it draws no RNG roll and is never part
    /// of the fate log, so adding a delay window cannot perturb the pinned
    /// fate corpus.
    SimTime extra_delay = SimTime::zero();

    bool active() const {
        return loss > 0.0 || duplicate > 0.0 || reorder_window > SimTime::zero() ||
               truncate > 0.0 || extra_delay > SimTime::zero();
    }
};

/// Per-datagram fate. `delay`/`duplicate_delay` are the extra reorder delays
/// for the original and the duplicate copy; `keep_frac` is the fraction of
/// the datagram's bytes delivered when truncated (tail removed).
struct DatagramFate {
    bool drop = false;
    bool duplicate = false;
    bool truncated = false;
    SimTime delay = SimTime::zero();
    SimTime duplicate_delay = SimTime::zero();
    double keep_frac = 1.0;

    bool clean() const { return !drop && !duplicate && !truncated && delay == SimTime::zero(); }
};

/// Stateless decision source: decide() derives an independent RNG stream
/// from (seed, from, to, seq) and draws every roll in a fixed order, so a
/// fate depends only on those four values — never on how many other
/// datagrams were decided first.
class DatagramFaultModel {
public:
    explicit DatagramFaultModel(std::uint64_t seed) : seed_(seed) {}

    std::uint64_t seed() const { return seed_; }

    DatagramFate decide(const DatagramFaultSpec& spec, ProcessId from, ProcessId to,
                        std::uint64_t seq) const;

    /// Canonical one-line rendering of a non-clean fate, byte-stable for the
    /// replay log: "<from>-><to> seq=<seq> <tokens...>". Clean fates render
    /// to the empty string (they are not logged).
    static std::string describe(ProcessId from, ProcessId to, std::uint64_t seq,
                                const DatagramFate& fate);

private:
    std::uint64_t seed_;
};

}  // namespace gossipc::fault
