// Fault injection engine (DESIGN.md §7): replays a FaultSchedule against a
// live deployment.
//
// arm() schedules every event in the simulator's fault lane (first-class
// queue entries that fire before same-instant protocol activity). Applying
// an event mutates the network/node/overlay state and appends one line to
// the injected-fault log; events that cannot apply (restart of a live
// process, churn that would disconnect the overlay, ...) are logged as
// skipped rather than silently dropped. The log is deterministic: the same
// (schedule, deployment seed) yields a byte-identical log on every run —
// that property is what makes chaos seeds replayable and pinnable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "net/network.hpp"
#include "overlay/graph.hpp"
#include "sim/simulator.hpp"

namespace gossipc {

class GossipNode;

class FaultInjector {
public:
    /// Optional wiring beyond the raw network. Without gossip hooks, churn
    /// events are logged as skipped (Baseline has no overlay to churn);
    /// without a wipe hook, wipe-marked restarts preserve state (logged).
    struct Hooks {
        /// Resolves a process's gossip layer; may be empty or return null.
        std::function<GossipNode*(ProcessId)> gossip_node;
        /// Wipes a process's durable state and re-baselines its shadow
        /// monitors (Deployment wires this to PaxosProcess::wipe_state +
        /// PaxosCheckHandles::forget_process).
        std::function<void(ProcessId)> wipe_state;
        /// The live overlay, mutated by churn (edge accounting).
        Graph* overlay = nullptr;
    };

    struct Counters {
        std::uint64_t applied = 0;  ///< events that took effect
        std::uint64_t skipped = 0;  ///< events logged as inapplicable
        std::uint64_t crashes = 0;
        std::uint64_t restarts = 0;
        std::uint64_t wipes = 0;    ///< restarts that wiped durable state
        std::uint64_t partitions = 0;
        std::uint64_t heals = 0;
        std::uint64_t link_faults = 0;
        std::uint64_t link_fault_ends = 0;
        std::uint64_t edges_dropped = 0;  ///< churn edge accounting
        std::uint64_t edges_added = 0;
    };

    FaultInjector(Simulator& sim, Network& network, FaultSchedule schedule, Hooks hooks);
    /// Hook-less injector: crash/partition/link faults only; churn and state
    /// wipes are logged as skipped.
    FaultInjector(Simulator& sim, Network& network, FaultSchedule schedule);

    /// Schedules every event as a simulator fault entry. Call exactly once,
    /// before running.
    void arm();

    const FaultSchedule& schedule() const { return schedule_; }
    const Counters& counters() const { return counters_; }

    /// The injected-fault log: one line per applied (or skipped) event, in
    /// execution order.
    const std::vector<std::string>& log() const { return log_; }
    /// The log joined with newlines — byte-identical across replays of the
    /// same (schedule, deployment seed).
    std::string rendered_log() const;

private:
    void apply(const FaultEvent& event);
    void apply_crash(const CrashFault& f);
    void apply_restart(const RestartFault& f);
    void apply_partition(const PartitionFault& f);
    void apply_heal();
    void apply_churn_drop(const ChurnDropEdge& f);
    void apply_churn_add(const ChurnAddEdge& f);
    void record(const FaultAction& action);
    void record_skip(const FaultAction& action, const char* reason);

    Simulator& sim_;
    Network& network_;
    FaultSchedule schedule_;
    Hooks hooks_;
    bool armed_ = false;
    std::unordered_map<ProcessId, bool> wipe_on_restart_;
    Counters counters_;
    std::vector<std::string> log_;
};

}  // namespace gossipc
