// Deterministic fault schedules (DESIGN.md §7).
//
// A FaultSchedule is a time-ordered list of typed, simulator-clock-driven
// fault events: process crashes/restarts (with or without durable-state
// loss), network partitions and heals, structured per-link fault windows
// (asymmetric loss, delay spikes, duplication, reordering), and overlay
// churn. A schedule is pure data — building one performs no side effects;
// the FaultInjector replays it against a live deployment, and the
// ChaosGenerator samples one from a (seed, profile) pair. Everything is
// replayable: the same schedule applied to the same deployment produces a
// byte-identical injected-fault log.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"

namespace gossipc {

/// Crash a process at the scheduled time: pending tasks are discarded and
/// all traffic is dropped until the matching Restart. `wipe_state` marks the
/// crash as losing durable storage — the wipe itself happens at Restart
/// (state is unobservable while the process is down).
struct CrashFault {
    ProcessId process = -1;
    bool wipe_state = false;
};

/// Restart a crashed process; if its crash was marked wipe_state, the
/// acceptor/learner state is wiped and the shadow monitors re-baselined.
struct RestartFault {
    ProcessId process = -1;
};

/// Cut every allowed link between `side` and the rest of the deployment
/// (both directions — partitions are symmetric). Partitions do not compose:
/// a Heal restores every cut link.
struct PartitionFault {
    std::vector<ProcessId> side;
};

/// Heal the current partition (restores all cut links).
struct HealFault {};

/// Install a structured fault window on the directed link from -> to.
struct LinkFaultStart {
    ProcessId from = -1;
    ProcessId to = -1;
    LinkFaultSpec spec;
};

/// Remove the fault window from the directed link from -> to.
struct LinkFaultEnd {
    ProcessId from = -1;
    ProcessId to = -1;
};

/// Overlay churn: drop the undirected overlay edge (a, b). Skipped (and
/// logged) when the edge is absent or dropping it would disconnect the
/// overlay — gossip over a disconnected overlay cannot make progress and
/// real churned overlays re-establish connectivity.
struct ChurnDropEdge {
    ProcessId a = -1;
    ProcessId b = -1;
};

/// Overlay churn: add the undirected overlay edge (a, b) (re-adding a
/// dropped edge or wiring a fresh one). Skipped when already present.
struct ChurnAddEdge {
    ProcessId a = -1;
    ProcessId b = -1;
};

using FaultAction = std::variant<CrashFault, RestartFault, PartitionFault, HealFault,
                                 LinkFaultStart, LinkFaultEnd, ChurnDropEdge, ChurnAddEdge>;

/// Canonical one-line rendering, used for the injected-fault log. Stable
/// across runs: field order fixed, times in integer nanoseconds, partition
/// sides sorted.
std::string describe(const FaultAction& action);

struct FaultEvent {
    SimTime at;
    FaultAction action;
};

/// An ordered fault schedule. Events keep (time, insertion-order) order —
/// same tie-break as the simulator queue, so iterating the schedule lists
/// events exactly in execution order.
class FaultSchedule {
public:
    void add(SimTime at, FaultAction action);

    // Convenience builders.
    void crash(SimTime at, ProcessId process, bool wipe_state = false);
    void restart(SimTime at, ProcessId process);
    void partition(SimTime at, std::vector<ProcessId> side);
    void heal(SimTime at);
    void link_fault(SimTime at, ProcessId from, ProcessId to, LinkFaultSpec spec);
    void link_fault_end(SimTime at, ProcessId from, ProcessId to);
    void churn_drop(SimTime at, ProcessId a, ProcessId b);
    void churn_add(SimTime at, ProcessId a, ProcessId b);

    /// Appends every event of `other`, re-sorting into execution order.
    void merge(const FaultSchedule& other);

    const std::vector<FaultEvent>& events() const { return events_; }
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    /// The schedule rendered one event per line ("<nanos> <action>\n"...);
    /// byte-stable for identical schedules.
    std::string describe() const;

private:
    std::vector<FaultEvent> events_;  // kept sorted by (at, insertion order)
};

}  // namespace gossipc
