// Client values ordered by Paxos. The payload is modelled by its size (the
// experiments use 1KB values); identity and integrity are carried by the
// (client, sequence) id and a digest derived from it.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace gossipc {

struct Value {
    ValueId id{};
    std::uint32_t size_bytes = 1024;

    /// Digest used by Phase 2b / Decision messages to refer to the value
    /// without carrying the payload.
    std::uint64_t digest() const {
        return hash_combine(hash_combine(0x5a1cebULL, static_cast<std::uint64_t>(id.client)),
                            static_cast<std::uint64_t>(id.seq));
    }

    friend bool operator==(const Value& a, const Value& b) {
        return a.id == b.id && a.size_bytes == b.size_bytes;
    }
};

}  // namespace gossipc
