// Client values ordered by Paxos. The payload is modelled by its size (the
// experiments use 1KB values); identity and integrity are carried by the
// (client, sequence) id and a digest derived from it.
//
// A Value is either *plain* (one client submission, `batch` empty) or
// *composite* (a coordinator-built batch of plain values ordered as one
// Paxos instance, `batch` non-empty — DESIGN.md §14). Components are always
// plain, so composites never nest. A composite's identity is synthesized by
// the coordinator (negative client id, see Coordinator::flush_pending) and
// its digest folds the component digests, so Phase 2b / Decision digest
// agreement covers the full batch content.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace gossipc {

struct Value {
    ValueId id{};
    std::uint32_t size_bytes = 1024;

    /// Component values when this is a coordinator-side batch (composite).
    /// Empty for plain client values. Components are always plain.
    std::vector<Value> batch;

    bool is_batch() const { return !batch.empty(); }

    /// Digest used by Phase 2b / Decision messages to refer to the value
    /// without carrying the payload. Plain values keep the historical
    /// formula byte-for-byte; composites fold the component digests after a
    /// distinct tag so a batch can never collide with a plain value that
    /// happens to share the synthesized id.
    std::uint64_t digest() const {
        std::uint64_t h =
            hash_combine(hash_combine(0x5a1cebULL, static_cast<std::uint64_t>(id.client)),
                         static_cast<std::uint64_t>(id.seq));
        if (batch.empty()) return h;
        h = hash_combine(h, 0xba7c4ULL);
        for (const Value& v : batch) h = hash_combine(h, v.digest());
        return h;
    }

    friend bool operator==(const Value& a, const Value& b) {
        return a.id == b.id && a.size_bytes == b.size_bytes && a.batch == b.batch;
    }
};

/// Packs plain values into one composite ordered as a single Paxos
/// instance. `id` is the synthesized batch identity (negative client id so
/// it can never collide with a real client's ValueId). The composite's
/// size_bytes models the batch framing: the sum of component payloads plus
/// a 16-byte per-entry header, matching what the wire codec ships.
inline Value make_batch_value(ValueId id, std::vector<Value> components) {
    Value v;
    v.id = id;
    std::uint64_t total = 0;
    for (const Value& c : components) total += c.size_bytes + 16u;
    v.size_bytes = static_cast<std::uint32_t>(total);
    v.batch = std::move(components);
    return v;
}

}  // namespace gossipc
