#include "paxos/learner.hpp"

#include <stdexcept>

namespace gossipc {

Learner::Learner(int quorum) : quorum_(quorum) {
    if (quorum <= 0) throw std::invalid_argument("Learner: quorum must be positive");
}

void Learner::note_instance(InstanceId instance) {
    if (instance > highest_seen_) highest_seen_ = instance;
}

void Learner::on_phase2a(const Phase2aMsg& msg, CpuContext& ctx) {
    note_instance(msg.instance());
    if (msg.instance() < frontier_) return;  // already delivered
    InstState& st = inst_[msg.instance()];
    st.values_by_digest.emplace(msg.value().digest(), msg.value());
    if (st.decided) {
        maybe_notify_decided(msg.instance(), st, ctx);
        try_deliver(ctx);  // a late 2a can unblock delivery
    }
}

void Learner::on_phase2b(const Phase2bMsg& msg, CpuContext& ctx) {
    note_instance(msg.instance());
    if (msg.instance() < frontier_) return;
    InstState& st = inst_[msg.instance()];
    if (st.decided) return;
    auto& voters = st.votes[{msg.round(), msg.value_digest()}];
    voters.insert(msg.sender());
    if (static_cast<int>(voters.size()) >= quorum_) {
        mark_decided(msg.instance(), msg.value_id(), msg.value_digest(),
                     /*via_quorum=*/true, ctx);
    }
}

void Learner::on_decision(const DecisionMsg& msg, CpuContext& ctx) {
    note_instance(msg.instance());
    if (msg.instance() < frontier_) return;
    InstState& st = inst_[msg.instance()];
    // P-LRN-1: all decisions for one instance carry the same value. A
    // Decision disagreeing with an earlier one (from a quorum of 2b or a
    // previous Decision) is direct evidence of an agreement violation.
    GC_INVARIANT(!st.decided || st.decided_digest == msg.value_digest(),
                 "conflicting decisions for instance %lld: digest %016llx, then %016llx "
                 "from process %d",
                 static_cast<long long>(msg.instance()),
                 static_cast<unsigned long long>(st.decided_digest),
                 static_cast<unsigned long long>(msg.value_digest()), msg.sender());
    if (msg.full_value()) {
        st.values_by_digest.emplace(msg.value_digest(), *msg.full_value());
    }
    if (!st.decided) {
        mark_decided(msg.instance(), msg.value_id(), msg.value_digest(),
                     /*via_quorum=*/false, ctx);
    } else if (msg.full_value()) {
        maybe_notify_decided(msg.instance(), st, ctx);
        try_deliver(ctx);  // a repair Decision may unblock delivery
    }
}

void Learner::mark_decided(InstanceId instance, ValueId value_id, std::uint64_t digest,
                           bool via_quorum, CpuContext& ctx) {
    InstState& st = inst_[instance];
    st.decided = true;
    st.via_quorum = via_quorum;
    st.decided_digest = digest;
    st.decided_value_id = value_id;
    st.votes.clear();  // no longer needed
    maybe_notify_decided(instance, st, ctx);
    try_deliver(ctx);
}

void Learner::maybe_notify_decided(InstanceId instance, InstState& st, CpuContext& ctx) {
    if (st.listener_notified || !decided_listener_) return;
    const auto it = st.values_by_digest.find(st.decided_digest);
    if (it == st.values_by_digest.end()) return;  // payload not yet known
    st.listener_notified = true;
    decided_listener_(instance, it->second, st.via_quorum, ctx);
}

void Learner::try_deliver(CpuContext& ctx) {
    while (true) {
        const auto it = inst_.find(frontier_);
        if (it == inst_.end() || !it->second.decided) return;
        const auto vit = it->second.values_by_digest.find(it->second.decided_digest);
        if (vit == it->second.values_by_digest.end()) return;  // payload missing
        const Value value = vit->second;
        log_.emplace(frontier_, value);
        ++delivered_count_;
        const InstanceId delivered = frontier_;
        inst_.erase(it);
        ++frontier_;
        if (deliver_) deliver_(delivered, value, ctx);
    }
}

bool Learner::knows_decision(InstanceId instance) const {
    if (instance < frontier_) return true;
    const auto it = inst_.find(instance);
    return it != inst_.end() && it->second.decided;
}

std::optional<Value> Learner::decided_value(InstanceId instance) const {
    if (const auto lit = log_.find(instance); lit != log_.end()) return lit->second;
    const auto it = inst_.find(instance);
    if (it == inst_.end() || !it->second.decided) return std::nullopt;
    const auto vit = it->second.values_by_digest.find(it->second.decided_digest);
    if (vit == it->second.values_by_digest.end()) return std::nullopt;
    return vit->second;
}

std::optional<std::uint64_t> Learner::decided_digest(InstanceId instance) const {
    if (const auto lit = log_.find(instance); lit != log_.end()) {
        return lit->second.digest();
    }
    const auto it = inst_.find(instance);
    if (it == inst_.end() || !it->second.decided) return std::nullopt;
    return it->second.decided_digest;
}

bool Learner::value_missing(InstanceId instance) const {
    const auto it = inst_.find(instance);
    if (it == inst_.end() || !it->second.decided) return false;
    return !it->second.values_by_digest.contains(it->second.decided_digest);
}

void Learner::truncate_log_below(InstanceId instance) {
    log_.erase(log_.begin(), log_.lower_bound(instance));
}

}  // namespace gossipc
