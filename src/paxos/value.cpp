#include "paxos/value.hpp"

// Value is header-only; this translation unit anchors the target.
