#include "paxos/coordinator.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gossipc {

Coordinator::Coordinator(const PaxosConfig& config, Transport& transport, Learner& learner)
    : config_(config), transport_(transport), learner_(learner) {}

void Coordinator::start(CpuContext& ctx) {
    if (config_.timeouts_enabled && !retransmit_armed_) {
        retransmit_armed_ = true;
        transport_.schedule_every(config_.retransmit_interval,
                                  [this](CpuContext& c) { retransmit_sweep(c); });
    }
    begin_phase1(ctx);
}

void Coordinator::begin_phase1(CpuContext& ctx) {
    round_ = config_.round_for(config_.id, phase1_attempt_);
    ++phase1_attempt_;
    // A crash drops one-shot timers; the armed state must not outlive them
    // or the first partial batch after recovery would never timer-flush.
    // complete_phase1 full-flushes anyway, so nothing is lost either way.
    flush_deadline_ = SimTime::zero();
    phase1_from_ = learner_.frontier();
    phase1_complete_ = false;
    promises_.clear();
    reported_.clear();
    GCLOG_DEBUG("coordinator " << config_.id << " starting phase 1, round " << round_);
    phase1_started_at_ = ctx.now();
    transport_.broadcast(
        std::make_shared<Phase1aMsg>(config_.id, round_, phase1_from_), ctx);
    // Phase 1 retries ride on the retransmit sweep (a schedule_every chain
    // that survives crash/restart); a one-shot timer here would die with the
    // process and leave an active coordinator stuck mid-Phase-1 forever.
}

void Coordinator::activate(Round min_round, CpuContext& ctx) {
    active_ = true;
    while (config_.round_for(config_.id, phase1_attempt_) <= min_round) ++phase1_attempt_;
    // A successor must not re-order values the previous coordinator already
    // got decided: seed the dedup set with every decision known locally, so
    // origin retransmissions of those values are dropped as duplicates.
    for (InstanceId i = 1; i <= learner_.highest_seen(); ++i) {
        if (const auto v = learner_.decided_value(i)) note_seen(*v);
    }
    start(ctx);
}

std::vector<Value> Coordinator::step_down() {
    active_ = false;
    phase1_complete_ = false;
    promises_.clear();
    reported_.clear();
    std::vector<Value> orphaned;
    orphaned.reserve(proposals_.size() + pending_.size());
    // In-flight composites are unpacked to their components: the orphans are
    // re-routed as client submissions keyed on real client ids, and the new
    // coordinator must be free to re-batch them its own way.
    for (auto& [instance, proposal] : proposals_) {
        if (proposal.value.is_batch()) {
            seen_values_.erase(proposal.value.id);
            for (Value& c : proposal.value.batch) orphaned.push_back(std::move(c));
        } else {
            orphaned.push_back(std::move(proposal.value));
        }
    }
    proposals_.clear();
    for (Value& v : pending_) orphaned.push_back(std::move(v));
    pending_.clear();
    // This coordinator no longer answers for these values; forget them so a
    // later re-activation can accept them again instead of deduplicating.
    for (const Value& v : orphaned) seen_values_.erase(v.id);
    return orphaned;
}

void Coordinator::on_phase1b(const Phase1bMsg& msg, CpuContext& ctx) {
    if (!active_ || msg.round() != round_ || phase1_complete_) return;
    promises_.insert(msg.sender());
    for (const auto& entry : msg.accepted()) {
        auto [it, inserted] = reported_.emplace(entry.instance, entry);
        if (!inserted && entry.vround > it->second.vround) it->second = entry;
    }
    if (static_cast<int>(promises_.size()) >= config_.quorum()) {
        complete_phase1(ctx);
    }
}

void Coordinator::complete_phase1(CpuContext& ctx) {
    phase1_complete_ = true;
    next_instance_ = std::max(next_instance_, phase1_from_);
    // Re-propose values possibly chosen in lower rounds (Phase 1 obligation).
    for (const auto& [instance, entry] : reported_) {
        // Reported-but-already-decided instances must still advance the
        // proposal cursor, or fresh values would be proposed into them.
        next_instance_ = std::max(next_instance_, instance + 1);
        // The decision may be known only by digest (a Decision arrived but
        // the Phase 2a carrying the value bytes was lost, e.g. during a
        // partition); the reported value is the missing payload — cache it
        // so the learner can resolve the digest and deliver.
        learner_.on_phase2a(Phase2aMsg(config_.id, instance, entry.vround, entry.value), ctx);
        if (learner_.knows_decision(instance)) {
            // Treat the reported value as consumed only when it IS the
            // decided value. A lower-round casualty that lost its instance
            // to another value was never chosen anywhere — marking it seen
            // would drop every origin retransmission as a duplicate and
            // lose the value for good (observed live under the runtime
            // chaos bridge, DESIGN.md §13).
            if (learner_.decided_digest(instance) == entry.value.digest()) {
                note_seen(entry.value);
                drop_pending_for(entry.value);
            }
            continue;
        }
        // Re-proposing it here: (possibly) already chosen under this
        // instance, and now in flight again — seen either way, so an origin
        // retransmission cannot get it proposed into a second instance.
        note_seen(entry.value);
        drop_pending_for(entry.value);
        ++counters_.reproposals;
        propose(instance, entry.value, ctx);
    }
    next_instance_ = std::max(next_instance_, learner_.frontier());
    GCLOG_DEBUG("coordinator " << config_.id << " phase 1 complete, round " << round_
                               << ", next instance " << next_instance_);
    flush_pending(ctx);
}

void Coordinator::on_client_value(const Value& value, CpuContext& ctx) {
    if (!active_) return;  // origin processes retransmit to the new coordinator
    if (seen_values_.count(value.id) != 0) {
        ++counters_.duplicate_values;
        return;
    }
    // Backpressure: an overloaded coordinator sheds instead of growing the
    // queue without bound. Shed values are NOT marked seen — the origin's
    // repair sweep retransmits them and a later, less loaded arrival gets
    // through; marking them seen here would drop every retry as a duplicate
    // and lose the value for good.
    if (pending_.size() >= config_.pending_cap) {
        ++counters_.values_shed;
        return;
    }
    seen_values_.insert(value.id);
    pending_.push_back(value);
    if (phase1_complete_) maybe_flush(ctx);
}

void Coordinator::maybe_flush(CpuContext& ctx) {
    if (!active_ || !phase1_complete_ || pending_.empty()) return;
    if (config_.batch_size <= 1 || pending_.size() >= config_.batch_size) {
        flush_pending(ctx);
        return;
    }
    arm_flush_timer(ctx);
}

void Coordinator::arm_flush_timer(CpuContext& ctx) {
    // A live timer is pending: nothing to do. But if the recorded deadline
    // has passed without the callback clearing it, the one-shot was dropped
    // by a crash — treat the state as stale and re-arm, or the coordinator
    // would never timer-flush again until its next Phase 1.
    if (flush_deadline_ != SimTime::zero() && ctx.now() < flush_deadline_) return;
    flush_deadline_ = ctx.now() + config_.batch_delay;
    // One-shot: dropped if this process is crashed when it fires — the
    // unflushed values then sit in pending_ and survive into step_down()'s
    // orphan hand-off, complete_phase1's full flush after recovery, or the
    // stale-deadline re-arm above on the next client arrival.
    transport_.schedule(config_.batch_delay, [this](CpuContext& c) {
        flush_deadline_ = SimTime::zero();
        if (!active_ || !phase1_complete_ || pending_.empty()) return;
        ++counters_.timer_flushes;
        flush_pending(c);
    });
}

void Coordinator::flush_pending(CpuContext& ctx) {
    // Propose into the lowest free instance at or above the delivery
    // frontier, not blindly past the highest reported instance. Phase 1 can
    // report nothing for an instance below ones it does report — the accept
    // quorum may be entirely unreachable (crashed) or its storage lost
    // (crash-with-wipe slots plus a dead coordinator) — and a hole that is
    // never refilled jams every learner's frontier below it forever. Filling
    // it with a fresh client value is the classic multi-Paxos no-op fill
    // with a real value standing in for the no-op; if the hole's original
    // value survives on some acceptor it wins the round comparison at the
    // next Phase 1 instead. Observed live under the runtime chaos bridge
    // (DESIGN.md §13).
    InstanceId slot = learner_.frontier();
    const std::size_t batch_size = std::max<std::uint32_t>(config_.batch_size, 1);
    while (!pending_.empty()) {
        // Skip instances already known decided (decisions from a previous
        // round can land between Phase 1 and the flush) and instances with a
        // proposal in flight this round (reported entries were re-proposed
        // by complete_phase1, so reported evidence is never overwritten).
        while (learner_.knows_decision(slot) || proposals_.count(slot) != 0) ++slot;
        Value value;
        const std::size_t take = std::min(pending_.size(), batch_size);
        if (take <= 1) {
            // Plain path: batching off, or a lone remainder — no composite
            // framing overhead for a batch of one.
            value = std::move(pending_.front());
            pending_.pop_front();
        } else {
            std::vector<Value> components;
            components.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                components.push_back(std::move(pending_.front()));
                pending_.pop_front();
            }
            // Synthesized identity: negative client id (real clients are
            // >= 0) scoped to this process, sequence unique per coordinator
            // object. Content identity is the digest, which folds the
            // component digests, so id reuse across incarnations is benign.
            const ValueId batch_id{-(config_.id + 1), ++batch_seq_};
            value = make_batch_value(batch_id, std::move(components));
            ++counters_.batches_proposed;
            counters_.batched_values += take;
        }
        ++counters_.proposals;
        propose(slot, value, ctx);
        next_instance_ = std::max(next_instance_, slot + 1);
    }
}

void Coordinator::propose(InstanceId instance, const Value& value, CpuContext& ctx) {
    proposals_[instance] = Proposal{value, ctx.now(), 0};
    transport_.broadcast(
        std::make_shared<Phase2aMsg>(config_.id, instance, round_, value), ctx);
}

void Coordinator::on_decided(InstanceId instance, const Value& value, bool via_quorum,
                             CpuContext& ctx) {
    if (const auto it = proposals_.find(instance); it != proposals_.end()) {
        if (!(it->second.value == value)) {
            // Our proposal lost this instance to a value chosen in a lower
            // round (coordinator change): re-propose it in a fresh instance.
            // A losing composite is unpacked first — pending_ holds plain
            // values only, so batches never nest; components the decided
            // value did carry are dropped right below as duplicates.
            Value lost = std::move(it->second.value);
            if (lost.is_batch()) {
                seen_values_.erase(lost.id);
                for (Value& c : lost.batch) pending_.push_back(std::move(c));
            } else {
                pending_.push_back(std::move(lost));
            }
        }
        proposals_.erase(it);
    }
    note_seen(value);       // a recovered coordinator learns past values
    drop_pending_for(value);  // a queued copy of a decided value is a duplicate
    next_instance_ = std::max(next_instance_, instance + 1);
    if (!pending_.empty() && phase1_complete_ && active_) maybe_flush(ctx);
    if (via_quorum && active_) {
        ++counters_.decisions_sent;
        transport_.broadcast(std::make_shared<DecisionMsg>(config_.id, instance, value.id,
                                                           value.digest()),
                             ctx);
    }
}

void Coordinator::drop_pending(const ValueId& id) {
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->id == id) it = pending_.erase(it);
        else ++it;
    }
}

void Coordinator::note_seen(const Value& value) {
    seen_values_.insert(value.id);
    // A decided composite means every component is ordered: origin
    // retransmissions of the components must deduplicate from now on.
    for (const Value& c : value.batch) seen_values_.insert(c.id);
}

void Coordinator::drop_pending_for(const Value& value) {
    drop_pending(value.id);
    for (const Value& c : value.batch) drop_pending(c.id);
}

void Coordinator::retransmit_sweep(CpuContext& ctx) {
    if (!active_) return;
    // Retry Phase 1 with a higher round if no quorum of promises arrived.
    if (!phase1_complete_ &&
        ctx.now() - phase1_started_at_ >= config_.retransmit_after * 2) {
        begin_phase1(ctx);
        return;
    }
    if (proposals_.empty()) return;
    for (auto& [instance, proposal] : proposals_) {
        // Exponential backoff: under overload (decisions slower than the
        // timeout) blind retransmission would amplify congestion. The
        // seed-derived jitter spreads deadlines across instances and
        // processes — without it, every stalled proposal in the deployment
        // fires in the same sweep after a partition heals.
        const auto shift = std::min(proposal.attempt, 3);
        const SimTime deadline =
            config_.retransmit_after * (1 << shift) +
            config_.backoff_jitter(static_cast<std::uint64_t>(instance), proposal.attempt);
        if (ctx.now() - proposal.proposed_at >= deadline) {
            ++proposal.attempt;
            proposal.proposed_at = ctx.now();
            ++counters_.retransmissions;
            transport_.broadcast(std::make_shared<Phase2aMsg>(config_.id, instance, round_,
                                                              proposal.value, proposal.attempt),
                                 ctx);
        }
    }
}

}  // namespace gossipc
