#include "paxos/coordinator.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gossipc {

Coordinator::Coordinator(const PaxosConfig& config, Transport& transport, Learner& learner)
    : config_(config), transport_(transport), learner_(learner) {}

void Coordinator::start(CpuContext& ctx) {
    if (config_.timeouts_enabled && !retransmit_armed_) {
        retransmit_armed_ = true;
        transport_.schedule_every(config_.retransmit_interval,
                                  [this](CpuContext& c) { retransmit_sweep(c); });
    }
    begin_phase1(ctx);
}

void Coordinator::begin_phase1(CpuContext& ctx) {
    round_ = config_.round_for(config_.id, phase1_attempt_);
    ++phase1_attempt_;
    phase1_from_ = learner_.frontier();
    phase1_complete_ = false;
    promises_.clear();
    reported_.clear();
    GCLOG_DEBUG("coordinator " << config_.id << " starting phase 1, round " << round_);
    transport_.broadcast(
        std::make_shared<Phase1aMsg>(config_.id, round_, phase1_from_), ctx);
    if (config_.timeouts_enabled) {
        // Retry Phase 1 with a higher round if no quorum of promises arrives.
        transport_.schedule(config_.retransmit_after * 2, [this](CpuContext& c) {
            if (!phase1_complete_) begin_phase1(c);
        });
    }
}

void Coordinator::on_phase1b(const Phase1bMsg& msg, CpuContext& ctx) {
    if (msg.round() != round_ || phase1_complete_) return;
    promises_.insert(msg.sender());
    for (const auto& entry : msg.accepted()) {
        auto [it, inserted] = reported_.emplace(entry.instance, entry);
        if (!inserted && entry.vround > it->second.vround) it->second = entry;
    }
    if (static_cast<int>(promises_.size()) >= config_.quorum()) {
        complete_phase1(ctx);
    }
}

void Coordinator::complete_phase1(CpuContext& ctx) {
    phase1_complete_ = true;
    next_instance_ = std::max(next_instance_, phase1_from_);
    // Re-propose values possibly chosen in lower rounds (Phase 1 obligation).
    for (const auto& [instance, entry] : reported_) {
        // Reported-but-already-decided instances must still advance the
        // proposal cursor, or fresh values would be proposed into them.
        next_instance_ = std::max(next_instance_, instance + 1);
        if (learner_.knows_decision(instance)) continue;
        ++counters_.reproposals;
        propose(instance, entry.value, ctx);
    }
    next_instance_ = std::max(next_instance_, learner_.frontier());
    GCLOG_DEBUG("coordinator " << config_.id << " phase 1 complete, round " << round_
                               << ", next instance " << next_instance_);
    flush_pending(ctx);
}

void Coordinator::on_client_value(const Value& value, CpuContext& ctx) {
    if (!seen_values_.insert(value.id).second) {
        ++counters_.duplicate_values;
        return;
    }
    pending_.push_back(value);
    if (phase1_complete_) flush_pending(ctx);
}

void Coordinator::flush_pending(CpuContext& ctx) {
    while (!pending_.empty()) {
        // Never propose into an instance already known decided (decisions
        // from a previous round can land between Phase 1 and the flush).
        while (learner_.knows_decision(next_instance_)) ++next_instance_;
        const Value value = pending_.front();
        pending_.pop_front();
        ++counters_.proposals;
        propose(next_instance_++, value, ctx);
    }
}

void Coordinator::propose(InstanceId instance, const Value& value, CpuContext& ctx) {
    proposals_[instance] = Proposal{value, ctx.now(), 0};
    transport_.broadcast(
        std::make_shared<Phase2aMsg>(config_.id, instance, round_, value), ctx);
}

void Coordinator::on_decided(InstanceId instance, const Value& value, bool via_quorum,
                             CpuContext& ctx) {
    if (const auto it = proposals_.find(instance); it != proposals_.end()) {
        if (!(it->second.value == value)) {
            // Our proposal lost this instance to a value chosen in a lower
            // round (coordinator change): re-propose it in a fresh instance.
            pending_.push_back(it->second.value);
        }
        proposals_.erase(it);
    }
    seen_values_.insert(value.id);  // a recovered coordinator learns past values
    next_instance_ = std::max(next_instance_, instance + 1);
    if (!pending_.empty() && phase1_complete_) flush_pending(ctx);
    if (via_quorum) {
        ++counters_.decisions_sent;
        transport_.broadcast(std::make_shared<DecisionMsg>(config_.id, instance, value.id,
                                                           value.digest()),
                             ctx);
    }
}

void Coordinator::retransmit_sweep(CpuContext& ctx) {
    if (proposals_.empty()) return;
    for (auto& [instance, proposal] : proposals_) {
        // Exponential backoff: under overload (decisions slower than the
        // timeout) blind retransmission would amplify congestion.
        const auto shift = std::min(proposal.attempt, 3);
        if (ctx.now() - proposal.proposed_at >= config_.retransmit_after * (1 << shift)) {
            ++proposal.attempt;
            proposal.proposed_at = ctx.now();
            ++counters_.retransmissions;
            transport_.broadcast(std::make_shared<Phase2aMsg>(config_.id, instance, round_,
                                                              proposal.value, proposal.attempt),
                                 ctx);
        }
    }
}

}  // namespace gossipc
