// Paxos message types (Section 2.3), plus the aggregated Phase 2b message
// built by the semantic-aggregation rule (Section 3.2).
//
// Phase 1a/1b are ranged (classic multi-Paxos): one Phase 1a covers every
// instance from `from_instance` on, and Phase 1b reports all values the
// acceptor has accepted in that range. Phase 2b and Decision carry a value
// digest rather than the payload — learners combine them with the value
// received in Phase 2a — which is what makes the aggregated multi-sender
// Phase 2b "essentially the same size" as a single one.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "paxos/value.hpp"

namespace gossipc {

enum class PaxosMsgType {
    ClientValue,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
    Phase2bAggregate,
    Decision,
    LearnRequest,
    Heartbeat,
    GroupBatch,
};

const char* paxos_msg_type_name(PaxosMsgType t);

class PaxosMessage : public MessageBody {
public:
    explicit PaxosMessage(ProcessId sender) : sender_(sender) {}

    virtual PaxosMsgType type() const = 0;
    ProcessId sender() const { return sender_; }

    /// Consensus group (shard) this message belongs to. Group 0 is the only
    /// group of a single-group deployment; the group transport stamps the
    /// owning group on every outbound message before it reaches the wire.
    GroupId group() const { return group_; }
    void set_group(GroupId group) { group_ = group; }

    /// Unique key for gossip duplicate suppression: distinct protocol
    /// messages (including retransmission attempts) get distinct keys,
    /// identical re-forwards share one.
    virtual std::uint64_t unique_key() const = 0;

    std::string describe() const override;
    BodyKind kind() const override { return BodyKind::Paxos; }

protected:
    /// Folds (type, sender, group) — group-scoping every unique_key at once,
    /// so instances of different groups never collide in seen caches or
    /// semantic views.
    std::uint64_t key_base() const;

private:
    ProcessId sender_;
    GroupId group_ = 0;
};

using PaxosMessagePtr = std::shared_ptr<const PaxosMessage>;

/// A client value forwarded to the coordinator by the process serving the
/// client.
class ClientValueMsg final : public PaxosMessage {
public:
    ClientValueMsg(ProcessId sender, Value value, std::int32_t attempt = 0,
                   ProcessId target = -1, bool forwarded = false)
        : PaxosMessage(sender), value_(value), attempt_(attempt), target_(target),
          forwarded_(forwarded) {}

    PaxosMsgType type() const override { return PaxosMsgType::ClientValue; }
    const Value& value() const { return value_; }
    std::int32_t attempt() const { return attempt_; }
    /// The process the sender believes is coordinating (-1: any coordinator).
    ProcessId target() const { return target_; }
    /// Set on one-hop relays from a demoted target (prevents relay loops).
    bool forwarded() const { return forwarded_; }

    std::uint32_t wire_size() const override { return 24 + value_.size_bytes; }
    std::uint64_t unique_key() const override;

private:
    Value value_;
    std::int32_t attempt_;
    ProcessId target_;
    bool forwarded_;
};

/// Ranged Phase 1a: the coordinator of `round` asks about every instance
/// >= from_instance.
class Phase1aMsg final : public PaxosMessage {
public:
    Phase1aMsg(ProcessId sender, Round round, InstanceId from_instance)
        : PaxosMessage(sender), round_(round), from_instance_(from_instance) {}

    PaxosMsgType type() const override { return PaxosMsgType::Phase1a; }
    Round round() const { return round_; }
    InstanceId from_instance() const { return from_instance_; }

    std::uint32_t wire_size() const override { return 24; }
    std::uint64_t unique_key() const override;

private:
    Round round_;
    InstanceId from_instance_;
};

/// One accepted value reported in Phase 1b.
struct AcceptedEntry {
    InstanceId instance = 0;
    Round vround = 0;
    Value value{};
};

/// Sentinel vround for Phase 1b entries backed by a learner DECISION rather
/// than a bare acceptance: a decided value outranks any accepted value in
/// the new coordinator's per-instance merge, so a takeover can never pick a
/// lower-round casualty (or fill a fresh value) over a value some live
/// learner knows chosen — even when the accept quorum's storage was wiped.
inline constexpr Round kDecidedRound = INT32_MAX;

class Phase1bMsg final : public PaxosMessage {
public:
    Phase1bMsg(ProcessId sender, Round round, InstanceId from_instance,
               std::vector<AcceptedEntry> accepted)
        : PaxosMessage(sender),
          round_(round),
          from_instance_(from_instance),
          accepted_(std::move(accepted)) {}

    PaxosMsgType type() const override { return PaxosMsgType::Phase1b; }
    Round round() const { return round_; }
    InstanceId from_instance() const { return from_instance_; }
    const std::vector<AcceptedEntry>& accepted() const { return accepted_; }

    std::uint32_t wire_size() const override;
    std::uint64_t unique_key() const override;

private:
    Round round_;
    InstanceId from_instance_;
    std::vector<AcceptedEntry> accepted_;
};

class Phase2aMsg final : public PaxosMessage {
public:
    Phase2aMsg(ProcessId sender, InstanceId instance, Round round, Value value,
               std::int32_t attempt = 0)
        : PaxosMessage(sender),
          instance_(instance),
          round_(round),
          value_(value),
          attempt_(attempt) {}

    PaxosMsgType type() const override { return PaxosMsgType::Phase2a; }
    InstanceId instance() const { return instance_; }
    Round round() const { return round_; }
    const Value& value() const { return value_; }
    std::int32_t attempt() const { return attempt_; }

    std::uint32_t wire_size() const override { return 32 + value_.size_bytes; }
    std::uint64_t unique_key() const override;

private:
    InstanceId instance_;
    Round round_;
    Value value_;
    std::int32_t attempt_;
};

class Phase2bMsg final : public PaxosMessage {
public:
    Phase2bMsg(ProcessId sender, InstanceId instance, Round round, ValueId value_id,
               std::uint64_t value_digest, std::int32_t attempt = 0)
        : PaxosMessage(sender),
          instance_(instance),
          round_(round),
          value_id_(value_id),
          value_digest_(value_digest),
          attempt_(attempt) {}

    PaxosMsgType type() const override { return PaxosMsgType::Phase2b; }
    InstanceId instance() const { return instance_; }
    Round round() const { return round_; }
    ValueId value_id() const { return value_id_; }
    std::uint64_t value_digest() const { return value_digest_; }
    std::int32_t attempt() const { return attempt_; }

    std::uint32_t wire_size() const override { return 64; }
    std::uint64_t unique_key() const override;

private:
    InstanceId instance_;
    Round round_;
    ValueId value_id_;
    std::uint64_t value_digest_;
    std::int32_t attempt_;
};

/// The semantic-aggregation rule's output: identical Phase 2b messages
/// (same instance, round, value) merged into one message carrying the set of
/// senders. Reversible: the gossip layer reconstructs the originals before
/// delivery, so Paxos never sees this type.
class Phase2bAggregateMsg final : public PaxosMessage {
public:
    Phase2bAggregateMsg(ProcessId aggregator, InstanceId instance, Round round,
                        ValueId value_id, std::uint64_t value_digest,
                        std::vector<ProcessId> senders, std::int32_t attempt)
        : PaxosMessage(aggregator),
          instance_(instance),
          round_(round),
          value_id_(value_id),
          value_digest_(value_digest),
          senders_(std::move(senders)),
          attempt_(attempt) {}

    PaxosMsgType type() const override { return PaxosMsgType::Phase2bAggregate; }
    InstanceId instance() const { return instance_; }
    Round round() const { return round_; }
    ValueId value_id() const { return value_id_; }
    std::uint64_t value_digest() const { return value_digest_; }
    const std::vector<ProcessId>& senders() const { return senders_; }
    std::int32_t attempt() const { return attempt_; }

    std::uint32_t wire_size() const override {
        return 64 + 4 * static_cast<std::uint32_t>(senders_.size());
    }
    std::uint64_t unique_key() const override;

private:
    InstanceId instance_;
    Round round_;
    ValueId value_id_;
    std::uint64_t value_digest_;
    std::vector<ProcessId> senders_;
    std::int32_t attempt_;
};

/// Decision: broadcast by the coordinator once a quorum of Phase 2b is seen.
/// Optionally carries the full value (used when answering a LearnRequest
/// from a process that missed the Phase 2a).
class DecisionMsg final : public PaxosMessage {
public:
    DecisionMsg(ProcessId sender, InstanceId instance, ValueId value_id,
                std::uint64_t value_digest, std::optional<Value> full_value = std::nullopt,
                std::int32_t attempt = 0)
        : PaxosMessage(sender),
          instance_(instance),
          value_id_(value_id),
          value_digest_(value_digest),
          full_value_(full_value),
          attempt_(attempt) {}

    PaxosMsgType type() const override { return PaxosMsgType::Decision; }
    InstanceId instance() const { return instance_; }
    ValueId value_id() const { return value_id_; }
    std::uint64_t value_digest() const { return value_digest_; }
    const std::optional<Value>& full_value() const { return full_value_; }
    std::int32_t attempt() const { return attempt_; }

    std::uint32_t wire_size() const override {
        return 64 + (full_value_ ? full_value_->size_bytes : 0);
    }
    std::uint64_t unique_key() const override;

private:
    InstanceId instance_;
    ValueId value_id_;
    std::uint64_t value_digest_;
    std::optional<Value> full_value_;
    std::int32_t attempt_;
};

/// Failure-detector heartbeat (DESIGN.md §8): broadcast by an idle process
/// so peers' suspicion deadlines keep being refreshed. Any protocol message
/// a process originates doubles as an implicit heartbeat, so these only
/// flow during idle spells. The sender's learner frontier rides along: it is
/// the only gap advertisement that still flows when no instances are being
/// decided, letting a process that slept through the tail of a run discover
/// (and repair) decisions it has no other evidence of.
class HeartbeatMsg final : public PaxosMessage {
public:
    HeartbeatMsg(ProcessId sender, std::uint64_t seq, InstanceId frontier = 1)
        : PaxosMessage(sender), seq_(seq), frontiers_(1, frontier) {}
    /// Multi-group heartbeat: one frontier per group, indexed by GroupId.
    /// A shared failure detector emits one heartbeat for the whole shard, so
    /// every group's repair path rides the same message.
    HeartbeatMsg(ProcessId sender, std::uint64_t seq, std::vector<InstanceId> frontiers)
        : PaxosMessage(sender), seq_(seq), frontiers_(std::move(frontiers)) {
        if (frontiers_.empty()) frontiers_.push_back(1);
    }

    PaxosMsgType type() const override { return PaxosMsgType::Heartbeat; }
    std::uint64_t seq() const { return seq_; }
    /// First instance the sender does not know decided (group 0).
    InstanceId frontier() const { return frontiers_[0]; }
    /// Per-group frontiers; always non-empty. frontier_for(g) falls back to
    /// 1 (no advertisement) for groups the sender did not report.
    const std::vector<InstanceId>& frontiers() const { return frontiers_; }
    InstanceId frontier_for(GroupId g) const {
        const auto i = static_cast<std::size_t>(g);
        return g >= 0 && i < frontiers_.size() ? frontiers_[i] : 1;
    }

    std::uint32_t wire_size() const override {
        return 24 + 8 * static_cast<std::uint32_t>(frontiers_.size() - 1);
    }
    std::uint64_t unique_key() const override;

private:
    std::uint64_t seq_;
    std::vector<InstanceId> frontiers_;
};

/// Learner gap repair: asks for the decision (with value) of an instance.
class LearnRequestMsg final : public PaxosMessage {
public:
    LearnRequestMsg(ProcessId sender, InstanceId instance, std::int32_t attempt,
                    ProcessId target = -1)
        : PaxosMessage(sender), instance_(instance), attempt_(attempt), target_(target) {}

    PaxosMsgType type() const override { return PaxosMsgType::LearnRequest; }
    InstanceId instance() const { return instance_; }
    std::int32_t attempt() const { return attempt_; }
    /// The process the sender believes is coordinating (-1: any coordinator).
    /// The addressed process answers even while demoted, so repair survives
    /// a stale believed-coordinator pointer after failover (DESIGN.md §8).
    ProcessId target() const { return target_; }

    std::uint32_t wire_size() const override { return 32; }
    std::uint64_t unique_key() const override;

private:
    InstanceId instance_;
    std::int32_t attempt_;
    ProcessId target_;
};

/// Cross-group aggregation (DESIGN.md §15): identical-verb digest-sized
/// messages (Phase 2b or Decision) belonging to *different* groups but bound
/// to the same peer, packed into one gossip envelope. Like
/// Phase2bAggregateMsg it is reversible and exists only on the wire: the
/// receiving gossip layer unpacks the originals — whose ids match the
/// pre-packing messages exactly, so duplicate suppression is unaffected —
/// before delivery, and Paxos never sees this type. Entries are always plain
/// (never aggregates or nested batches; the codec rejects both).
class GroupBatchMsg final : public PaxosMessage {
public:
    GroupBatchMsg(ProcessId packer, PaxosMsgType verb, std::vector<PaxosMessagePtr> entries)
        : PaxosMessage(packer), verb_(verb), entries_(std::move(entries)) {}

    PaxosMsgType type() const override { return PaxosMsgType::GroupBatch; }
    /// The shared type of every entry (Phase2b or Decision).
    PaxosMsgType verb() const { return verb_; }
    const std::vector<PaxosMessagePtr>& entries() const { return entries_; }

    std::uint32_t wire_size() const override;
    std::uint64_t unique_key() const override;

private:
    PaxosMsgType verb_;
    std::vector<PaxosMessagePtr> entries_;
};

}  // namespace gossipc
