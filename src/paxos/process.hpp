// A Paxos process playing all three roles (proposer/acceptor/learner), as in
// the paper. Dispatches messages delivered by the transport, serves local
// clients (forwarding values to the coordinator), and runs the learner
// gap-repair timer (disableable, Section 4.5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "paxos/acceptor.hpp"
#include "paxos/config.hpp"
#include "paxos/coordinator.hpp"
#include "paxos/learner.hpp"
#include "transport/transport.hpp"

namespace gossipc {

class PaxosProcess {
public:
    /// Fired for each value delivered in instance order at this process.
    using DeliveryListener = std::function<void(InstanceId, const Value&, CpuContext&)>;

    struct Counters {
        std::uint64_t values_submitted = 0;
        std::uint64_t messages_handled = 0;
        std::uint64_t learn_requests_sent = 0;
        std::uint64_t learn_requests_answered = 0;
        std::uint64_t value_retransmissions = 0;
    };

    PaxosProcess(const PaxosConfig& config, Transport& transport);

    /// Kicks off the protocol (coordinator Phase 1, repair timer).
    void post_start();

    /// Submits a client value served by this process: proposes it directly
    /// when this process is the coordinator, forwards it otherwise.
    void submit(const Value& value, CpuContext& ctx);
    void post_submit(const Value& value);

    void set_delivery_listener(DeliveryListener fn) { delivery_listener_ = std::move(fn); }

    const PaxosConfig& config() const { return config_; }
    bool is_coordinator() const { return config_.id == config_.coordinator; }

    Learner& learner() { return learner_; }
    const Learner& learner() const { return learner_; }
    Acceptor& acceptor() { return acceptor_; }
    Coordinator* coordinator() { return coordinator_ ? coordinator_.get() : nullptr; }
    const Counters& counters() const { return counters_; }

    /// Makes this process start acting as coordinator (e.g. after the
    /// configured coordinator crashed). Runs Phase 1 with a higher round.
    void become_coordinator();

    /// Fault engine: wipes the durable acceptor/learner state and the
    /// volatile submission/repair bookkeeping, modelling a restart after
    /// storage loss. The process rejoins as a blank replica and relearns via
    /// gap repair. Wiping an acting coordinator is not supported — its
    /// proposal ledger references the wiped learner.
    void wipe_state();

private:
    void on_message(const PaxosMessagePtr& msg, CpuContext& ctx);
    void handle_phase1a(const Phase1aMsg& msg, CpuContext& ctx);
    void handle_phase2a(const Phase2aMsg& msg, CpuContext& ctx);
    void handle_learn_request(const LearnRequestMsg& msg, CpuContext& ctx);
    void repair_sweep(CpuContext& ctx);

    PaxosConfig config_;
    Transport& transport_;
    Acceptor acceptor_;
    Learner learner_;
    std::unique_ptr<Coordinator> coordinator_;  // present on the coordinator
    DeliveryListener delivery_listener_;

    bool started_ = false;  ///< guards double-arming the repair chain

    // Gap-repair state.
    InstanceId last_frontier_ = 1;
    SimTime frontier_changed_at_ = SimTime::zero();
    std::int32_t repair_attempt_ = 0;

    // Client values submitted through this process and not yet delivered:
    // retransmitted to the coordinator on timeout (loss of a ClientValue is
    // otherwise unrecoverable — nobody else has the value).
    struct PendingSubmission {
        Value value;
        SimTime last_sent;
        std::int32_t attempt = 0;
    };
    std::unordered_map<ValueId, PendingSubmission> pending_submissions_;

    Counters counters_;
};

}  // namespace gossipc
