// A Paxos process playing all three roles (proposer/acceptor/learner), as in
// the paper. Dispatches messages delivered by the transport, serves local
// clients (forwarding values to the coordinator), and runs the learner
// gap-repair timer (disableable, Section 4.5).
//
// With failover enabled (DESIGN.md §8) the process also runs a failure
// detector: when the currently-believed coordinator is suspected, the
// next-ranked live process takes over via a ranged Phase 1 at a higher
// round, and everyone re-routes pending submissions and learn requests to
// whichever coordinator they currently believe in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "detect/failure_detector.hpp"
#include "paxos/acceptor.hpp"
#include "paxos/config.hpp"
#include "paxos/coordinator.hpp"
#include "paxos/learner.hpp"
#include "transport/transport.hpp"

namespace gossipc {

namespace trace {
class Tracer;
}

class PaxosProcess {
public:
    /// Fired for each value delivered in instance order at this process.
    using DeliveryListener = std::function<void(InstanceId, const Value&, CpuContext&)>;

    /// Fired on failover transitions at this process. `subject` is the peer
    /// the event is about (suspected/restored peer, or the new round owner
    /// for StepDown; the process itself for Takeover).
    using FailoverListener =
        std::function<void(FailoverEvent, ProcessId subject, Round round, CpuContext&)>;

    struct Counters {
        std::uint64_t values_submitted = 0;
        std::uint64_t messages_handled = 0;
        std::uint64_t learn_requests_sent = 0;
        std::uint64_t learn_requests_answered = 0;
        std::uint64_t value_retransmissions = 0;
        std::uint64_t takeovers = 0;   ///< this process assumed coordination
        std::uint64_t step_downs = 0;  ///< demoted on observing a higher round
        /// Messages handled by protocol phase, indexed by PaxosMsgType.
        static constexpr std::size_t kNumMsgTypes = 10;
        std::uint64_t handled_by_type[kNumMsgTypes] = {};
    };

    /// `shared_detector`, when non-null, is a failure detector owned by the
    /// sharding layer and shared by every consensus group on this node
    /// (DESIGN.md §15): the process subscribes to its suspect/restore events
    /// instead of constructing (and heartbeating from) its own. Null keeps
    /// the classic one-detector-per-process wiring.
    PaxosProcess(const PaxosConfig& config, Transport& transport,
                 FailureDetector* shared_detector = nullptr);

    /// Kicks off the protocol (coordinator Phase 1, repair timer, detector).
    void post_start();

    /// Submits a client value served by this process: proposes it directly
    /// when this process is the active coordinator, forwards it to the
    /// currently-believed coordinator otherwise.
    void submit(const Value& value, CpuContext& ctx);
    void post_submit(const Value& value);

    void set_delivery_listener(DeliveryListener fn) { delivery_listener_ = std::move(fn); }
    void set_failover_listener(FailoverListener fn) { failover_listener_ = std::move(fn); }
    /// Attaches the lifecycle tracer (records a Decide event per in-order
    /// delivery). Separate from the delivery listener, which the workload
    /// replaces wholesale.
    void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

    const PaxosConfig& config() const { return config_; }
    /// True while this process is actively coordinating (round owner).
    bool is_coordinator() const { return coordinator_ && coordinator_->active(); }
    /// Where this process currently routes submissions and learn requests.
    ProcessId believed_coordinator() const { return believed_coordinator_; }

    Learner& learner() { return learner_; }
    const Learner& learner() const { return learner_; }
    Acceptor& acceptor() { return acceptor_; }
    Coordinator* coordinator() { return coordinator_ ? coordinator_.get() : nullptr; }
    const Coordinator* coordinator() const { return coordinator_ ? coordinator_.get() : nullptr; }
    FailureDetector* failure_detector() { return detector_; }
    const FailureDetector* failure_detector() const { return detector_; }
    const Counters& counters() const { return counters_; }

    /// Makes this process start acting as coordinator (e.g. after the
    /// configured coordinator crashed). Runs Phase 1 with a higher round.
    void become_coordinator();

    /// Fault engine: wipes the durable acceptor/learner state and the
    /// volatile submission/repair bookkeeping, modelling a restart after
    /// storage loss. The process rejoins as a blank replica and relearns via
    /// gap repair. Without failover, wiping an acting coordinator is not
    /// supported — its proposal ledger references the wiped learner; with
    /// failover the coordinator steps down and a successor takes over.
    void wipe_state();

private:
    void on_message(const PaxosMessagePtr& msg, CpuContext& ctx);
    void handle_phase1a(const Phase1aMsg& msg, CpuContext& ctx);
    void handle_phase2a(const Phase2aMsg& msg, CpuContext& ctx);
    void handle_learn_request(const LearnRequestMsg& msg, CpuContext& ctx);
    void repair_sweep(CpuContext& ctx);

    // Failover plumbing.
    void on_peer_suspected(ProcessId peer, CpuContext& ctx);
    void take_over(CpuContext& ctx);
    void note_round_observed(Round round, CpuContext& ctx);
    void set_believed_coordinator(ProcessId peer, CpuContext& ctx);
    void emit_failover(FailoverEvent event, ProcessId subject, Round round, CpuContext& ctx);

    PaxosConfig config_;
    Transport& transport_;
    Acceptor acceptor_;
    Learner learner_;
    std::unique_ptr<Coordinator> coordinator_;  ///< present once this process ever coordinated
    std::unique_ptr<FailureDetector> owned_detector_;  ///< single-group wiring only
    /// Points at owned_detector_ or the sharding layer's shared detector;
    /// null iff failover is disabled.
    FailureDetector* detector_ = nullptr;
    DeliveryListener delivery_listener_;
    FailoverListener failover_listener_;
    trace::Tracer* tracer_ = nullptr;

    bool started_ = false;  ///< guards double-arming the repair chain

    /// Routing target for submissions/learn requests. Starts at the static
    /// config_.coordinator; moves on suspicion (rank succession) and on
    /// observing Phase 1a/2a traffic from a higher-round owner.
    ProcessId believed_coordinator_;
    /// Highest round seen in any Phase 1a/2a; takeovers start above it.
    Round highest_round_seen_ = 0;

    // Gap-repair state.
    InstanceId last_frontier_ = 1;
    SimTime frontier_changed_at_ = SimTime::zero();
    std::int32_t repair_attempt_ = 0;
    /// Highest learner frontier advertised by any peer heartbeat: the only
    /// gap evidence left when no instances are being decided (drain).
    InstanceId advertised_frontier_ = 1;

    // Client values submitted through this process and not yet delivered:
    // retransmitted to the coordinator on timeout (loss of a ClientValue is
    // otherwise unrecoverable — nobody else has the value).
    struct PendingSubmission {
        Value value;
        SimTime last_sent;
        std::int32_t attempt = 0;
    };
    std::unordered_map<ValueId, PendingSubmission> pending_submissions_;

    Counters counters_;
};

}  // namespace gossipc
