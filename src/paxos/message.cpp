#include "paxos/message.hpp"

#include <sstream>

namespace gossipc {

const char* paxos_msg_type_name(PaxosMsgType t) {
    switch (t) {
        case PaxosMsgType::ClientValue: return "ClientValue";
        case PaxosMsgType::Phase1a: return "Phase1a";
        case PaxosMsgType::Phase1b: return "Phase1b";
        case PaxosMsgType::Phase2a: return "Phase2a";
        case PaxosMsgType::Phase2b: return "Phase2b";
        case PaxosMsgType::Phase2bAggregate: return "Phase2bAggregate";
        case PaxosMsgType::Decision: return "Decision";
        case PaxosMsgType::LearnRequest: return "LearnRequest";
        case PaxosMsgType::Heartbeat: return "Heartbeat";
        case PaxosMsgType::GroupBatch: return "GroupBatch";
    }
    return "?";
}

std::string PaxosMessage::describe() const {
    std::ostringstream oss;
    oss << paxos_msg_type_name(type()) << "(from=" << sender() << ")";
    return oss.str();
}

std::uint64_t PaxosMessage::key_base() const {
    return hash_combine(hash_combine(static_cast<std::uint64_t>(type()),
                                     static_cast<std::uint64_t>(sender())),
                        static_cast<std::uint64_t>(group()));
}

namespace {
std::uint64_t value_id_hash(const ValueId& v) {
    return hash_combine(static_cast<std::uint64_t>(v.client),
                        static_cast<std::uint64_t>(v.seq));
}
}  // namespace

std::uint64_t ClientValueMsg::unique_key() const {
    return hash_combine(hash_combine(key_base(), value_id_hash(value_.id)),
                        static_cast<std::uint64_t>(attempt_));
}

std::uint64_t Phase1aMsg::unique_key() const {
    return hash_combine(hash_combine(key_base(), static_cast<std::uint64_t>(round_)),
                        static_cast<std::uint64_t>(from_instance_));
}

std::uint32_t Phase1bMsg::wire_size() const {
    std::uint32_t total = 32;
    for (const auto& e : accepted_) total += 16 + e.value.size_bytes;
    return total;
}

std::uint64_t Phase1bMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(round_));
    k = hash_combine(k, static_cast<std::uint64_t>(from_instance_));
    for (const auto& e : accepted_) {
        k = hash_combine(k, static_cast<std::uint64_t>(e.instance));
        k = hash_combine(k, static_cast<std::uint64_t>(e.vround));
    }
    return k;
}

std::uint64_t Phase2aMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(instance_));
    k = hash_combine(k, static_cast<std::uint64_t>(round_));
    k = hash_combine(k, value_id_hash(value_.id));
    return hash_combine(k, static_cast<std::uint64_t>(attempt_));
}

std::uint64_t Phase2bMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(instance_));
    k = hash_combine(k, static_cast<std::uint64_t>(round_));
    k = hash_combine(k, value_digest_);
    return hash_combine(k, static_cast<std::uint64_t>(attempt_));
}

std::uint64_t Phase2bAggregateMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(instance_));
    k = hash_combine(k, static_cast<std::uint64_t>(round_));
    k = hash_combine(k, value_digest_);
    for (const ProcessId s : senders_) k = hash_combine(k, static_cast<std::uint64_t>(s));
    return hash_combine(k, static_cast<std::uint64_t>(attempt_));
}

std::uint64_t DecisionMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(instance_));
    k = hash_combine(k, value_digest_);
    k = hash_combine(k, full_value_ ? 1ULL : 0ULL);
    return hash_combine(k, static_cast<std::uint64_t>(attempt_));
}

std::uint64_t LearnRequestMsg::unique_key() const {
    std::uint64_t k = hash_combine(key_base(), static_cast<std::uint64_t>(instance_));
    return hash_combine(k, static_cast<std::uint64_t>(attempt_));
}

std::uint64_t HeartbeatMsg::unique_key() const {
    return hash_combine(key_base(), seq_);
}

std::uint32_t GroupBatchMsg::wire_size() const {
    std::uint32_t total = 16;
    for (const auto& e : entries_) total += e->wire_size();
    return total;
}

std::uint64_t GroupBatchMsg::unique_key() const {
    std::uint64_t k = key_base();
    for (const auto& e : entries_) k = hash_combine(k, e->unique_key());
    return k;
}

}  // namespace gossipc
