#include "paxos/process.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "trace/tracer.hpp"

namespace gossipc {

PaxosProcess::PaxosProcess(const PaxosConfig& config, Transport& transport,
                           FailureDetector* shared_detector)
    : config_(config),
      transport_(transport),
      learner_(config.quorum()),
      believed_coordinator_(config.coordinator) {
    if (config_.n <= 0 || config_.id < 0 || config_.id >= config_.n) {
        throw std::invalid_argument("PaxosProcess: bad config");
    }
    transport_.set_deliver(
        [this](const PaxosMessagePtr& msg, CpuContext& ctx) { on_message(msg, ctx); });
    learner_.set_deliver([this](InstanceId instance, const Value& value, CpuContext& ctx) {
        // Note: accepted state is NOT garbage-collected here. Phase 1 must
        // be able to report accepted values to a new coordinator; dropping
        // them below the local frontier would let a new round re-propose a
        // different value into a decided instance. Applications checkpoint
        // via Acceptor::forget_below / Learner::truncate_log_below once a
        // prefix is globally stable.
        pending_submissions_.erase(value.id);
        if (tracer_) tracer_->record_decide(ctx.now(), config_.id, instance, config_.group);
        // Composite values (coordinator-side batches, DESIGN.md §14) are
        // unpacked HERE, above the learner: the learner's log keeps the
        // composite (digest agreement, LearnRequest answers, instance-
        // granular delivered_count), while every downstream consumer —
        // clients, invariant monitors, the workload's latency accounting —
        // sees the components one by one, in batch order, each with its own
        // per-value delivery callback.
        if (value.is_batch()) {
            for (const Value& component : value.batch) {
                pending_submissions_.erase(component.id);
                if (delivery_listener_) delivery_listener_(instance, component, ctx);
            }
        } else if (delivery_listener_) {
            delivery_listener_(instance, value, ctx);
        }
    });
    learner_.set_decided_listener(
        [this](InstanceId instance, const Value& value, bool via_quorum, CpuContext& ctx) {
            if (coordinator_) coordinator_->on_decided(instance, value, via_quorum, ctx);
        });
    if (config_.id == config_.coordinator) {
        coordinator_ = std::make_unique<Coordinator>(config_, transport_, learner_);
    }
    if (config_.failover_enabled) {
        if (shared_detector != nullptr) {
            // Sharded deployment: the detector (heartbeats, suspicion state,
            // succession rank) is per-node and shared; this group only
            // subscribes to its events. The shard layer provides the
            // per-group heartbeat frontiers.
            detector_ = shared_detector;
        } else {
            owned_detector_ = std::make_unique<FailureDetector>(config_, transport_);
            detector_ = owned_detector_.get();
            detector_->set_frontier_provider([this] { return learner_.frontier(); });
        }
        detector_->set_on_suspect(
            [this](ProcessId peer, CpuContext& ctx) { on_peer_suspected(peer, ctx); });
        detector_->set_on_restore([this](ProcessId peer, CpuContext& ctx) {
            emit_failover(FailoverEvent::Restore, peer, highest_round_seen_, ctx);
        });
    }
}

void PaxosProcess::post_start() {
    // The repair timer is armed at the simulator level so the chain
    // survives crash/recovery cycles of this process.
    if (config_.timeouts_enabled && !started_) {
        transport_.schedule_every(config_.repair_interval,
                                  [this](CpuContext& ctx) { repair_sweep(ctx); });
    }
    if (detector_ && !started_) detector_->start();
    started_ = true;
    transport_.post([this](CpuContext& ctx) {
        if (coordinator_) coordinator_->start(ctx);
    });
}

void PaxosProcess::wipe_state() {
    if (coordinator_) {
        if (!config_.failover_enabled && coordinator_->active()) {
            throw std::logic_error(
                "PaxosProcess::wipe_state: cannot wipe an acting coordinator");
        }
        // The orphaned values are discarded together with the rest of the
        // volatile state: their origin processes retransmit them.
        coordinator_->step_down();
    }
    acceptor_.reset();  // keeps the promise floor (the boot-block integer)
    learner_.reset();
    pending_submissions_.clear();
    last_frontier_ = 1;
    frontier_changed_at_ = SimTime::zero();
    repair_attempt_ = 0;
    advertised_frontier_ = 1;
    believed_coordinator_ = config_.coordinator;
    highest_round_seen_ = 0;
}

void PaxosProcess::become_coordinator() {
    if (coordinator_ && coordinator_->active()) return;
    if (!started_) post_start();
    transport_.post([this](CpuContext& ctx) { take_over(ctx); });
}

void PaxosProcess::submit(const Value& value, CpuContext& ctx) {
    ++counters_.values_submitted;
    if (config_.timeouts_enabled) {
        pending_submissions_.emplace(value.id, PendingSubmission{value, ctx.now(), 0});
    }
    if (coordinator_ && coordinator_->active()) {
        coordinator_->on_client_value(value, ctx);
    } else {
        transport_.send(believed_coordinator_,
                        std::make_shared<ClientValueMsg>(config_.id, value, 0,
                                                         believed_coordinator_),
                        ctx);
    }
}

void PaxosProcess::post_submit(const Value& value) {
    transport_.post([this, value](CpuContext& ctx) { submit(value, ctx); });
}

void PaxosProcess::on_message(const PaxosMessagePtr& msg, CpuContext& ctx) {
    ++counters_.messages_handled;
    ++counters_.handled_by_type[static_cast<std::size_t>(msg->type())];
    if (detector_) detector_->observe_alive(msg->sender(), ctx);
    switch (msg->type()) {
        case PaxosMsgType::ClientValue: {
            const auto& m = static_cast<const ClientValueMsg&>(*msg);
            if (coordinator_ && coordinator_->active()) {
                coordinator_->on_client_value(m.value(), ctx);
            } else if (m.target() == config_.id && !m.forwarded() &&
                       believed_coordinator_ != config_.id &&
                       believed_coordinator_ != m.sender()) {
                // Stale routing after failover: this process was addressed as
                // coordinator but is demoted (or never was one). Relay one hop
                // to the coordinator it believes in — without this, a laggard
                // whose believed-coordinator pointer is stale would retransmit
                // into a silent drop forever in the direct setup.
                transport_.send(believed_coordinator_,
                                std::make_shared<ClientValueMsg>(config_.id, m.value(),
                                                                 m.attempt(),
                                                                 believed_coordinator_,
                                                                 /*forwarded=*/true),
                                ctx);
            }
            break;
        }
        case PaxosMsgType::Phase1a:
            handle_phase1a(static_cast<const Phase1aMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::Phase1b: {
            const auto& m = static_cast<const Phase1bMsg&>(*msg);
            if (coordinator_ && config_.round_owner(m.round()) == config_.id) {
                coordinator_->on_phase1b(m, ctx);
            }
            break;
        }
        case PaxosMsgType::Phase2a:
            handle_phase2a(static_cast<const Phase2aMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::Phase2b:
            learner_.on_phase2b(static_cast<const Phase2bMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::Phase2bAggregate:
            // Reversible aggregates are disaggregated by the gossip layer;
            // Paxos itself never handles them.
            break;
        case PaxosMsgType::Decision:
            learner_.on_decision(static_cast<const DecisionMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::LearnRequest:
            handle_learn_request(static_cast<const LearnRequestMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::Heartbeat:
            // observe_alive above took the liveness evidence; the advertised
            // frontier feeds gap repair (see repair_sweep). Heartbeats carry
            // one frontier per group; read the slot for this group.
            advertised_frontier_ = std::max(
                advertised_frontier_,
                static_cast<const HeartbeatMsg&>(*msg).frontier_for(config_.group));
            break;
        case PaxosMsgType::GroupBatch:
            // Cross-group aggregates are unpacked by the gossip layer before
            // delivery (like Phase2bAggregate); Paxos never handles them.
            break;
    }
}

void PaxosProcess::handle_phase1a(const Phase1aMsg& msg, CpuContext& ctx) {
    note_round_observed(msg.round(), ctx);
    auto result = acceptor_.on_phase1a(msg.round(), msg.from_instance());
    if (!result.promised) return;
    // Also report decisions this learner knows in the promised range. A
    // crash-with-wipe can erase every acceptor copy of a chosen value while
    // unwiped learners still hold it (the Decision broadcast reached them);
    // without this, a takeover whose promise quorum lost the acceptor
    // evidence re-fills the instance with a fresh value and splits the live
    // learners (observed under the runtime chaos bridge, DESIGN.md §13).
    // The kDecidedRound sentinel makes these entries win the coordinator's
    // per-instance highest-vround merge over any bare acceptance.
    for (InstanceId i = msg.from_instance(); i <= learner_.highest_seen(); ++i) {
        if (const auto v = learner_.decided_value(i)) {
            result.accepted.push_back(AcceptedEntry{i, kDecidedRound, *v});
        }
    }
    transport_.send(config_.round_owner(msg.round()),
                    std::make_shared<Phase1bMsg>(config_.id, msg.round(), msg.from_instance(),
                                                 result.accepted),
                    ctx);
}

void PaxosProcess::handle_phase2a(const Phase2aMsg& msg, CpuContext& ctx) {
    note_round_observed(msg.round(), ctx);
    learner_.on_phase2a(msg, ctx);  // cache the value for digest resolution
    if (!acceptor_.on_phase2a(msg.instance(), msg.round(), msg.value())) return;
    transport_.send(config_.round_owner(msg.round()),
                    std::make_shared<Phase2bMsg>(config_.id, msg.instance(), msg.round(),
                                                 msg.value().id, msg.value().digest(),
                                                 msg.attempt()),
                    ctx);
}

void PaxosProcess::handle_learn_request(const LearnRequestMsg& msg, CpuContext& ctx) {
    // The active coordinator answers, plus the explicitly addressed process
    // (which may be live but demoted — a laggard's believed-coordinator
    // pointer can be stale after failover, and in the direct setup nobody
    // else receives the request). At most two repliers, so gossip setups
    // cannot storm. Replies cover a batch of consecutive instances so a
    // recovering process catches up in few round trips.
    if (msg.sender() == config_.id) return;
    const bool acting = coordinator_ && coordinator_->active();
    if (!acting && msg.target() != config_.id) return;
    constexpr InstanceId kBatch = 32;
    bool answered = false;
    for (InstanceId i = msg.instance(); i < msg.instance() + kBatch; ++i) {
        const auto value = learner_.decided_value(i);
        if (!value) break;  // contiguous prefix only
        answered = true;
        transport_.send(msg.sender(),
                        std::make_shared<DecisionMsg>(config_.id, i, value->id,
                                                      value->digest(), *value,
                                                      /*attempt=*/msg.attempt()),
                        ctx);
    }
    if (answered) ++counters_.learn_requests_answered;
}

void PaxosProcess::repair_sweep(CpuContext& ctx) {
    // Learner gap repair: ask the believed coordinator for missing decisions.
    const InstanceId frontier = learner_.frontier();
    // A gap is known either from protocol traffic beyond the frontier or
    // from a peer heartbeat advertising a higher frontier — the latter is
    // the only evidence left when nothing new is being decided (drain).
    const bool gap_known =
        learner_.highest_seen() >= frontier || advertised_frontier_ > frontier;
    // An acting coordinator cannot ask itself for missing decisions (it IS
    // the believed coordinator); repair from the next live peer instead.
    ProcessId repair_target = believed_coordinator_;
    if (repair_target == config_.id) {
        repair_target = detector_ ? detector_->next_live_after(config_.id)
                                  : static_cast<ProcessId>((config_.id + 1) % config_.n);
    }
    if (frontier != last_frontier_) {
        // Repair replies just advanced the frontier: if a gap remains, keep
        // draining it at sweep cadence instead of waiting out repair_after
        // again — a process restarted late in a chaos window can owe
        // hundreds of instances and the drain window is finite.
        const bool draining = repair_attempt_ > 0 && gap_known;
        last_frontier_ = frontier;
        frontier_changed_at_ = ctx.now();
        repair_attempt_ = 0;
        if (draining && repair_target != config_.id) {
            ++counters_.learn_requests_sent;
            transport_.send(repair_target,
                            std::make_shared<LearnRequestMsg>(config_.id, frontier,
                                                              repair_attempt_++,
                                                              repair_target),
                            ctx);
        }
    } else if (gap_known && repair_target != config_.id &&
               ctx.now() - frontier_changed_at_ >= config_.repair_after) {
        ++counters_.learn_requests_sent;
        transport_.send(repair_target,
                        std::make_shared<LearnRequestMsg>(config_.id, frontier,
                                                          repair_attempt_++,
                                                          repair_target),
                        ctx);
    }

    // Submission repair: re-send client values that are still undelivered
    // (a lost ClientValue is otherwise unrecoverable). The seed-derived
    // jitter de-synchronizes retransmission bursts across processes.
    for (auto& [vid, pending] : pending_submissions_) {
        const auto shift = std::min(pending.attempt, 3);
        const SimTime deadline =
            config_.retransmit_after * (1 << shift) +
            config_.backoff_jitter(std::hash<ValueId>{}(vid), pending.attempt);
        if (ctx.now() - pending.last_sent < deadline) continue;
        pending.last_sent = ctx.now();
        ++pending.attempt;
        ++counters_.value_retransmissions;
        if (coordinator_ && coordinator_->active()) {
            coordinator_->on_client_value(pending.value, ctx);
        } else {
            transport_.send(believed_coordinator_,
                            std::make_shared<ClientValueMsg>(config_.id, pending.value,
                                                             pending.attempt,
                                                             believed_coordinator_),
                            ctx);
        }
    }
}

void PaxosProcess::on_peer_suspected(ProcessId peer, CpuContext& ctx) {
    emit_failover(FailoverEvent::Suspect, peer, highest_round_seen_, ctx);
    if (peer != believed_coordinator_) return;
    // Rank-based succession: the next unsuspected process after the failed
    // coordinator takes over; everyone else re-routes to it.
    const ProcessId successor = detector_->next_live_after(peer);
    if (successor == config_.id) {
        take_over(ctx);
    } else {
        set_believed_coordinator(successor, ctx);
    }
}

void PaxosProcess::take_over(CpuContext& ctx) {
    if (coordinator_ && coordinator_->active()) return;
    if (!coordinator_) {
        coordinator_ = std::make_unique<Coordinator>(config_, transport_, learner_);
    }
    believed_coordinator_ = config_.id;
    ++counters_.takeovers;
    // highest_round_seen_ is volatile and wiped by a crash; the acceptor's
    // promise floor is durable and bounds every round a coordinator ever
    // completed Phase 1 with. Starting below it would get this takeover
    // rejected by every acceptor (and stall: an acting coordinator never
    // gap-repairs through LearnRequests).
    highest_round_seen_ = std::max(highest_round_seen_, acceptor_.promise_floor());
    coordinator_->activate(highest_round_seen_, ctx);
    highest_round_seen_ = std::max(highest_round_seen_, coordinator_->round());
    GCLOG_DEBUG("process " << config_.id << " taking over as coordinator, round "
                           << coordinator_->round());
    emit_failover(FailoverEvent::Takeover, config_.id, coordinator_->round(), ctx);
    // Values submitted through this process and still undelivered are now
    // this coordinator's responsibility; propose them directly.
    for (auto& [vid, pending] : pending_submissions_) {
        coordinator_->on_client_value(pending.value, ctx);
    }
}

void PaxosProcess::note_round_observed(Round round, CpuContext& ctx) {
    if (round <= highest_round_seen_) return;
    highest_round_seen_ = round;
    const ProcessId owner = config_.round_owner(round);
    if (owner == config_.id) return;
    if (coordinator_ && coordinator_->active()) {
        // A competing coordinator reached a higher round: demote ourselves
        // (at most one coordinator can complete Phase 1 per round, and our
        // lower round is now dead). Values we were responsible for go back
        // into the submission-repair queue routed to the new owner.
        ++counters_.step_downs;
        GCLOG_DEBUG("process " << config_.id << " stepping down, observed round " << round
                               << " owned by " << owner);
        emit_failover(FailoverEvent::StepDown, owner, round, ctx);
        std::vector<Value> orphaned = coordinator_->step_down();
        if (config_.timeouts_enabled) {
            for (Value& v : orphaned) {
                const ValueId vid = v.id;
                pending_submissions_.emplace(vid,
                                             PendingSubmission{std::move(v), ctx.now(), 0});
            }
        }
    }
    set_believed_coordinator(owner, ctx);
}

void PaxosProcess::set_believed_coordinator(ProcessId peer, CpuContext& ctx) {
    if (peer == believed_coordinator_) return;
    believed_coordinator_ = peer;
    if (peer == config_.id) return;
    // Re-route pending submissions: reset the backoff so the next repair
    // sweep re-sends them to the new coordinator promptly. Immediate
    // forwarding would be wasted — a successor that has not finished its
    // takeover Phase 1 would only buffer or drop them anyway.
    for (auto& [vid, pending] : pending_submissions_) {
        pending.attempt = 0;
        pending.last_sent = ctx.now() - config_.retransmit_after;
    }
}

void PaxosProcess::emit_failover(FailoverEvent event, ProcessId subject, Round round,
                                 CpuContext& ctx) {
    if (failover_listener_) failover_listener_(event, subject, round, ctx);
}

}  // namespace gossipc
