#include "paxos/process.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gossipc {

PaxosProcess::PaxosProcess(const PaxosConfig& config, Transport& transport)
    : config_(config), transport_(transport), learner_(config.quorum()) {
    if (config_.n <= 0 || config_.id < 0 || config_.id >= config_.n) {
        throw std::invalid_argument("PaxosProcess: bad config");
    }
    transport_.set_deliver(
        [this](const PaxosMessagePtr& msg, CpuContext& ctx) { on_message(msg, ctx); });
    learner_.set_deliver([this](InstanceId instance, const Value& value, CpuContext& ctx) {
        // Note: accepted state is NOT garbage-collected here. Phase 1 must
        // be able to report accepted values to a new coordinator; dropping
        // them below the local frontier would let a new round re-propose a
        // different value into a decided instance. Applications checkpoint
        // via Acceptor::forget_below / Learner::truncate_log_below once a
        // prefix is globally stable.
        pending_submissions_.erase(value.id);
        if (delivery_listener_) delivery_listener_(instance, value, ctx);
    });
    learner_.set_decided_listener(
        [this](InstanceId instance, const Value& value, bool via_quorum, CpuContext& ctx) {
            if (coordinator_) coordinator_->on_decided(instance, value, via_quorum, ctx);
        });
    if (is_coordinator()) {
        coordinator_ = std::make_unique<Coordinator>(config_, transport_, learner_);
    }
}

void PaxosProcess::post_start() {
    // The repair timer is armed at the simulator level so the chain
    // survives crash/recovery cycles of this process.
    if (config_.timeouts_enabled && !started_) {
        transport_.schedule_every(config_.repair_interval,
                                  [this](CpuContext& ctx) { repair_sweep(ctx); });
    }
    started_ = true;
    transport_.post([this](CpuContext& ctx) {
        if (coordinator_) coordinator_->start(ctx);
    });
}

void PaxosProcess::wipe_state() {
    if (coordinator_) {
        throw std::logic_error("PaxosProcess::wipe_state: cannot wipe an acting coordinator");
    }
    acceptor_.reset();
    learner_.reset();
    pending_submissions_.clear();
    last_frontier_ = 1;
    frontier_changed_at_ = SimTime::zero();
    repair_attempt_ = 0;
}

void PaxosProcess::become_coordinator() {
    if (coordinator_) return;
    config_.coordinator = config_.id;
    coordinator_ = std::make_unique<Coordinator>(config_, transport_, learner_);
    post_start();
}

void PaxosProcess::submit(const Value& value, CpuContext& ctx) {
    ++counters_.values_submitted;
    if (config_.timeouts_enabled) {
        pending_submissions_.emplace(value.id, PendingSubmission{value, ctx.now(), 0});
    }
    if (coordinator_) {
        coordinator_->on_client_value(value, ctx);
    } else {
        transport_.send(config_.coordinator,
                        std::make_shared<ClientValueMsg>(config_.id, value), ctx);
    }
}

void PaxosProcess::post_submit(const Value& value) {
    transport_.post([this, value](CpuContext& ctx) { submit(value, ctx); });
}

void PaxosProcess::on_message(const PaxosMessagePtr& msg, CpuContext& ctx) {
    ++counters_.messages_handled;
    switch (msg->type()) {
        case PaxosMsgType::ClientValue:
            if (coordinator_) {
                coordinator_->on_client_value(
                    static_cast<const ClientValueMsg&>(*msg).value(), ctx);
            }
            break;
        case PaxosMsgType::Phase1a:
            handle_phase1a(static_cast<const Phase1aMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::Phase1b: {
            const auto& m = static_cast<const Phase1bMsg&>(*msg);
            if (coordinator_ && config_.round_owner(m.round()) == config_.id) {
                coordinator_->on_phase1b(m, ctx);
            }
            break;
        }
        case PaxosMsgType::Phase2a:
            handle_phase2a(static_cast<const Phase2aMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::Phase2b:
            learner_.on_phase2b(static_cast<const Phase2bMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::Phase2bAggregate:
            // Reversible aggregates are disaggregated by the gossip layer;
            // Paxos itself never handles them.
            break;
        case PaxosMsgType::Decision:
            learner_.on_decision(static_cast<const DecisionMsg&>(*msg), ctx);
            break;
        case PaxosMsgType::LearnRequest:
            handle_learn_request(static_cast<const LearnRequestMsg&>(*msg), ctx);
            break;
    }
}

void PaxosProcess::handle_phase1a(const Phase1aMsg& msg, CpuContext& ctx) {
    const auto result = acceptor_.on_phase1a(msg.round(), msg.from_instance());
    if (!result.promised) return;
    transport_.send(config_.round_owner(msg.round()),
                    std::make_shared<Phase1bMsg>(config_.id, msg.round(), msg.from_instance(),
                                                 result.accepted),
                    ctx);
}

void PaxosProcess::handle_phase2a(const Phase2aMsg& msg, CpuContext& ctx) {
    learner_.on_phase2a(msg, ctx);  // cache the value for digest resolution
    if (!acceptor_.on_phase2a(msg.instance(), msg.round(), msg.value())) return;
    transport_.send(config_.round_owner(msg.round()),
                    std::make_shared<Phase2bMsg>(config_.id, msg.instance(), msg.round(),
                                                 msg.value().id, msg.value().digest(),
                                                 msg.attempt()),
                    ctx);
}

void PaxosProcess::handle_learn_request(const LearnRequestMsg& msg, CpuContext& ctx) {
    // Only the coordinator answers, to avoid reply storms in gossip setups.
    // Replies cover a batch of consecutive instances so a recovering
    // process catches up in few round trips.
    if (!coordinator_ || msg.sender() == config_.id) return;
    constexpr InstanceId kBatch = 32;
    bool answered = false;
    for (InstanceId i = msg.instance(); i < msg.instance() + kBatch; ++i) {
        const auto value = learner_.decided_value(i);
        if (!value) break;  // contiguous prefix only
        answered = true;
        transport_.send(msg.sender(),
                        std::make_shared<DecisionMsg>(config_.id, i, value->id,
                                                      value->digest(), *value,
                                                      /*attempt=*/msg.attempt()),
                        ctx);
    }
    if (answered) ++counters_.learn_requests_answered;
}

void PaxosProcess::repair_sweep(CpuContext& ctx) {
    // Learner gap repair: ask the coordinator for missing decisions.
    const InstanceId frontier = learner_.frontier();
    if (frontier != last_frontier_) {
        last_frontier_ = frontier;
        frontier_changed_at_ = ctx.now();
        repair_attempt_ = 0;
    } else if (learner_.highest_seen() >= frontier &&
               ctx.now() - frontier_changed_at_ >= config_.repair_after) {
        ++counters_.learn_requests_sent;
        transport_.send(
            config_.coordinator,
            std::make_shared<LearnRequestMsg>(config_.id, frontier, repair_attempt_++), ctx);
    }

    // Submission repair: re-send client values that are still undelivered
    // (a lost ClientValue is otherwise unrecoverable).
    for (auto& [vid, pending] : pending_submissions_) {
        const auto shift = std::min(pending.attempt, 3);
        if (ctx.now() - pending.last_sent < config_.retransmit_after * (1 << shift)) continue;
        pending.last_sent = ctx.now();
        ++pending.attempt;
        ++counters_.value_retransmissions;
        if (coordinator_) {
            coordinator_->on_client_value(pending.value, ctx);
        } else {
            transport_.send(config_.coordinator,
                            std::make_shared<ClientValueMsg>(config_.id, pending.value,
                                                             pending.attempt),
                            ctx);
        }
    }
}

}  // namespace gossipc
