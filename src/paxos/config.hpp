// Deployment-wide Paxos configuration shared by every process.
#pragma once

#include "common/types.hpp"

namespace gossipc {

struct PaxosConfig {
    int n = 0;                    ///< number of processes
    ProcessId id = -1;            ///< this process
    ProcessId coordinator = 0;    ///< elected coordinator (round owner)

    // Multi-group sharding (DESIGN.md §15). Each group runs an independent
    // Paxos instance space; group 0 with num_groups 1 is the classic
    // single-group deployment, byte-for-byte.
    GroupId group = 0;            ///< this process's consensus group
    int num_groups = 1;           ///< groups sharing the gossip substrate

    /// Timeout-triggered procedures (coordinator Phase 2a retransmission and
    /// learner gap repair). The reliability experiment (Section 4.5) runs
    /// with these disabled.
    bool timeouts_enabled = true;
    SimTime retransmit_after = SimTime::millis(800);
    SimTime retransmit_interval = SimTime::millis(300);
    SimTime repair_after = SimTime::millis(800);
    SimTime repair_interval = SimTime::millis(300);

    /// Upper bound of the deterministic seed-derived jitter added to every
    /// retransmission deadline (coordinator Phase 2a sweep and client-value
    /// repair). Identical deadlines across processes otherwise produce
    /// synchronized retransmit storms, e.g. right after a partition heals.
    SimTime retransmit_jitter_max = SimTime::millis(150);

    // Failure detection & coordinator failover (DESIGN.md §8). Disabled by
    // default: the paper's fixed-coordinator configuration is unchanged
    // unless a deployment opts in.
    bool failover_enabled = false;
    /// Idle processes broadcast a heartbeat this often; any originated
    /// protocol message doubles as an implicit heartbeat (piggybacking), so
    /// the explicit message is suppressed while traffic flows.
    SimTime heartbeat_interval = SimTime::millis(100);
    /// Piggybacking only works when originated traffic reaches every peer
    /// with the sender identity intact; semantic filtering breaks that (a
    /// redundant Phase 2b is dropped en route), so the semantic setup turns
    /// suppression off and always sends explicit heartbeats.
    bool heartbeat_piggyback = true;
    /// A peer unheard-from for this long (plus the per-peer jitter below)
    /// becomes suspected.
    SimTime suspect_after = SimTime::millis(450);
    /// How often the suspicion tracker re-evaluates per-peer deadlines.
    SimTime detector_sweep_interval = SimTime::millis(50);
    /// Upper bound of the deterministic per-(observer, peer) suspicion
    /// deadline jitter, de-synchronizing takeover attempts across observers.
    SimTime suspicion_jitter_max = SimTime::millis(60);

    // Coordinator-side value batching (DESIGN.md §14). batch_size = 1 keeps
    // the paper's one-value-per-instance behaviour exactly; larger sizes
    // pack up to batch_size queued client values into one composite Paxos
    // value, flushed early when the batch fills or when batch_delay elapses
    // after the first queued value.
    std::uint32_t batch_size = 1;
    SimTime batch_delay = SimTime::millis(5);

    /// Cap on the coordinator's queue of not-yet-proposed client values.
    /// Beyond it, newly arriving client values are shed (counted, never
    /// marked seen — the origin's retransmission path retries them later).
    /// Internal re-queues (failover orphans, lost Phase 2 races) bypass the
    /// cap so no accepted-for-ordering value is ever dropped.
    std::size_t pending_cap = 1 << 16;

    /// Seed for deterministic jitter derivation. No RNG stream is consumed:
    /// jitter is a pure hash of (seed, id, key), keeping replays byte-stable.
    std::uint64_t seed = 1;

    int quorum() const { return n / 2 + 1; }

    /// Deterministic jitter in [0, retransmit_jitter_max] for one
    /// retransmission deadline, derived from (seed, id, key, attempt).
    SimTime backoff_jitter(std::uint64_t key, std::int32_t attempt) const {
        if (retransmit_jitter_max <= SimTime::zero()) return SimTime::zero();
        const std::uint64_t h = mix64(
            seed ^ hash_combine(hash_combine(static_cast<std::uint64_t>(id), key),
                                static_cast<std::uint64_t>(attempt)));
        return SimTime::nanos(static_cast<std::int64_t>(
            h % static_cast<std::uint64_t>(retransmit_jitter_max.as_nanos() + 1)));
    }

    /// Rounds are partitioned among processes: round r is owned by process
    /// (r - 1) mod n, so concurrent coordinators never share a round.
    ProcessId round_owner(Round r) const {
        return static_cast<ProcessId>((r - 1) % n);
    }
    Round round_for(ProcessId p, int attempt) const {
        return static_cast<Round>(attempt * n + p + 1);
    }
};

}  // namespace gossipc
