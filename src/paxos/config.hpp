// Deployment-wide Paxos configuration shared by every process.
#pragma once

#include "common/types.hpp"

namespace gossipc {

struct PaxosConfig {
    int n = 0;                    ///< number of processes
    ProcessId id = -1;            ///< this process
    ProcessId coordinator = 0;    ///< elected coordinator (round owner)

    /// Timeout-triggered procedures (coordinator Phase 2a retransmission and
    /// learner gap repair). The reliability experiment (Section 4.5) runs
    /// with these disabled.
    bool timeouts_enabled = true;
    SimTime retransmit_after = SimTime::millis(800);
    SimTime retransmit_interval = SimTime::millis(300);
    SimTime repair_after = SimTime::millis(800);
    SimTime repair_interval = SimTime::millis(300);

    int quorum() const { return n / 2 + 1; }

    /// Rounds are partitioned among processes: round r is owned by process
    /// (r - 1) mod n, so concurrent coordinators never share a round.
    ProcessId round_owner(Round r) const {
        return static_cast<ProcessId>((r - 1) % n);
    }
    Round round_for(ProcessId p, int attempt) const {
        return static_cast<Round>(attempt * n + p + 1);
    }
};

}  // namespace gossipc
