#include "paxos/acceptor.hpp"

namespace gossipc {

Acceptor::PromiseResult Acceptor::on_phase1a(Round round, InstanceId from_instance) {
    PromiseResult result;
    if (round <= floor_round_) return result;  // already promised higher
    floor_round_ = round;
    result.promised = true;
    for (const auto& [instance, slot] : slots_) {
        if (instance >= from_instance && slot.vrnd > 0) {
            result.accepted.push_back(AcceptedEntry{instance, slot.vrnd, slot.vval});
        }
    }
    return result;
}

Round Acceptor::effective_round(InstanceId instance) const {
    const auto it = slots_.find(instance);
    const Round slot_rnd = it != slots_.end() ? it->second.rnd : 0;
    return std::max(slot_rnd, floor_round_);
}

bool Acceptor::on_phase2a(InstanceId instance, Round round, const Value& value) {
    if (round < effective_round(instance)) return false;
    Slot& slot = slots_[instance];
    // P-ACC-1: within one round an acceptor votes for at most one value. A
    // round has a single proposer which proposes a single value per instance;
    // a second value here means a proposer bug or state corruption, and
    // accepting it could let two quorums form for different values.
    GC_INVARIANT(slot.vrnd == 0 || slot.vrnd != round || slot.vval.digest() == value.digest(),
                 "acceptor re-accepting a different value in round %d of instance %lld "
                 "(digest %016llx -> %016llx)",
                 round, static_cast<long long>(instance),
                 static_cast<unsigned long long>(slot.vval.digest()),
                 static_cast<unsigned long long>(value.digest()));
    slot.rnd = round;
    slot.vrnd = round;
    slot.vval = value;
    return true;
}

std::optional<AcceptedEntry> Acceptor::accepted_in(InstanceId instance) const {
    const auto it = slots_.find(instance);
    if (it == slots_.end() || it->second.vrnd == 0) return std::nullopt;
    return AcceptedEntry{instance, it->second.vrnd, it->second.vval};
}

std::vector<AcceptedEntry> Acceptor::accepted_snapshot() const {
    std::vector<AcceptedEntry> out;
    out.reserve(slots_.size());
    for (const auto& [instance, slot] : slots_) {
        if (slot.vrnd > 0) out.push_back(AcceptedEntry{instance, slot.vrnd, slot.vval});
    }
    return out;
}

void Acceptor::forget_below(InstanceId instance) {
    slots_.erase(slots_.begin(), slots_.lower_bound(instance));
}

}  // namespace gossipc
