// The learner role: learns decided values either from a Decision message or
// from identical Phase 2b messages from a majority of processes (the paper
// notes the latter can speed up decisions in gossip setups). Values are
// delivered upward strictly in instance order, with no gaps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "check/invariant.hpp"
#include "net/node.hpp"
#include "paxos/message.hpp"

namespace gossipc {

class Learner {
public:
    /// Fired for each value delivered in order.
    using DeliverFn = std::function<void(InstanceId, const Value&, CpuContext&)>;
    /// Fired once when an instance first becomes decided; `via_quorum` is
    /// true when the decision was learned from a majority of Phase 2b (the
    /// coordinator uses this to broadcast the Decision message).
    using DecidedFn =
        std::function<void(InstanceId, const Value&, bool via_quorum, CpuContext&)>;

    explicit Learner(int quorum);

    void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
    void set_decided_listener(DecidedFn fn) { decided_listener_ = std::move(fn); }

    /// Caches the proposed value so digest-only 2b/Decision can be resolved;
    /// may complete a pending decision whose payload was missing.
    void on_phase2a(const Phase2aMsg& msg, CpuContext& ctx);
    void on_phase2b(const Phase2bMsg& msg, CpuContext& ctx);
    void on_decision(const DecisionMsg& msg, CpuContext& ctx);

    bool knows_decision(InstanceId instance) const;
    /// Decided value, if the instance is decided and the payload is known.
    std::optional<Value> decided_value(InstanceId instance) const;
    /// Digest of the decided value; known even while the payload is missing.
    /// nullopt when undecided, or delivered and truncated from the log.
    std::optional<std::uint64_t> decided_digest(InstanceId instance) const;

    /// Next instance to be delivered (all below are decided and delivered).
    InstanceId frontier() const { return frontier_; }
    /// Highest instance referenced by any 2a/2b/Decision seen; frontier <=
    /// highest_seen signals a gap worth repairing.
    InstanceId highest_seen() const { return highest_seen_; }

    /// True when `instance` is known decided but the value payload is
    /// missing (the Phase 2a was lost) — repair must fetch the full value.
    bool value_missing(InstanceId instance) const;

    std::uint64_t delivered_count() const { return delivered_count_; }

    /// Truncates the delivered log below `instance` (state-machine snapshot).
    void truncate_log_below(InstanceId instance);

#if GC_ENABLE_INVARIANTS
    // Test-only corruption hook (invariant death tests): overwrites the
    // delivered-value counter without moving the frontier, breaking the
    // frontier == delivered + 1 lockstep that P-LRN-3 monitors.
    void debug_set_delivered_count(std::uint64_t n) { delivered_count_ = n; }
#endif

    /// Wipes ALL learner state (fault engine: crash with storage loss); the
    /// delivery frontier rewinds to 1 and every decision is re-learnable.
    /// Listeners are kept. The shadow monitors must be told (DESIGN.md §7).
    void reset() {
        frontier_ = 1;
        highest_seen_ = 0;
        delivered_count_ = 0;
        inst_.clear();
        log_.clear();
    }

private:
    struct InstState {
        std::map<std::uint64_t, Value> values_by_digest;  // from Phase 2a
        // (round, digest) -> distinct voters
        std::map<std::pair<Round, std::uint64_t>, std::set<ProcessId>> votes;
        bool decided = false;
        bool via_quorum = false;
        bool listener_notified = false;
        std::uint64_t decided_digest = 0;
        ValueId decided_value_id{};
    };

    void note_instance(InstanceId instance);
    void mark_decided(InstanceId instance, ValueId value_id, std::uint64_t digest,
                      bool via_quorum, CpuContext& ctx);
    /// Fires the decided listener once the decided value's payload is known
    /// (the quorum of 2b can arrive before the Phase 2a in gossip setups).
    void maybe_notify_decided(InstanceId instance, InstState& st, CpuContext& ctx);
    void try_deliver(CpuContext& ctx);

    int quorum_;
    InstanceId frontier_ = 1;
    InstanceId highest_seen_ = 0;
    std::uint64_t delivered_count_ = 0;
    std::map<InstanceId, InstState> inst_;
    /// Delivered values, retained to answer LearnRequests (the SMR log).
    std::map<InstanceId, Value> log_;
    DeliverFn deliver_;
    DecidedFn decided_listener_;
};

}  // namespace gossipc
