// The coordinator (proposer) role: runs a ranged Phase 1 once, then
// pipelines Phase 2 — one consensus instance per client value — and
// broadcasts Decision messages when instances are decided (Section 2.3).
//
// Optional timeout-triggered retransmission of Phase 2a covers message loss;
// it is disabled in the reliability experiment (Section 4.5).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>
#include <set>
#include <unordered_set>

#include "paxos/acceptor.hpp"
#include "paxos/config.hpp"
#include "paxos/learner.hpp"
#include "transport/transport.hpp"

namespace gossipc {

class Coordinator {
public:
    struct Counters {
        std::uint64_t proposals = 0;        ///< Phase 2a broadcast (first attempt)
        std::uint64_t reproposals = 0;      ///< values re-proposed from Phase 1b
        std::uint64_t retransmissions = 0;  ///< Phase 2a retransmitted
        std::uint64_t decisions_sent = 0;
        std::uint64_t duplicate_values = 0;  ///< client values already proposed
    };

    Coordinator(const PaxosConfig& config, Transport& transport, Learner& learner);

    /// Starts Phase 1 for all instances >= the learner frontier.
    void start(CpuContext& ctx);

    void on_phase1b(const Phase1bMsg& msg, CpuContext& ctx);

    /// A client value to order (from a local client or a ClientValueMsg).
    void on_client_value(const Value& value, CpuContext& ctx);

    /// Hook from the learner: an instance was decided; broadcast Decision if
    /// it was learned via a quorum of 2b at this process.
    void on_decided(InstanceId instance, const Value& value, bool via_quorum, CpuContext& ctx);

    /// (Re)activates this coordinator with a round strictly above
    /// `min_round` and runs ranged Phase 1 (rank-based takeover after the
    /// previous coordinator is suspected, DESIGN.md §8).
    void activate(Round min_round, CpuContext& ctx);

    /// Demotion on observing a competing coordinator at a higher round:
    /// stops proposing and retransmitting, and returns every value this
    /// coordinator was responsible for but does not know decided — the
    /// caller re-routes them to the new coordinator.
    std::vector<Value> step_down();

    /// False while stepped down; a coordinator object is kept alive after
    /// demotion (its timer chains capture `this`) but stays inert.
    bool active() const { return active_; }

    bool phase1_complete() const { return phase1_complete_; }
    Round round() const { return round_; }

#if GC_ENABLE_INVARIANTS
    // Test-only corruption hook (invariant death tests): forces the
    // coordinator active at an arbitrary round, bypassing activate()'s
    // ownership arithmetic — the exact corruption the P-CRD monitors exist
    // to catch.
    void debug_force_round(Round round) {
        round_ = round;
        active_ = true;
    }
#endif
    const Counters& counters() const { return counters_; }
    /// True when `id` is in the proposal dedup set (diagnostics/tests).
    bool value_seen(const ValueId& id) const { return seen_values_.count(id) != 0; }
    std::size_t pending_values() const { return pending_.size(); }
    std::size_t undecided_proposals() const { return proposals_.size(); }
    /// Instances proposed but not yet known decided (diagnostics/tests).
    std::vector<InstanceId> undecided_instance_ids() const {
        std::vector<InstanceId> out;
        out.reserve(proposals_.size());
        for (const auto& [instance, proposal] : proposals_) out.push_back(instance);
        return out;
    }

private:
    void begin_phase1(CpuContext& ctx);
    void complete_phase1(CpuContext& ctx);
    void drop_pending(const ValueId& id);
    void propose(InstanceId instance, const Value& value, CpuContext& ctx);
    void flush_pending(CpuContext& ctx);
    void retransmit_sweep(CpuContext& ctx);

    PaxosConfig config_;
    Transport& transport_;
    Learner& learner_;

    int phase1_attempt_ = 0;
    Round round_ = 0;
    InstanceId phase1_from_ = 1;
    bool phase1_complete_ = false;
    SimTime phase1_started_at_ = SimTime::zero();
    std::set<ProcessId> promises_;
    /// Highest-vround accepted value per instance, merged from 1b messages.
    std::map<InstanceId, AcceptedEntry> reported_;

    InstanceId next_instance_ = 1;
    std::deque<Value> pending_;  ///< client values awaiting Phase 1
    std::unordered_set<ValueId> seen_values_;

    struct Proposal {
        Value value;
        SimTime proposed_at;
        std::int32_t attempt = 0;
    };
    std::map<InstanceId, Proposal> proposals_;  ///< undecided instances

    bool retransmit_armed_ = false;
    bool active_ = true;
    Counters counters_;
};

}  // namespace gossipc
