// The coordinator (proposer) role: runs a ranged Phase 1 once, then
// pipelines Phase 2 — one consensus instance per client value — and
// broadcasts Decision messages when instances are decided (Section 2.3).
//
// Optional timeout-triggered retransmission of Phase 2a covers message loss;
// it is disabled in the reliability experiment (Section 4.5).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>
#include <set>
#include <unordered_set>

#include "paxos/acceptor.hpp"
#include "paxos/config.hpp"
#include "paxos/learner.hpp"
#include "transport/transport.hpp"

namespace gossipc {

class Coordinator {
public:
    struct Counters {
        std::uint64_t proposals = 0;        ///< Phase 2a broadcast (first attempt)
        std::uint64_t reproposals = 0;      ///< values re-proposed from Phase 1b
        std::uint64_t retransmissions = 0;  ///< Phase 2a retransmitted
        std::uint64_t decisions_sent = 0;
        std::uint64_t duplicate_values = 0;  ///< client values already proposed
        std::uint64_t values_shed = 0;       ///< client values rejected: pending_ full
        std::uint64_t batches_proposed = 0;  ///< composite values proposed
        std::uint64_t batched_values = 0;    ///< client values packed into composites
        std::uint64_t timer_flushes = 0;     ///< flushes triggered by batch_delay
    };

    Coordinator(const PaxosConfig& config, Transport& transport, Learner& learner);

    /// Starts Phase 1 for all instances >= the learner frontier.
    void start(CpuContext& ctx);

    void on_phase1b(const Phase1bMsg& msg, CpuContext& ctx);

    /// A client value to order (from a local client or a ClientValueMsg).
    void on_client_value(const Value& value, CpuContext& ctx);

    /// Hook from the learner: an instance was decided; broadcast Decision if
    /// it was learned via a quorum of 2b at this process.
    void on_decided(InstanceId instance, const Value& value, bool via_quorum, CpuContext& ctx);

    /// (Re)activates this coordinator with a round strictly above
    /// `min_round` and runs ranged Phase 1 (rank-based takeover after the
    /// previous coordinator is suspected, DESIGN.md §8).
    void activate(Round min_round, CpuContext& ctx);

    /// Demotion on observing a competing coordinator at a higher round:
    /// stops proposing and retransmitting, and returns every value this
    /// coordinator was responsible for but does not know decided — the
    /// caller re-routes them to the new coordinator.
    std::vector<Value> step_down();

    /// False while stepped down; a coordinator object is kept alive after
    /// demotion (its timer chains capture `this`) but stays inert.
    bool active() const { return active_; }

    bool phase1_complete() const { return phase1_complete_; }
    Round round() const { return round_; }

#if GC_ENABLE_INVARIANTS
    // Test-only corruption hook (invariant death tests): forces the
    // coordinator active at an arbitrary round, bypassing activate()'s
    // ownership arithmetic — the exact corruption the P-CRD monitors exist
    // to catch.
    void debug_force_round(Round round) {
        round_ = round;
        active_ = true;
    }
#endif
    const Counters& counters() const { return counters_; }
    /// True when `id` is in the proposal dedup set (diagnostics/tests).
    bool value_seen(const ValueId& id) const { return seen_values_.count(id) != 0; }
    std::size_t pending_values() const { return pending_.size(); }
    std::size_t undecided_proposals() const { return proposals_.size(); }
    /// Instances proposed but not yet known decided (diagnostics/tests).
    std::vector<InstanceId> undecided_instance_ids() const {
        std::vector<InstanceId> out;
        out.reserve(proposals_.size());
        for (const auto& [instance, proposal] : proposals_) out.push_back(instance);
        return out;
    }

private:
    void begin_phase1(CpuContext& ctx);
    void complete_phase1(CpuContext& ctx);
    void drop_pending(const ValueId& id);
    void propose(InstanceId instance, const Value& value, CpuContext& ctx);
    /// Size-or-timer flush gate (DESIGN.md §14): flushes right away when
    /// batching is off or a full batch is queued, otherwise arms the
    /// batch_delay timer for the partial batch.
    void maybe_flush(CpuContext& ctx);
    void arm_flush_timer(CpuContext& ctx);
    void flush_pending(CpuContext& ctx);
    /// Marks a value — and, for composites, every component — as proposed
    /// or decided, so origin retransmissions of any of them deduplicate.
    void note_seen(const Value& value);
    /// drop_pending for a value and all its components.
    void drop_pending_for(const Value& value);
    void retransmit_sweep(CpuContext& ctx);

    PaxosConfig config_;
    Transport& transport_;
    Learner& learner_;

    int phase1_attempt_ = 0;
    Round round_ = 0;
    InstanceId phase1_from_ = 1;
    bool phase1_complete_ = false;
    SimTime phase1_started_at_ = SimTime::zero();
    std::set<ProcessId> promises_;
    /// Highest-vround accepted value per instance, merged from 1b messages.
    std::map<InstanceId, AcceptedEntry> reported_;

    InstanceId next_instance_ = 1;
    /// Plain client values awaiting proposal (never composites: losing or
    /// orphaned batches are unpacked before re-queueing, so batches cannot
    /// nest). Bounded by config_.pending_cap for externally arriving values;
    /// internal re-queues bypass the cap.
    std::deque<Value> pending_;
    std::unordered_set<ValueId> seen_values_;
    /// When the armed flush timer is due; zero() = no timer armed. A crash
    /// silently drops the one-shot callback, so a plain bool would stay
    /// "armed" forever and disable timer flushes until the next Phase 1 —
    /// the deadline lets arm_flush_timer detect the stale state (now past
    /// the deadline, no callback fired) and re-arm.
    SimTime flush_deadline_ = SimTime::zero();
    std::int64_t batch_seq_ = 0;  ///< synthesized composite ids, monotone

    struct Proposal {
        Value value;
        SimTime proposed_at;
        std::int32_t attempt = 0;
    };
    std::map<InstanceId, Proposal> proposals_;  ///< undecided instances

    bool retransmit_armed_ = false;
    bool active_ = true;
    Counters counters_;
};

}  // namespace gossipc
