// The acceptor role (Section 2.3): promises rounds and accepts values.
//
// Phase 1 is ranged (classic multi-Paxos): a single promise covers every
// instance from `from_instance` on. Per-instance accepted state is kept in a
// map and garbage-collected below the locally-learned decision frontier.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "check/invariant.hpp"
#include "paxos/message.hpp"

namespace gossipc {

class Acceptor {
public:
    struct PromiseResult {
        bool promised = false;
        /// Values accepted in instances >= from_instance; reported in 1b.
        std::vector<AcceptedEntry> accepted;
    };

    /// Handles a ranged Phase 1a. Promises iff `round` is strictly greater
    /// than the current promise floor.
    PromiseResult on_phase1a(Round round, InstanceId from_instance);

    /// Handles Phase 2a: accepts iff `round` >= the effective promised round
    /// of the instance. Returns the accepted value on success.
    bool on_phase2a(InstanceId instance, Round round, const Value& value);

    /// The round this acceptor has promised not to go below.
    Round promise_floor() const { return floor_round_; }

    /// Highest (vround, value) accepted in `instance`, if any.
    std::optional<AcceptedEntry> accepted_in(InstanceId instance) const;

    /// Drops accepted state below `instance` (locally decided and delivered;
    /// see DESIGN.md on this benign-model simplification).
    void forget_below(InstanceId instance);

    /// Wipes the durable value ledger (fault engine: crash with storage
    /// loss) but KEEPS the promise floor — the one integer a real
    /// deployment stores in the tiny boot block outside the wiped database
    /// (the runtime bridge's link-epoch counter is the same idea). Without
    /// it, an amnesiac process that previously coordinated round r can
    /// re-promise r to itself and complete a round-r quorum out of
    /// acceptors the original quorum never touched, carrying a second
    /// value into a round it already used (observed under the runtime
    /// chaos bridge, DESIGN.md §13).
    /// Safety-critical: the shadow monitors must be told (DESIGN.md §7).
    void reset() { slots_.clear(); }

    std::size_t slot_count() const { return slots_.size(); }

    /// All accepted entries currently held (for the invariant monitors).
    std::vector<AcceptedEntry> accepted_snapshot() const;

#if GC_ENABLE_INVARIANTS
    /// Test-only corruption hooks: deliberately violate acceptor state so the
    /// invariant layer's detection can be exercised. Compiled out in release.
    void debug_set_promise_floor(Round round) { floor_round_ = round; }
    void debug_overwrite_accepted(InstanceId instance, Round vround, const Value& value) {
        Slot& slot = slots_[instance];
        slot.rnd = std::max(slot.rnd, vround);
        slot.vrnd = vround;
        slot.vval = value;
    }
#endif

private:
    struct Slot {
        Round rnd = 0;   ///< highest round participated in (this instance)
        Round vrnd = 0;  ///< round in which a value was accepted (0 = none)
        Value vval{};
    };

    Round effective_round(InstanceId instance) const;

    Round floor_round_ = 0;
    std::map<InstanceId, Slot> slots_;
};

}  // namespace gossipc
