// The acceptor role (Section 2.3): promises rounds and accepts values.
//
// Phase 1 is ranged (classic multi-Paxos): a single promise covers every
// instance from `from_instance` on. Per-instance accepted state is kept in a
// map and garbage-collected below the locally-learned decision frontier.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "paxos/message.hpp"

namespace gossipc {

class Acceptor {
public:
    struct PromiseResult {
        bool promised = false;
        /// Values accepted in instances >= from_instance; reported in 1b.
        std::vector<AcceptedEntry> accepted;
    };

    /// Handles a ranged Phase 1a. Promises iff `round` is strictly greater
    /// than the current promise floor.
    PromiseResult on_phase1a(Round round, InstanceId from_instance);

    /// Handles Phase 2a: accepts iff `round` >= the effective promised round
    /// of the instance. Returns the accepted value on success.
    bool on_phase2a(InstanceId instance, Round round, const Value& value);

    /// The round this acceptor has promised not to go below.
    Round promise_floor() const { return floor_round_; }

    /// Highest (vround, value) accepted in `instance`, if any.
    std::optional<AcceptedEntry> accepted_in(InstanceId instance) const;

    /// Drops accepted state below `instance` (locally decided and delivered;
    /// see DESIGN.md on this benign-model simplification).
    void forget_below(InstanceId instance);

    std::size_t slot_count() const { return slots_.size(); }

private:
    struct Slot {
        Round rnd = 0;   ///< highest round participated in (this instance)
        Round vrnd = 0;  ///< round in which a value was accepted (0 = none)
        Value vval{};
    };

    Round effective_round(InstanceId instance) const;

    Round floor_round_ = 0;
    std::map<InstanceId, Slot> slots_;
};

}  // namespace gossipc
