#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace gossipc {

Rng Rng::derive(std::uint64_t master_seed, std::string_view tag) {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
    for (const char c : tag) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return derive(master_seed, h);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
}

SimTime Rng::exponential(SimTime mean) {
    if (mean.as_nanos() <= 0) return SimTime::zero();
    const double u = std::max(uniform01(), 1e-12);
    const double ns = -std::log(u) * static_cast<double>(mean.as_nanos());
    return SimTime::nanos(static_cast<std::int64_t>(ns));
}

std::vector<std::int32_t> Rng::sample_distinct(std::int32_t n, std::int32_t k,
                                               std::int32_t excluded) {
    const std::int32_t pool = (excluded >= 0 && excluded < n) ? n - 1 : n;
    if (k < 0 || k > pool) {
        throw std::invalid_argument("Rng::sample_distinct: k out of range");
    }
    std::vector<std::int32_t> out;
    out.reserve(static_cast<std::size_t>(k));
    if (k == 0) return out;
    // For small k relative to n, rejection sampling; otherwise shuffle a pool.
    if (static_cast<std::int64_t>(k) * 3 < n) {
        std::unordered_set<std::int32_t> chosen;
        while (static_cast<std::int32_t>(out.size()) < k) {
            const auto c = static_cast<std::int32_t>(uniform_int(0, n - 1));
            if (c == excluded || chosen.contains(c)) continue;
            chosen.insert(c);
            out.push_back(c);
        }
    } else {
        std::vector<std::int32_t> all;
        all.reserve(static_cast<std::size_t>(pool));
        for (std::int32_t i = 0; i < n; ++i) {
            if (i != excluded) all.push_back(i);
        }
        shuffle(all);
        out.assign(all.begin(), all.begin() + k);
    }
    return out;
}

}  // namespace gossipc
