// Minimal leveled logging. Off by default (Warn); experiments are silent
// unless a component opts in. Not thread-safe by design: the simulator is
// single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace gossipc {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
public:
    static LogLevel level();
    static void set_level(LogLevel level);
    static void write(LogLevel level, const std::string& msg);
};

}  // namespace gossipc

#define GCLOG(lvl, expr)                                              \
    do {                                                              \
        if (static_cast<int>(lvl) >= static_cast<int>(::gossipc::Logger::level())) { \
            std::ostringstream gclog_oss_;                            \
            gclog_oss_ << expr;                                       \
            ::gossipc::Logger::write(lvl, gclog_oss_.str());          \
        }                                                             \
    } while (0)

#define GCLOG_DEBUG(expr) GCLOG(::gossipc::LogLevel::Debug, expr)
#define GCLOG_INFO(expr) GCLOG(::gossipc::LogLevel::Info, expr)
#define GCLOG_WARN(expr) GCLOG(::gossipc::LogLevel::Warn, expr)
