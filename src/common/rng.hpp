// Deterministic random-number streams.
//
// Every stochastic component (overlay generation, peer selection, link
// jitter, loss injection, client workload) owns an independent stream derived
// from a master seed plus a component tag, so experiments are exactly
// reproducible and components can be re-seeded independently.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace gossipc {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Derives an independent child stream: child(seed, tag) never overlaps
    /// child(seed, tag') for tag != tag' in practice (SplitMix64-mixed).
    static Rng derive(std::uint64_t master_seed, std::uint64_t tag) {
        return Rng(mix64(master_seed ^ mix64(tag)));
    }
    static Rng derive(std::uint64_t master_seed, std::string_view tag);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform real in [0, 1).
    double uniform01();

    /// Bernoulli trial with success probability p (clamped to [0, 1]).
    bool chance(double p);

    /// Exponentially distributed inter-arrival time with the given mean.
    SimTime exponential(SimTime mean);

    /// Samples k distinct values from [0, n) excluding `excluded`.
    /// Requires k <= n - 1 (when excluded is in range) and k <= n otherwise.
    std::vector<std::int32_t> sample_distinct(std::int32_t n, std::int32_t k,
                                              std::int32_t excluded = -1);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    std::uint64_t next_u64() { return engine_(); }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace gossipc
