// Network-layer message envelope.
//
// The network is payload-agnostic: upper layers (gossip, Paxos-over-direct-
// links) ship immutable bodies derived from MessageBody. Bodies are shared
// (never copied) across the many transmissions a gossip dissemination makes.
// Defined in common so the simulator can carry deliveries in a typed event
// lane without allocating a closure per message.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hpp"

namespace gossipc {

/// Body kind tags: a cheap substitute for dynamic_cast on the hot path.
enum class BodyKind : std::uint8_t {
    // gclint: allow(wire-coverage) Other is the in-memory-only sentinel: encode_inner rejects it (WireCodec.OtherBodyKindIsUnencodable) and no wire tag exists by design
    Other = 0,
    GossipEnvelope,
    PullDigest,
    Paxos,
    Raft,
};

/// Immutable payload carried by the network. `wire_size` drives serialization
/// delay and CPU per-byte costs; `describe` supports logging and tests.
class MessageBody {
public:
    virtual ~MessageBody() = default;
    virtual std::uint32_t wire_size() const = 0;
    virtual std::string describe() const = 0;
    virtual BodyKind kind() const { return BodyKind::Other; }
};

using BodyPtr = std::shared_ptr<const MessageBody>;

struct NetMessage {
    ProcessId from = -1;
    ProcessId to = -1;
    BodyPtr body;

    std::uint32_t wire_size() const { return body ? body->wire_size() : 0; }
};

/// Target of the simulator's typed delivery lane (implemented by net::Node).
class DeliveryTarget {
public:
    virtual ~DeliveryTarget() = default;
    virtual void deliver_event(NetMessage msg) = 0;
};

}  // namespace gossipc
