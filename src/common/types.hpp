// Fundamental identifiers and the simulated-time type used across the library.
//
// All quantities are strong-ish: time is a dedicated arithmetic wrapper so it
// cannot be confused with counters, and protocol identifiers are distinct
// integer aliases documented here once.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>
#include <string>

namespace gossipc {

/// Index of a process in the deployment, in [0, n).
using ProcessId = std::int32_t;

/// Index of a consensus group (shard) in a multi-group deployment, in
/// [0, groups). Single-group deployments run everything in group 0, which is
/// also the wire-format default, so a groups=1 system is byte-compatible with
/// the pre-sharding format modulo the version bump.
using GroupId = std::int32_t;

/// Paxos consensus-instance identifier. Instances are decided in increasing
/// order with no gaps; instance 0 is never used (frontiers start at 1).
using InstanceId = std::int64_t;

/// Paxos round (ballot) number. Round 0 means "none yet" on acceptors.
using Round = std::int32_t;

/// Identifier of a client-submitted value: (client id, per-client sequence).
struct ValueId {
    std::int32_t client = -1;
    std::int64_t seq = -1;

    friend auto operator<=>(const ValueId&, const ValueId&) = default;
};

/// Simulated time since the start of the run. Nanosecond resolution, 64-bit
/// (range ~292 years), so per-byte CPU costs and sub-microsecond hook costs
/// do not truncate.
class SimTime {
public:
    constexpr SimTime() = default;

    static constexpr SimTime zero() { return SimTime{0}; }
    static constexpr SimTime max() {
        return SimTime{std::numeric_limits<std::int64_t>::max()};
    }
    static constexpr SimTime nanos(std::int64_t ns) { return SimTime{ns}; }
    static constexpr SimTime micros(std::int64_t us) { return SimTime{us * 1000}; }
    static constexpr SimTime millis(double ms) {
        return SimTime{static_cast<std::int64_t>(ms * 1'000'000.0)};
    }
    static constexpr SimTime seconds(double s) {
        return SimTime{static_cast<std::int64_t>(s * 1'000'000'000.0)};
    }

    constexpr std::int64_t as_nanos() const { return nanos_; }
    constexpr std::int64_t as_micros() const { return nanos_ / 1000; }
    constexpr double as_millis() const { return static_cast<double>(nanos_) / 1'000'000.0; }
    constexpr double as_seconds() const {
        return static_cast<double>(nanos_) / 1'000'000'000.0;
    }

    friend constexpr SimTime operator+(SimTime a, SimTime b) {
        return SimTime{a.nanos_ + b.nanos_};
    }
    friend constexpr SimTime operator-(SimTime a, SimTime b) {
        return SimTime{a.nanos_ - b.nanos_};
    }
    constexpr SimTime& operator+=(SimTime o) {
        nanos_ += o.nanos_;
        return *this;
    }
    friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
        return SimTime{a.nanos_ * k};
    }
    friend constexpr auto operator<=>(SimTime, SimTime) = default;

private:
    constexpr explicit SimTime(std::int64_t ns) : nanos_(ns) {}
    std::int64_t nanos_ = 0;
};

/// 64-bit mixing (SplitMix64 finalizer); used to derive message ids and RNG
/// streams deterministically.
constexpr std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Order-independent hash combine.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
    return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

}  // namespace gossipc

template <>
struct std::hash<gossipc::ValueId> {
    std::size_t operator()(const gossipc::ValueId& v) const noexcept {
        return gossipc::hash_combine(static_cast<std::uint64_t>(v.client),
                                     static_cast<std::uint64_t>(v.seq));
    }
};
