// Drives the paper's workload: one open-loop client per region, all
// submitting at the same rate, with warmup / measurement / drain phases.
#pragma once

#include <memory>
#include <vector>

#include "net/latency_model.hpp"
#include "paxos/process.hpp"
#include "stats/histogram.hpp"
#include "workload/client.hpp"

namespace gossipc {

class Workload {
public:
    struct Params {
        double total_rate = 100.0;  ///< submissions/s summed over all clients
        int num_clients = 13;       ///< one per region
        std::uint32_t value_size = 1024;
        SimTime warmup = SimTime::seconds(1);
        SimTime measure = SimTime::seconds(5);
        SimTime drain = SimTime::seconds(2);
        std::uint64_t seed = 1;
    };

    struct Result {
        double throughput = 0.0;  ///< decisions notified per second, in window
        double offered_load = 0.0;
        Histogram latencies;  ///< ms, values submitted in the window
        std::uint64_t submitted = 0;
        std::uint64_t submitted_in_window = 0;
        std::uint64_t completed = 0;
        std::uint64_t not_ordered = 0;  ///< window submissions never ordered
    };

    /// Attaches one client per region to the first process located in that
    /// region (clients interact with the closest region, Section 2.1).
    Workload(Simulator& sim, std::vector<PaxosProcess*> processes,
             const LatencyModel& latency, Params params);

    /// Multi-group form: `hosts[node]` lists the node's per-group processes
    /// (group order). Clients attach to a node and route each submission to
    /// its value's group (DESIGN.md §15); decisions from every group of the
    /// hosting node fan out to the attached clients.
    Workload(Simulator& sim, std::vector<std::vector<PaxosProcess*>> hosts,
             const LatencyModel& latency, Params params);

    /// Starts all clients. Run the simulator for at least
    /// warmup + measure + drain afterwards.
    void start();

    SimTime total_duration() const {
        return params_.warmup + params_.measure + params_.drain;
    }

    Result result() const;
    const std::vector<std::unique_ptr<Client>>& clients() const { return clients_; }

private:
    Simulator& sim_;
    Params params_;
    std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace gossipc
