// Open-loop client (Section 4.2): one client per region, submitting values
// at a fixed rate to a Paxos process in its region, without waiting for
// decisions. End-to-end latency is measured from submission to the client
// being notified of the decision of its own value by the same process.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "paxos/process.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"

namespace gossipc {

class Client {
public:
    struct Params {
        std::int32_t client_id = 0;
        double rate = 10.0;  ///< submissions per second
        std::uint32_t value_size = 1024;
        SimTime start = SimTime::zero();          ///< first submission
        SimTime stop = SimTime::seconds(10);      ///< last submission deadline
        SimTime measure_start = SimTime::zero();  ///< measurement window
        SimTime measure_end = SimTime::seconds(10);
        std::uint64_t seed = 1;
    };

    struct Counts {
        std::uint64_t submitted = 0;
        std::uint64_t submitted_in_window = 0;
        std::uint64_t completed = 0;
        std::uint64_t completed_in_window = 0;  ///< notify time in window
    };

    /// `link_delay` models the (reliable) client<->process connection.
    Client(Simulator& sim, PaxosProcess& process, SimTime link_delay, Params params);

    /// Multi-group host: one process per consensus group, all on the same
    /// node. Each submission is routed to hosts[group_for_value(id, size)],
    /// mirroring the deterministic client-side router (DESIGN.md §15).
    Client(Simulator& sim, std::vector<PaxosProcess*> hosts, SimTime link_delay,
           Params params);

    /// Begins the submission schedule (staggered within one interval).
    void start();

    /// Called by the workload when the attached process delivers a value.
    void on_decision(const Value& value, SimTime delivered_at);

    const Counts& counts() const { return counts_; }
    const Histogram& latencies() const { return latencies_; }
    std::int32_t id() const { return params_.client_id; }
    ProcessId attached_process() const { return hosts_.front()->config().id; }

    /// Values submitted in the window but never ordered (for Section 4.5).
    std::uint64_t not_ordered_in_window() const;

private:
    void schedule_next(SimTime at);
    void submit_one();

    Simulator& sim_;
    std::vector<PaxosProcess*> hosts_;  ///< one per group, same node
    SimTime link_delay_;
    Params params_;
    Rng rng_;

    std::int64_t next_seq_ = 0;
    std::unordered_map<std::int64_t, SimTime> inflight_;  ///< seq -> submit time
    std::uint64_t completed_in_window_submitted_ = 0;     ///< completions of window submissions
    Counts counts_;
    Histogram latencies_;  ///< ms, for values submitted in the window
};

}  // namespace gossipc
