#include "workload/workload.hpp"

#include <stdexcept>
#include <unordered_map>

#include "net/region.hpp"

namespace gossipc {

namespace {

std::vector<std::vector<PaxosProcess*>> single_group_hosts(
    std::vector<PaxosProcess*> processes) {
    std::vector<std::vector<PaxosProcess*>> hosts;
    hosts.reserve(processes.size());
    for (PaxosProcess* p : processes) hosts.push_back({p});
    return hosts;
}

}  // namespace

Workload::Workload(Simulator& sim, std::vector<PaxosProcess*> processes,
                   const LatencyModel& latency, Params params)
    : Workload(sim, single_group_hosts(std::move(processes)), latency, params) {}

Workload::Workload(Simulator& sim, std::vector<std::vector<PaxosProcess*>> hosts,
                   const LatencyModel& latency, Params params)
    : sim_(sim), params_(params) {
    if (hosts.empty()) throw std::invalid_argument("Workload: no processes");
    for (const auto& h : hosts) {
        if (h.empty()) throw std::invalid_argument("Workload: host with no processes");
    }
    if (params.num_clients <= 0 || params.num_clients > kNumRegions) {
        throw std::invalid_argument("Workload: bad num_clients");
    }
    const int n = static_cast<int>(hosts.size());

    // First node hosted in each region, by id order.
    std::unordered_map<int, std::size_t> region_host;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        const int r =
            static_cast<int>(region_of_process(hosts[i].front()->config().id, n));
        region_host.try_emplace(r, i);
    }

    const SimTime client_link = latency.intra_region();
    const double per_client_rate = params.total_rate / params.num_clients;
    const SimTime measure_start = params.warmup;
    const SimTime measure_end = params.warmup + params.measure;

    // One delivery listener per hosting process fans decisions out to the
    // clients attached to its node; each client filters by its own value ids.
    std::unordered_map<std::size_t, std::vector<Client*>> attached;
    for (int c = 0; c < params.num_clients; ++c) {
        // The client's region may have no process when n < 13; fall back to
        // a node chosen round-robin.
        std::size_t host = 0;
        if (const auto it = region_host.find(c % kNumRegions); it != region_host.end()) {
            host = it->second;
        } else {
            host = static_cast<std::size_t>(c) % hosts.size();
        }
        Client::Params cp;
        cp.client_id = c;
        cp.rate = per_client_rate;
        cp.value_size = params.value_size;
        cp.start = SimTime::zero();
        cp.stop = measure_end;
        cp.measure_start = measure_start;
        cp.measure_end = measure_end;
        cp.seed = params.seed;
        clients_.push_back(std::make_unique<Client>(sim_, hosts[host], client_link, cp));
        attached[host].push_back(clients_.back().get());
    }
    for (auto& [host, cs] : attached) {
        for (PaxosProcess* p : hosts[host]) {
            p->set_delivery_listener(
                [clients = cs](InstanceId, const Value& value, CpuContext& ctx) {
                    for (Client* c : clients) c->on_decision(value, ctx.now());
                });
        }
    }
}

void Workload::start() {
    for (auto& c : clients_) c->start();
}

Workload::Result Workload::result() const {
    Result r;
    r.offered_load = params_.total_rate;
    for (const auto& c : clients_) {
        r.submitted += c->counts().submitted;
        r.submitted_in_window += c->counts().submitted_in_window;
        r.completed += c->counts().completed;
        r.not_ordered += c->not_ordered_in_window();
        r.latencies.merge(c->latencies());
        r.throughput += static_cast<double>(c->counts().completed_in_window);
    }
    r.throughput /= params_.measure.as_seconds();
    return r;
}

}  // namespace gossipc
