#include "workload/client.hpp"

#include <stdexcept>

#include "group/router.hpp"

namespace gossipc {

Client::Client(Simulator& sim, PaxosProcess& process, SimTime link_delay, Params params)
    : Client(sim, std::vector<PaxosProcess*>{&process}, link_delay, params) {}

Client::Client(Simulator& sim, std::vector<PaxosProcess*> hosts, SimTime link_delay,
               Params params)
    : sim_(sim),
      hosts_(std::move(hosts)),
      link_delay_(link_delay),
      params_(params),
      rng_(Rng::derive(params.seed, 0xc11e47ULL ^ static_cast<std::uint64_t>(params.client_id))) {
    if (hosts_.empty()) throw std::invalid_argument("Client: no host processes");
    if (params.rate <= 0.0) throw std::invalid_argument("Client: rate must be positive");
}

void Client::start() {
    const SimTime interval = SimTime::seconds(1.0 / params_.rate);
    // Stagger the first submission uniformly within one interval so the 13
    // clients do not fire in lockstep.
    const SimTime offset =
        SimTime::nanos(rng_.uniform_int(0, std::max<std::int64_t>(interval.as_nanos() - 1, 0)));
    schedule_next(params_.start + offset);
}

void Client::schedule_next(SimTime at) {
    if (at > params_.stop) return;
    sim_.schedule_at(at, [this, at] {
        submit_one();
        schedule_next(at + SimTime::seconds(1.0 / params_.rate));
    });
}

void Client::submit_one() {
    const SimTime now = sim_.now();
    Value value;
    value.id = ValueId{params_.client_id, next_seq_++};
    value.size_bytes = params_.value_size;
    ++counts_.submitted;
    const bool in_window = now >= params_.measure_start && now < params_.measure_end;
    if (in_window) ++counts_.submitted_in_window;
    // SimTime::max() marks values submitted outside the measurement window:
    // tracked for completion accounting, excluded from latency samples.
    inflight_.emplace(value.id.seq, in_window ? now : SimTime::max());
    // The client-side router: the value's id deterministically selects the
    // consensus group, so every client agrees on the shard without
    // coordination (single-group deployments always pick host 0).
    PaxosProcess* host = hosts_[static_cast<std::size_t>(
        group::group_for_value(value.id, static_cast<int>(hosts_.size())))];
    // The client->process connection is reliable: deliver after link_delay.
    sim_.schedule_at(now + link_delay_, [host, value] { host->post_submit(value); });
}

void Client::on_decision(const Value& value, SimTime delivered_at) {
    if (value.id.client != params_.client_id) return;
    const auto it = inflight_.find(value.id.seq);
    if (it == inflight_.end()) return;  // duplicate notification
    const SimTime submit_time = it->second;
    inflight_.erase(it);
    ++counts_.completed;
    const SimTime notified_at = delivered_at + link_delay_;
    if (notified_at >= params_.measure_start && notified_at < params_.measure_end) {
        ++counts_.completed_in_window;
    }
    if (submit_time != SimTime::max()) {
        ++completed_in_window_submitted_;
        latencies_.add((notified_at - submit_time).as_millis());
    }
}

std::uint64_t Client::not_ordered_in_window() const {
    return counts_.submitted_in_window - completed_in_window_submitted_;
}

}  // namespace gossipc
