#include "runtime/conn_manager.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

#include "runtime/tcp.hpp"

namespace gossipc::runtime {

ConnectionManager::ConnectionManager(Reactor& reactor, ProcessId self,
                                     std::vector<PeerAddress> cluster, int listen_fd,
                                     Params params)
    : reactor_(reactor),
      self_(self),
      cluster_(std::move(cluster)),
      listen_fd_(listen_fd),
      params_(params),
      peer_fd_(cluster_.size(), -1),
      linked_(cluster_.size(), false),
      backoff_(cluster_.size(), params.reconnect_backoff_initial),
      redial_pending_(cluster_.size(), false) {
    reactor_.add_fd(listen_fd_, [this](bool readable, bool, bool) {
        if (readable) on_listener_ready();
    });
}

ConnectionManager::~ConnectionManager() {
    *alive_ = false;  // disarms the pending redial timers
    for (auto& [fd, conn] : conns_) {
        reactor_.remove_fd(fd);
        close_fd(fd);
    }
    conns_.clear();
    reactor_.remove_fd(listen_fd_);
    close_fd(listen_fd_);
}

void ConnectionManager::link(ProcessId peer) {
    if (peer < 0 || peer >= size() || peer == self_) return;
    if (linked_[static_cast<std::size_t>(peer)]) return;
    linked_[static_cast<std::size_t>(peer)] = true;
    if (dials(peer)) start_dial(peer);
}

void ConnectionManager::start_dial(ProcessId peer) {
    const auto p = static_cast<std::size_t>(peer);
    if (peer_fd_[p] != -1) return;  // already connected/connecting
    const PeerAddress& addr = cluster_[p];
    std::string err;
    const int fd = connect_tcp(addr.host, addr.port, &err);
    ++counters_.dials;
    if (fd < 0) {
        schedule_redial(peer);
        return;
    }
    Conn conn;
    conn.fd = fd;
    conn.peer = peer;
    conn.dialed = true;
    conn.connecting = true;
    conns_.emplace(fd, std::move(conn));
    peer_fd_[p] = fd;
    reactor_.add_fd(fd, [this, fd](bool r, bool w, bool e) { on_conn_event(fd, r, w, e); });
    // A connect in progress signals completion via writability.
    reactor_.set_read_interest(fd, false);
    reactor_.set_write_interest(fd, true);
}

void ConnectionManager::schedule_redial(ProcessId peer) {
    const auto p = static_cast<std::size_t>(peer);
    if (!linked_[p] || !dials(peer) || redial_pending_[p]) return;
    redial_pending_[p] = true;
    const SimTime delay = backoff_[p];
    backoff_[p] = std::min(backoff_[p] * 2, params_.reconnect_backoff_max);
    // The timer may outlive the manager (chaos teardown destroys managers
    // mid-run with redials armed), so it bails once the manager is gone.
    reactor_.schedule_after(delay, [this, peer, p, alive = std::weak_ptr<bool>(alive_)] {
        const auto guard = alive.lock();
        if (!guard || !*guard) return;
        redial_pending_[p] = false;
        if (linked_[p] && peer_fd_[p] == -1) start_dial(peer);
    });
}

void ConnectionManager::on_listener_ready() {
    // Accept everything pending; each connection introduces itself via Hello.
    for (;;) {
        const int fd = accept_nonblocking(listen_fd_);
        if (fd < 0) return;
        ++counters_.accepts;
        Conn conn;
        conn.fd = fd;
        conns_.emplace(fd, std::move(conn));
        reactor_.add_fd(fd, [this, fd](bool r, bool w, bool e) { on_conn_event(fd, r, w, e); });
        auto& c = conns_.at(fd);
        enqueue(c, wire::encode_hello_frame(wire::Hello{self_, size()}));
    }
}

void ConnectionManager::on_conn_event(int fd, bool readable, bool writable, bool error) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;

    if (conn.connecting) {
        if (error || connect_result(fd) != 0) {
            drop_conn(fd);
            return;
        }
        if (!writable) return;
        conn.connecting = false;
        reactor_.set_read_interest(fd, true);
        reactor_.set_write_interest(fd, false);
        enqueue(conn, wire::encode_hello_frame(wire::Hello{self_, size()}));
        return;
    }
    if (error) {
        drop_conn(fd);
        return;
    }
    if (readable) {
        handle_readable(conn);
        // handle_readable may have dropped the connection.
        if (!conns_.contains(fd)) return;
    }
    if (writable) handle_writable(conn);
}

void ConnectionManager::handle_readable(Conn& conn) {
    const int fd = conn.fd;
    for (;;) {
        std::uint8_t buf[64 * 1024];
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n == 0) {  // orderly shutdown by the peer
            drop_conn(fd);
            return;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            drop_conn(fd);
            return;
        }
        counters_.bytes_received += static_cast<std::uint64_t>(n);
        conn.parser.feed({buf, static_cast<std::size_t>(n)});
        if (n < static_cast<ssize_t>(sizeof buf)) break;
    }

    wire::Frame frame;
    for (;;) {
        switch (conn.parser.next(frame)) {
            case wire::FrameParser::Result::NeedMore:
                return;
            case wire::FrameParser::Result::Corrupt:
                ++counters_.protocol_errors;
                drop_conn(fd);
                return;
            case wire::FrameParser::Result::Frame:
                break;
        }
        ++counters_.frames_received;
        if (!conn.hello_received) {
            if (frame.type != wire::FrameType::Hello) {
                ++counters_.protocol_errors;
                drop_conn(fd);
                return;
            }
            handle_hello(conn, frame.payload);
            if (!conns_.contains(fd)) return;  // rejected
            continue;
        }
        if (frame.type == wire::FrameType::Hello) continue;  // duplicate, ignore
        if (frame_fn_) {
            frame_fn_(conn.peer, frame.type, frame.payload);
            if (!conns_.contains(fd)) return;  // handler tore us down
        }
        if (body_fn_ && frame.type == wire::FrameType::Body) {
            body_fn_(conn.peer, frame.payload);
            if (!conns_.contains(fd)) return;  // handler tore us down
        }
    }
}

void ConnectionManager::handle_hello(Conn& conn, std::span<const std::uint8_t> payload) {
    wire::Hello hello;
    if (wire::decode_hello(payload, hello) != wire::WireError::None ||
        hello.cluster_size != size() || hello.sender == self_) {
        ++counters_.protocol_errors;
        drop_conn(conn.fd);
        return;
    }
    if (conn.dialed && hello.sender != conn.peer) {  // wrong process answered
        ++counters_.protocol_errors;
        drop_conn(conn.fd);
        return;
    }
    conn.hello_received = true;
    adopt(conn, hello.sender);
}

void ConnectionManager::adopt(Conn& conn, ProcessId peer) {
    const auto p = static_cast<std::size_t>(peer);
    const int old_fd = peer_fd_[p];
    if (old_fd != -1 && old_fd != conn.fd) {
        // A newer connection for this peer supersedes the stale one (e.g.
        // the peer restarted before we noticed the old socket die). Forget
        // the old fd's peer slot first so drop_conn does not clear the new
        // assignment or flap the peer status.
        auto it = conns_.find(old_fd);
        if (it != conns_.end()) it->second.peer = -1;
        drop_conn(old_fd);
    }
    conn.peer = peer;
    peer_fd_[p] = conn.fd;
    backoff_[p] = params_.reconnect_backoff_initial;
    ++counters_.links_up;
    if (status_fn_) status_fn_(peer, true);
}

void ConnectionManager::drop_conn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    const ProcessId peer = it->second.peer;
    const bool was_up = it->second.hello_received && peer >= 0;
    reactor_.remove_fd(fd);
    close_fd(fd);
    conns_.erase(it);
    ++counters_.disconnects;
    if (peer >= 0) {
        const auto p = static_cast<std::size_t>(peer);
        if (peer_fd_[p] == fd) peer_fd_[p] = -1;
        if (was_up && status_fn_) status_fn_(peer, false);
        schedule_redial(peer);
    }
}

void ConnectionManager::enqueue(Conn& conn, std::vector<std::uint8_t> frame) {
    conn.out_bytes += frame.size();
    conn.outq.push_back(std::move(frame));
    handle_writable(conn);  // opportunistic flush; arms write interest if partial
}

bool ConnectionManager::send_frame(ProcessId to, wire::FrameType type,
                                   std::span<const std::uint8_t> payload) {
    if (to < 0 || to >= size() || to == self_) return false;
    const int fd = peer_fd_[static_cast<std::size_t>(to)];
    auto it = fd == -1 ? conns_.end() : conns_.find(fd);
    if (it == conns_.end() || !it->second.hello_received) {
        ++counters_.send_drops_down;
        return false;
    }
    Conn& conn = it->second;
    const std::size_t frame_bytes = wire::kFrameHeaderBytes + payload.size();
    if (conn.out_bytes + frame_bytes > params_.write_queue_cap_bytes) {
        ++counters_.send_drops_backpressure;
        return false;
    }
    ++counters_.frames_sent;
    enqueue(conn, wire::encode_frame(type, payload));
    return true;
}

void ConnectionManager::handle_writable(Conn& conn) {
    if (conn.connecting) return;
    const int fd = conn.fd;
    while (!conn.outq.empty()) {
        const std::vector<std::uint8_t>& front = conn.outq.front();
        const std::size_t len = front.size() - conn.front_offset;
        const ssize_t n = ::send(fd, front.data() + conn.front_offset, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            drop_conn(fd);
            return;
        }
        counters_.bytes_sent += static_cast<std::uint64_t>(n);
        conn.out_bytes -= static_cast<std::size_t>(n);
        conn.front_offset += static_cast<std::size_t>(n);
        if (conn.front_offset == front.size()) {
            conn.outq.pop_front();
            conn.front_offset = 0;
        }
    }
    reactor_.set_write_interest(fd, !conn.outq.empty());
}

bool ConnectionManager::peer_up(ProcessId peer) const {
    if (peer < 0 || peer >= size()) return false;
    const int fd = peer_fd_[static_cast<std::size_t>(peer)];
    if (fd == -1) return false;
    const auto it = conns_.find(fd);
    return it != conns_.end() && it->second.hello_received;
}

}  // namespace gossipc::runtime
