#include "runtime/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "wire/datagram.hpp"

namespace gossipc::runtime {

namespace {

bool udp_parse_addr(const std::string& host, std::uint16_t port, sockaddr_in* addr,
                    std::string* err) {
    std::memset(addr, 0, sizeof *addr);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(port);
    const std::string h = (host.empty() || host == "localhost") ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, h.c_str(), &addr->sin_addr) != 1) {
        if (err) *err = "not an IPv4 address: " + host;
        return false;
    }
    return true;
}

}  // namespace

int open_udp(const std::string& host, std::uint16_t port, std::string* err) {
    sockaddr_in addr{};
    if (!udp_parse_addr(host, port, &addr, err)) return -1;
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
        if (err) *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        if (err) *err = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        if (err) *err = std::string("fcntl: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

UdpChannel::UdpChannel(Reactor& reactor, int fd, std::vector<PeerAddress> cluster)
    : reactor_(reactor), fd_(fd), cluster_(std::move(cluster)) {
    reactor_.add_fd(fd_, [this](bool readable, bool writable, bool error) {
        (void)writable;
        (void)error;  // UDP sockets report transient ICMP errors; keep going
        if (readable) on_readable();
    });
}

UdpChannel::~UdpChannel() {
    reactor_.remove_fd(fd_);
    ::close(fd_);
}

std::size_t UdpChannel::max_datagram_bytes() const { return wire::kMaxDatagramBytes; }

bool UdpChannel::send(ProcessId to, std::span<const std::uint8_t> datagram) {
    if (to < 0 || static_cast<std::size_t>(to) >= cluster_.size()) return false;
    const PeerAddress& peer = cluster_[static_cast<std::size_t>(to)];
    sockaddr_in addr{};
    if (!udp_parse_addr(peer.host, peer.port, &addr, nullptr)) return false;
    for (;;) {
        const ssize_t n = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                                   reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
        if (n >= 0) return true;
        if (errno == EINTR) continue;
        // EAGAIN (socket buffer full) drops the datagram — UDP loses packets
        // under pressure by definition, and the reliability layer repairs
        // what was flagged reliable.
        ++counters_.send_errors;
        return false;
    }
}

void UdpChannel::on_readable() {
    // Drain everything available; the loop handles EINTR (retry) and EAGAIN
    // (drained) uniformly, mirroring the TCP recv loop.
    std::uint8_t buf[wire::kMaxDatagramBytes];
    for (;;) {
        const ssize_t n = ::recvfrom(fd_, buf, sizeof buf, 0, nullptr, nullptr);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            // Transient errors (ECONNREFUSED from ICMP port-unreachable on
            // connected sockets, buffer pressure): count and keep the socket.
            ++counters_.recv_errors;
            return;
        }
        if (recv_) recv_(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    }
}

}  // namespace gossipc::runtime
