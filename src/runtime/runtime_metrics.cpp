#include "runtime/runtime_metrics.hpp"

#include <string>

namespace gossipc::runtime {

namespace {

std::string peer_key(const char* prefix, ProcessId peer, const char* metric) {
    return std::string(prefix) + std::to_string(peer) + '.' + metric;
}

}  // namespace

void fill_udp_link_metrics(MetricsRegistry& reg, const UdpLink& link) {
    const UdpLink::Counters& c = link.counters();
    reg.counter("udp.link.datagrams_sent").set(c.datagrams_sent);
    reg.counter("udp.link.datagrams_received").set(c.datagrams_received);
    reg.counter("udp.link.bodies_sent").set(c.bodies_sent);
    reg.counter("udp.link.bodies_received").set(c.bodies_received);
    reg.counter("udp.link.acks_only_sent").set(c.acks_only_sent);
    reg.counter("udp.link.retransmits").set(c.retransmits);
    reg.counter("udp.link.fast_retransmits").set(c.fast_retransmits);
    reg.counter("udp.link.reliable_acked").set(c.reliable_acked);
    reg.counter("udp.link.reliable_dropped").set(c.reliable_dropped);
    reg.counter("udp.link.duplicate_datagrams").set(c.duplicate_datagrams);
    reg.counter("udp.link.stale_datagrams").set(c.stale_datagrams);
    reg.counter("udp.link.duplicate_reliables").set(c.duplicate_reliables);
    reg.counter("udp.link.decode_errors").set(c.decode_errors);
    reg.counter("udp.link.send_failures").set(c.send_failures);
    reg.counter("udp.link.epoch_resets").set(c.epoch_resets);
    reg.counter("udp.link.seq_history_evictions").set(c.seq_history_evictions);
    for (ProcessId p = 0; p < link.size(); ++p) {
        if (p == link.self()) continue;
        const UdpLink::PeerStats st = link.peer_stats(p);
        reg.gauge(peer_key("udp.peer.", p, "heard")).set(st.heard ? 1.0 : 0.0);
        reg.gauge(peer_key("udp.peer.", p, "unacked")).set(static_cast<double>(st.unacked));
        reg.gauge(peer_key("udp.peer.", p, "max_rto_ms"))
            .set(static_cast<double>(st.max_rto.as_nanos()) / 1e6);
    }
}

void fill_lossy_network_metrics(MetricsRegistry& reg, const LossyDatagramNetwork& net) {
    const LossyDatagramNetwork::Counters& c = net.counters();
    reg.counter("lossynet.sent").set(c.sent);
    reg.counter("lossynet.delivered").set(c.delivered);
    reg.counter("lossynet.dropped").set(c.dropped);
    reg.counter("lossynet.duplicated").set(c.duplicated);
    reg.counter("lossynet.reordered").set(c.reordered);
    reg.counter("lossynet.truncated").set(c.truncated);
}

void fill_detector_metrics(MetricsRegistry& reg, const FailureDetector& detector,
                           int cluster_size) {
    const FailureDetector::Counters& c = detector.counters();
    reg.counter("detector.heartbeats_sent").set(c.heartbeats_sent);
    reg.counter("detector.heartbeats_suppressed").set(c.heartbeats_suppressed);
    reg.counter("detector.suspicions").set(c.suspicions);
    reg.counter("detector.restores").set(c.restores);
    for (ProcessId p = 0; p < cluster_size; ++p) {
        reg.gauge(peer_key("detector.suspect.", p, "now"))
            .set(detector.suspects(p) ? 1.0 : 0.0);
    }
}

}  // namespace gossipc::runtime
