// Non-blocking TCP connection manager (DESIGN.md §10): maintains one
// framed, bidirectional connection per linked peer of a node.
//
// Dial policy: for a linked pair the lower process id dials and the higher
// id accepts, so exactly one connection exists per overlay edge. Both ends
// send a Hello frame identifying themselves; a link counts as up once the
// remote Hello arrives. Dialed connections that fail or drop are re-dialed
// with exponential backoff (reset on a successful Hello); accepted
// connections are simply awaited again. When a peer restarts and dials
// anew while a stale connection lingers, the newest connection wins.
//
// Writes go through a per-connection queue capped in bytes: a frame that
// would push the queue past the cap is dropped and counted, mirroring the
// gossip layer's bounded per-peer send queues — backpressure shows up as
// message loss (which the protocol already tolerates), not as unbounded
// memory.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/peer_channel.hpp"
#include "runtime/reactor.hpp"
#include "wire/frame.hpp"

namespace gossipc::runtime {

struct PeerAddress {
    std::string host;
    std::uint16_t port = 0;
};

class ConnectionManager final : public PeerChannel {
public:
    struct Params {
        /// Per-connection write-queue cap (bytes); frames beyond it drop.
        std::size_t write_queue_cap_bytes = 4u << 20;
        SimTime reconnect_backoff_initial = SimTime::millis(50);
        SimTime reconnect_backoff_max = SimTime::seconds(2);
    };

    struct Counters {
        std::uint64_t dials = 0;             ///< outbound connection attempts
        std::uint64_t accepts = 0;           ///< inbound connections accepted
        std::uint64_t links_up = 0;          ///< Hello handshakes completed
        std::uint64_t disconnects = 0;       ///< connections dropped (any cause)
        std::uint64_t frames_sent = 0;
        std::uint64_t frames_received = 0;
        std::uint64_t bytes_sent = 0;
        std::uint64_t bytes_received = 0;
        std::uint64_t send_drops_down = 0;   ///< sends while the link was down
        std::uint64_t send_drops_backpressure = 0;  ///< write-queue cap hit
        std::uint64_t protocol_errors = 0;   ///< corrupt stream / bad Hello
    };

    using FrameFn =
        std::function<void(ProcessId from, wire::FrameType type,
                           std::span<const std::uint8_t> payload)>;
    using PeerStatusFn = std::function<void(ProcessId peer, bool up)>;

    /// `listen_fd` must already be bound + listening + non-blocking
    /// (runtime::listen_tcp); the manager owns it from here on.
    ConnectionManager(Reactor& reactor, ProcessId self,
                      std::vector<PeerAddress> cluster, int listen_fd, Params params);
    ~ConnectionManager() override;

    ConnectionManager(const ConnectionManager&) = delete;
    ConnectionManager& operator=(const ConnectionManager&) = delete;

    void set_frame_handler(FrameFn fn) { frame_fn_ = std::move(fn); }
    void set_peer_status_handler(PeerStatusFn fn) { status_fn_ = std::move(fn); }

    /// Declares `peer` a linked neighbor: dials it (if this side dials) and
    /// keeps re-dialing on failure until the manager is destroyed.
    void link(ProcessId peer) override;

    /// Queues one frame to `to`. False (and a counter bump) when the link is
    /// down or the write queue is over its cap — the frame is dropped.
    bool send_frame(ProcessId to, wire::FrameType type,
                    std::span<const std::uint8_t> payload);

    // PeerChannel body-level interface. The reliable flag is advisory here:
    // an up TCP link retransmits everything, a down one drops everything.
    void set_body_handler(BodyFn fn) override { body_fn_ = std::move(fn); }
    bool send_body(ProcessId peer, std::span<const std::uint8_t> bytes,
                   bool reliable) override {
        (void)reliable;
        return send_frame(peer, wire::FrameType::Body, bytes);
    }

    bool peer_up(ProcessId peer) const override;
    ProcessId self() const override { return self_; }
    int size() const override { return static_cast<int>(cluster_.size()); }
    const Counters& counters() const { return counters_; }

private:
    struct Conn {
        int fd = -1;
        ProcessId peer = -1;        ///< -1 until the remote Hello (accepted conns)
        bool dialed = false;        ///< we initiated this connection
        bool connecting = false;    ///< non-blocking connect still in progress
        bool hello_received = false;
        wire::FrameParser parser;
        std::deque<std::vector<std::uint8_t>> outq;
        std::size_t out_bytes = 0;      ///< queued bytes across outq
        std::size_t front_offset = 0;   ///< bytes of outq.front() already sent
    };

    bool dials(ProcessId peer) const { return self_ < peer; }
    void start_dial(ProcessId peer);
    void schedule_redial(ProcessId peer);
    void on_listener_ready();
    void on_conn_event(int fd, bool readable, bool writable, bool error);
    void handle_readable(Conn& conn);
    void handle_writable(Conn& conn);
    void handle_hello(Conn& conn, std::span<const std::uint8_t> payload);
    void adopt(Conn& conn, ProcessId peer);
    /// Closes and forgets the connection; schedules a redial when this side
    /// dials the peer. Invalidates the Conn reference.
    void drop_conn(int fd);
    void enqueue(Conn& conn, std::vector<std::uint8_t> frame);

    Reactor& reactor_;
    ProcessId self_;
    std::vector<PeerAddress> cluster_;
    int listen_fd_;
    Params params_;
    FrameFn frame_fn_;
    BodyFn body_fn_;
    PeerStatusFn status_fn_;

    std::unordered_map<int, Conn> conns_;        ///< by fd
    std::vector<int> peer_fd_;                   ///< current conn fd per peer (-1 none)
    std::vector<bool> linked_;                   ///< peers this node keeps connected
    std::vector<SimTime> backoff_;               ///< next redial delay per peer
    std::vector<bool> redial_pending_;           ///< a redial timer is armed
    /// Guards the redial timers, which cannot be cancelled individually and
    /// may fire after the manager is destroyed (chaos crash teardown).
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    Counters counters_;
};

}  // namespace gossipc::runtime
