// Real-socket UDP datagram channel (DESIGN.md §12): the production
// implementation of DatagramChannel behind UdpLink, one bound socket per
// node (IPv4, non-blocking).
//
// Datagrams are addressed by cluster index using the same PeerAddress list
// the TCP runtime uses, so `gossipd --transport udp` needs no extra
// configuration. The sender is identified by the datagram header (validated
// by UdpLink), not the source address — NATs and rebinding do not confuse
// peer identity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/conn_manager.hpp"
#include "runtime/reactor.hpp"
#include "runtime/udp_link.hpp"

namespace gossipc::runtime {

/// Binds a non-blocking UDP socket on host:port (IPv4 literal or
/// "localhost"; port 0 picks an ephemeral port — read it back with
/// local_port). Returns the fd, or -1 with *err set.
int open_udp(const std::string& host, std::uint16_t port, std::string* err);

class UdpChannel final : public DatagramChannel {
public:
    struct Counters {
        std::uint64_t send_errors = 0;   ///< sendto failed (EAGAIN included)
        std::uint64_t recv_errors = 0;   ///< recvfrom failed (not EINTR/EAGAIN)
    };

    /// `fd` must be bound + non-blocking (open_udp); the channel owns it and
    /// registers it with the reactor.
    UdpChannel(Reactor& reactor, int fd, std::vector<PeerAddress> cluster);
    ~UdpChannel() override;

    UdpChannel(const UdpChannel&) = delete;
    UdpChannel& operator=(const UdpChannel&) = delete;

    bool send(ProcessId to, std::span<const std::uint8_t> datagram) override;
    void set_receive_handler(RecvFn fn) override { recv_ = std::move(fn); }
    std::size_t max_datagram_bytes() const override;

    const Counters& counters() const { return counters_; }

private:
    void on_readable();

    Reactor& reactor_;
    int fd_;
    std::vector<PeerAddress> cluster_;
    RecvFn recv_;
    Counters counters_;
};

}  // namespace gossipc::runtime
