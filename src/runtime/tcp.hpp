// Thin non-blocking TCP socket helpers for the runtime (IPv4). All sockets
// are created non-blocking with TCP_NODELAY (the wire protocol does its own
// batching via semantic aggregation; Nagle would add latency under it).
#pragma once

#include <cstdint>
#include <string>

namespace gossipc::runtime {

/// Binds and listens on host:port (host must be an IPv4 literal or
/// "localhost"; port 0 picks an ephemeral port — read it back with
/// local_port). Returns the non-blocking listener fd, or -1 with *err set.
int listen_tcp(const std::string& host, std::uint16_t port, std::string* err);

/// Port a bound socket actually listens on.
std::uint16_t local_port(int fd);

/// Starts a non-blocking connect. Returns the fd (connection typically in
/// progress — poll for writability), or -1 with *err set.
int connect_tcp(const std::string& host, std::uint16_t port, std::string* err);

/// Completion status of a non-blocking connect on a writable fd: 0 on
/// success, the socket error otherwise.
int connect_result(int fd);

/// Accepts one pending connection as a non-blocking fd; -1 when none/error.
int accept_nonblocking(int listen_fd);

void close_fd(int fd);

}  // namespace gossipc::runtime
