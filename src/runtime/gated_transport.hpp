// Crash-gated transport facade for the runtime chaos bridge (DESIGN.md §13).
//
// The simulator can crash a process without destroying it: the Node keeps
// its state, drops traffic and pending tasks, and resumes on recover(). The
// real runtime has no such switch — a crash tears the socket stack
// (RealTransport + UdpLink/ConnectionManager) down and a restart builds a
// fresh one. PaxosProcess and FailureDetector, however, hold a Transport&
// for their whole lifetime, and their state must survive the crash exactly
// as durable state survives in the simulator.
//
// GatedTransport is the stable object between the two lifetimes: the
// protocol stack binds to the facade once; the chaos bridge attach()es and
// detach()es the short-lived socket transport underneath. While detached
// (crashed), the facade mirrors the simulator's crash semantics:
//  * broadcast/send are dropped (no wire, no local delivery);
//  * one-shot schedule() callbacks are dropped when they fire;
//  * schedule_every() ticks are dropped but the chain survives — the
//    Transport contract — so the failure detector's sweep chain resumes
//    after restart and its crash-gap re-baseline fires naturally;
//  * post()ed tasks are dropped at execution, like Node::post on a
//    crashed node;
//  * nothing is delivered up (the socket stack is gone anyway).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/reactor.hpp"
#include "transport/transport.hpp"

namespace gossipc::runtime {

class GatedTransport final : public Transport {
public:
    struct Counters {
        std::uint64_t dropped_sends = 0;  ///< broadcast/send while crashed
        std::uint64_t dropped_tasks = 0;  ///< timer ticks/posts swallowed while crashed
        std::uint64_t attaches = 0;       ///< restarts (first attach included)
    };

    GatedTransport(Reactor& reactor, ProcessId self);
    ~GatedTransport() override;

    GatedTransport(const GatedTransport&) = delete;
    GatedTransport& operator=(const GatedTransport&) = delete;

    /// Wires `inner` (not owned) underneath: deliveries flow up through the
    /// facade and sends flow down. Call after building a fresh socket
    /// transport on restart.
    void attach(Transport* inner);
    /// Severs the inner transport (crash). The caller destroys it.
    void detach();
    bool attached() const { return inner_ != nullptr; }

    // Transport interface.
    ProcessId self() const override { return self_; }
    void broadcast(PaxosMessagePtr msg, CpuContext& ctx) override;
    void send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) override;
    void schedule(SimTime delay, std::function<void(CpuContext&)> fn) override;
    void schedule_every(SimTime period, std::function<void(CpuContext&)> fn) override;
    void post(std::function<void(CpuContext&)> fn) override;

    const Counters& counters() const { return counters_; }

private:
    /// The inner transport stamps its own origination clock; fold it into
    /// the facade's so FailureDetector's heartbeat suppression (which reads
    /// the facade) sees exactly what actually left the process.
    void sync_origination();

    Reactor& reactor_;
    ProcessId self_;
    Transport* inner_ = nullptr;
    std::vector<Reactor::TimerId> timers_;  ///< periodic chains, cancelled on destroy
    /// Guards one-shot timers and posts, which cannot be cancelled and may
    /// fire after the facade itself is destroyed at harness teardown.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    Counters counters_;
};

}  // namespace gossipc::runtime
