#include "runtime/lossy_link.hpp"

#include <utility>

namespace gossipc::runtime {

LossyDatagramNetwork::LossyDatagramNetwork(Reactor& reactor, int n, std::uint64_t seed,
                                           Params params)
    : reactor_(reactor), params_(params), model_(seed) {
    endpoints_.reserve(static_cast<std::size_t>(n));
    for (ProcessId id = 0; id < n; ++id) {
        endpoints_.push_back(std::make_unique<Endpoint>(*this, id));
    }
}

const fault::DatagramFaultSpec& LossyDatagramNetwork::spec_for(ProcessId from,
                                                               ProcessId to) const {
    if (const auto it = link_specs_.find({from, to}); it != link_specs_.end()) {
        return it->second;
    }
    return default_spec_;
}

bool LossyDatagramNetwork::transmit(ProcessId from, ProcessId to,
                                    std::span<const std::uint8_t> datagram) {
    if (to < 0 || to >= size() || datagram.size() > params_.max_datagram_bytes) {
        return false;
    }
    ++counters_.sent;
    const std::uint64_t seq = ++link_seq_[{from, to}];
    const fault::DatagramFaultSpec& spec = spec_for(from, to);
    const fault::DatagramFate fate = model_.decide(spec, from, to, seq);
    if (!fate.clean()) {
        log_.emplace(std::make_tuple(from, to, seq),
                     fault::DatagramFaultModel::describe(from, to, seq, fate));
    }
    if (fate.drop) {
        ++counters_.dropped;
        return true;  // sent, from the sender's point of view
    }
    std::vector<std::uint8_t> bytes(datagram.begin(), datagram.end());
    if (fate.truncated) {
        ++counters_.truncated;
        bytes.resize(static_cast<std::size_t>(
            static_cast<double>(bytes.size()) * fate.keep_frac));
    }
    if (fate.delay > SimTime::zero()) ++counters_.reordered;
    // extra_delay is a deterministic link property, not a per-datagram fate:
    // it shifts every delivery (duplicates included) without touching the
    // fate log.
    const SimTime base = params_.base_delay + spec.extra_delay;
    if (fate.duplicate) {
        ++counters_.duplicated;
        schedule_delivery(to, bytes, base + fate.duplicate_delay);
    }
    schedule_delivery(to, std::move(bytes), base + fate.delay);
    return true;
}

void LossyDatagramNetwork::schedule_delivery(ProcessId to, std::vector<std::uint8_t> bytes,
                                             SimTime delay) {
    auto buf = std::make_shared<std::vector<std::uint8_t>>(std::move(bytes));
    reactor_.schedule_after(delay, [this, to, buf] {
        ++counters_.delivered;
        endpoints_[static_cast<std::size_t>(to)]->deliver(*buf);
    });
}

std::string LossyDatagramNetwork::fault_log() const {
    std::string out;
    for (const auto& [key, line] : log_) {
        out += line;
        out += '\n';
    }
    return out;
}

}  // namespace gossipc::runtime
