#include "runtime/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gossipc::runtime {

namespace {

bool set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool parse_addr(const std::string& host, std::uint16_t port, sockaddr_in* addr,
                std::string* err) {
    std::memset(addr, 0, sizeof *addr);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(port);
    const std::string h = (host.empty() || host == "localhost") ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, h.c_str(), &addr->sin_addr) != 1) {
        if (err) *err = "not an IPv4 address: " + host;
        return false;
    }
    return true;
}

}  // namespace

int listen_tcp(const std::string& host, std::uint16_t port, std::string* err) {
    sockaddr_in addr{};
    if (!parse_addr(host, port, &addr, err)) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err) *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        if (err) *err = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 128) != 0 || !set_nonblocking(fd)) {
        if (err) *err = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

std::uint16_t local_port(int fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
    return ntohs(addr.sin_port);
}

int connect_tcp(const std::string& host, std::uint16_t port, std::string* err) {
    sockaddr_in addr{};
    if (!parse_addr(host, port, &addr, err)) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err) *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (!set_nonblocking(fd)) {
        if (err) *err = std::string("fcntl: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    set_nodelay(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 &&
        errno != EINPROGRESS) {
        if (err) *err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int connect_result(int fd) {
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) return errno;
    return soerr;
}

int accept_nonblocking(int listen_fd) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return -1;
    if (!set_nonblocking(fd)) {
        ::close(fd);
        return -1;
    }
    set_nodelay(fd);
    return fd;
}

void close_fd(int fd) {
    if (fd >= 0) ::close(fd);
}

}  // namespace gossipc::runtime
