#include "runtime/udp_link.hpp"

#include <algorithm>
#include <utility>

#include "wire/datagram.hpp"

namespace gossipc::runtime {

UdpLink::UdpLink(Reactor& reactor, ProcessId self, int cluster_size,
                 DatagramChannel& channel, Params params)
    : reactor_(reactor),
      self_(self),
      cluster_size_(cluster_size),
      channel_(channel),
      params_(std::move(params)),
      peers_(static_cast<std::size_t>(cluster_size)) {
    channel_.set_receive_handler(
        [this](std::span<const std::uint8_t> bytes) { on_datagram(bytes); });
    rto_timer_ = reactor_.schedule_every(params_.rto_sweep, [this] { rto_sweep(); });
    keepalive_timer_ =
        reactor_.schedule_every(params_.keepalive, [this] { keepalive_sweep(); });
}

UdpLink::~UdpLink() {
    *alive_ = false;
    reactor_.cancel_timer(rto_timer_);
    reactor_.cancel_timer(keepalive_timer_);
    for (Peer& p : peers_) {
        if (p.ack_timer_armed) reactor_.cancel_timer(p.ack_timer);
    }
    channel_.set_receive_handler(nullptr);
}

void UdpLink::link(ProcessId peer) {
    if (peer < 0 || peer >= cluster_size_ || peer == self_) return;
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (p.linked) return;
    p.linked = true;
    // Introduce ourselves immediately: the peer's peer_up() flips on the
    // first datagram it hears, and keepalives repeat the introduction until
    // the peer is actually listening.
    send_pure_ack(peer, p);
}

bool UdpLink::peer_up(ProcessId peer) const {
    if (peer < 0 || peer >= cluster_size_) return false;
    return peers_[static_cast<std::size_t>(peer)].heard;
}

std::size_t UdpLink::unacked(ProcessId peer) const {
    if (peer < 0 || peer >= cluster_size_) return 0;
    return peers_[static_cast<std::size_t>(peer)].unacked.size();
}

UdpLink::PeerStats UdpLink::peer_stats(ProcessId peer) const {
    PeerStats st;
    if (peer < 0 || peer >= cluster_size_) return st;
    const Peer& p = peers_[static_cast<std::size_t>(peer)];
    st.linked = p.linked;
    st.heard = p.heard;
    st.unacked = p.unacked.size();
    st.pending = p.pending.size();
    st.send_seq = p.next_seq - 1;
    st.recv_latest = p.recv_latest;
    for (const auto& [rel_id, entry] : p.unacked) {
        st.max_rto = std::max(st.max_rto, entry.rto);
    }
    return st;
}

// -- sending ------------------------------------------------------------------

bool UdpLink::send_body(ProcessId peer, std::span<const std::uint8_t> bytes,
                        bool reliable) {
    if (peer < 0 || peer >= cluster_size_ || peer == self_) return false;
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    const bool rel = reliable || params_.force_reliable;
    const std::size_t wire_cost =
        wire::kDatagramHeaderBytes + wire::kDatagramSubHeaderBytes + bytes.size();
    if (wire_cost > channel_.max_datagram_bytes()) {
        ++counters_.send_failures;
        if (rel) ++counters_.reliable_dropped;
        return false;
    }
    PendingSub sub;
    sub.reliable = rel;
    sub.body.assign(bytes.begin(), bytes.end());
    if (rel) {
        if (p.unacked.size() >= params_.reliable_window) {
            ++counters_.reliable_dropped;
            return false;
        }
        sub.rel_id = p.next_rel_id++;
        RelEntry entry;
        entry.body = sub.body;
        entry.rto = params_.rto_initial;
        entry.rto_deadline = reactor_.now() + entry.rto;
        p.unacked.emplace(sub.rel_id, std::move(entry));
    }
    ++counters_.bodies_sent;
    queue_sub(peer, p, std::move(sub));
    return true;
}

void UdpLink::queue_sub(ProcessId to, Peer& p, PendingSub sub) {
    p.pending.push_back(std::move(sub));
    schedule_flush(to, p);
}

void UdpLink::schedule_flush(ProcessId to, Peer& p) {
    if (p.flush_scheduled) return;
    p.flush_scheduled = true;
    // Flush on the next loop turn so every body queued in this turn (a
    // broadcast fan-out, a gossip drain batch) clusters into one datagram.
    // Posted tasks cannot be cancelled, so the task checks the alive flag:
    // the link may have been torn down (chaos crash) before the turn runs.
    reactor_.post([this, to, alive = std::weak_ptr<bool>(alive_)] {
        const auto guard = alive.lock();
        if (!guard || !*guard) return;
        flush(to);
    });
}

void UdpLink::flush(ProcessId to) {
    Peer& p = peers_[static_cast<std::size_t>(to)];
    p.flush_scheduled = false;
    if (p.pending.empty()) {
        if (p.ack_pending) send_pure_ack(to, p);
        return;
    }
    std::vector<PendingSub> pending;
    pending.swap(p.pending);
    std::size_t i = 0;
    while (i < pending.size()) {
        std::vector<wire::DatagramSub> subs;
        std::size_t size = wire::kDatagramHeaderBytes;
        while (i < pending.size()) {
            const std::size_t cost =
                wire::kDatagramSubHeaderBytes + pending[i].body.size();
            if (!subs.empty() && size + cost > params_.mtu_bytes) break;
            subs.push_back(wire::DatagramSub{pending[i].reliable, pending[i].rel_id,
                                             std::move(pending[i].body)});
            size += cost;
            ++i;
            if (size > params_.mtu_bytes) break;  // lone jumbo body: close it
        }
        if (size > params_.mtu_bytes) ++counters_.jumbo_datagrams;

        wire::DatagramHeader h;
        h.sender = self_;
        h.epoch = params_.epoch;
        h.seq = p.next_seq++;
        h.ack = p.recv_latest;
        h.ack_bits = p.recv_bits;
        std::vector<std::uint32_t> rels;
        for (const wire::DatagramSub& s : subs) {
            if (!s.reliable) continue;
            rels.push_back(s.rel_id);
            if (auto it = p.unacked.find(s.rel_id); it != p.unacked.end()) {
                it->second.newest_seq = h.seq;
                it->second.rto_deadline = reactor_.now() + it->second.rto;
            }
        }
        if (!rels.empty()) {
            // Bounded under an ack-less partition: evict the oldest mapping
            // once the cap is hit — the rel_ids stay in `unacked` and the
            // RTO path covers them; only the fast-retransmit hint is lost.
            if (p.seq_rels.size() >= params_.seq_history) {
                p.seq_rels.erase(p.seq_rels.begin());
                ++counters_.seq_history_evictions;
            }
            p.seq_rels.emplace(h.seq, std::move(rels));
        }

        const std::vector<std::uint8_t> bytes = wire::encode_datagram(h, subs);
        p.ack_pending = false;  // the ack rode along
        p.last_send = reactor_.now();
        if (channel_.send(to, bytes)) {
            ++counters_.datagrams_sent;
            counters_.bytes_sent += bytes.size();
        } else {
            ++counters_.send_failures;  // reliable subs will RTO-retransmit
        }
    }
}

void UdpLink::send_pure_ack(ProcessId to, Peer& p) {
    wire::DatagramHeader h;
    h.sender = self_;
    h.epoch = params_.epoch;
    h.seq = 0;  // unsequenced: pure acks are never acked back (no ack storms)
    h.ack = p.recv_latest;
    h.ack_bits = p.recv_bits;
    const std::vector<std::uint8_t> bytes = wire::encode_datagram(h, {});
    p.ack_pending = false;
    p.last_send = reactor_.now();
    if (channel_.send(to, bytes)) {
        ++counters_.datagrams_sent;
        ++counters_.acks_only_sent;
        counters_.bytes_sent += bytes.size();
    } else {
        ++counters_.send_failures;
    }
}

void UdpLink::retransmit(ProcessId to, Peer& p, std::uint32_t rel_id) {
    auto it = p.unacked.find(rel_id);
    if (it == p.unacked.end()) return;  // acked in the meantime
    PendingSub sub;
    sub.reliable = true;
    sub.rel_id = rel_id;
    sub.body = it->second.body;
    queue_sub(to, p, std::move(sub));
}

// -- receiving ----------------------------------------------------------------

void UdpLink::on_datagram(std::span<const std::uint8_t> bytes) {
    ++counters_.datagrams_received;
    counters_.bytes_received += bytes.size();
    wire::DatagramView view;
    if (wire::decode_datagram(bytes, view) != wire::WireError::None) {
        ++counters_.decode_errors;
        return;
    }
    const ProcessId from = view.header.sender;
    if (from < 0 || from >= cluster_size_ || from == self_) {
        ++counters_.decode_errors;  // mis-addressed or impersonating datagram
        return;
    }
    Peer& p = peers_[static_cast<std::size_t>(from)];
    p.heard = true;
    note_incoming_epoch(p, view.header.epoch);
    process_acks(from, p, view.header.ack, view.header.ack_bits);
    if (view.header.seq == 0) return;  // pure ack/keepalive: nothing to deliver

    const bool fresh = note_incoming_seq(p, view.header.seq);
    // Ack received data lazily: reverse traffic within ack_delay piggybacks
    // the ack for free, otherwise a pure-ack datagram goes out.
    p.ack_pending = true;
    if (!p.ack_timer_armed) {
        p.ack_timer_armed = true;
        p.ack_timer = reactor_.schedule_after(params_.ack_delay, [this, from] {
            Peer& peer = peers_[static_cast<std::size_t>(from)];
            peer.ack_timer_armed = false;
            if (peer.ack_pending && !peer.flush_scheduled) send_pure_ack(from, peer);
        });
    }
    if (!fresh) return;  // duplicate datagram: the ack state is all it updates

    for (const wire::DatagramSubView& sub : view.subs) {
        if (sub.reliable && !note_incoming_rel(p, sub.rel_id)) {
            ++counters_.duplicate_reliables;
            continue;
        }
        ++counters_.bodies_received;
        if (body_fn_) body_fn_(from, sub.body);
    }
}

void UdpLink::note_incoming_epoch(Peer& p, std::uint8_t epoch) {
    if (p.epoch_known && p.recv_epoch == epoch) return;
    if (p.epoch_known) {
        // The peer restarted its link layer: its seq and rel_id counters
        // begin again at 1, so the dedup state built against the previous
        // incarnation would silently swallow the fresh one's bodies.
        ++counters_.epoch_resets;
        p.recv_latest = 0;
        p.recv_bits = 0;
        p.rel_latest = 0;
        std::fill(p.rel_seen.begin(), p.rel_seen.end(), false);
    }
    p.epoch_known = true;
    p.recv_epoch = epoch;
}

bool UdpLink::note_incoming_seq(Peer& p, std::uint32_t seq) {
    if (seq > p.recv_latest) {
        const std::uint32_t shift = seq - p.recv_latest;
        std::uint32_t bits = 0;
        if (p.recv_latest != 0 && shift <= 32) {
            bits |= 1u << (shift - 1);  // the old latest enters the window
            if (shift < 32) bits |= p.recv_bits << shift;
        }
        p.recv_bits = bits;
        p.recv_latest = seq;
        return true;
    }
    if (seq == p.recv_latest) {
        ++counters_.duplicate_datagrams;
        return false;
    }
    const std::uint32_t behind = p.recv_latest - seq;
    if (behind > 32) {
        // Below the window: dedup state is gone. Deliver anyway — reliable
        // bodies still dedup by rel_id, and everything above the link layer
        // (seen cache, Paxos) tolerates duplicates by design.
        ++counters_.stale_datagrams;
        return true;
    }
    const std::uint32_t bit = 1u << (behind - 1);
    if ((p.recv_bits & bit) != 0) {
        ++counters_.duplicate_datagrams;
        return false;
    }
    p.recv_bits |= bit;
    return true;
}

bool UdpLink::note_incoming_rel(Peer& p, std::uint32_t rel_id) {
    const std::size_t window = params_.dedup_window;
    if (p.rel_seen.empty()) p.rel_seen.assign(window, false);
    if (rel_id > p.rel_latest) {
        const std::uint32_t jump = rel_id - p.rel_latest;
        if (static_cast<std::size_t>(jump) >= window) {
            std::fill(p.rel_seen.begin(), p.rel_seen.end(), false);
        } else {
            for (std::uint32_t id = p.rel_latest + 1; id <= rel_id; ++id) {
                p.rel_seen[id % window] = false;  // slots entering the window
            }
        }
        p.rel_seen[rel_id % window] = true;
        p.rel_latest = rel_id;
        return true;
    }
    const std::uint32_t behind = p.rel_latest - rel_id;
    if (static_cast<std::size_t>(behind) >= window) return false;  // too old to tell: assume dup
    if (p.rel_seen[rel_id % window]) return false;
    p.rel_seen[rel_id % window] = true;
    return true;
}

void UdpLink::process_acks(ProcessId to, Peer& p, std::uint32_t ack,
                           std::uint32_t ack_bits) {
    if (ack == 0) return;  // peer has heard nothing from us yet
    const auto is_acked = [&](std::uint32_t s) {
        if (s == ack) return true;
        if (s < ack) {
            const std::uint32_t behind = ack - s;
            if (behind <= 32) return ((ack_bits >> (behind - 1)) & 1u) != 0;
        }
        return false;  // s > ack: the peer has not seen that far yet
    };
    // Scan in one pass; retransmissions are queued after the scan so the
    // map is not mutated mid-iteration. A rel_id is only re-sent off seq s
    // when s is its *newest* transmission — an older copy deemed lost while
    // a fresh one is still in flight is not worth a third copy yet.
    std::vector<std::uint32_t> retx;
    for (auto it = p.seq_rels.begin(); it != p.seq_rels.end();) {
        const std::uint32_t s = it->first;
        if (is_acked(s)) {
            for (const std::uint32_t rel : it->second) {
                if (p.unacked.erase(rel) > 0) ++counters_.reliable_acked;
            }
            it = p.seq_rels.erase(it);
            continue;
        }
        const bool off_window = s < ack && ack - s > 32;
        const bool nacked = s < ack && ack - s >= params_.nack_threshold;
        if (off_window || nacked) {
            for (const std::uint32_t rel : it->second) {
                const auto uit = p.unacked.find(rel);
                if (uit != p.unacked.end() && uit->second.newest_seq <= s) {
                    retx.push_back(rel);
                }
            }
            it = p.seq_rels.erase(it);
            continue;
        }
        ++it;
    }
    for (const std::uint32_t rel : retx) {
        ++counters_.fast_retransmits;
        retransmit(to, p, rel);
    }
}

// -- timers -------------------------------------------------------------------

void UdpLink::rto_sweep() {
    const SimTime now = reactor_.now();
    for (ProcessId to = 0; to < cluster_size_; ++to) {
        Peer& p = peers_[static_cast<std::size_t>(to)];
        if (p.unacked.empty()) continue;
        std::vector<std::uint32_t> due;
        for (auto& [rel_id, entry] : p.unacked) {
            if (now < entry.rto_deadline) continue;
            // Exponential backoff, hard-capped at rto_max: during a full
            // partition every entry settles at the cap instead of growing
            // (or being reset by keepalive traffic, which never touches
            // this state). The deterministic jitter de-phases peers.
            entry.rto = std::min(entry.rto * 2, params_.rto_max);
            entry.rto_deadline = now + entry.rto + rto_jitter(to, rel_id, entry.rto);
            due.push_back(rel_id);
        }
        for (const std::uint32_t rel : due) {
            ++counters_.retransmits;
            retransmit(to, p, rel);
        }
    }
}

SimTime UdpLink::rto_jitter(ProcessId to, std::uint32_t rel_id, SimTime rto) const {
    const std::int64_t range = params_.rto_jitter_max.as_nanos();
    if (range <= 0) return SimTime::zero();
    // Pure function of (self, peer, rel_id, backoff stage): the same
    // retransmission in a replayed run jitters by the same amount.
    const std::uint64_t h = mix64(hash_combine(
        hash_combine(static_cast<std::uint64_t>(self_), static_cast<std::uint64_t>(to)),
        hash_combine(rel_id, static_cast<std::uint64_t>(rto.as_nanos()))));
    return SimTime::nanos(static_cast<std::int64_t>(h % static_cast<std::uint64_t>(range + 1)));
}

void UdpLink::keepalive_sweep() {
    const SimTime now = reactor_.now();
    for (ProcessId to = 0; to < cluster_size_; ++to) {
        Peer& p = peers_[static_cast<std::size_t>(to)];
        if (!p.linked) continue;
        if (now - p.last_send >= params_.keepalive) send_pure_ack(to, p);
    }
}

}  // namespace gossipc::runtime
