// Runtime fault-pressure metrics (DESIGN.md §9, §13): folds the runtime
// stack's scattered counters — UdpLink reliability machinery, the lossy
// datagram harness, the failure detector — into the unified MetricsRegistry,
// so chaos runs report fault pressure through the same JSON/CSV snapshot
// pipeline as the simulator experiments.
//
// Per-peer link health (in-flight reliable bodies, current backoff, heard
// state, detector suspicion) lands under "udp.peer.<id>." / sub-keys built
// at fill time; the fixed aggregate names are literals so the metrics
// snapshot test pins them against renames and drops.
#pragma once

#include "detect/failure_detector.hpp"
#include "runtime/lossy_link.hpp"
#include "runtime/udp_link.hpp"
#include "stats/registry.hpp"

namespace gossipc::runtime {

/// UdpLink aggregate counters plus per-peer retransmit-pressure gauges.
void fill_udp_link_metrics(MetricsRegistry& reg, const UdpLink& link);

/// LossyDatagramNetwork::Counters (in-process chaos harness fault pressure).
void fill_lossy_network_metrics(MetricsRegistry& reg, const LossyDatagramNetwork& net);

/// FailureDetector counters plus per-peer suspect gauges.
void fill_detector_metrics(MetricsRegistry& reg, const FailureDetector& detector,
                           int cluster_size);

}  // namespace gossipc::runtime
