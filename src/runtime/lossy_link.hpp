// Deterministic in-process lossy datagram network (DESIGN.md §12): the
// test-harness implementation of DatagramChannel.
//
// N endpoints exchange datagrams through the reactor's timer queue instead
// of real sockets; every datagram's fate (drop, duplicate, reorder delay,
// MTU truncation) comes from the stateless DatagramFaultModel, keyed by
// (seed, from, to, per-link send index). Two runs that send the same
// datagrams over the same links therefore produce the same fates — and the
// harness records each non-clean fate in a canonical log, rendered sorted,
// so seed-replay tests can assert byte-identical fault logs. No sockets,
// no kernel buffers: the whole cluster runs under ctest and ASan/UBSan.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fault/datagram_faults.hpp"
#include "runtime/reactor.hpp"
#include "runtime/udp_link.hpp"

namespace gossipc::runtime {

class LossyDatagramNetwork {
public:
    struct Params {
        /// Channel cap reported to senders (loopback-sized, not WAN-sized).
        std::size_t max_datagram_bytes = 64 * 1024;
        /// Fixed propagation delay for every delivery (fates add on top).
        SimTime base_delay = SimTime::micros(100);
    };

    struct Counters {
        std::uint64_t sent = 0;        ///< datagrams handed to the network
        std::uint64_t delivered = 0;   ///< handler invocations (dups count)
        std::uint64_t dropped = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t reordered = 0;   ///< got a non-zero reorder delay
        std::uint64_t truncated = 0;
    };

    LossyDatagramNetwork(Reactor& reactor, int n, std::uint64_t seed, Params params);
    LossyDatagramNetwork(Reactor& reactor, int n, std::uint64_t seed)
        : LossyDatagramNetwork(reactor, n, seed, Params()) {}

    /// Fault spec applied to links without a per-link override.
    void set_default_fault(const fault::DatagramFaultSpec& spec) { default_spec_ = spec; }
    void set_link_fault(ProcessId from, ProcessId to,
                        const fault::DatagramFaultSpec& spec) {
        link_specs_[{from, to}] = spec;
    }
    void clear_link_fault(ProcessId from, ProcessId to) { link_specs_.erase({from, to}); }

    DatagramChannel& endpoint(ProcessId id) { return *endpoints_[static_cast<std::size_t>(id)]; }
    int size() const { return static_cast<int>(endpoints_.size()); }
    const Counters& counters() const { return counters_; }

    /// Canonical replay log: one line per non-clean fate, sorted by
    /// (from, to, seq) — byte-identical for identical (seed, traffic).
    std::string fault_log() const;

private:
    class Endpoint final : public DatagramChannel {
    public:
        Endpoint(LossyDatagramNetwork& net, ProcessId id) : net_(net), id_(id) {}
        bool send(ProcessId to, std::span<const std::uint8_t> datagram) override {
            return net_.transmit(id_, to, datagram);
        }
        void set_receive_handler(RecvFn fn) override { recv_ = std::move(fn); }
        std::size_t max_datagram_bytes() const override {
            return net_.params_.max_datagram_bytes;
        }
        void deliver(std::span<const std::uint8_t> datagram) {
            if (recv_) recv_(datagram);
        }

    private:
        LossyDatagramNetwork& net_;
        ProcessId id_;
        RecvFn recv_;
    };

    bool transmit(ProcessId from, ProcessId to, std::span<const std::uint8_t> datagram);
    const fault::DatagramFaultSpec& spec_for(ProcessId from, ProcessId to) const;
    void schedule_delivery(ProcessId to, std::vector<std::uint8_t> bytes, SimTime delay);

    Reactor& reactor_;
    Params params_;
    fault::DatagramFaultModel model_;
    fault::DatagramFaultSpec default_spec_;
    std::map<std::pair<ProcessId, ProcessId>, fault::DatagramFaultSpec> link_specs_;
    std::vector<std::unique_ptr<Endpoint>> endpoints_;
    /// Per-directed-link datagram index driving the fault model.
    std::map<std::pair<ProcessId, ProcessId>, std::uint64_t> link_seq_;
    std::map<std::tuple<ProcessId, ProcessId, std::uint64_t>, std::string> log_;
    Counters counters_;
};

}  // namespace gossipc::runtime
