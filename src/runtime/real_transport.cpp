#include "runtime/real_transport.hpp"

#include <utility>

#include "gossip/gossip_node.hpp"
#include "wire/codec.hpp"

namespace gossipc::runtime {

RealTransport::RealTransport(Reactor& reactor, PeerChannel& chan, Params params,
                             GossipHooks& hooks)
    : reactor_(reactor),
      chan_(chan),
      params_(std::move(params)),
      hooks_(hooks),
      seen_(params_.seen_cache_capacity),
      queues_(params_.neighbors.size()) {
    chan_.set_body_handler(
        [this](ProcessId from, std::span<const std::uint8_t> payload) {
            on_body(from, payload);
        });
    if (params_.mode == Mode::Direct) {
        for (ProcessId p = 0; p < chan_.size(); ++p) {
            if (p != self()) chan_.link(p);
        }
    } else {
        for (const ProcessId p : params_.neighbors) chan_.link(p);
    }
}

RealTransport::~RealTransport() {
    *alive_ = false;
    chan_.set_body_handler(nullptr);
    for (const Reactor::TimerId id : timers_) reactor_.cancel_timer(id);
}

void RealTransport::add_neighbor(ProcessId peer) {
    if (params_.mode != Mode::Gossip || peer == self()) return;
    for (std::size_t i = 0; i < params_.neighbors.size(); ++i) {
        if (params_.neighbors[i] == peer) {
            queues_[i].active = true;  // revive the tombstoned slot
            chan_.link(peer);
            return;
        }
    }
    params_.neighbors.push_back(peer);
    queues_.emplace_back();
    chan_.link(peer);
}

void RealTransport::remove_neighbor(ProcessId peer) {
    for (std::size_t i = 0; i < params_.neighbors.size(); ++i) {
        if (params_.neighbors[i] != peer) continue;
        queues_[i].active = false;
        queues_[i].pending.clear();
        return;
    }
}

// -- sending ----------------------------------------------------------------

void RealTransport::broadcast(PaxosMessagePtr msg, CpuContext& ctx) {
    note_origination(ctx.now());
    if (params_.mode == Mode::Direct) {
        deliver_up(msg, ctx);  // local delivery, as with gossip broadcast
        for (ProcessId p = 0; p < chan_.size(); ++p) {
            if (p != self()) send_body(p, *msg);
        }
        return;
    }
    // Gossip mode mirrors GossipNode::broadcast: register in the seen cache,
    // deliver locally, forward to every neighbor.
    ++counters_.broadcasts;
    GossipAppMessage app;
    app.id = msg->unique_key();
    app.origin = self();
    app.payload = std::move(msg);
    if (!seen_.insert_if_new(app.id)) return;  // re-broadcast of a known id
    deliver(app, ctx);
    forward(app, /*exclude=*/-1);
}

void RealTransport::send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) {
    if (params_.mode == Mode::Gossip) {
        // Gossip provides no unicast: one-to-one messages are broadcast and
        // delivered to all participants (Section 3.1).
        broadcast(std::move(msg), ctx);
        return;
    }
    if (to == self()) {
        deliver_up(msg, ctx);
        return;
    }
    note_origination(ctx.now());
    send_body(to, *msg);
}

void RealTransport::send_body(ProcessId to, const MessageBody& body) {
    const std::vector<std::uint8_t> bytes = wire::encode_body(body);
    chan_.send_body(to, bytes, reliable_over_datagrams(body, params_.mode));
}

void RealTransport::forward(const GossipAppMessage& msg, ProcessId exclude) {
    for (std::size_t i = 0; i < params_.neighbors.size(); ++i) {
        if (params_.neighbors[i] == exclude) continue;
        PeerQueue& q = queues_[i];
        if (!q.active) continue;  // churned away
        if (q.pending.size() >= params_.peer_queue_cap) {
            ++counters_.send_queue_drops;
            continue;
        }
        q.pending.push_back(msg);
        if (!q.drain_scheduled) {
            q.drain_scheduled = true;
            reactor_.post([this, i, alive = std::weak_ptr<bool>(alive_)] {
                const auto guard = alive.lock();
                if (!guard || !*guard) return;
                CpuContext ctx(reactor_.now());
                drain_peer(i, ctx);
            });
        }
    }
}

void RealTransport::drain_peer(std::size_t idx, CpuContext& ctx) {
    PeerQueue& q = queues_[idx];
    q.drain_scheduled = false;
    if (!q.active || q.pending.empty()) return;
    const ProcessId peer = params_.neighbors[idx];
    std::vector<GossipAppMessage> pending;
    pending.swap(q.pending);
    const std::size_t before = pending.size();
    std::vector<GossipAppMessage> batch = hooks_.aggregate(std::move(pending), peer);
    if (batch.size() < before) {
        counters_.aggregated_away += before - batch.size();
    }
    for (const auto& m : batch) {
        if (!hooks_.validate(m, peer)) {
            ++counters_.filtered;
            continue;
        }
        send_envelope(m, peer);
    }
    (void)ctx;
}

void RealTransport::send_envelope(const GossipAppMessage& msg, ProcessId peer) {
    GossipAppMessage out = msg;
    ++out.hops;
    const GossipEnvelope envelope{std::move(out)};
    const std::vector<std::uint8_t> bytes = wire::encode_body(envelope);
    if (chan_.send_body(peer, bytes, reliable_over_datagrams(envelope, params_.mode))) {
        ++counters_.envelopes_sent;
    }
}

// -- receiving --------------------------------------------------------------

void RealTransport::on_body(ProcessId from, std::span<const std::uint8_t> payload) {
    const wire::DecodedBody decoded = wire::decode_body(payload);
    if (!decoded.ok()) {
        ++counters_.decode_errors;
        return;
    }
    CpuContext ctx(reactor_.now());
    const MessageBody& body = *decoded.body;
    if (body.kind() == BodyKind::Paxos) {
        // Direct mode ships bare protocol bodies.
        deliver_up(std::static_pointer_cast<const PaxosMessage>(decoded.body), ctx);
        return;
    }
    if (body.kind() == BodyKind::GossipEnvelope) {
        on_envelope(static_cast<const GossipEnvelope&>(body).message(), from, ctx);
    }
    // Other kinds (pull digests, Raft) have no consumer in this transport.
}

void RealTransport::on_envelope(const GossipAppMessage& msg, ProcessId from,
                                CpuContext& ctx) {
    ++counters_.envelopes_received;
    if (msg.aggregated) {
        // Reversible aggregation: reconstruct the original messages and
        // process each as a regular message.
        std::vector<GossipAppMessage> originals = hooks_.disaggregate(msg);
        for (auto& m : originals) {
            m.hops = msg.hops;  // the originals travelled as the aggregate
            ++counters_.messages_received;
            accept(m, from, ctx);
        }
    } else {
        ++counters_.messages_received;
        accept(msg, from, ctx);
    }
}

void RealTransport::accept(const GossipAppMessage& msg, ProcessId received_from,
                           CpuContext& ctx) {
    if (!seen_.insert_if_new(msg.id)) {
        ++counters_.duplicates;
        return;
    }
    deliver(msg, ctx);
    forward(msg, received_from);
}

void RealTransport::deliver(const GossipAppMessage& msg, CpuContext& ctx) {
    ++counters_.delivered;
    hooks_.on_deliver(msg);
    if (msg.payload && msg.payload->kind() == BodyKind::Paxos) {
        deliver_up(std::static_pointer_cast<const PaxosMessage>(msg.payload), ctx);
    }
}

// -- reliability policy ------------------------------------------------------

bool reliable_over_datagrams(const MessageBody& body, RealTransport::Mode mode) {
    switch (body.kind()) {
        case BodyKind::GossipEnvelope: {
            const auto& env = static_cast<const GossipEnvelope&>(body);
            return env.message().payload &&
                   reliable_over_datagrams(*env.message().payload, mode);
        }
        case BodyKind::Paxos: {
            const auto& msg = static_cast<const PaxosMessage&>(body);
            switch (msg.type()) {
                // Phase 1 runs once per coordinator round over ranged
                // instances — losing it stalls the pipeline, so it is always
                // repaired at the link. Client values and learner repair
                // requests are unicast (no gossip redundancy behind them).
                case PaxosMsgType::ClientValue:
                case PaxosMsgType::Phase1a:
                case PaxosMsgType::Phase1b:
                case PaxosMsgType::LearnRequest:
                    return true;
                // Phase 2 and Decision traffic: per-instance, flooded in
                // Gossip mode where redundant paths are the repair
                // mechanism (and the protocol retransmits on timeout
                // anyway); point-to-point in Direct mode, where the link is
                // the only path.
                case PaxosMsgType::Phase2a:
                case PaxosMsgType::Phase2b:
                case PaxosMsgType::Phase2bAggregate:
                case PaxosMsgType::Decision:
                case PaxosMsgType::GroupBatch:  // carries Phase 2b / Decisions
                    return mode == RealTransport::Mode::Direct;
                // Heartbeats are periodic by construction; a retransmitted
                // stale heartbeat is worse than the next fresh one.
                case PaxosMsgType::Heartbeat:
                    return false;
            }
            return false;  // unreachable: the switch above is exhaustive
        }
        // Pull digests are periodic anti-entropy (the next round supersedes
        // a lost one); Raft ships bare control traffic like Direct Paxos;
        // Other has no wire form at all.
        case BodyKind::PullDigest:
            return false;
        case BodyKind::Raft:
            return mode == RealTransport::Mode::Direct;
        case BodyKind::Other:
            return false;
    }
    return false;  // unreachable: the switch above is exhaustive
}

// -- timers / tasks ---------------------------------------------------------

void RealTransport::schedule(SimTime delay, std::function<void(CpuContext&)> fn) {
    reactor_.schedule_after(
        delay, [this, fn = std::move(fn), alive = std::weak_ptr<bool>(alive_)] {
            const auto guard = alive.lock();
            if (!guard || !*guard) return;
            CpuContext ctx(reactor_.now());
            fn(ctx);
        });
}

void RealTransport::schedule_every(SimTime period, std::function<void(CpuContext&)> fn) {
    timers_.push_back(reactor_.schedule_every(period, [this, fn = std::move(fn)] {
        CpuContext ctx(reactor_.now());
        fn(ctx);
    }));
}

void RealTransport::post(std::function<void(CpuContext&)> fn) {
    reactor_.post([this, fn = std::move(fn), alive = std::weak_ptr<bool>(alive_)] {
        const auto guard = alive.lock();
        if (!guard || !*guard) return;
        CpuContext ctx(reactor_.now());
        fn(ctx);
    });
}

}  // namespace gossipc::runtime
