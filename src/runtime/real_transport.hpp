// Transport over real sockets (DESIGN.md §10, §12): the socket-backed
// counterpart of DirectTransport/GossipTransport. PaxosProcess and
// FailureDetector depend only on the Transport interface, so the protocol
// stack runs over this transport unmodified. The socket layer underneath is
// a PeerChannel — framed TCP streams (ConnectionManager) or clustered UDP
// datagrams (UdpLink) — selected by gossipd --transport.
//
// Two modes, matching the simulator's setups:
//  * Direct — point-to-point unicast to every cluster member (the Baseline
//    setup); broadcast fans out one encoded frame per peer.
//  * Gossip — push dissemination over the overlay neighbors, mirroring
//    GossipNode exactly: a recently-seen cache dedups, delivery happens on
//    first sight, forwards go to every neighbor but the sender through
//    per-peer pending queues drained on the event loop, and the semantic
//    hooks (aggregate/validate/disaggregate) run at the same points —
//    aggregate over a peer's pending batch at drain, validate per message
//    before the wire, disaggregate on receipt of an aggregated envelope.
//    Hop counts increment per transmission and survive the codec.
//
// CpuContext is constructed from the reactor's monotonic clock; consume()
// advances only the context's virtual time (the real CPU cost is the real
// CPU cost), which the protocol stack tolerates by design.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gossip/hooks.hpp"
#include "gossip/seen_cache.hpp"
#include "runtime/peer_channel.hpp"
#include "runtime/reactor.hpp"
#include "transport/transport.hpp"

namespace gossipc::runtime {

class RealTransport final : public Transport {
public:
    enum class Mode { Direct, Gossip };

    struct Params {
        Mode mode = Mode::Direct;
        /// Overlay neighbors forwarded to in Gossip mode (ignored in Direct
        /// mode, which talks to the whole cluster).
        std::vector<ProcessId> neighbors;
        std::size_t seen_cache_capacity = 1 << 18;
        /// Pending messages per peer before new forwards are dropped,
        /// mirroring GossipNode::Params::peer_queue_cap.
        std::size_t peer_queue_cap = 8192;
    };

    /// Mirrors GossipNode::Counters where the semantics coincide, plus the
    /// codec's decode_errors (a simulator run cannot have those).
    struct Counters {
        std::uint64_t broadcasts = 0;
        std::uint64_t envelopes_received = 0;
        std::uint64_t messages_received = 0;  ///< after disaggregation
        std::uint64_t duplicates = 0;
        std::uint64_t delivered = 0;
        std::uint64_t filtered = 0;           ///< dropped by validate()
        std::uint64_t aggregated_away = 0;
        std::uint64_t envelopes_sent = 0;
        std::uint64_t send_queue_drops = 0;   ///< peer pending-queue cap hit
        std::uint64_t decode_errors = 0;      ///< frames that failed to decode
    };

    /// `hooks` must outlive the transport (pass PassThroughHooks for classic
    /// gossip, PaxosSemantics for the Semantic setup). Installs itself as
    /// `chan`'s body handler and links the relevant peers.
    RealTransport(Reactor& reactor, PeerChannel& chan, Params params,
                  GossipHooks& hooks);
    /// Detaches from the channel and invalidates the pending drain/timer
    /// tasks: the chaos bridge tears transports down mid-run, so everything
    /// posted to the reactor must survive the teardown.
    ~RealTransport() override;

    RealTransport(const RealTransport&) = delete;
    RealTransport& operator=(const RealTransport&) = delete;

    // Transport interface — the seam the protocol stack plugs into.
    ProcessId self() const override { return chan_.self(); }
    void broadcast(PaxosMessagePtr msg, CpuContext& ctx) override;
    void send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) override;
    void schedule(SimTime delay, std::function<void(CpuContext&)> fn) override;
    void schedule_every(SimTime period, std::function<void(CpuContext&)> fn) override;
    void post(std::function<void(CpuContext&)> fn) override;

    const Counters& counters() const { return counters_; }

    /// Overlay churn over the live runtime (Gossip mode): start/stop
    /// forwarding to `peer`. A removed neighbor's slot is tombstoned, not
    /// erased — pending drain tasks capture queue indices, which must stay
    /// stable. Re-adding a removed neighbor revives its slot.
    void add_neighbor(ProcessId peer);
    void remove_neighbor(ProcessId peer);
    const std::vector<ProcessId>& neighbors() const { return params_.neighbors; }

private:
    void on_body(ProcessId from, std::span<const std::uint8_t> payload);
    void on_envelope(const GossipAppMessage& msg, ProcessId from, CpuContext& ctx);
    void accept(const GossipAppMessage& msg, ProcessId received_from, CpuContext& ctx);
    void deliver(const GossipAppMessage& msg, CpuContext& ctx);
    void forward(const GossipAppMessage& msg, ProcessId exclude);
    void drain_peer(std::size_t idx, CpuContext& ctx);
    void send_envelope(const GossipAppMessage& msg, ProcessId peer);
    void send_body(ProcessId to, const MessageBody& body);

    Reactor& reactor_;
    PeerChannel& chan_;
    Params params_;
    GossipHooks& hooks_;
    SeenCache seen_;

    struct PeerQueue {
        std::vector<GossipAppMessage> pending;
        bool drain_scheduled = false;
        bool active = true;  ///< false = churned away (tombstoned slot)
    };
    std::vector<PeerQueue> queues_;  // parallel to params_.neighbors

    /// Guards reactor tasks/timers posted by this transport: posts cannot
    /// be cancelled and the chaos bridge destroys transports mid-run.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    std::vector<Reactor::TimerId> timers_;  ///< periodic chains, cancelled on destroy
    Counters counters_;
};

/// Reliability policy over datagram channels (DESIGN.md §12): which bodies
/// the UDP link should retransmit until acked. Consensus-critical control
/// traffic (Phase 1, client values, learner repair requests) is reliable;
/// Phase 2 and Decision traffic in Gossip mode rides best-effort on gossip's
/// own redundancy, exactly the loss tolerance the paper claims. For a
/// GossipEnvelope the policy is that of its payload. TCP channels ignore
/// the flag (the stream is reliable wholesale).
bool reliable_over_datagrams(const MessageBody& body, RealTransport::Mode mode);

}  // namespace gossipc::runtime
