#include "runtime/reactor.hpp"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <cerrno>

namespace gossipc::runtime {

namespace {
/// Poll timeout cap: bounds interrupt-check latency while idle.
constexpr SimTime kMaxPollWait = SimTime::millis(50);
}  // namespace

Reactor::Reactor() : start_(std::chrono::steady_clock::now()) {}

SimTime Reactor::now() const {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    return SimTime::nanos(ns);
}

void Reactor::add_fd(int fd, IoFn fn) { fds_[fd] = FdEntry{std::move(fn), true, false}; }

void Reactor::remove_fd(int fd) { fds_.erase(fd); }

void Reactor::set_read_interest(int fd, bool enabled) {
    if (auto it = fds_.find(fd); it != fds_.end()) it->second.want_read = enabled;
}

void Reactor::set_write_interest(int fd, bool enabled) {
    if (auto it = fds_.find(fd); it != fds_.end()) it->second.want_write = enabled;
}

Reactor::TimerId Reactor::schedule_after(SimTime delay, TimerFn fn) {
    const TimerId id = next_timer_id_++;
    timers_.push(Timer{now() + delay, id, SimTime::zero(), std::move(fn)});
    return id;
}

Reactor::TimerId Reactor::schedule_every(SimTime period, TimerFn fn) {
    const TimerId id = next_timer_id_++;
    timers_.push(Timer{now() + period, id, period, std::move(fn)});
    return id;
}

void Reactor::cancel_timer(TimerId id) { cancelled_.insert(id); }

void Reactor::post(std::function<void()> fn) { posted_.push_back(std::move(fn)); }

void Reactor::run_posted() {
    // Tasks posted by tasks run in the same sweep (FIFO), mirroring the
    // simulator's same-instant task chaining; a task re-posting itself
    // forever would starve the poll, as it would starve the simulator.
    while (!posted_.empty() && !stopped_) {
        auto fn = std::move(posted_.front());
        posted_.pop_front();
        fn();
    }
}

void Reactor::fire_due_timers() {
    const SimTime t = now();
    while (!timers_.empty() && !stopped_) {
        if (timers_.top().deadline > t) break;
        Timer timer = timers_.top();
        timers_.pop();
        if (auto it = cancelled_.find(timer.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        if (timer.period > SimTime::zero()) {
            Timer next = timer;
            // Re-arm off the deadline so load does not stretch the period;
            // if the loop stalled past several periods, skip the backlog
            // (protocol sweeps are rate-based, not count-based).
            next.deadline = std::max(timer.deadline + timer.period,
                                     t - timer.period * 4);
            timers_.push(next);
        }
        timer.fn();
    }
}

SimTime Reactor::next_timer_delay() const {
    if (timers_.empty()) return kMaxPollWait;
    const SimTime t = now();
    if (timers_.top().deadline <= t) return SimTime::zero();
    return timers_.top().deadline - t;
}

void Reactor::iterate(SimTime max_wait) {
    run_posted();
    if (stopped_) return;
    fire_due_timers();
    if (stopped_) return;

    SimTime wait = std::min(next_timer_delay(), max_wait);
    if (!posted_.empty()) wait = SimTime::zero();
    wait = std::min(wait, kMaxPollWait);

    std::vector<pollfd> pfds;
    std::vector<int> order;
    pfds.reserve(fds_.size());
    order.reserve(fds_.size());
    for (const auto& [fd, entry] : fds_) {
        short events = 0;
        if (entry.want_read) events |= POLLIN;
        if (entry.want_write) events |= POLLOUT;
        pfds.push_back(pollfd{fd, events, 0});
        order.push_back(fd);
    }

    const int timeout_ms =
        static_cast<int>(std::min<std::int64_t>(wait.as_nanos() / 1'000'000 + 1, 1000));
    ++stats_.polls;
    const int rc = ::poll(pfds.empty() ? nullptr : pfds.data(),
                          static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0) {
        // EINTR (signal) and EAGAIN (transient kernel resource pressure —
        // datagram-socket-heavy loops see it) are handled uniformly: return
        // to the loop top, where the interrupt check runs and timers are
        // re-evaluated against their deadlines, so an interrupted poll can
        // neither fire a timer early nor lose one.
        if (errno == EINTR || errno == EAGAIN) {
            ++stats_.interrupted;
            return;
        }
        // A persistent poll failure (EINVAL/ENOMEM) would otherwise spin
        // this loop at 100% CPU; back off briefly and keep serving timers.
        ++stats_.poll_errors;
        const timespec backoff{0, 1'000'000};  // 1 ms
        ::nanosleep(&backoff, nullptr);
        return;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
        const short re = pfds[i].revents;
        if (re == 0) continue;
        // The callback may remove fds (including its own); re-check.
        auto it = fds_.find(order[i]);
        if (it == fds_.end()) continue;
        const bool err = (re & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        // Copying the handler keeps it alive if the callback removes the fd.
        IoFn fn = it->second.fn;
        fn((re & POLLIN) != 0, (re & POLLOUT) != 0, err);
        if (stopped_) return;
    }
}

void Reactor::run() {
    while (!stopped_) {
        if (interrupt_check_ && interrupt_check_()) {
            stopped_ = true;
            break;
        }
        iterate(kMaxPollWait);
    }
}

bool Reactor::run_until(const std::function<bool()>& pred, SimTime limit) {
    const SimTime deadline = now() + limit;
    while (!stopped_) {
        if (pred()) return true;
        if (now() >= deadline) return pred();
        if (interrupt_check_ && interrupt_check_()) {
            stopped_ = true;
            break;
        }
        iterate(SimTime::millis(10));
    }
    return pred();
}

}  // namespace gossipc::runtime
