// UDP link layer (DESIGN.md §12): clusters encoded message bodies into
// MTU-sized datagrams and runs a reliable-unordered layer on top of a raw
// datagram channel.
//
// Datagram layout is wire/datagram.hpp: every sequenced datagram carries a
// per-link seq plus an ack + 32-bit selective-ack bitfield piggybacked for
// the reverse direction. Reliability is per sub-envelope, not per datagram:
// bodies flagged reliable get a per-link rel_id and are retransmitted
// (re-clustered into fresh datagrams) until some datagram carrying them is
// acked — fast-retransmit when the ack window shows later datagrams landed
// without them, RTO with exponential backoff otherwise. Best-effort bodies
// are sent exactly once and never mourned: gossip's redundancy is their
// repair mechanism, which is the paper's premise.
//
// Delivery is unordered by design. The receive side dedups datagrams by seq
// against the 32-deep ack window and dedups reliable bodies by rel_id
// against a sliding window, so retransmits and network duplicates deliver
// at most once; ordering is the protocol layer's problem (Paxos instances
// are self-ordering, gossip envelopes are idempotent by message id).
//
// The raw channel underneath is either a real UDP socket (runtime/udp.hpp)
// or the deterministic in-process lossy harness (runtime/lossy_link.hpp) —
// UdpLink cannot tell the difference, which is what makes the chaos suite's
// loss/duplication/reorder/truncation runs byte-reproducible under ctest.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "runtime/peer_channel.hpp"
#include "runtime/reactor.hpp"

namespace gossipc::runtime {

/// A raw unreliable datagram endpoint: send whole datagrams, receive whole
/// datagrams. May drop, duplicate, reorder, or truncate — UdpLink assumes
/// nothing beyond "a delivered datagram is a contiguous byte buffer".
class DatagramChannel {
public:
    using RecvFn = std::function<void(std::span<const std::uint8_t> datagram)>;

    virtual ~DatagramChannel() = default;

    /// Best-effort send of one datagram. False = locally dropped (too big,
    /// transient socket error); true says nothing about delivery.
    virtual bool send(ProcessId to, std::span<const std::uint8_t> datagram) = 0;
    virtual void set_receive_handler(RecvFn fn) = 0;
    /// Largest datagram the channel accepts (jumbo sends are capped here).
    virtual std::size_t max_datagram_bytes() const = 0;
};

class UdpLink final : public PeerChannel {
public:
    struct Params {
        /// Datagram size budget for clustering. Bodies that do not fit even
        /// alone are sent as oversized "jumbo" datagrams up to the channel
        /// cap (loopback and the in-process harness carry them; a real WAN
        /// path would fragment).
        std::size_t mtu_bytes = 1400;
        /// Delay before a pure-ack datagram when no reverse traffic
        /// piggybacks the ack first.
        SimTime ack_delay = SimTime::millis(5);
        /// Retransmit timeout for unacked reliable bodies; doubles per
        /// retransmit up to rto_max.
        SimTime rto_initial = SimTime::millis(40);
        SimTime rto_max = SimTime::seconds(1);
        /// How often the RTO sweep runs.
        SimTime rto_sweep = SimTime::millis(10);
        /// Keepalive/presence interval: an idle link sends an unsequenced
        /// ack datagram so peers learn the link is up (peer_up()).
        SimTime keepalive = SimTime::millis(250);
        /// Deterministic retransmission jitter: every re-armed RTO deadline
        /// is stretched by a pure hash of (self, peer, rel_id, backoff) in
        /// [0, rto_jitter_max], de-phasing retransmit bursts across peers
        /// during a partition without breaking seed replay.
        SimTime rto_jitter_max = SimTime::millis(5);
        /// Fast retransmit: a reliable body whose newest carrying seq lags
        /// the peer's cumulative ack by this many datagrams without being
        /// selectively acked is re-sent without waiting for its RTO.
        std::uint32_t nack_threshold = 3;
        /// Cap on in-flight reliable bodies per peer; beyond it new reliable
        /// sends are dropped and counted (bounded memory, like every other
        /// queue in the runtime).
        std::size_t reliable_window = 4096;
        /// Reliable-body dedup window per peer (rel_ids tracked below the
        /// highest seen).
        std::size_t dedup_window = 16384;
        /// Cap on tracked (seq -> reliable rel_ids) mappings per peer. With
        /// no inbound acks (a full partition) the map would otherwise grow
        /// with every retransmitted datagram; evicted entries lose only the
        /// fast-retransmit hint — the rel_ids stay in `unacked` and the RTO
        /// path re-sends them.
        std::size_t seq_history = 1024;
        /// This link incarnation, stamped into every outgoing datagram.
        /// A node that tears down and re-creates its link (crash/restart)
        /// must bump it so peers reset their seq/rel_id dedup state instead
        /// of discarding the fresh incarnation's reliable bodies as
        /// duplicates of the old one's rel_ids.
        std::uint8_t epoch = 0;
        /// When true every body is treated as reliable regardless of the
        /// caller's flag — the "TCP-like service over the same lossy link"
        /// configuration the bench uses as its apples-to-apples baseline.
        bool force_reliable = false;
    };

    struct Counters {
        std::uint64_t datagrams_sent = 0;
        std::uint64_t datagrams_received = 0;
        std::uint64_t bytes_sent = 0;
        std::uint64_t bytes_received = 0;
        std::uint64_t bodies_sent = 0;           ///< sub-envelopes, first transmission
        std::uint64_t bodies_received = 0;       ///< sub-envelopes delivered up
        std::uint64_t acks_only_sent = 0;        ///< unsequenced pure-ack datagrams
        std::uint64_t jumbo_datagrams = 0;       ///< single body exceeded the MTU budget
        std::uint64_t retransmits = 0;           ///< RTO-driven re-sends
        std::uint64_t fast_retransmits = 0;      ///< ack-window-driven re-sends
        std::uint64_t reliable_acked = 0;
        std::uint64_t reliable_dropped = 0;      ///< window cap or oversize drop
        std::uint64_t duplicate_datagrams = 0;   ///< seq seen before (window hit)
        std::uint64_t stale_datagrams = 0;       ///< seq below the dedup window
        std::uint64_t duplicate_reliables = 0;   ///< rel_id dedup hits
        std::uint64_t decode_errors = 0;         ///< undecodable/mis-addressed datagrams
        std::uint64_t send_failures = 0;         ///< channel refused a datagram
        std::uint64_t epoch_resets = 0;          ///< peer restarted its link incarnation
        std::uint64_t seq_history_evictions = 0; ///< seq_rels cap hit (partition pressure)
    };

    /// Per-peer link health snapshot (metrics, chaos diagnostics).
    struct PeerStats {
        bool linked = false;
        bool heard = false;
        std::size_t unacked = 0;        ///< in-flight reliable bodies
        std::size_t pending = 0;        ///< bodies queued for the next flush
        std::uint32_t send_seq = 0;     ///< highest seq sent (next_seq - 1)
        std::uint32_t recv_latest = 0;  ///< highest seq heard from the peer
        SimTime max_rto = SimTime::zero();  ///< largest backoff among in-flight bodies
    };

    /// `channel` must outlive the link. Installs itself as the channel's
    /// receive handler.
    UdpLink(Reactor& reactor, ProcessId self, int cluster_size,
            DatagramChannel& channel, Params params);
    ~UdpLink() override;

    UdpLink(const UdpLink&) = delete;
    UdpLink& operator=(const UdpLink&) = delete;

    // PeerChannel interface.
    ProcessId self() const override { return self_; }
    int size() const override { return cluster_size_; }
    void set_body_handler(BodyFn fn) override { body_fn_ = std::move(fn); }
    void link(ProcessId peer) override;
    /// Up = we have heard any valid datagram from the peer (keepalives
    /// count). UDP has no connection to complete, so this is presence, not
    /// a handshake.
    bool peer_up(ProcessId peer) const override;
    bool send_body(ProcessId peer, std::span<const std::uint8_t> bytes,
                   bool reliable) override;

    const Counters& counters() const { return counters_; }
    /// In-flight reliable bodies to `peer` (tests/diagnostics).
    std::size_t unacked(ProcessId peer) const;
    PeerStats peer_stats(ProcessId peer) const;

    /// Deterministic retransmission jitter: a pure function of
    /// (self, peer, rel_id, backoff stage) bounded by Params::rto_jitter_max,
    /// so a replayed run re-arms every RTO deadline identically. Public so
    /// tests can pin the purity and bound directly.
    SimTime rto_jitter(ProcessId to, std::uint32_t rel_id, SimTime rto) const;

private:
    struct RelEntry {
        std::vector<std::uint8_t> body;
        std::uint32_t newest_seq = 0;  ///< latest datagram that carried it
        SimTime rto = SimTime::zero();
        SimTime rto_deadline = SimTime::zero();
    };
    struct PendingSub {
        bool reliable = false;
        std::uint32_t rel_id = 0;
        std::vector<std::uint8_t> body;
    };
    struct Peer {
        bool linked = false;
        bool heard = false;
        // -- outgoing --------------------------------------------------------
        std::uint32_t next_seq = 1;
        std::uint32_t next_rel_id = 1;
        std::vector<PendingSub> pending;
        bool flush_scheduled = false;
        std::map<std::uint32_t, RelEntry> unacked;  ///< by rel_id
        /// Reliable rel_ids carried per sequenced datagram, until acked or
        /// presumed lost. Only datagrams carrying reliable bodies appear.
        std::map<std::uint32_t, std::vector<std::uint32_t>> seq_rels;
        SimTime last_send = SimTime::zero();
        // -- incoming --------------------------------------------------------
        bool epoch_known = false;       ///< heard at least one datagram
        std::uint8_t recv_epoch = 0;    ///< peer's last seen link incarnation
        std::uint32_t recv_latest = 0;  ///< highest seq received (0 = none)
        std::uint32_t recv_bits = 0;    ///< window behind recv_latest
        bool ack_pending = false;
        bool ack_timer_armed = false;
        Reactor::TimerId ack_timer = 0;
        std::vector<bool> rel_seen;     ///< rel_id % dedup_window ring
        std::uint32_t rel_latest = 0;   ///< highest rel_id seen
    };

    void on_datagram(std::span<const std::uint8_t> bytes);
    void note_incoming_epoch(Peer& p, std::uint8_t epoch);
    void queue_sub(ProcessId to, Peer& p, PendingSub sub);
    void schedule_flush(ProcessId to, Peer& p);
    void flush(ProcessId to);
    void process_acks(ProcessId to, Peer& p, std::uint32_t ack, std::uint32_t ack_bits);
    /// True the first time this (peer, seq) is seen; updates the window.
    bool note_incoming_seq(Peer& p, std::uint32_t seq);
    /// True the first time this (peer, rel_id) is seen.
    bool note_incoming_rel(Peer& p, std::uint32_t rel_id);
    void retransmit(ProcessId to, Peer& p, std::uint32_t rel_id);
    void send_pure_ack(ProcessId to, Peer& p);
    void rto_sweep();
    void keepalive_sweep();

    Reactor& reactor_;
    ProcessId self_;
    int cluster_size_;
    DatagramChannel& channel_;
    Params params_;
    BodyFn body_fn_;
    std::vector<Peer> peers_;  ///< indexed by ProcessId
    Reactor::TimerId rto_timer_ = 0;
    Reactor::TimerId keepalive_timer_ = 0;
    /// Guards the flush tasks posted to the reactor: posts cannot be
    /// cancelled, so a task that outlives the link (chaos teardown) must
    /// detect the destruction and bail instead of touching freed state.
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    Counters counters_;
};

}  // namespace gossipc::runtime
