#include "runtime/chaos_bridge.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "overlay/random_overlay.hpp"

namespace gossipc::runtime {

fault::DatagramFaultSpec to_datagram_spec(const LinkFaultSpec& spec) {
    fault::DatagramFaultSpec out;
    out.loss = spec.loss;
    out.duplicate = spec.duplicate;
    out.reorder_window = spec.reorder_window;
    out.extra_delay = spec.extra_delay;
    return out;
}

ChaosBridge::ChaosBridge(Reactor& reactor, int cluster_size, FaultSchedule schedule,
                         Hooks hooks)
    : reactor_(reactor),
      cluster_size_(cluster_size),
      schedule_(std::move(schedule)),
      hooks_(std::move(hooks)),
      crashed_(static_cast<std::size_t>(cluster_size), false) {
    for (const FaultEvent& e : schedule_.events()) {
        if (const auto* crash = std::get_if<CrashFault>(&e.action)) {
            if (crash->process < 0 || crash->process >= cluster_size_) {
                throw std::invalid_argument("ChaosBridge: crash targets unknown process");
            }
        } else if (const auto* restart = std::get_if<RestartFault>(&e.action)) {
            if (restart->process < 0 || restart->process >= cluster_size_) {
                throw std::invalid_argument("ChaosBridge: restart targets unknown process");
            }
        } else if (const auto* part = std::get_if<PartitionFault>(&e.action)) {
            for (const ProcessId p : part->side) {
                if (p < 0 || p >= cluster_size_) {
                    throw std::invalid_argument("ChaosBridge: partition side out of range");
                }
            }
        }
    }
}

void ChaosBridge::arm() {
    if (armed_) throw std::logic_error("ChaosBridge::arm: already armed");
    armed_ = true;
    const SimTime now = reactor_.now();
    for (const FaultEvent& e : schedule_.events()) {
        // Same-deadline timers fire in scheduling order (reactor FIFO
        // tie-break), which is exactly the schedule's execution order.
        const SimTime delay = e.at > now ? e.at - now : SimTime::zero();
        reactor_.schedule_after(delay, [this, &e] { apply(e); });
    }
}

bool ChaosBridge::crashed(ProcessId p) const {
    if (p < 0 || p >= cluster_size_) return false;
    return crashed_[static_cast<std::size_t>(p)];
}

void ChaosBridge::record(SimTime at, const FaultAction& action) {
    std::ostringstream o;
    o << at.as_nanos() << ' ' << describe(action);
    log_.push_back(o.str());
    ++counters_.applied;
}

void ChaosBridge::record_skip(SimTime at, const FaultAction& action, const char* reason) {
    std::ostringstream o;
    o << at.as_nanos() << ' ' << describe(action) << " [skipped: " << reason << ']';
    log_.push_back(o.str());
    ++counters_.skipped;
}

void ChaosBridge::apply(const FaultEvent& event) {
    ++fired_;
    if (const auto* f = std::get_if<CrashFault>(&event.action)) {
        apply_crash(event.at, *f);
    } else if (const auto* f = std::get_if<RestartFault>(&event.action)) {
        apply_restart(event.at, *f);
    } else if (const auto* f = std::get_if<PartitionFault>(&event.action)) {
        apply_partition(event.at, *f);
    } else if (std::get_if<HealFault>(&event.action) != nullptr) {
        apply_heal(event.at);
    } else if (const auto* f = std::get_if<LinkFaultStart>(&event.action)) {
        apply_link_start(event.at, *f);
    } else if (const auto* f = std::get_if<LinkFaultEnd>(&event.action)) {
        apply_link_end(event.at, *f);
    } else if (const auto* f = std::get_if<ChurnDropEdge>(&event.action)) {
        apply_churn_drop(event.at, *f);
    } else if (const auto* f = std::get_if<ChurnAddEdge>(&event.action)) {
        apply_churn_add(event.at, *f);
    }
}

void ChaosBridge::apply_crash(SimTime at, const CrashFault& f) {
    if (crashed_[static_cast<std::size_t>(f.process)]) {
        record_skip(at, CrashFault{f.process, f.wipe_state}, "already crashed");
        return;
    }
    if (!hooks_.crash_node) {
        record_skip(at, CrashFault{f.process, f.wipe_state}, "no crash hook");
        return;
    }
    hooks_.crash_node(f.process);
    crashed_[static_cast<std::size_t>(f.process)] = true;
    // Deferred wipe, as in the simulator: durable state is unobservable
    // while the process is down.
    wipe_on_restart_[f.process] = f.wipe_state;
    ++counters_.crashes;
    record(at, CrashFault{f.process, f.wipe_state});
}

void ChaosBridge::apply_restart(SimTime at, const RestartFault& f) {
    if (!crashed_[static_cast<std::size_t>(f.process)]) {
        record_skip(at, RestartFault{f.process}, "not crashed");
        return;
    }
    if (!hooks_.restart_node) {
        record_skip(at, RestartFault{f.process}, "no restart hook");
        return;
    }
    const auto it = wipe_on_restart_.find(f.process);
    const bool wiped = it != wipe_on_restart_.end() && it->second;
    hooks_.restart_node(f.process, wiped);
    crashed_[static_cast<std::size_t>(f.process)] = false;
    ++counters_.restarts;
    if (wiped) ++counters_.wipes;
    record(at, RestartFault{f.process});
}

void ChaosBridge::apply_partition(SimTime at, const PartitionFault& f) {
    std::vector<bool> in_side(static_cast<std::size_t>(cluster_size_), false);
    for (const ProcessId p : f.side) in_side[static_cast<std::size_t>(p)] = true;
    for (ProcessId a = 0; a < cluster_size_; ++a) {
        if (!in_side[static_cast<std::size_t>(a)]) continue;
        for (ProcessId b = 0; b < cluster_size_; ++b) {
            if (in_side[static_cast<std::size_t>(b)] || a == b) continue;
            cuts_.insert({a, b});
            cuts_.insert({b, a});
            refresh_link(a, b);
            refresh_link(b, a);
        }
    }
    ++counters_.partitions;
    record(at, PartitionFault{f.side});
}

void ChaosBridge::apply_heal(SimTime at) {
    const std::set<std::pair<ProcessId, ProcessId>> cut = std::move(cuts_);
    cuts_.clear();
    // Re-expose whatever is underneath each healed cut: an active fault
    // window, or the ambient default.
    for (const auto& [from, to] : cut) refresh_link(from, to);
    ++counters_.heals;
    record(at, HealFault{});
}

void ChaosBridge::apply_link_start(SimTime at, const LinkFaultStart& f) {
    if (!hooks_.set_link) {
        record_skip(at, LinkFaultStart{f.from, f.to, f.spec}, "no datagram lane");
        return;
    }
    windows_[{f.from, f.to}] = to_datagram_spec(f.spec);
    refresh_link(f.from, f.to);
    ++counters_.link_faults;
    record(at, LinkFaultStart{f.from, f.to, f.spec});
}

void ChaosBridge::apply_link_end(SimTime at, const LinkFaultEnd& f) {
    if (!hooks_.set_link) {
        record_skip(at, LinkFaultEnd{f.from, f.to}, "no datagram lane");
        return;
    }
    windows_.erase({f.from, f.to});
    refresh_link(f.from, f.to);
    ++counters_.link_fault_ends;
    record(at, LinkFaultEnd{f.from, f.to});
}

void ChaosBridge::refresh_link(ProcessId from, ProcessId to) {
    if (!hooks_.set_link || !hooks_.clear_link) return;
    if (cuts_.count({from, to}) > 0) {
        fault::DatagramFaultSpec cut;
        cut.loss = 1.0;  // partition = total loss, both directions
        hooks_.set_link(from, to, cut);
        return;
    }
    if (const auto it = windows_.find({from, to}); it != windows_.end()) {
        hooks_.set_link(from, to, it->second);
        return;
    }
    hooks_.clear_link(from, to);
}

void ChaosBridge::apply_churn_drop(SimTime at, const ChurnDropEdge& f) {
    if (hooks_.overlay == nullptr || !hooks_.drop_edge) {
        record_skip(at, ChurnDropEdge{f.a, f.b}, "no overlay");
        return;
    }
    if (!hooks_.overlay->has_edge(f.a, f.b)) {
        record_skip(at, ChurnDropEdge{f.a, f.b}, "edge absent");
        return;
    }
    // The same guard as the simulator: never disconnect the overlay.
    Graph probe = *hooks_.overlay;
    probe.remove_edge(f.a, f.b);
    if (!is_connected(probe)) {
        record_skip(at, ChurnDropEdge{f.a, f.b}, "would disconnect overlay");
        return;
    }
    hooks_.overlay->remove_edge(f.a, f.b);
    hooks_.drop_edge(f.a, f.b);
    ++counters_.edges_dropped;
    record(at, ChurnDropEdge{f.a, f.b});
}

void ChaosBridge::apply_churn_add(SimTime at, const ChurnAddEdge& f) {
    if (hooks_.overlay == nullptr || !hooks_.add_edge) {
        record_skip(at, ChurnAddEdge{f.a, f.b}, "no overlay");
        return;
    }
    if (hooks_.overlay->has_edge(f.a, f.b)) {
        record_skip(at, ChurnAddEdge{f.a, f.b}, "edge present");
        return;
    }
    hooks_.overlay->add_edge(f.a, f.b);
    hooks_.add_edge(f.a, f.b);
    ++counters_.edges_added;
    record(at, ChurnAddEdge{f.a, f.b});
}

std::string ChaosBridge::rendered_log() const {
    std::ostringstream o;
    for (const std::string& line : log_) o << line << '\n';
    return o.str();
}

}  // namespace gossipc::runtime
