// Runtime fault bridge (DESIGN.md §13): replays a FaultSchedule against an
// in-process real-runtime cluster, mirroring the simulator's FaultInjector
// event for event.
//
// The simulator injects faults by flipping Node/Network state; the runtime
// has sockets and live objects instead, so every fault lane maps onto a
// hook the harness provides:
//  * CrashFault/RestartFault -> tear down / re-create the node's socket
//    stack (RealTransport + UdpLink or ConnectionManager) around a stable
//    GatedTransport facade; the durable-state wipe is deferred to the
//    restart, exactly as the simulator defers it.
//  * PartitionFault/HealFault -> per-directed-link DatagramFaultSpecs with
//    loss 1.0 on every cross-pair, both directions, layered over any
//    active structured fault windows (a heal re-exposes the windows).
//  * LinkFaultStart/End -> the LinkFaultSpec translated to a
//    DatagramFaultSpec on the LossyDatagramNetwork link.
//  * ChurnDropEdge/ChurnAddEdge -> overlay edge accounting plus live
//    neighbor updates, with the same connectivity guard as the simulator.
//
// Events are driven from the reactor's timer queue, but every log line is
// stamped with the event's *scheduled* time and every skip decision depends
// only on bridge-internal state that is a pure function of the schedule —
// so the injected-fault log is byte-identical across replays of the same
// (seed, profile), no matter how the wall clock jitters.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/datagram_faults.hpp"
#include "fault/fault_schedule.hpp"
#include "overlay/graph.hpp"
#include "runtime/reactor.hpp"

namespace gossipc::runtime {

/// LinkFaultSpec (stream semantics) translated to the datagram boundary:
/// loss/duplicate/reorder map one-to-one, extra_delay shifts every delivery,
/// and truncation stays zero (a stream fault window cannot express it).
fault::DatagramFaultSpec to_datagram_spec(const LinkFaultSpec& spec);

class ChaosBridge {
public:
    struct Hooks {
        /// Tears down process p's socket stack (detach + destroy).
        std::function<void(ProcessId)> crash_node;
        /// Re-creates process p's socket stack; `wiped` says its crash lost
        /// durable state (the harness wipes the PaxosProcess before or at
        /// re-attach, mirroring Deployment's wipe hook).
        std::function<void(ProcessId, bool wiped)> restart_node;
        /// Installs the effective fault spec on the directed link from->to.
        std::function<void(ProcessId from, ProcessId to,
                           const fault::DatagramFaultSpec& spec)>
            set_link;
        /// Removes the per-link override (the ambient default applies again).
        std::function<void(ProcessId from, ProcessId to)> clear_link;
        /// The runtime overlay, mutated by churn. Null = no overlay (Direct
        /// mode / TCP lane): churn events are logged as skipped, exactly as
        /// the hook-less FaultInjector does.
        Graph* overlay = nullptr;
        /// Live neighbor updates after an overlay edge change.
        std::function<void(ProcessId a, ProcessId b)> drop_edge;
        std::function<void(ProcessId a, ProcessId b)> add_edge;
    };

    /// Field-for-field the FaultInjector's counters, so a runtime replay is
    /// comparable to its simulator twin.
    struct Counters {
        std::uint64_t applied = 0;
        std::uint64_t skipped = 0;
        std::uint64_t crashes = 0;
        std::uint64_t restarts = 0;
        std::uint64_t wipes = 0;
        std::uint64_t partitions = 0;
        std::uint64_t heals = 0;
        std::uint64_t link_faults = 0;
        std::uint64_t link_fault_ends = 0;
        std::uint64_t edges_dropped = 0;
        std::uint64_t edges_added = 0;
    };

    ChaosBridge(Reactor& reactor, int cluster_size, FaultSchedule schedule, Hooks hooks);

    /// Schedules every event on the reactor relative to now. Call exactly
    /// once, before running the loop.
    void arm();

    const FaultSchedule& schedule() const { return schedule_; }
    const Counters& counters() const { return counters_; }
    bool crashed(ProcessId p) const;
    /// True once every scheduled event has fired.
    bool done() const { return fired_ == schedule_.size(); }

    /// The injected-fault log, one line per event in execution order,
    /// stamped with scheduled (not wall-clock) nanoseconds — byte-identical
    /// across replays of the same schedule.
    const std::vector<std::string>& log() const { return log_; }
    std::string rendered_log() const;

private:
    void apply(const FaultEvent& event);
    void apply_crash(SimTime at, const CrashFault& f);
    void apply_restart(SimTime at, const RestartFault& f);
    void apply_partition(SimTime at, const PartitionFault& f);
    void apply_heal(SimTime at);
    void apply_link_start(SimTime at, const LinkFaultStart& f);
    void apply_link_end(SimTime at, const LinkFaultEnd& f);
    void apply_churn_drop(SimTime at, const ChurnDropEdge& f);
    void apply_churn_add(SimTime at, const ChurnAddEdge& f);
    void record(SimTime at, const FaultAction& action);
    void record_skip(SimTime at, const FaultAction& action, const char* reason);

    /// Pushes the effective spec for from->to down to the network: a cut
    /// beats a window beats the ambient default.
    void refresh_link(ProcessId from, ProcessId to);

    Reactor& reactor_;
    int cluster_size_;
    FaultSchedule schedule_;
    Hooks hooks_;
    bool armed_ = false;
    std::size_t fired_ = 0;
    std::vector<bool> crashed_;
    std::unordered_map<ProcessId, bool> wipe_on_restart_;
    std::set<std::pair<ProcessId, ProcessId>> cuts_;  ///< partitioned directed links
    std::map<std::pair<ProcessId, ProcessId>, fault::DatagramFaultSpec> windows_;
    Counters counters_;
    std::vector<std::string> log_;
};

}  // namespace gossipc::runtime
