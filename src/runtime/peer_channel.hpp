// The body-level channel seam between RealTransport and the socket layer
// (DESIGN.md §12).
//
// RealTransport decides *what* to send (encoded message bodies) and *how
// much it matters* (the reliable flag); a PeerChannel decides how bytes get
// to the peer. Two implementations exist:
//
//  * ConnectionManager — framed TCP streams. The kernel already provides
//    reliable ordered delivery, so the reliable flag is advisory there.
//  * UdpLink — clustered datagrams with a reliable-unordered layer that
//    retransmits only reliable-flagged bodies; best-effort bodies ride on
//    gossip's own redundancy.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/types.hpp"

namespace gossipc::runtime {

class PeerChannel {
public:
    /// Delivers one received encoded message body. `bytes` is valid only for
    /// the duration of the call.
    using BodyFn = std::function<void(ProcessId from, std::span<const std::uint8_t> bytes)>;

    virtual ~PeerChannel() = default;

    virtual ProcessId self() const = 0;
    /// Cluster size (number of processes, including self).
    virtual int size() const = 0;

    virtual void set_body_handler(BodyFn fn) = 0;

    /// Declares `peer` a linked neighbor the channel should keep reachable.
    virtual void link(ProcessId peer) = 0;

    /// Whether the link to `peer` is currently believed up.
    virtual bool peer_up(ProcessId peer) const = 0;

    /// Queues one encoded body to `peer`. `reliable` asks the channel to
    /// retransmit until acknowledged (where the channel distinguishes —
    /// a TCP channel delivers everything or nothing either way). False
    /// means the body was dropped (link down, queue cap, oversized).
    virtual bool send_body(ProcessId peer, std::span<const std::uint8_t> bytes,
                           bool reliable) = 0;
};

}  // namespace gossipc::runtime
