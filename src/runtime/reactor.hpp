// Real-clock event loop (DESIGN.md §10): a single-threaded poll(2) reactor
// with monotonic timers mirroring the simulator's timer API.
//
// Time is reported as SimTime measured from reactor construction on the
// monotonic clock, so the protocol stack's SimTime-based configuration
// (retransmit_after, heartbeat_interval, ...) carries over unchanged: one
// simulated nanosecond maps to one wall-clock nanosecond. Everything —
// socket callbacks, timers, posted tasks — runs on the thread inside run();
// no locks, no cross-thread state, which is exactly the execution model the
// simulator gives a Node's serial CPU.
//
// schedule_after/schedule_every mirror Simulator::schedule_after and the
// transports' schedule_every re-arming chain; post() mirrors Node::post.
#pragma once

#include <cstdint>
#include <chrono>
#include <deque>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace gossipc::runtime {

class Reactor {
public:
    /// Socket event callback. `readable`/`writable` report poll readiness;
    /// `error` reports POLLERR/POLLHUP/POLLNVAL (the fd should be closed).
    using IoFn = std::function<void(bool readable, bool writable, bool error)>;
    using TimerFn = std::function<void()>;
    using TimerId = std::uint64_t;

    /// Loop health counters. Timers are deadline-checked, so an interrupted
    /// poll can never fire one early — `interrupted` counts how often that
    /// was exercised; `poll_errors` counts hard poll(2) failures, each of
    /// which backs off briefly instead of busy-spinning.
    struct Stats {
        std::uint64_t polls = 0;        ///< poll(2) calls issued
        std::uint64_t interrupted = 0;  ///< EINTR/EAGAIN returns
        std::uint64_t poll_errors = 0;  ///< other poll failures (backoff taken)
    };

    Reactor();

    /// Monotonic time since reactor construction.
    SimTime now() const;

    // -- fds ----------------------------------------------------------------
    /// Registers `fd` with read interest on, write interest off. The fd must
    /// be non-blocking; the reactor never owns or closes it.
    void add_fd(int fd, IoFn fn);
    void remove_fd(int fd);
    void set_read_interest(int fd, bool enabled);
    void set_write_interest(int fd, bool enabled);

    // -- timers -------------------------------------------------------------
    TimerId schedule_after(SimTime delay, TimerFn fn);
    /// Fires every `period` until cancelled, starting one period from now.
    /// The next deadline is armed from the previous deadline (not from fire
    /// time), so periods do not drift under load.
    TimerId schedule_every(SimTime period, TimerFn fn);
    void cancel_timer(TimerId id);

    /// Runs `fn` on the next loop iteration, before polling.
    void post(std::function<void()> fn);

    // -- loop ---------------------------------------------------------------
    /// Runs until stop(). `interrupt_check` (optional) is consulted every
    /// iteration — the signal-safe way for a daemon to request shutdown from
    /// a handler that can only set a flag.
    void run();
    void stop() { stopped_ = true; }
    bool stopped() const { return stopped_; }
    void set_interrupt_check(std::function<bool()> fn) { interrupt_check_ = std::move(fn); }

    /// Runs the loop until `pred()` holds or `limit` elapses; returns
    /// whether the predicate held. Test harness convenience.
    bool run_until(const std::function<bool()>& pred, SimTime limit);

    const Stats& stats() const { return stats_; }

private:
    struct FdEntry {
        IoFn fn;
        bool want_read = true;
        bool want_write = false;
    };
    struct Timer {
        SimTime deadline;
        std::uint64_t id = 0;
        SimTime period = SimTime::zero();  ///< zero = one-shot
        TimerFn fn;
    };
    struct TimerOrder {
        bool operator()(const Timer& a, const Timer& b) const {
            // Min-heap by deadline; id breaks ties FIFO.
            if (a.deadline != b.deadline) return a.deadline > b.deadline;
            return a.id > b.id;
        }
    };

    /// One iteration: posted tasks, due timers, then poll (up to max_wait).
    void iterate(SimTime max_wait);
    void run_posted();
    void fire_due_timers();
    SimTime next_timer_delay() const;

    std::chrono::steady_clock::time_point start_;
    std::unordered_map<int, FdEntry> fds_;
    std::priority_queue<Timer, std::vector<Timer>, TimerOrder> timers_;
    std::unordered_set<TimerId> cancelled_;
    std::uint64_t next_timer_id_ = 1;
    std::deque<std::function<void()>> posted_;
    std::function<bool()> interrupt_check_;
    bool stopped_ = false;
    Stats stats_;
};

}  // namespace gossipc::runtime
