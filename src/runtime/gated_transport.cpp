#include "runtime/gated_transport.hpp"

#include <utility>

namespace gossipc::runtime {

GatedTransport::GatedTransport(Reactor& reactor, ProcessId self)
    : reactor_(reactor), self_(self) {}

GatedTransport::~GatedTransport() {
    *alive_ = false;
    for (const Reactor::TimerId id : timers_) reactor_.cancel_timer(id);
}

void GatedTransport::attach(Transport* inner) {
    inner_ = inner;
    ++counters_.attaches;
    if (inner_ == nullptr) return;
    inner_->set_deliver([this](const PaxosMessagePtr& msg, CpuContext& ctx) {
        deliver_up(msg, ctx);
    });
}

void GatedTransport::detach() { inner_ = nullptr; }

void GatedTransport::sync_origination() {
    if (inner_ != nullptr && inner_->last_origination() > last_origination()) {
        note_origination(inner_->last_origination());
    }
}

void GatedTransport::broadcast(PaxosMessagePtr msg, CpuContext& ctx) {
    if (inner_ == nullptr) {
        ++counters_.dropped_sends;
        return;
    }
    inner_->broadcast(std::move(msg), ctx);
    sync_origination();
}

void GatedTransport::send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) {
    if (inner_ == nullptr) {
        ++counters_.dropped_sends;
        return;
    }
    inner_->send(to, std::move(msg), ctx);
    sync_origination();
}

void GatedTransport::schedule(SimTime delay, std::function<void(CpuContext&)> fn) {
    reactor_.schedule_after(
        delay, [this, fn = std::move(fn), alive = std::weak_ptr<bool>(alive_)] {
            const auto guard = alive.lock();
            if (!guard || !*guard) return;
            if (inner_ == nullptr) {  // crashed at fire time: drop, per contract
                ++counters_.dropped_tasks;
                return;
            }
            CpuContext ctx(reactor_.now());
            fn(ctx);
        });
}

void GatedTransport::schedule_every(SimTime period, std::function<void(CpuContext&)> fn) {
    // The chain lives on the facade, not the inner transport: it must
    // survive crash/restart cycles, dropping only the ticks that land while
    // the process is down.
    timers_.push_back(reactor_.schedule_every(period, [this, fn = std::move(fn)] {
        if (inner_ == nullptr) {
            ++counters_.dropped_tasks;
            return;
        }
        CpuContext ctx(reactor_.now());
        fn(ctx);
    }));
}

void GatedTransport::post(std::function<void(CpuContext&)> fn) {
    reactor_.post([this, fn = std::move(fn), alive = std::weak_ptr<bool>(alive_)] {
        const auto guard = alive.lock();
        if (!guard || !*guard) return;
        if (inner_ == nullptr) {
            ++counters_.dropped_tasks;
            return;
        }
        CpuContext ctx(reactor_.now());
        fn(ctx);
    });
}

}  // namespace gossipc::runtime
