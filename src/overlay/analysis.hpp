// Overlay analysis used by the network-overlay experiments (Section 4.6):
// shortest-path RTTs through the overlay under a latency model, and the
// median RTT from the coordinator, which "ultimately dictates the latency of
// a Paxos instance".
#pragma once

#include <vector>

#include "common/types.hpp"
#include "net/latency_model.hpp"
#include "overlay/graph.hpp"

namespace gossipc {

struct OverlayStats {
    double average_degree = 0.0;
    int min_degree = 0;
    int max_degree = 0;
    int diameter_hops = 0;  ///< max over pairs of min hop count (-1 if disconnected)
    bool connected = false;
};

OverlayStats analyze_overlay(const Graph& g);

/// One-way shortest-path delay (through the overlay) from `src` to every
/// process, under the latency model, with processes placed by
/// region_of_process. Unreachable vertices get SimTime::max().
std::vector<SimTime> shortest_delays(const Graph& g, ProcessId src, const LatencyModel& latency);

/// Round-trip times from `src` to every other process through the overlay.
std::vector<SimTime> rtts_from(const Graph& g, ProcessId src, const LatencyModel& latency);

/// Median RTT from the coordinator (process 0) to all other processes —
/// the x-axis of Figures 7 and 8.
SimTime median_rtt_from_coordinator(const Graph& g, const LatencyModel& latency);

/// Hop distance from src to every vertex (BFS); -1 if unreachable.
std::vector<int> hop_distances(const Graph& g, ProcessId src);

}  // namespace gossipc
