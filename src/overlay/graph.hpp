// Undirected overlay graph over process ids.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace gossipc {

class Graph {
public:
    explicit Graph(int n);

    int size() const { return n_; }

    /// Adds an undirected edge; duplicate edges and self-loops are rejected.
    void add_edge(ProcessId a, ProcessId b);
    /// Removes an undirected edge (overlay churn); returns false if absent.
    bool remove_edge(ProcessId a, ProcessId b);
    bool has_edge(ProcessId a, ProcessId b) const;

    const std::vector<ProcessId>& neighbors(ProcessId v) const;
    int degree(ProcessId v) const;

    std::size_t edge_count() const { return edges_; }
    double average_degree() const;

    /// All edges as (a, b) with a < b.
    std::vector<std::pair<ProcessId, ProcessId>> edges() const;

private:
    void check(ProcessId v) const;

    int n_;
    std::size_t edges_ = 0;
    std::vector<std::vector<ProcessId>> adj_;
};

}  // namespace gossipc
