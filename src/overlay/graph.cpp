#include "overlay/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace gossipc {

namespace {
// Validates before the int -> size_t conversion: a negative n must reject,
// not wrap into a huge vector size in the member initializer.
std::size_t checked_vertex_count(int n) {
    if (n <= 0) throw std::invalid_argument("Graph: n must be positive");
    return static_cast<std::size_t>(n);
}
}  // namespace

Graph::Graph(int n) : n_(n), adj_(checked_vertex_count(n)) {}

void Graph::check(ProcessId v) const {
    if (v < 0 || v >= n_) throw std::out_of_range("Graph: vertex out of range");
}

void Graph::add_edge(ProcessId a, ProcessId b) {
    check(a);
    check(b);
    if (a == b) throw std::invalid_argument("Graph::add_edge: self loop");
    if (has_edge(a, b)) throw std::invalid_argument("Graph::add_edge: duplicate edge");
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
    ++edges_;
}

bool Graph::remove_edge(ProcessId a, ProcessId b) {
    check(a);
    check(b);
    auto& na = adj_[static_cast<std::size_t>(a)];
    const auto ita = std::find(na.begin(), na.end(), b);
    if (ita == na.end()) return false;
    na.erase(ita);
    auto& nb = adj_[static_cast<std::size_t>(b)];
    nb.erase(std::find(nb.begin(), nb.end(), a));
    --edges_;
    return true;
}

bool Graph::has_edge(ProcessId a, ProcessId b) const {
    check(a);
    check(b);
    const auto& na = adj_[static_cast<std::size_t>(a)];
    return std::find(na.begin(), na.end(), b) != na.end();
}

const std::vector<ProcessId>& Graph::neighbors(ProcessId v) const {
    check(v);
    return adj_[static_cast<std::size_t>(v)];
}

int Graph::degree(ProcessId v) const {
    return static_cast<int>(neighbors(v).size());
}

double Graph::average_degree() const {
    return 2.0 * static_cast<double>(edges_) / static_cast<double>(n_);
}

std::vector<std::pair<ProcessId, ProcessId>> Graph::edges() const {
    std::vector<std::pair<ProcessId, ProcessId>> out;
    out.reserve(edges_);
    for (ProcessId a = 0; a < n_; ++a) {
        for (const ProcessId b : adj_[static_cast<std::size_t>(a)]) {
            if (a < b) out.emplace_back(a, b);
        }
    }
    return out;
}

}  // namespace gossipc
