// Random k-out overlay generation (Section 3.3 / 4.2 of the paper).
//
// Each process opens connections to k randomly selected processes;
// connections are bidirectional, so the expected degree is ~2k. The paper
// picks k so that each process communicates directly with ~log2(n) others on
// average, which keeps the overlay connected with high probability
// (Erdos & Kennedy, 1987).
#pragma once

#include <cstdint>

#include "overlay/graph.hpp"

namespace gossipc {

/// k such that the expected degree 2k is ~log2(n), as in the paper.
int default_out_connections(int n);

/// Generates a k-out overlay: every process opens k connections to distinct
/// random peers (edges deduplicated, so degrees vary around 2k).
/// Deterministic in (n, k, seed).
Graph make_random_overlay(int n, int k, std::uint64_t seed);

/// Same, with the paper's default k, retrying (bounded) until connected.
Graph make_connected_overlay(int n, std::uint64_t seed);

/// True if the graph is connected (trivially true for n == 1).
bool is_connected(const Graph& g);

}  // namespace gossipc
