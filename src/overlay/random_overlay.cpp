#include "overlay/random_overlay.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace gossipc {

int default_out_connections(int n) {
    if (n <= 1) return 0;
    if (n == 2) return 1;
    // Expected degree 2k ~= log2(n); round k = log2(n)/2 up so small systems
    // stay connected (n=13 -> k=2, degree ~3.7; n=105 -> k=4, degree ~6.7,
    // matching the averages reported in Section 4.3).
    const int k = static_cast<int>(std::lround(std::ceil(std::log2(static_cast<double>(n)) / 2.0)));
    return std::min(k, n - 1);
}

Graph make_random_overlay(int n, int k, std::uint64_t seed) {
    if (k < 0 || k > n - 1) throw std::invalid_argument("make_random_overlay: bad k");
    Graph g(n);
    Rng rng = Rng::derive(seed, "overlay");
    for (ProcessId v = 0; v < n; ++v) {
        const auto peers = rng.sample_distinct(n, k, v);
        for (const ProcessId p : peers) {
            if (!g.has_edge(v, p)) g.add_edge(v, p);
        }
    }
    return g;
}

Graph make_connected_overlay(int n, std::uint64_t seed) {
    const int k = default_out_connections(n);
    for (int attempt = 0; attempt < 64; ++attempt) {
        Graph g = make_random_overlay(n, k, seed + static_cast<std::uint64_t>(attempt) * 0x9e37ULL);
        if (is_connected(g)) return g;
    }
    throw std::runtime_error("make_connected_overlay: failed to generate a connected overlay");
}

bool is_connected(const Graph& g) {
    const int n = g.size();
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<ProcessId> stack{0};
    seen[0] = true;
    int visited = 1;
    while (!stack.empty()) {
        const ProcessId v = stack.back();
        stack.pop_back();
        for (const ProcessId u : g.neighbors(v)) {
            if (!seen[static_cast<std::size_t>(u)]) {
                seen[static_cast<std::size_t>(u)] = true;
                ++visited;
                stack.push_back(u);
            }
        }
    }
    return visited == n;
}

}  // namespace gossipc
