#include "overlay/analysis.hpp"

#include <algorithm>
#include <queue>

#include "net/region.hpp"

namespace gossipc {

OverlayStats analyze_overlay(const Graph& g) {
    OverlayStats s;
    const int n = g.size();
    s.average_degree = g.average_degree();
    s.min_degree = n > 0 ? g.degree(0) : 0;
    s.max_degree = s.min_degree;
    for (ProcessId v = 0; v < n; ++v) {
        s.min_degree = std::min(s.min_degree, g.degree(v));
        s.max_degree = std::max(s.max_degree, g.degree(v));
    }
    s.connected = true;
    s.diameter_hops = 0;
    for (ProcessId v = 0; v < n; ++v) {
        const auto d = hop_distances(g, v);
        for (const int h : d) {
            if (h < 0) {
                s.connected = false;
            } else {
                s.diameter_hops = std::max(s.diameter_hops, h);
            }
        }
    }
    if (!s.connected) s.diameter_hops = -1;
    return s;
}

std::vector<int> hop_distances(const Graph& g, ProcessId src) {
    std::vector<int> dist(static_cast<std::size_t>(g.size()), -1);
    std::queue<ProcessId> q;
    dist[static_cast<std::size_t>(src)] = 0;
    q.push(src);
    while (!q.empty()) {
        const ProcessId v = q.front();
        q.pop();
        for (const ProcessId u : g.neighbors(v)) {
            if (dist[static_cast<std::size_t>(u)] < 0) {
                dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
                q.push(u);
            }
        }
    }
    return dist;
}

std::vector<SimTime> shortest_delays(const Graph& g, ProcessId src,
                                     const LatencyModel& latency) {
    const int n = g.size();
    std::vector<SimTime> dist(static_cast<std::size_t>(n), SimTime::max());
    using Item = std::pair<std::int64_t, ProcessId>;  // (nanos, vertex)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[static_cast<std::size_t>(src)] = SimTime::zero();
    pq.emplace(0, src);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (SimTime::nanos(d) > dist[static_cast<std::size_t>(v)]) continue;
        const Region rv = region_of_process(v, n);
        for (const ProcessId u : g.neighbors(v)) {
            const SimTime w = latency.one_way(rv, region_of_process(u, n));
            const SimTime nd = SimTime::nanos(d) + w;
            if (nd < dist[static_cast<std::size_t>(u)]) {
                dist[static_cast<std::size_t>(u)] = nd;
                pq.emplace(nd.as_nanos(), u);
            }
        }
    }
    return dist;
}

std::vector<SimTime> rtts_from(const Graph& g, ProcessId src, const LatencyModel& latency) {
    auto one_way = shortest_delays(g, src, latency);
    for (auto& d : one_way) {
        if (d != SimTime::max()) d = d * 2;
    }
    return one_way;
}

SimTime median_rtt_from_coordinator(const Graph& g, const LatencyModel& latency) {
    auto rtts = rtts_from(g, /*src=*/0, latency);
    std::vector<SimTime> others;
    others.reserve(rtts.size());
    for (std::size_t i = 1; i < rtts.size(); ++i) others.push_back(rtts[i]);
    if (others.empty()) return SimTime::zero();
    std::sort(others.begin(), others.end());
    return others[others.size() / 2];
}

}  // namespace gossipc
