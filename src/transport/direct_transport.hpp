// Point-to-point transport for the Baseline setup: messages travel directly
// over (required) links; broadcast is a fan-out of unicasts plus local
// delivery. Transmitting without a link is a logic error — Baseline networks
// must provision the coordinator star explicitly.
#pragma once

#include "net/network.hpp"
#include "transport/transport.hpp"

namespace gossipc {

class DirectTransport final : public Transport {
public:
    DirectTransport(Network& network, ProcessId self);

    ProcessId self() const override { return self_; }
    void broadcast(PaxosMessagePtr msg, CpuContext& ctx) override;
    void send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) override;
    void schedule(SimTime delay, std::function<void(CpuContext&)> fn) override;
    void schedule_every(SimTime period, std::function<void(CpuContext&)> fn) override;
    void post(std::function<void(CpuContext&)> fn) override;

    Node& node() { return node_; }

private:
    void on_net_receive(const NetMessage& msg, CpuContext& ctx);

    Network& network_;
    ProcessId self_;
    Node& node_;
};

}  // namespace gossipc
