#include "transport/direct_transport.hpp"

namespace gossipc {

DirectTransport::DirectTransport(Network& network, ProcessId self)
    : network_(network), self_(self), node_(network.node(self)) {
    node_.set_receive_handler(
        [this](const NetMessage& msg, CpuContext& ctx) { on_net_receive(msg, ctx); });
}

void DirectTransport::on_net_receive(const NetMessage& msg, CpuContext& ctx) {
    if (msg.body && msg.body->kind() == BodyKind::Paxos) {
        deliver_up(std::static_pointer_cast<const PaxosMessage>(msg.body), ctx);
    }
}

void DirectTransport::broadcast(PaxosMessagePtr msg, CpuContext& ctx) {
    note_origination(ctx.now());
    deliver_up(msg, ctx);  // local delivery, as with gossip broadcast
    for (ProcessId p = 0; p < network_.size(); ++p) {
        if (p == self_) continue;
        node_.transmit_in_task(NetMessage{self_, p, msg}, ctx);
    }
}

void DirectTransport::send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) {
    if (to == self_) {
        deliver_up(msg, ctx);
        return;
    }
    note_origination(ctx.now());
    node_.transmit_in_task(NetMessage{self_, to, std::move(msg)}, ctx);
}

void DirectTransport::schedule(SimTime delay, std::function<void(CpuContext&)> fn) {
    node_.simulator().schedule_after(
        delay, [this, fn = std::move(fn)] { node_.post(fn); });
}

void DirectTransport::schedule_every(SimTime period, std::function<void(CpuContext&)> fn) {
    node_.simulator().schedule_after(period, [this, period, fn = std::move(fn)]() mutable {
        node_.post(fn);
        schedule_every(period, std::move(fn));
    });
}

void DirectTransport::post(std::function<void(CpuContext&)> fn) {
    node_.post(std::move(fn));
}

}  // namespace gossipc
