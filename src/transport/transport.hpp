// Communication abstraction between Paxos and the substrate (Figure 1/2).
//
// The same Paxos implementation runs over either:
//  * DirectTransport — point-to-point channels, fully connected star around
//    the coordinator (the paper's Baseline setup); or
//  * GossipTransport — broadcast/deliver over the gossip layer, where even
//    one-to-one sends become broadcasts (the paper's Gossip and Semantic
//    Gossip setups: "Phase 1b messages ... will be delivered to all
//    participants").
#pragma once

#include <functional>

#include "net/node.hpp"
#include "paxos/message.hpp"

namespace gossipc {

class Transport {
public:
    using DeliverFn = std::function<void(const PaxosMessagePtr&, CpuContext&)>;

    virtual ~Transport() = default;

    virtual ProcessId self() const = 0;

    /// Addresses a message to all processes (including local delivery).
    /// Non-blocking; invoked from within a CPU task.
    virtual void broadcast(PaxosMessagePtr msg, CpuContext& ctx) = 0;

    /// Addresses a message to one process. Gossip transports implement this
    /// as a broadcast (gossip has no unicast); local destination delivers
    /// immediately.
    virtual void send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) = 0;

    /// Schedules protocol work (timeouts) on this process's CPU. The
    /// callback is dropped if the process is crashed when it fires.
    virtual void schedule(SimTime delay, std::function<void(CpuContext&)> fn) = 0;

    /// Schedules `fn` every `period`. The re-arm happens outside the
    /// process CPU, so the chain survives crash/recovery (ticks during a
    /// crash are dropped, the chain is not).
    virtual void schedule_every(SimTime period, std::function<void(CpuContext&)> fn) = 0;

    /// Posts work onto this process's CPU from outside a task (e.g. client
    /// submission events).
    virtual void post(std::function<void(CpuContext&)> fn) = 0;

    void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /// Time this process last put a message on the wire (broadcast or remote
    /// send). The failure detector treats originated protocol traffic as an
    /// implicit heartbeat and emits explicit ones only during idle spells.
    SimTime last_origination() const { return last_origination_; }

protected:
    void deliver_up(const PaxosMessagePtr& msg, CpuContext& ctx) {
        if (deliver_) deliver_(msg, ctx);
    }

    /// Implementations call this from broadcast()/send() whenever traffic
    /// actually leaves the process (purely local delivery does not count —
    /// it refreshes no remote suspicion deadline).
    void note_origination(SimTime at) { last_origination_ = at; }

private:
    DeliverFn deliver_;
    SimTime last_origination_ = SimTime::zero();
};

}  // namespace gossipc
