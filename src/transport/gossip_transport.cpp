#include "transport/gossip_transport.hpp"

namespace gossipc {

GossipTransport::GossipTransport(GossipNode& gossip) : gossip_(gossip) {
    gossip_.set_deliver([this](const GossipAppMessage& msg, CpuContext& ctx) {
        if (msg.payload && msg.payload->kind() == BodyKind::Paxos) {
            deliver_up(std::static_pointer_cast<const PaxosMessage>(msg.payload), ctx);
        }
    });
}

void GossipTransport::broadcast(PaxosMessagePtr msg, CpuContext& ctx) {
    note_origination(ctx.now());
    GossipAppMessage app;
    app.id = msg->unique_key();
    app.origin = self();
    app.payload = std::move(msg);
    gossip_.broadcast(std::move(app), ctx);
}

void GossipTransport::send(ProcessId /*to*/, PaxosMessagePtr msg, CpuContext& ctx) {
    // Gossip provides no unicast: one-to-one messages are broadcast and
    // delivered to all participants (Section 3.1).
    broadcast(std::move(msg), ctx);
}

void GossipTransport::schedule(SimTime delay, std::function<void(CpuContext&)> fn) {
    Node& node = gossip_.node();
    node.simulator().schedule_after(delay, [&node, fn = std::move(fn)] { node.post(fn); });
}

void GossipTransport::schedule_every(SimTime period, std::function<void(CpuContext&)> fn) {
    Node& node = gossip_.node();
    node.simulator().schedule_after(period,
                                    [this, &node, period, fn = std::move(fn)]() mutable {
                                        node.post(fn);
                                        schedule_every(period, std::move(fn));
                                    });
}

void GossipTransport::post(std::function<void(CpuContext&)> fn) {
    gossip_.node().post(std::move(fn));
}

}  // namespace gossipc
