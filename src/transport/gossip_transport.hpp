// Transport over the gossip layer (Gossip and Semantic Gossip setups).
//
// broadcast() maps to a gossip broadcast; send() also maps to a broadcast —
// gossip has no unicast, so "Phase 1b messages ... only concern the
// coordinator, but will be delivered to all participants" (Section 3.1).
// Message identifiers come from the consensus message's unique key, as the
// paper prescribes for the recently-seen cache.
#pragma once

#include "gossip/gossip_node.hpp"
#include "transport/transport.hpp"

namespace gossipc {

class GossipTransport final : public Transport {
public:
    /// `gossip` must outlive the transport; its deliver callback is
    /// installed by this constructor.
    explicit GossipTransport(GossipNode& gossip);

    ProcessId self() const override { return gossip_.node().id(); }
    void broadcast(PaxosMessagePtr msg, CpuContext& ctx) override;
    void send(ProcessId to, PaxosMessagePtr msg, CpuContext& ctx) override;
    void schedule(SimTime delay, std::function<void(CpuContext&)> fn) override;
    void schedule_every(SimTime period, std::function<void(CpuContext&)> fn) override;
    void post(std::function<void(CpuContext&)> fn) override;

    GossipNode& gossip() { return gossip_; }

private:
    GossipNode& gossip_;
};

}  // namespace gossipc
