#!/usr/bin/env bash
# clang-tidy runner for the lint baseline (.clang-tidy at the repo root).
#
# Usage:
#   scripts/lint.sh                 # lint every .cpp under src/
#   scripts/lint.sh --changed [REF] # lint files changed vs REF (default origin/main)
#   scripts/lint.sh FILE...         # lint the given files
#
# Environment:
#   CLANG_TIDY  clang-tidy binary (default: clang-tidy)
#   BUILD_DIR   build tree holding compile_commands.json (default: build;
#               configured automatically if missing)
#
# Exits non-zero iff clang-tidy reports an error (.clang-tidy promotes all
# enabled checks via WarningsAsErrors). When clang-tidy is not installed the
# script is a no-op success so environments without LLVM (e.g. the gcc-only
# dev container) can still run the full test pipeline; CI installs clang-tidy
# and enforces the baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
BUILD_DIR="${BUILD_DIR:-build}"

if ! command -v "$CLANG_TIDY" > /dev/null 2>&1; then
    echo "lint.sh: $CLANG_TIDY not found; skipping lint (install clang-tidy to enable)" >&2
    exit 0
fi

# Collect the files to lint.
files=()
if [[ $# -gt 0 && "$1" == "--changed" ]]; then
    ref="${2:-origin/main}"
    while IFS= read -r f; do
        [[ "$f" == src/*.cpp ]] && files+=("$f")
    done < <(git diff --name-only --diff-filter=d "$ref"...HEAD 2> /dev/null ||
             git diff --name-only --diff-filter=d "$ref" 2> /dev/null)
    if [[ ${#files[@]} -eq 0 ]]; then
        echo "lint.sh: no changed src/ files vs $ref"
        exit 0
    fi
elif [[ $# -gt 0 ]]; then
    files=("$@")
else
    while IFS= read -r f; do
        files+=("$f")
    done < <(find src -name '*.cpp' | sort)
fi

# clang-tidy needs the compilation database the build exports.
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "lint.sh: configuring $BUILD_DIR to export compile_commands.json" >&2
    cmake -B "$BUILD_DIR" -S . > /dev/null
fi

echo "lint.sh: linting ${#files[@]} file(s) with $("$CLANG_TIDY" --version | head -n1)"
# One clang-tidy process per file, fanned out across the cores. xargs exits
# 123 when any invocation fails, preserving the exit contract of the old
# sequential loop; output may interleave across files but stays line-atomic.
jobs="$(nproc 2> /dev/null || echo 2)"
status=0
printf '%s\0' "${files[@]}" |
    xargs -0 -n 1 -P "$jobs" "$CLANG_TIDY" --quiet -p "$BUILD_DIR" || status=1

if [[ $status -ne 0 ]]; then
    echo "lint.sh: clang-tidy reported errors (see above)" >&2
fi
exit $status
