#!/usr/bin/env python3
"""Diff two gossipc bench reports (schema gossipc-bench-v1).

Usage:
    bench_compare.py BASELINE CURRENT [--threshold FRAC]

BASELINE and CURRENT are either BENCH_<name>.json files or directories; with
directories, every BENCH_*.json present in BOTH is compared (files present on
only one side are listed but never fail the run, so adding a bench or metric
does not break CI until the baseline is refreshed).

A metric regresses when it moves against its `higher_is_better` direction by
more than --threshold (relative, default 0.10 = 10%). Figure-bench metrics
come from the deterministic simulator, so any drift there is a real
behavioural change; BENCH_micro.json measures wall-clock and should not be
gated (don't pass it to this script on shared runners).

Exit status: 0 = no regression, 1 = regression(s), 2 = usage/schema error,
3 = baseline missing (not yet pinned — generate it and commit, see below).
"""

import argparse
import glob
import json
import os
import sys

SCHEMA = "gossipc-bench-v1"
EXIT_MISSING_BASELINE = 3


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_compare: {path}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    for m in doc.get("metrics", []):
        for field in ("name", "value", "unit", "higher_is_better"):
            if field not in m:
                sys.exit(f"bench_compare: {path}: metric missing {field!r}: {m}")
    return doc


def pair_files(baseline, current):
    """Yields (label, baseline_path, current_path)."""
    if os.path.isdir(baseline) != os.path.isdir(current):
        sys.exit("bench_compare: BASELINE and CURRENT must both be files or both dirs")
    if not os.path.isdir(baseline):
        yield os.path.basename(current), baseline, current
        return
    base_files = {os.path.basename(p): p
                  for p in glob.glob(os.path.join(baseline, "BENCH_*.json"))}
    cur_files = {os.path.basename(p): p
                 for p in glob.glob(os.path.join(current, "BENCH_*.json"))}
    for name in sorted(base_files.keys() | cur_files.keys()):
        if name not in base_files:
            print(f"  [new bench, not compared] {name}")
        elif name not in cur_files:
            print(f"  [bench missing from current run, not compared] {name}")
        else:
            yield name, base_files[name], cur_files[name]
    if not (base_files and cur_files):
        sys.exit("bench_compare: no BENCH_*.json files to compare")


def compare(label, base_doc, cur_doc, threshold):
    """Prints a per-metric report; returns the list of regressed metric names."""
    base = {m["name"]: m for m in base_doc["metrics"]}
    cur = {m["name"]: m for m in cur_doc["metrics"]}
    if base_doc.get("mode") != cur_doc.get("mode"):
        print(f"  WARNING: mode mismatch ({base_doc.get('mode')} vs "
              f"{cur_doc.get('mode')}); values are not comparable")
    regressed = []
    for name in sorted(base.keys() | cur.keys()):
        if name not in cur:
            print(f"  [removed ] {name}")
            continue
        if name not in base:
            print(f"  [added   ] {name} = {cur[name]['value']:g}")
            continue
        b, c = base[name]["value"], cur[name]["value"]
        higher_better = base[name]["higher_is_better"]
        unit = base[name]["unit"]
        if b == 0:
            status = "ok" if c == 0 else "changed (baseline 0, not gated)"
            print(f"  [{status:9.9}] {name}: {b:g} -> {c:g} {unit}")
            continue
        rel = (c - b) / abs(b)
        bad = rel < -threshold if higher_better else rel > threshold
        status = "REGRESSED" if bad else "ok"
        print(f"  [{status:9.9}] {name}: {b:g} -> {c:g} {unit} ({rel:+.1%})")
        if bad:
            regressed.append(f"{label}:{name}")
    return regressed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    ap.add_argument("current", help="current BENCH_*.json file or directory")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated relative move against the metric's "
                         "direction (default 0.10)")
    args = ap.parse_args()
    if args.threshold < 0:
        ap.error("--threshold must be >= 0")

    # A missing baseline is not a regression and not a usage mistake — it
    # means nobody has pinned one yet. Exit with a code of its own so CI can
    # distinguish "needs a baseline commit" from "benches got slower".
    if not os.path.exists(args.baseline):
        print(f"bench_compare: baseline {args.baseline!r} does not exist.\n"
              f"  Run the bench binaries, then commit their BENCH_*.json "
              f"output as the new baseline\n"
              f"  (CI keeps it under bench/baseline/).", file=sys.stderr)
        return EXIT_MISSING_BASELINE
    if not os.path.exists(args.current):
        print(f"bench_compare: current report {args.current!r} does not exist "
              f"(did the bench run produce output?)", file=sys.stderr)
        return 2

    regressed = []
    for label, base_path, cur_path in pair_files(args.baseline, args.current):
        print(f"== {label} (threshold {args.threshold:.0%})")
        regressed += compare(label, load(base_path), load(cur_path), args.threshold)

    if regressed:
        print(f"\nFAIL: {len(regressed)} metric(s) regressed:")
        for name in regressed:
            print(f"  {name}")
        return 1
    print("\nOK: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
