#!/usr/bin/env bash
# Launches an n-process gossipd cluster on localhost, drives client values
# through it, and asserts that every node learned the same gap-free decision
# sequence (DESIGN.md §10).
#
# Usage:
#   scripts/cluster_local.sh [options]
#     -n NODES     cluster size (default 3, minimum 3)
#     -v VALUES    total client values to order (default 300)
#     -s SETUP     baseline | gossip | semantic (default semantic)
#     -G GROUPS    independent consensus groups over the shared substrate
#                  (default 1; DESIGN.md §15). With >1 every decision-log
#                  line gains a leading group column, logs are normalized to
#                  (group, instance) order before comparison, and gap-freedom
#                  is asserted per group
#     -T TRANSPORT tcp | udp (default tcp)
#     -f           enable failure detector + coordinator failover
#     -k           SIGKILL the coordinator (node 0) mid-run; implies -f.
#                  Node 0 then submits no values of its own: values a process
#                  accepted but had not yet proposed die with it by design,
#                  which would make the expected total nondeterministic.
#     -C PROFILE   replay a chaos fault schedule in every node:
#                  light | moderate | heavy | heavy_failover. Crash/restart
#                  and (under -T udp) link-fault lanes are applied against
#                  the real sockets; all nodes must render the identical
#                  injected-fault log. heavy_failover permanently crashes
#                  node 0, so pair it with -k semantics in mind.
#     -S SEED      chaos schedule seed (default 1); same seed, same schedule
#     -t SECONDS   per-node hard runtime limit (default 60)
#     -b BINARY    gossipd binary (default build/examples/gossipd)
#     -d DIR       scratch directory for logs (default: a fresh mktemp dir)
#
# Exit status: 0 iff every (surviving) node exited 0 and all decision logs
# are identical, complete, and gap-free. Under -C a crash-wiped node
# re-delivers from instance 1, so logs are deduplicated per instance before
# the comparison (every line is an "instance decided value" assertion).
set -euo pipefail

cd "$(dirname "$0")/.."

NODES=3
VALUES=300
SETUP=semantic
NGROUPS=1
TRANSPORT=tcp
FAILOVER=0
KILL_COORD=0
CHAOS=""
CHAOS_SEED=1
TIMEOUT=60
BINARY=build/examples/gossipd
DIR=""

while getopts "n:v:s:G:T:fkC:S:t:b:d:h" o; do
    case "$o" in
        n) NODES="$OPTARG" ;;
        v) VALUES="$OPTARG" ;;
        s) SETUP="$OPTARG" ;;
        G) NGROUPS="$OPTARG" ;;
        T) TRANSPORT="$OPTARG" ;;
        f) FAILOVER=1 ;;
        k) KILL_COORD=1; FAILOVER=1 ;;
        C) CHAOS="$OPTARG"; FAILOVER=1 ;;
        S) CHAOS_SEED="$OPTARG" ;;
        t) TIMEOUT="$OPTARG" ;;
        b) BINARY="$OPTARG" ;;
        d) DIR="$OPTARG" ;;
        h|*) sed -n '2,36p' "$0"; exit 2 ;;
    esac
done

case "$TRANSPORT" in
    tcp|udp) ;;
    *) echo "cluster_local.sh: unknown transport '$TRANSPORT' (tcp|udp)" >&2; exit 2 ;;
esac

if [ "$NODES" -lt 3 ]; then
    echo "cluster_local.sh: need at least 3 nodes" >&2
    exit 2
fi
if [ "$NGROUPS" -lt 1 ]; then
    echo "cluster_local.sh: -G must be at least 1" >&2
    exit 2
fi
if [ ! -x "$BINARY" ]; then
    echo "cluster_local.sh: $BINARY not found or not executable (build it first)" >&2
    exit 2
fi

[ -n "$DIR" ] || DIR="$(mktemp -d /tmp/cluster_local.XXXXXX)"
mkdir -p "$DIR"

# A pseudo-random base port keeps concurrent invocations (and TIME_WAIT
# remnants of previous ones) from colliding.
BASE_PORT=$(( 20000 + RANDOM % 20000 ))
CLUSTER=""
for ((i = 0; i < NODES; i++)); do
    CLUSTER+="${CLUSTER:+,}127.0.0.1:$((BASE_PORT + i))"
done

# Split the total across the submitting nodes (node 0 abstains under -k).
SUBMITTERS=$NODES
FIRST_SUBMITTER=0
if [ "$KILL_COORD" -eq 1 ]; then
    SUBMITTERS=$((NODES - 1))
    FIRST_SUBMITTER=1
fi
PER_NODE=$((VALUES / SUBMITTERS))
REMAINDER=$((VALUES % SUBMITTERS))

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2> /dev/null || true
    done
    wait 2> /dev/null || true
}
trap cleanup EXIT INT TERM

echo "cluster_local.sh: $NODES nodes, $VALUES values, setup=$SETUP groups=$NGROUPS" \
     "transport=$TRANSPORT failover=$FAILOVER kill-coordinator=$KILL_COORD" \
     "chaos=${CHAOS:-off} logs=$DIR"

for ((i = 0; i < NODES; i++)); do
    SUBMIT=0
    if [ "$i" -ge "$FIRST_SUBMITTER" ]; then
        SUBMIT=$PER_NODE
        # The first submitter also takes the division remainder.
        [ "$i" -eq "$FIRST_SUBMITTER" ] && SUBMIT=$((PER_NODE + REMAINDER))
    fi
    ARGS=(--id "$i" --cluster "$CLUSTER" --setup "$SETUP" --transport "$TRANSPORT"
          --submit "$SUBMIT" --rate 300 --expect "$VALUES" --run-for "$TIMEOUT"
          --decision-log "$DIR/node$i.log" --metrics "$DIR/node$i.metrics")
    [ "$NGROUPS" -gt 1 ] && ARGS+=(--groups "$NGROUPS")
    [ "$FAILOVER" -eq 1 ] && ARGS+=(--failover)
    [ -n "$CHAOS" ] && ARGS+=(--chaos "$CHAOS" --chaos-seed "$CHAOS_SEED"
                              --chaos-log "$DIR/node$i.chaos")
    "$BINARY" "${ARGS[@]}" > "$DIR/node$i.out" 2>&1 &
    PIDS+=($!)
done

if [ "$KILL_COORD" -eq 1 ]; then
    sleep 2
    echo "cluster_local.sh: SIGKILL coordinator (node 0, pid ${PIDS[0]})"
    kill -9 "${PIDS[0]}" 2> /dev/null || true
fi

FAIL=0
SURVIVOR=-1
for ((i = 0; i < NODES; i++)); do
    if [ "$KILL_COORD" -eq 1 ] && [ "$i" -eq 0 ]; then
        wait "${PIDS[$i]}" 2> /dev/null || true
        continue
    fi
    if ! wait "${PIDS[$i]}"; then
        echo "cluster_local.sh: node $i exited non-zero:" >&2
        tail -3 "$DIR/node$i.out" >&2 || true
        FAIL=1
    fi
    SURVIVOR=$i
done
PIDS=()

if [ "$FAIL" -ne 0 ] || [ "$SURVIVOR" -lt 0 ]; then
    echo "cluster_local.sh: FAIL (nodes exited short of the expectation)" >&2
    exit 1
fi

# Under chaos a crash-wiped node re-delivers from instance 1 (and a wipe
# late in the run can leave a partial re-delivery tail), so normalize each
# log to its unique "instance client seq" assertions, in instance order. A
# safety divergence survives normalization as a duplicate instance line and
# fails the gap check below. With -G > 1 the groups' deliveries interleave
# in node-local order, so logs are always normalized — to unique
# "group instance client seq" assertions in (group, instance) order.
SUFFIX=""
if [ "$NGROUPS" -gt 1 ]; then
    SUFFIX=".norm"
    for ((i = FIRST_SUBMITTER; i < NODES; i++)); do
        sort -u "$DIR/node$i.log" | sort -s -k1,1n -k2,2n > "$DIR/node$i.log$SUFFIX"
    done
elif [ -n "$CHAOS" ]; then
    SUFFIX=".norm"
    for ((i = FIRST_SUBMITTER; i < NODES; i++)); do
        sort -u "$DIR/node$i.log" | sort -s -n -k1,1 > "$DIR/node$i.log$SUFFIX"
    done
fi
REF="$DIR/node$SURVIVOR.log$SUFFIX"

# 1. Completeness: the reference log holds exactly the expected count.
LINES=$(wc -l < "$REF")
if [ "$LINES" -ne "$VALUES" ]; then
    echo "cluster_local.sh: FAIL ($LINES decisions in $REF, expected $VALUES)" >&2
    exit 1
fi

# 2. Gap-freedom. Single group: the instance column is exactly 1..VALUES in
# order. Sharded: within each group the instance column is contiguous from 1
# (the per-group totals vary with the value hash, their sum is checked above).
if [ "$NGROUPS" -gt 1 ]; then
    if ! awk '
            $2 != seen[$1] + 1 { print "group " $1 " instance " $2 \
                                 " after " seen[$1] + 0; exit 1 }
            { seen[$1] = $2 }
        ' "$REF"; then
        echo "cluster_local.sh: FAIL (a group's decision sequence has gaps in $REF)" >&2
        exit 1
    fi
else
    if ! awk -v want="$VALUES" '
            $1 != NR { print "instance " $1 " at line " NR; bad = 1; exit }
            END { if (!bad && NR != want) { print "ended at " NR; exit 1 } else exit bad }
        ' "$REF"; then
        echo "cluster_local.sh: FAIL (decision sequence has gaps in $REF)" >&2
        exit 1
    fi
fi

# 3. Agreement: every surviving node produced the identical log.
for ((i = FIRST_SUBMITTER; i < NODES; i++)); do
    if ! cmp -s "$REF" "$DIR/node$i.log$SUFFIX"; then
        echo "cluster_local.sh: FAIL (node $i log differs from node $SURVIVOR)" >&2
        diff "$REF" "$DIR/node$i.log$SUFFIX" | head -5 >&2 || true
        exit 1
    fi
done

# 4. Chaos determinism: every surviving node rendered the identical
# injected-fault log (same profile + seed -> same schedule, byte for byte).
if [ -n "$CHAOS" ]; then
    CREF="$DIR/node$SURVIVOR.chaos"
    for ((i = FIRST_SUBMITTER; i < NODES; i++)); do
        if ! cmp -s "$CREF" "$DIR/node$i.chaos"; then
            echo "cluster_local.sh: FAIL (node $i injected-fault log differs)" >&2
            diff "$CREF" "$DIR/node$i.chaos" | head -5 >&2 || true
            exit 1
        fi
    done
fi

echo "cluster_local.sh: OK — $NODES nodes agreed on $VALUES decisions${CHAOS:+ under $CHAOS chaos} (logs in $DIR)"
