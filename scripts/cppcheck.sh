#!/usr/bin/env bash
# cppcheck runner for the static-analysis matrix (DESIGN.md §11).
#
# Usage:
#   scripts/cppcheck.sh             # analyze src/ (and examples/)
#
# Environment:
#   CPPCHECK    cppcheck binary (default: cppcheck)
#
# Exits non-zero iff cppcheck reports an error. When cppcheck is not
# installed the script is a no-op success so environments without it (e.g.
# the gcc-only dev container) can still run the full pipeline; CI installs
# cppcheck and enforces the pass.
set -euo pipefail

cd "$(dirname "$0")/.."

CPPCHECK="${CPPCHECK:-cppcheck}"

if ! command -v "$CPPCHECK" > /dev/null 2>&1; then
    echo "cppcheck.sh: $CPPCHECK not found; skipping (install cppcheck to enable)" >&2
    exit 0
fi

echo "cppcheck.sh: $("$CPPCHECK" --version)"

# style/performance/portability on top of the always-on error checks.
# - missingIncludeSystem: we do not ship system headers to cppcheck.
# - unusedFunction: the library legitimately exports API the binaries
#   don't all call; the linker, not cppcheck, owns dead-code concerns.
# - unmatchedSuppression: keeps the list below honest on newer cppcheck
#   versions that drop checks.
exec "$CPPCHECK" \
    --enable=warning,style,performance,portability \
    --suppress=missingIncludeSystem \
    --suppress=unusedFunction \
    --suppress=unmatchedSuppression \
    --inline-suppr \
    --std=c++20 \
    --language=c++ \
    -I src \
    --error-exitcode=1 \
    --quiet \
    -j "$(nproc 2> /dev/null || echo 2)" \
    src examples
