// Microbenchmarks (google-benchmark) for the hot data structures: the
// recently-seen cache, the sliding Bloom filter, the event queue, the
// semantic aggregation rule, overlay generation, and shortest-path analysis.
//
// Unlike the figure benches (simulated time, deterministic), these measure
// wall-clock — BENCH_micro.json is informational and not regression-gated.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "common/rng.hpp"
#include "gossip/seen_cache.hpp"
#include "gossip/sliding_bloom.hpp"
#include "net/latency_model.hpp"
#include "overlay/analysis.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/message.hpp"
#include "semantic/paxos_semantics.hpp"
#include "sim/event_queue.hpp"

namespace gossipc {
namespace {

void BM_SeenCacheInsert(benchmark::State& state) {
    SeenCache cache(static_cast<std::size_t>(state.range(0)));
    std::uint64_t id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.insert_if_new(mix64(id++)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeenCacheInsert)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_SeenCacheDuplicateLookup(benchmark::State& state) {
    SeenCache cache(1 << 18);
    for (std::uint64_t id = 0; id < 1000; ++id) cache.insert_if_new(mix64(id));
    std::uint64_t id = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.insert_if_new(mix64(id)));
        id = (id + 1) % 1000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeenCacheDuplicateLookup);

void BM_SlidingBloomInsert(benchmark::State& state) {
    SlidingBloom bloom(static_cast<std::size_t>(state.range(0)));
    std::uint64_t id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom.insert_if_new(mix64(id++)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingBloomInsert)->Arg(1 << 12)->Arg(1 << 16);

void BM_EventQueuePushPop(benchmark::State& state) {
    EventQueue q;
    Rng rng(1);
    const std::size_t depth = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < depth; ++i) {
        q.push(SimTime::nanos(rng.uniform_int(0, 1'000'000)), [] {});
    }
    for (auto _ : state) {
        q.push(SimTime::nanos(rng.uniform_int(0, 1'000'000)), [] {});
        benchmark::DoNotOptimize(q.pop());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 8)->Arg(1 << 14);

void BM_SemanticAggregate(benchmark::State& state) {
    PaxosSemantics sem(0, 53, PaxosSemantics::Options{});
    const int batch = static_cast<int>(state.range(0));
    Value v;
    v.id = ValueId{1, 1};
    std::vector<GossipAppMessage> pending;
    for (int s = 0; s < batch; ++s) {
        auto msg = std::make_shared<Phase2bMsg>(s, 1, 1, v.id, v.digest());
        GossipAppMessage app;
        app.id = msg->unique_key();
        app.origin = s;
        app.payload = std::move(msg);
        pending.push_back(std::move(app));
    }
    for (auto _ : state) {
        auto copy = pending;
        benchmark::DoNotOptimize(sem.aggregate(std::move(copy), 9));
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SemanticAggregate)->Arg(2)->Arg(8)->Arg(32);

void BM_SemanticValidate(benchmark::State& state) {
    PaxosSemantics sem(0, 53, PaxosSemantics::Options{});
    Value v;
    v.id = ValueId{1, 1};
    InstanceId inst = 1;
    ProcessId sender = 0;
    for (auto _ : state) {
        auto msg = std::make_shared<Phase2bMsg>(sender, inst, 1, v.id, v.digest());
        GossipAppMessage app;
        app.id = msg->unique_key();
        app.origin = sender;
        app.payload = std::move(msg);
        benchmark::DoNotOptimize(sem.validate(app, 9));
        sender = (sender + 1) % 105;
        if (sender == 0) ++inst;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SemanticValidate);

void BM_OverlayGeneration(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(make_connected_overlay(n, seed++));
    }
}
BENCHMARK(BM_OverlayGeneration)->Arg(13)->Arg(105);

void BM_ShortestDelays(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const Graph g = make_connected_overlay(n, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(shortest_delays(g, 0, LatencyModel::aws()));
    }
}
BENCHMARK(BM_ShortestDelays)->Arg(13)->Arg(105);

/// Console output as usual, plus every run collected into the shared
/// BENCH_<name>.json schema (ns/iter always; items/s when the bench sets it).
class CollectingReporter final : public benchmark::ConsoleReporter {
public:
    explicit CollectingReporter(bench::BenchReport& report) : report_(report) {}

    void ReportRuns(const std::vector<Run>& runs) override {
        ConsoleReporter::ReportRuns(runs);
        for (const Run& run : runs) {
            const std::string name = run.benchmark_name();
            report_.add(name + ".ns_per_iter", run.GetAdjustedRealTime(), "ns", false);
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end()) {
                report_.add(name + ".items_per_s", static_cast<double>(it->second),
                            "items/s", true);
            }
        }
    }

private:
    bench::BenchReport& report_;
};

}  // namespace
}  // namespace gossipc

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    gossipc::bench::BenchReport report("micro");
    gossipc::CollectingReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    report.write();
    return 0;
}
