// Figure 6 — reliability of Paxos in the Gossip and Semantic Gossip setups
// under injected message loss, with timeout-triggered procedures disabled:
// the portion of submitted values not ordered, over a (workload x loss-rate)
// grid, averaged over several executions.
//
// Quick mode uses n=53 with 2 runs per cell; GC_FULL=1 uses the paper's
// n=105 with 10 runs per cell.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    const bool full = full_mode();
    const int n = full ? 105 : 53;
    const int runs = full ? 10 : 2;
    const std::vector<double> loss_rates =
        full ? std::vector<double>{0.05, 0.10, 0.15, 0.20, 0.25, 0.30}
             : std::vector<double>{0.05, 0.10, 0.20, 0.30};
    const std::vector<double> rates = full
                                          ? std::vector<double>{26, 52, 104, 130, 156, 182}
                                          : std::vector<double>{26, 78, 156};

    print_header("Figure 6: portion of submitted values NOT ordered under injected\n"
                 "message loss (timeout-triggered procedures disabled)");
    std::printf("n=%d, %d run(s) per cell; rows = workload, columns = loss rate\n", n, runs);

    BenchReport report("fig6");
    for (const Setup setup : {Setup::Gossip, Setup::SemanticGossip}) {
        std::uint64_t total_submitted = 0, total_not_ordered = 0;
        std::printf("\n--- %s ---\n%12s", setup_name(setup), "workload");
        for (const double loss : loss_rates) std::printf(" %9.0f%%", 100 * loss);
        std::printf("\n");
        for (const double rate : rates) {
            std::printf("%10.0f/s", rate);
            for (const double loss : loss_rates) {
                std::uint64_t submitted = 0, not_ordered = 0;
                for (int run = 0; run < runs; ++run) {
                    ExperimentConfig cfg = base_config(setup, n, rate);
                    cfg.loss_rate = loss;
                    cfg.timeouts_enabled = false;
                    cfg.seed = 1000 + static_cast<std::uint64_t>(run);
                    cfg.drain = SimTime::seconds(2);
                    const auto r = run_experiment(cfg);
                    submitted += r.workload.submitted_in_window;
                    not_ordered += r.workload.not_ordered;
                }
                total_submitted += submitted;
                total_not_ordered += not_ordered;
                const double frac =
                    submitted == 0 ? 0.0
                                   : 100.0 * static_cast<double>(not_ordered) /
                                         static_cast<double>(submitted);
                if (not_ordered == 0) {
                    std::printf(" %10s", ".");
                } else {
                    std::printf(" %9.1f%%", frac);
                }
            }
            std::printf("\n");
        }
        report.add(std::string(setup_name(setup)) + ".not_ordered_frac",
                   total_submitted == 0
                       ? 0.0
                       : static_cast<double>(total_not_ordered) /
                             static_cast<double>(total_submitted),
                   "frac", false);
    }
    report.write();

    std::printf("\n('.' = all submitted values ordered despite the loss)\n");
    std::printf("Paper reference (n=105): <10%% loss -> everything ordered; 10%% -> up\n"
                "to 2.5%% unordered; 20%% -> up to 8%%; 30%% -> up to 23%% (Gossip) and\n"
                "29%% (Semantic Gossip), i.e. the semantic extensions preserve gossip's\n"
                "resilience up to 20%% loss and only diverge at 30%%.\n");
    return 0;
}
