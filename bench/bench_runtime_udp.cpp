// Runtime transport bench (DESIGN.md §12): UDP vs TCP delivery reliability
// and latency under injected datagram loss.
//
// Every leg runs the real runtime stack — Reactor, RealTransport,
// PaxosProcess, PaxosSemantics — inside one process and orders the same
// client-value workload; what varies is the channel underneath:
//
//   tcp_semantic            ConnectionManager over real loopback sockets
//                           (the clean-path reference)
//   udp_semantic            UdpLink over the in-process datagram harness,
//                           no faults
//   udp_semantic_loss20     same link with 20% loss + duplication + reorder
//   udp_tcplike_loss20      same lossy link with force_reliable: every body
//                           retransmitted until acked — the TCP-equivalent
//                           service over identical loss, which is the
//                           apples-to-apples p99 comparison the stream
//                           transport itself cannot provide (it cannot ride
//                           the datagram harness)
//   udp_direct_loss20       Direct (no gossip redundancy) over the lossy
//                           link: the reliability layer alone carries Paxos
//
// Per leg: ordered fraction, client-observed latency p50/p99, datagram
// delivery fraction, retransmits, duplicate deliveries. Unlike the
// simulator benches these run on the wall clock, so the pinned baseline
// tracks ballpark shifts, not exact values.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/datagram_faults.hpp"
#include "gossip/hooks.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/process.hpp"
#include "runtime/conn_manager.hpp"
#include "runtime/lossy_link.hpp"
#include "runtime/real_transport.hpp"
#include "runtime/tcp.hpp"
#include "runtime/udp_link.hpp"
#include "semantic/paxos_semantics.hpp"
#include "stats/histogram.hpp"

namespace gossipc::bench {
namespace {

using runtime::ConnectionManager;
using runtime::LossyDatagramNetwork;
using runtime::PeerChannel;
using runtime::Reactor;
using runtime::RealTransport;
using runtime::UdpLink;

enum class Channel { Tcp, Udp };

struct LegConfig {
    std::string name;
    Channel channel = Channel::Udp;
    RealTransport::Mode mode = RealTransport::Mode::Gossip;
    bool semantic = true;
    fault::DatagramFaultSpec faults;
    bool force_reliable = false;
    int n = 5;
    int values = 200;
};

struct LegResult {
    double ordered_fraction = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double datagram_delivery = 1.0;  ///< delivered / (sent + duplicated)
    double retransmits = 0.0;
    double duplicate_datagrams = 0.0;
};

struct BenchNode {
    std::unique_ptr<ConnectionManager> conns;
    std::unique_ptr<UdpLink> link;
    PassThroughHooks pass_through;
    std::unique_ptr<PaxosSemantics> semantics;
    std::unique_ptr<RealTransport> transport;
    std::unique_ptr<PaxosProcess> proc;
    std::size_t delivered = 0;
};

LegResult run_leg(const LegConfig& leg) {
    Reactor reactor;
    const int n = leg.n;

    // Channel setup: either a shared lossy datagram harness or real
    // loopback TCP listeners on ephemeral ports.
    std::unique_ptr<LossyDatagramNetwork> net;
    std::vector<int> listen_fds;
    std::vector<runtime::PeerAddress> cluster;
    if (leg.channel == Channel::Udp) {
        net = std::make_unique<LossyDatagramNetwork>(reactor, n, /*seed=*/2026);
        net->set_default_fault(leg.faults);
    } else {
        for (int i = 0; i < n; ++i) {
            std::string err;
            const int fd = runtime::listen_tcp("127.0.0.1", 0, &err);
            if (fd < 0) {
                std::fprintf(stderr, "listen_tcp: %s\n", err.c_str());
                std::exit(1);
            }
            listen_fds.push_back(fd);
            cluster.push_back(runtime::PeerAddress{"127.0.0.1", runtime::local_port(fd)});
        }
    }

    const Graph overlay = make_connected_overlay(n, 42);
    std::vector<std::unique_ptr<BenchNode>> nodes;
    Histogram latencies_ms;
    std::map<std::int64_t, SimTime> submitted_at;  ///< by ValueId seq (node 0 owns all)

    for (int i = 0; i < n; ++i) {
        auto node = std::make_unique<BenchNode>();
        PeerChannel* chan = nullptr;
        if (leg.channel == Channel::Udp) {
            UdpLink::Params lp;
            lp.force_reliable = leg.force_reliable;
            node->link = std::make_unique<UdpLink>(reactor, i, n, net->endpoint(i), lp);
            chan = node->link.get();
        } else {
            node->conns = std::make_unique<ConnectionManager>(
                reactor, i, cluster, listen_fds[static_cast<std::size_t>(i)],
                ConnectionManager::Params{});
            chan = node->conns.get();
        }

        PaxosConfig pc;
        pc.n = n;
        pc.id = i;
        pc.coordinator = 0;
        pc.heartbeat_piggyback = !leg.semantic;

        GossipHooks* hooks = &node->pass_through;
        if (leg.semantic) {
            node->semantics = std::make_unique<PaxosSemantics>(i, pc.quorum(),
                                                               PaxosSemantics::Options{});
            hooks = node->semantics.get();
        }

        RealTransport::Params tp;
        tp.mode = leg.mode;
        if (leg.mode == RealTransport::Mode::Gossip) tp.neighbors = overlay.neighbors(i);
        node->transport = std::make_unique<RealTransport>(reactor, *chan, std::move(tp),
                                                          *hooks);
        node->proc = std::make_unique<PaxosProcess>(pc, *node->transport);
        BenchNode* raw = node.get();
        auto* lat = &latencies_ms;
        auto* sub = &submitted_at;
        auto* r = &reactor;
        const bool timing_node = i == 0;
        node->proc->set_delivery_listener(
            [raw, lat, sub, r, timing_node](InstanceId, const Value& value, CpuContext&) {
                ++raw->delivered;
                if (!timing_node) return;
                if (const auto it = sub->find(value.id.seq); it != sub->end()) {
                    lat->add((r->now() - it->second).as_nanos() / 1e6);
                    sub->erase(it);
                }
            });
        nodes.push_back(std::move(node));
    }

    if (leg.channel == Channel::Tcp) {
        // Wait for the TCP mesh; UDP needs no handshake.
        reactor.run_until(
            [&] {
                for (int i = 0; i < n; ++i) {
                    for (const ProcessId p : (leg.mode == RealTransport::Mode::Gossip
                                                  ? overlay.neighbors(i)
                                                  : [&] {
                                                        std::vector<ProcessId> all;
                                                        for (ProcessId q = 0; q < n; ++q) {
                                                            if (q != i) all.push_back(q);
                                                        }
                                                        return all;
                                                    }())) {
                        if (!nodes[static_cast<std::size_t>(i)]->conns->peer_up(p)) {
                            return false;
                        }
                    }
                }
                return true;
            },
            SimTime::seconds(10));
    }

    for (auto& node : nodes) node->proc->post_start();

    // All values are submitted by node 0, which also timestamps them; a
    // paced drip (one value per 500us) keeps queueing delay out of the
    // latency signal so p99 reflects the transport, not the burst.
    const int total = leg.values;
    std::int64_t next = 0;
    Reactor::TimerId drip = reactor.schedule_every(SimTime::micros(500), [&] {
        if (next >= total) return;
        Value value;
        value.id = ValueId{0, next};
        submitted_at[next] = reactor.now();
        ++next;
        nodes[0]->proc->post_submit(value);
    });

    const bool converged = reactor.run_until(
        [&] {
            if (next < total) return false;
            for (const auto& node : nodes) {
                if (node->delivered < static_cast<std::size_t>(total)) return false;
            }
            return true;
        },
        SimTime::seconds(60));
    reactor.cancel_timer(drip);
    if (!converged) {
        std::fprintf(stderr, "  %s: WARNING — not all values ordered in time\n",
                     leg.name.c_str());
    }

    LegResult out;
    std::size_t min_delivered = static_cast<std::size_t>(total);
    for (const auto& node : nodes) min_delivered = std::min(min_delivered, node->delivered);
    out.ordered_fraction = static_cast<double>(min_delivered) / total;
    if (!latencies_ms.empty()) {
        out.p50_ms = latencies_ms.percentile(50);
        out.p99_ms = latencies_ms.percentile(99);
    }
    if (net) {
        const auto& c = net->counters();
        const double offered = static_cast<double>(c.sent + c.duplicated);
        if (offered > 0) out.datagram_delivery = static_cast<double>(c.delivered) / offered;
    }
    for (const auto& node : nodes) {
        if (!node->link) continue;
        const auto& c = node->link->counters();
        out.retransmits += static_cast<double>(c.retransmits + c.fast_retransmits);
        out.duplicate_datagrams += static_cast<double>(c.duplicate_datagrams);
    }
    return out;
}

}  // namespace
}  // namespace gossipc::bench

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    print_header("Runtime transport: UDP vs TCP under injected loss");

    fault::DatagramFaultSpec loss20;
    loss20.loss = 0.20;
    loss20.duplicate = 0.10;
    loss20.reorder_window = SimTime::millis(2);

    std::vector<LegConfig> legs;
    {
        LegConfig leg;
        leg.name = "tcp_semantic";
        leg.channel = Channel::Tcp;
        legs.push_back(leg);
    }
    {
        LegConfig leg;
        leg.name = "udp_semantic";
        legs.push_back(leg);
    }
    {
        LegConfig leg;
        leg.name = "udp_semantic_loss20";
        leg.faults = loss20;
        legs.push_back(leg);
    }
    {
        LegConfig leg;
        leg.name = "udp_tcplike_loss20";
        leg.faults = loss20;
        leg.force_reliable = true;
        legs.push_back(leg);
    }
    {
        LegConfig leg;
        leg.name = "udp_direct_loss20";
        leg.mode = RealTransport::Mode::Direct;
        leg.semantic = false;
        leg.faults = loss20;
        leg.n = 3;
        legs.push_back(leg);
    }

    BenchReport report("runtime_udp");
    std::printf("%-22s %8s %9s %9s %9s %9s %7s\n", "leg", "ordered", "p50_ms",
                "p99_ms", "dgram_ok", "retx", "dups");
    print_rule();
    for (const auto& leg : legs) {
        const LegResult r = run_leg(leg);
        std::printf("%-22s %8.4f %9.3f %9.3f %9.4f %9.0f %7.0f\n", leg.name.c_str(),
                    r.ordered_fraction, r.p50_ms, r.p99_ms, r.datagram_delivery,
                    r.retransmits, r.duplicate_datagrams);
        report.add(leg.name + ".ordered_fraction", r.ordered_fraction, "frac", true);
        report.add(leg.name + ".latency_p50_ms", r.p50_ms, "ms", false);
        report.add(leg.name + ".latency_p99_ms", r.p99_ms, "ms", false);
        report.add(leg.name + ".datagram_delivery", r.datagram_delivery, "frac", true);
        report.add(leg.name + ".retransmits", r.retransmits, "count", false);
    }
    report.write();
    return 0;
}
