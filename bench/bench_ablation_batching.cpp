// Ablation C — semantic aggregation vs network-level batching (Section 3.2):
// "batching can have negative effect on performance when the system is
// subject to low loads, as the sending of messages is postponed. This does
// not happen with semantic aggregation."
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    const int n = 13;

    print_header("Ablation: semantic aggregation vs network-level batching");

    struct Variant {
        const char* name;
        Setup setup;
        std::size_t batch_size;
        SimTime batch_delay;
    };
    const std::vector<Variant> variants{
        {"classic gossip", Setup::Gossip, 1, SimTime::zero()},
        {"batching (8/5ms)", Setup::Gossip, 8, SimTime::millis(5)},
        {"batching (8/20ms)", Setup::Gossip, 8, SimTime::millis(20)},
        {"semantic aggregation", Setup::SemanticGossip, 1, SimTime::zero()},
    };

    // Variant keys for the JSON report (no spaces), same order as `variants`.
    const std::vector<std::string> keys{"classic", "batch8_5ms", "batch8_20ms",
                                        "semantic_agg"};
    BenchReport report("ablation_batching");
    for (const double rate : {13.0, 52.0, 416.0}) {
        std::printf("\n--- %.0f submissions/s (%s load) ---\n", rate,
                    rate <= 13 ? "low" : rate <= 52 ? "moderate" : "high");
        std::printf("%-22s %10s %12s %12s %14s\n", "variant", "tput/s", "lat(ms)",
                    "p99(ms)", "net arrivals");
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            const auto& v = variants[vi];
            ExperimentConfig cfg = base_config(v.setup, n, rate);
            if (v.setup == Setup::SemanticGossip) {
                cfg.semantic = {.filtering = false, .aggregation = true};  // isolate A1
            }
            cfg.gossip_params.batch_size = v.batch_size;
            cfg.gossip_params.batch_delay = v.batch_delay;
            const auto r = run_experiment(cfg);
            std::printf("%-22s %10.1f %12.1f %12.1f %14llu\n", v.name, r.workload.throughput,
                        r.workload.latencies.mean(), r.workload.latencies.percentile(99),
                        static_cast<unsigned long long>(r.messages.net_arrivals));
            const std::string key =
                keys[vi] + ".rate" + std::to_string(static_cast<int>(rate));
            report.add(key + ".latency_ms", r.workload.latencies.mean(), "ms", false);
            report.add(key + ".net_arrivals",
                       static_cast<double>(r.messages.net_arrivals), "count", false);
        }
    }
    report.write();

    std::printf("\nExpected: at low load batching inflates latency by its hold delay\n"
                "while aggregation does not delay any message; at high load both cut\n"
                "message counts, but aggregated votes stay small while batches grow\n"
                "with the number of messages batched.\n");
    return 0;
}
