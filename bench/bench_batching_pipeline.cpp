// Batching + pipelined dissemination (DESIGN.md §14, ROADMAP "raise the
// saturation ceiling"): coordinator-side value batching packs up to
// batch_size client values into one composite Paxos value per instance, so
// the per-instance protocol cost (Phase 2a/2b/Decision fan-out, gossip
// redundancy) is amortized over the whole batch.
//
// Lanes:
//   ref.*      unbatched Gossip n=105 sweep — the committed Figure 4
//              saturation point (~52 ops/s) this bench is measured against
//   batch8.*   same system, batch_size=8, swept to its own knee
//   batch64.*  same system, batch_size=64, swept to its own knee
//   batch256.* same system, batch_size=256 — per-instance overhead still
//              dominates at 64, so the ceiling keeps climbing
//   low_load.* the paper's §3.2 operating point (13 ops/s): the batch_delay
//              cost is visible in per-value latency, and semantic
//              aggregation keeps working on composite-carrying traffic
//   pipeline.* pull-strategy dissemination with same-step forwarding on/off
//
// All latency percentiles are per client value (the learner unpacks
// composites before notifying delivery listeners), never per batch.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace gossipc::bench {
namespace {

ExperimentConfig lane_config(Setup setup, int n, double rate, std::uint32_t batch_size) {
    ExperimentConfig cfg = base_config(setup, n, rate);
    cfg.batch_size = batch_size;
    return cfg;
}

struct Lane {
    double rate = 0;
    ExperimentResult result;
};

/// Runs one rate grid and returns the lanes plus the knee found over them.
std::vector<Lane> run_sweep(Setup setup, int n, std::uint32_t batch_size,
                            const std::vector<double>& rates) {
    std::vector<Lane> lanes;
    lanes.reserve(rates.size());
    for (const double rate : rates) {
        Lane lane;
        lane.rate = rate;
        lane.result = run_experiment(lane_config(setup, n, rate, batch_size));
        std::printf("  batch=%-3u rate=%7.0f  ->  tput %8.1f ops/s  p50 %7.1f ms  "
                    "p99 %7.1f ms\n",
                    batch_size, rate, lane.result.workload.throughput,
                    lane.result.workload.latencies.percentile(50),
                    lane.result.workload.latencies.percentile(99));
        lanes.push_back(std::move(lane));
    }
    return lanes;
}

SaturationResult knee_of(const std::vector<Lane>& lanes) {
    std::vector<SweepPoint> sweep;
    sweep.reserve(lanes.size());
    for (const Lane& l : lanes) {
        sweep.push_back({l.rate, l.result.workload.throughput,
                         l.result.workload.latencies.mean()});
    }
    return find_saturation(sweep);
}

void report_sweep(BenchReport& report, const std::string& prefix,
                  const std::vector<Lane>& lanes, const SaturationResult& knee) {
    const Lane& k = lanes[knee.index];
    report.add(prefix + ".sat_throughput", k.result.workload.throughput, "ops/s", true);
    report.add(prefix + ".sat_latency_p50_ms",
               k.result.workload.latencies.percentile(50), "ms", false);
    report.add(prefix + ".sat_latency_p99_ms",
               k.result.workload.latencies.percentile(99), "ms", false);
    // 0.0 marks a sweep whose throughput was still rising at the top of the
    // grid: the "saturation" value is then only a lower bound (see the
    // find_saturation contract) — flagged, never silently reported.
    report.add(prefix + ".sweep_saturated", knee.saturated ? 1.0 : 0.0, "bool", true);
    if (!knee.saturated) {
        std::fprintf(stderr,
                     "warning: %s sweep never saturated; sat_throughput is a "
                     "lower bound\n",
                     prefix.c_str());
    }
}

std::uint64_t metric(const ExperimentResult& result, const std::string& name) {
    for (const auto& s : result.metrics) {
        if (s.name == name) return static_cast<std::uint64_t>(s.value);
    }
    return 0;
}

}  // namespace
}  // namespace gossipc::bench

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;
    std::setvbuf(stdout, nullptr, _IOLBF, 0);  // progress visible when piped

    print_header("Batching + pipelined gossip: saturation ceiling vs Figure 4");
    BenchReport report("batching_pipeline");
    const int n = 105;

    // --- Reference: the committed Figure 4 Gossip saturation (~52 ops/s). ---
    std::printf("\nunbatched reference (Gossip n=%d):\n", n);
    const std::vector<Lane> ref = run_sweep(Setup::Gossip, n, 1, {52, 104, 156, 208});
    const SaturationResult ref_knee = knee_of(ref);
    report_sweep(report, "ref", ref, ref_knee);
    const double ref_sat = ref[ref_knee.index].result.workload.throughput;

    // --- Batched lanes: same deployment, composite proposals. ---
    std::printf("\nbatch_size=8 (Gossip n=%d):\n", n);
    const std::vector<Lane> b8 = run_sweep(Setup::Gossip, n, 8, {416, 832, 1664, 2496});
    const SaturationResult b8_knee = knee_of(b8);
    report_sweep(report, "batch8", b8, b8_knee);

    std::printf("\nbatch_size=64 (Gossip n=%d):\n", n);
    const std::vector<Lane> b64 = run_sweep(Setup::Gossip, n, 64, {2600, 5200, 10400});
    const SaturationResult b64_knee = knee_of(b64);
    report_sweep(report, "batch64", b64, b64_knee);

    std::printf("\nbatch_size=256 (Gossip n=%d):\n", n);
    const std::vector<Lane> b256 = run_sweep(Setup::Gossip, n, 256, {5200, 10400, 20800});
    const SaturationResult b256_knee = knee_of(b256);
    report_sweep(report, "batch256", b256, b256_knee);

    const double b8_sat = b8[b8_knee.index].result.workload.throughput;
    const double b64_sat = b64[b64_knee.index].result.workload.throughput;
    const double b256_sat = b256[b256_knee.index].result.workload.throughput;
    const double best_sat = std::max({b8_sat, b64_sat, b256_sat});
    const double speedup = ref_sat > 0 ? best_sat / ref_sat : 0.0;
    report.add("speedup_vs_unbatched", speedup, "ratio", true);
    std::printf("\nsaturation: unbatched %.0f ops/s, batch8 %.0f, batch64 %.0f, "
                "batch256 %.0f -> speedup %.1fx\n",
                ref_sat, b8_sat, b64_sat, b256_sat, speedup);

    // --- Low load (paper §3.2): 13 ops/s, the batching delay is the cost. ---
    std::printf("\nlow-load lane (13 ops/s, n=13):\n");
    const auto ll_plain = run_experiment(lane_config(Setup::Gossip, 13, 13, 1));
    const auto ll_batched = run_experiment(lane_config(Setup::Gossip, 13, 13, 64));
    const auto ll_semantic = run_experiment(lane_config(Setup::SemanticGossip, 13, 13, 64));
    const double p50_plain = ll_plain.workload.latencies.percentile(50);
    const double p50_batched = ll_batched.workload.latencies.percentile(50);
    report.add("low_load.unbatched.latency_p50_ms", p50_plain, "ms", false);
    report.add("low_load.batched.latency_p50_ms", p50_batched, "ms", false);
    report.add("low_load.batch_delay_penalty_ms", p50_batched - p50_plain, "ms", false);
    report.add("low_load.batched.timer_flushes",
               static_cast<double>(metric(ll_batched, "paxos.batch_timer_flushes")),
               "count", true);
    // Semantic aggregation must keep engaging when proposals are composite.
    report.add("low_load.semantic.aggregates_built",
               static_cast<double>(ll_semantic.semantic.aggregates_built), "count", true);
    report.add("low_load.semantic.latency_p50_ms",
               ll_semantic.workload.latencies.percentile(50), "ms", false);
    std::printf("  unbatched p50 %.1f ms, batched p50 %.1f ms (delay penalty "
                "%.1f ms), semantic aggregates %llu\n",
                p50_plain, p50_batched, p50_batched - p50_plain,
                static_cast<unsigned long long>(ll_semantic.semantic.aggregates_built));

    // --- Pipelined pull dissemination: same-step forwarding on/off. ---
    // 130 ops/s sits below the Pull knee: the lane isolates the hop-count
    // saving (forward within the received round instead of waiting for the
    // next local round) from queueing effects.
    std::printf("\npipeline lane (Pull, n=13, 130 ops/s, batch_size=8):\n");
    ExperimentConfig pl = lane_config(Setup::Gossip, 13, 130, 8);
    pl.strategy = GossipStrategy::Pull;
    const auto pipe_off = run_experiment(pl);
    pl.pipeline = true;
    const auto pipe_on = run_experiment(pl);
    report.add("pipeline.off.latency_p50_ms",
               pipe_off.workload.latencies.percentile(50), "ms", false);
    report.add("pipeline.on.latency_p50_ms",
               pipe_on.workload.latencies.percentile(50), "ms", false);
    report.add("pipeline.on.forwards",
               static_cast<double>(metric(pipe_on, "gossip.pipelined_forwards")),
               "count", true);
    report.add("pipeline.off.throughput", pipe_off.workload.throughput, "ops/s", true);
    report.add("pipeline.on.throughput", pipe_on.workload.throughput, "ops/s", true);
    std::printf("  p50 off %.1f ms -> on %.1f ms (%llu same-step forwards)\n",
                pipe_off.workload.latencies.percentile(50),
                pipe_on.workload.latencies.percentile(50),
                static_cast<unsigned long long>(metric(pipe_on, "gossip.pipelined_forwards")));

    report.write();
    return 0;
}
