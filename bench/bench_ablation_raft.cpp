// Ablation D — the transfer claim (paper Sections 4.7/5.1): the semantic
// techniques designed for Paxos apply to a gossip-based Raft-style
// deployment. Compares classic vs semantic gossip under leader replication:
// message counts, ack filtering, and commit latency.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "raft/replica.hpp"
#include "raft/semantics.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace gossipc;

struct RaftRun {
    double throughput = 0;
    double latency_ms = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t filtered = 0;
    std::uint64_t merged = 0;
};

RaftRun run_raft(int n, bool semantic, double rate, SimTime duration) {
    Simulator sim;
    Network net(sim, LatencyModel::aws(), n, {});
    const Graph overlay = make_connected_overlay(n, bench::median_overlay_seed(n));
    for (const auto& [a, b] : overlay.edges()) net.allow_link(a, b);

    std::vector<std::unique_ptr<GossipHooks>> hooks;
    std::vector<std::unique_ptr<GossipNode>> gnodes;
    std::vector<std::unique_ptr<RaftReplica>> replicas;
    RaftConfig base;
    base.n = n;
    base.leader = 0;
    for (ProcessId id = 0; id < n; ++id) {
        if (semantic) {
            hooks.push_back(std::make_unique<RaftSemantics>(id, base.quorum(),
                                                            RaftSemantics::Options{}));
        } else {
            hooks.push_back(std::make_unique<PassThroughHooks>());
        }
        gnodes.push_back(std::make_unique<GossipNode>(net.node(id), overlay.neighbors(id),
                                                      GossipNode::Params{}, *hooks.back()));
        RaftConfig rc = base;
        rc.id = id;
        replicas.push_back(std::make_unique<RaftReplica>(rc, *gnodes.back()));
    }

    // Open-loop submissions through a rotating replica; latency measured at
    // the submitting replica's commit.
    Histogram latencies;
    std::map<ValueId, SimTime> submitted_at;
    for (ProcessId id = 0; id < n; ++id) {
        replicas[static_cast<std::size_t>(id)]->set_commit_listener(
            [&submitted_at, &latencies](LogIndex, const Value& v, CpuContext& ctx) {
                const auto it = submitted_at.find(v.id);
                if (it != submitted_at.end()) {
                    latencies.add((ctx.now() - it->second).as_millis());
                    submitted_at.erase(it);
                }
            });
    }
    const SimTime interval = SimTime::seconds(1.0 / rate);
    std::int64_t seq = 0;
    std::function<void(SimTime)> schedule = [&](SimTime at) {
        if (at > duration) return;
        sim.schedule_at(at, [&, at] {
            Value v;
            v.id = ValueId{7, seq++};
            // Commit listeners fire at the replica that hosts the client.
            const auto via = static_cast<ProcessId>(v.id.seq % n);
            submitted_at.emplace(v.id, sim.now());
            replicas[static_cast<std::size_t>(via)]->post_submit(v);
            schedule(at + interval);
        });
    };
    schedule(SimTime::millis(1));
    sim.run_until(duration + SimTime::seconds(2));

    RaftRun out;
    out.throughput = static_cast<double>(latencies.count()) / duration.as_seconds();
    out.latency_ms = latencies.mean();
    for (ProcessId id = 0; id < n; ++id) out.arrivals += net.node(id).counters().arrivals;
    if (semantic) {
        for (const auto& h : hooks) {
            const auto& st = static_cast<RaftSemantics&>(*h).stats();
            out.filtered += st.filtered_acks;
            out.merged += st.messages_merged;
        }
    }
    return out;
}

}  // namespace

int main() {
    using namespace gossipc::bench;

    const int n = full_mode() ? 105 : 53;
    const SimTime duration = gossipc::SimTime::seconds(full_mode() ? 8 : 4);

    print_header("Ablation: semantic techniques transferred to Raft-style replication\n"
                 "(leader Append / follower Ack / leader Commit over gossip)");
    std::printf("n=%d, commit latency measured at the submitting replica\n", n);

    BenchReport report("ablation_raft");
    std::printf("\n%8s %-10s %10s %12s %14s %12s %10s\n", "rate", "gossip", "tput/s",
                "lat(ms)", "net arrivals", "filtered", "merged");
    for (const double rate : {26.0, 104.0, 260.0}) {
        RaftRun classic = run_raft(n, false, rate, duration);
        RaftRun semantic = run_raft(n, true, rate, duration);
        std::printf("%8.0f %-10s %10.1f %12.1f %14llu %12s %10s\n", rate, "classic",
                    classic.throughput, classic.latency_ms,
                    static_cast<unsigned long long>(classic.arrivals), "-", "-");
        std::printf("%8.0f %-10s %10.1f %12.1f %14llu %12llu %10llu\n", rate, "semantic",
                    semantic.throughput, semantic.latency_ms,
                    static_cast<unsigned long long>(semantic.arrivals),
                    static_cast<unsigned long long>(semantic.filtered),
                    static_cast<unsigned long long>(semantic.merged));
        std::printf("%8s %-10s %10s %12.1f%% %13.1f%%\n", "", "(delta)", "",
                    100.0 * (semantic.latency_ms - classic.latency_ms) / classic.latency_ms,
                    100.0 * (static_cast<double>(semantic.arrivals) -
                             static_cast<double>(classic.arrivals)) /
                        static_cast<double>(classic.arrivals));
        std::string key = "rate";  // (not "rate" + to_string: GCC 12 -Wrestrict FP)
        key += std::to_string(static_cast<int>(rate));
        report.add(key + ".classic_latency_ms", classic.latency_ms, "ms", false);
        report.add(key + ".semantic_latency_ms", semantic.latency_ms, "ms", false);
        report.add(key + ".arrivals_delta_pct",
                   100.0 * (static_cast<double>(semantic.arrivals) -
                            static_cast<double>(classic.arrivals)) /
                       static_cast<double>(classic.arrivals),
                   "pct", false);
    }
    report.write();

    std::printf("\nExpected: the Paxos-style message reduction carries over — acks are\n"
                "filtered once a peer knows the commit and merged when pending together,\n"
                "with equal or better commit latency (paper Section 5.1).\n");
    return 0;
}
