// Ablation B — dissemination strategies. The paper adopts push and notes the
// techniques "could be extended to other strategies" (Section 2.2): compare
// push, pull, and push-pull for Paxos, under no loss and under loss.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    const int n = 13;
    const double rate = 52.0;

    print_header("Ablation: push vs pull vs push-pull dissemination (Paxos over gossip)");
    std::printf("n=%d, %.0f submissions/s, pull interval 25ms\n", n, rate);

    const std::vector<std::pair<const char*, GossipStrategy>> strategies{
        {"push", GossipStrategy::Push},
        {"pull", GossipStrategy::Pull},
        {"push-pull", GossipStrategy::PushPull},
    };

    BenchReport report("ablation_strategies");
    for (const double loss : {0.0, 0.2}) {
        std::printf("\n--- injected loss %.0f%% ---\n", 100 * loss);
        std::printf("%-12s %10s %12s %12s %14s %12s\n", "strategy", "tput/s", "lat(ms)",
                    "p99(ms)", "net arrivals", "not-ordered");
        for (const auto& [name, strategy] : strategies) {
            ExperimentConfig cfg = base_config(Setup::Gossip, n, rate);
            cfg.strategy = strategy;
            cfg.loss_rate = loss;
            cfg.drain = SimTime::seconds(3);
            const auto r = run_experiment(cfg);
            std::printf("%-12s %10.1f %12.1f %12.1f %14llu %12llu\n", name,
                        r.workload.throughput, r.workload.latencies.mean(),
                        r.workload.latencies.percentile(99),
                        static_cast<unsigned long long>(r.messages.net_arrivals),
                        static_cast<unsigned long long>(r.workload.not_ordered));
            const std::string key =
                std::string(name) + ".loss" + std::to_string(static_cast<int>(100 * loss));
            report.add_run(key, r);
            report.add(key + ".not_ordered",
                       static_cast<double>(r.workload.not_ordered), "count", false);
        }
    }
    report.write();

    std::printf("\nExpected: push is fastest (latency bounded by hop count); pull pays\n"
                "anti-entropy round delays; push-pull matches push latency and adds\n"
                "repair traffic that masks loss better.\n");
    return 0;
}
