// Ablation A — the two semantic techniques in isolation: classic gossip,
// filtering-only, aggregation-only, and both combined, at a workload near
// the Gossip knee. Shows where the message reduction comes from (Section
// 3.2 motivates each technique separately; the paper evaluates them
// combined).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    const int n = full_mode() ? 105 : 53;
    const double rate = full_mode() ? 156.0 : 416.0;

    print_header("Ablation: semantic filtering and aggregation in isolation");
    std::printf("n=%d, %.0f submissions/s (near the Gossip knee)\n", n, rate);

    struct Variant {
        const char* name;
        Setup setup;
        PaxosSemantics::Options options;
    };
    const std::vector<Variant> variants{
        {"classic gossip", Setup::Gossip, {}},
        {"filtering only", Setup::SemanticGossip, {.filtering = true, .aggregation = false}},
        {"aggregation only", Setup::SemanticGossip, {.filtering = false, .aggregation = true}},
        {"both (Semantic)", Setup::SemanticGossip, {.filtering = true, .aggregation = true}},
    };

    // Variant keys for the JSON report (no spaces), same order as `variants`.
    const std::vector<std::string> keys{"classic", "filtering_only", "aggregation_only",
                                        "combined"};
    BenchReport report("ablation_semantic");
    std::printf("\n%-18s %12s %12s %14s %12s %12s\n", "variant", "tput/s", "lat(ms)",
                "net arrivals", "filtered", "merged");
    double base_arrivals = 0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto& v = variants[i];
        ExperimentConfig cfg = base_config(v.setup, n, rate);
        cfg.semantic = v.options;
        const auto r = run_experiment(cfg);
        const auto arrivals = static_cast<double>(r.messages.net_arrivals);
        if (base_arrivals == 0) base_arrivals = arrivals;
        std::printf("%-18s %12.1f %12.1f %9.0f (%3.0f%%) %12llu %12llu\n", v.name,
                    r.workload.throughput, r.workload.latencies.mean(), arrivals,
                    100.0 * arrivals / base_arrivals,
                    static_cast<unsigned long long>(r.semantic.filtered_phase2b),
                    static_cast<unsigned long long>(r.semantic.messages_merged));
        report.add_run(keys[i], r);
        report.add(keys[i] + ".arrivals_vs_classic",
                   arrivals / base_arrivals, "ratio", false);
    }
    report.write();

    std::printf("\nExpected: each technique alone reduces traffic; combined they\n"
                "reduce it the most (paper: up to 58%% fewer messages received).\n");
    return 0;
}
