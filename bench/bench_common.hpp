// Shared infrastructure for the figure/table reproduction benches.
//
// Quick vs full mode: by default the benches run reduced grids that finish
// in minutes; set GC_FULL=1 in the environment for paper-scale grids
// (system sizes, overlay counts, repetition counts).
//
// bench_fig3 writes its sweep to fig3_results.csv; bench_fig4 reuses that
// file when present instead of re-running the sweep.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/semantic_gossip.hpp"

namespace gossipc::bench {

inline bool full_mode() {
    const char* v = std::getenv("GC_FULL");
    return v != nullptr && v[0] == '1';
}

/// Measurement windows scaled to system size (larger systems cost more
/// wall-clock per simulated second).
inline void apply_windows(ExperimentConfig& cfg) {
    if (full_mode()) {
        cfg.warmup = SimTime::seconds(1);
        cfg.measure = SimTime::seconds(5);
        cfg.drain = SimTime::seconds(2);
    } else if (cfg.n >= 100) {
        cfg.warmup = SimTime::seconds(0.5);
        cfg.measure = SimTime::seconds(2);
        cfg.drain = SimTime::seconds(1);
    } else {
        cfg.warmup = SimTime::seconds(0.5);
        cfg.measure = SimTime::seconds(3);
        cfg.drain = SimTime::seconds(1.5);
    }
}

/// Overlay seed per system size, chosen by the paper's Figure 7 method: the
/// overlay whose median RTT from the coordinator is the median among 60
/// random candidates (see bench_fig7_overlay_selection).
inline std::uint64_t median_overlay_seed(int n) {
    switch (n) {
        case 13: return 50;   // median RTT 194 ms
        case 53: return 39;   // median RTT 198.5 ms
        case 105: return 32;  // median RTT 184 ms
        default: return 42 + static_cast<std::uint64_t>(n);
    }
}

inline ExperimentConfig base_config(Setup setup, int n, double rate) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = n;
    cfg.total_rate = rate;
    // One fixed overlay per system size across setups, as in the paper.
    cfg.overlay_seed = median_overlay_seed(n);
    apply_windows(cfg);
    return cfg;
}

/// The paper's system sizes; quick mode drops n=105 from the heaviest
/// sweeps only where noted per bench.
inline std::vector<int> system_sizes() { return {13, 53, 105}; }

struct SweepResult {
    Setup setup;
    int n = 0;
    SweepPoint point;
    ExperimentResult result;
};

inline SweepResult run_point(Setup setup, int n, double rate) {
    ExperimentConfig cfg = base_config(setup, n, rate);
    SweepResult out;
    out.setup = setup;
    out.n = n;
    out.result = run_experiment(cfg);
    out.point = SweepPoint{rate, out.result.workload.throughput,
                           out.result.workload.latencies.mean()};
    return out;
}

inline void print_header(const char* title) {
    std::printf("\n==============================================================\n");
    std::printf("%s\n", title);
    std::printf("mode: %s (set GC_FULL=1 for paper-scale grids)\n",
                full_mode() ? "FULL" : "quick");
    std::printf("==============================================================\n");
}

inline void print_rule() {
    std::printf("--------------------------------------------------------------\n");
}

/// Machine-readable bench output (DESIGN.md §9): named scalar metrics written
/// as BENCH_<name>.json so scripts/bench_compare.py can diff two runs. All
/// simulated metrics are deterministic for a fixed config/seed, which is what
/// makes a committed baseline meaningful.
class BenchReport {
public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    /// Adds one scalar. `unit` is informational ("ops/s", "ms", "frac");
    /// `higher_is_better` gives bench_compare.py the regression direction.
    void add(const std::string& metric, double value, const std::string& unit,
             bool higher_is_better) {
        metrics_.push_back(Metric{metric, value, unit, higher_is_better});
    }

    /// The standard summary of one experiment: throughput, latency p50/p99,
    /// and gossip redundancy (duplicate fraction), under `<prefix>.`.
    void add_run(const std::string& prefix, const ExperimentResult& result) {
        const auto& w = result.workload;
        add(prefix + ".throughput", w.throughput, "ops/s", true);
        if (!w.latencies.empty()) {
            add(prefix + ".latency_p50_ms", w.latencies.percentile(50), "ms", false);
            add(prefix + ".latency_p99_ms", w.latencies.percentile(99), "ms", false);
        }
        add(prefix + ".redundancy", result.messages.duplicate_fraction(), "frac", false);
    }

    /// Writes BENCH_<name>.json into $GC_BENCH_DIR (default: the working
    /// directory) and announces the path on stdout. Returns the path.
    std::string write() const {
        const char* dir = std::getenv("GC_BENCH_DIR");
        const std::string path =
            (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : std::string())
            + "BENCH_" + name_ + ".json";
        std::ofstream os(path);
        os << to_json();
        os.close();
        std::printf("wrote %s (%zu metrics)\n", path.c_str(), metrics_.size());
        return path;
    }

    std::string to_json() const {
        std::ostringstream o;
        o.precision(17);
        o << "{\n  \"schema\": \"gossipc-bench-v1\",\n";
        o << "  \"bench\": \"" << name_ << "\",\n";
        o << "  \"mode\": \"" << (full_mode() ? "full" : "quick") << "\",\n";
        o << "  \"metrics\": [\n";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            const Metric& m = metrics_[i];
            o << "    {\"name\": \"" << m.name << "\", \"value\": " << m.value
              << ", \"unit\": \"" << m.unit << "\", \"higher_is_better\": "
              << (m.higher_is_better ? "true" : "false") << "}"
              << (i + 1 < metrics_.size() ? "," : "") << "\n";
        }
        o << "  ]\n}\n";
        return o.str();
    }

private:
    struct Metric {
        std::string name;
        double value = 0.0;
        std::string unit;
        bool higher_is_better = true;
    };

    std::string name_;
    std::vector<Metric> metrics_;
};

}  // namespace gossipc::bench
