// Shared infrastructure for the figure/table reproduction benches.
//
// Quick vs full mode: by default the benches run reduced grids that finish
// in minutes; set GC_FULL=1 in the environment for paper-scale grids
// (system sizes, overlay counts, repetition counts).
//
// bench_fig3 writes its sweep to fig3_results.csv; bench_fig4 reuses that
// file when present instead of re-running the sweep.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/semantic_gossip.hpp"

namespace gossipc::bench {

inline bool full_mode() {
    const char* v = std::getenv("GC_FULL");
    return v != nullptr && v[0] == '1';
}

/// Measurement windows scaled to system size (larger systems cost more
/// wall-clock per simulated second).
inline void apply_windows(ExperimentConfig& cfg) {
    if (full_mode()) {
        cfg.warmup = SimTime::seconds(1);
        cfg.measure = SimTime::seconds(5);
        cfg.drain = SimTime::seconds(2);
    } else if (cfg.n >= 100) {
        cfg.warmup = SimTime::seconds(0.5);
        cfg.measure = SimTime::seconds(2);
        cfg.drain = SimTime::seconds(1);
    } else {
        cfg.warmup = SimTime::seconds(0.5);
        cfg.measure = SimTime::seconds(3);
        cfg.drain = SimTime::seconds(1.5);
    }
}

/// Overlay seed per system size, chosen by the paper's Figure 7 method: the
/// overlay whose median RTT from the coordinator is the median among 60
/// random candidates (see bench_fig7_overlay_selection).
inline std::uint64_t median_overlay_seed(int n) {
    switch (n) {
        case 13: return 50;   // median RTT 194 ms
        case 53: return 39;   // median RTT 198.5 ms
        case 105: return 32;  // median RTT 184 ms
        default: return 42 + static_cast<std::uint64_t>(n);
    }
}

inline ExperimentConfig base_config(Setup setup, int n, double rate) {
    ExperimentConfig cfg;
    cfg.setup = setup;
    cfg.n = n;
    cfg.total_rate = rate;
    // One fixed overlay per system size across setups, as in the paper.
    cfg.overlay_seed = median_overlay_seed(n);
    apply_windows(cfg);
    return cfg;
}

/// The paper's system sizes; quick mode drops n=105 from the heaviest
/// sweeps only where noted per bench.
inline std::vector<int> system_sizes() { return {13, 53, 105}; }

struct SweepResult {
    Setup setup;
    int n = 0;
    SweepPoint point;
    ExperimentResult result;
};

inline SweepResult run_point(Setup setup, int n, double rate) {
    ExperimentConfig cfg = base_config(setup, n, rate);
    SweepResult out;
    out.setup = setup;
    out.n = n;
    out.result = run_experiment(cfg);
    out.point = SweepPoint{rate, out.result.workload.throughput,
                           out.result.workload.latencies.mean()};
    return out;
}

inline void print_header(const char* title) {
    std::printf("\n==============================================================\n");
    std::printf("%s\n", title);
    std::printf("mode: %s (set GC_FULL=1 for paper-scale grids)\n",
                full_mode() ? "FULL" : "quick");
    std::printf("==============================================================\n");
}

inline void print_rule() {
    std::printf("--------------------------------------------------------------\n");
}

}  // namespace gossipc::bench
