// Figure 7 — latency of Paxos in the Gossip setup under a low workload in
// many distinct random overlay networks, against the median RTT from the
// coordinator through each overlay; the median overlay (by RTT then
// latency) is the one the core experiments enforce.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    const bool full = full_mode();
    const int n = full ? 105 : 105;
    const int overlays = full ? 100 : 25;
    const double rate = 13.0;  // minimal workload: 1 value/s per client

    print_header("Figure 7: Gossip-setup latency under low workload across random\n"
                 "overlay networks, vs median RTT from the coordinator");
    std::printf("n=%d, %d overlays, %0.f submissions/s\n", n, overlays, rate);

    struct Entry {
        std::uint64_t seed;
        double median_rtt_ms;
        double latency_ms;
    };
    std::vector<Entry> entries;
    for (int i = 0; i < overlays; ++i) {
        const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(i);
        ExperimentConfig cfg = base_config(Setup::Gossip, n, rate);
        cfg.overlay = make_connected_overlay(n, seed);
        cfg.measure = SimTime::seconds(2);
        const auto rtt = median_rtt_from_coordinator(*cfg.overlay, LatencyModel::aws());
        const auto r = run_experiment(cfg);
        entries.push_back(Entry{seed, rtt.as_millis(), r.workload.latencies.mean()});
    }

    // Total order by (median RTT, latency); the median entry is selected.
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
        if (a.median_rtt_ms != b.median_rtt_ms) return a.median_rtt_ms < b.median_rtt_ms;
        return a.latency_ms < b.latency_ms;
    });
    const Entry& selected = entries[entries.size() / 2];

    std::printf("\n%12s %16s %16s\n", "overlay", "median RTT(ms)", "avg latency(ms)");
    for (const auto& e : entries) {
        std::printf("%12llu %16.1f %16.1f%s\n", static_cast<unsigned long long>(e.seed),
                    e.median_rtt_ms, e.latency_ms,
                    e.seed == selected.seed ? "  <= selected (median)" : "");
    }

    const auto [min_it, max_it] =
        std::minmax_element(entries.begin(), entries.end(),
                            [](const Entry& a, const Entry& b) {
                                return a.latency_ms < b.latency_ms;
                            });
    std::printf("\nLatency range across overlays: %.1f - %.1f ms (%.0f%% spread)\n",
                min_it->latency_ms, max_it->latency_ms,
                100.0 * (max_it->latency_ms - min_it->latency_ms) / min_it->latency_ms);
    BenchReport report("fig7");
    report.add("selected_overlay_seed", static_cast<double>(selected.seed), "seed", false);
    report.add("selected_median_rtt_ms", selected.median_rtt_ms, "ms", false);
    report.add("selected_latency_ms", selected.latency_ms, "ms", false);
    report.add("latency_spread_pct",
               100.0 * (max_it->latency_ms - min_it->latency_ms) / min_it->latency_ms,
               "pct", false);
    report.write();
    std::printf("Selected overlay seed %llu: median RTT %.1f ms, latency %.1f ms.\n",
                static_cast<unsigned long long>(selected.seed), selected.median_rtt_ms,
                selected.latency_ms);
    std::printf("Paper reference: latency correlates with the overlay's median RTT from\n"
                "the coordinator, which 'ultimately dictates the latency of a Paxos\n"
                "instance'; the median overlay is enforced in the core experiments.\n");
    return 0;
}
