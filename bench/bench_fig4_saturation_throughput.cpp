// Figure 4 — normalized throughput at the saturation point for the three
// setups and the three system sizes (absolute throughput printed in the
// cells, as in the paper's bars).
//
// Reuses fig3_results.csv when bench_fig3 ran first; otherwise runs a
// reduced sweep of its own.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace gossipc::bench {
namespace {

struct Point {
    double rate = 0, throughput = 0, latency = 0;
};

using SweepMap = std::map<std::pair<std::string, int>, std::vector<Point>>;

bool load_csv(SweepMap& out) {
    std::ifstream csv("fig3_results.csv");
    if (!csv) return false;
    std::string line;
    std::getline(csv, line);  // header
    while (std::getline(csv, line)) {
        std::istringstream ss(line);
        std::string setup, field;
        std::getline(ss, setup, ',');
        int n = 0;
        Point p;
        std::getline(ss, field, ',');
        n = std::stoi(field);
        std::getline(ss, field, ',');
        p.rate = std::stod(field);
        std::getline(ss, field, ',');
        p.throughput = std::stod(field);
        std::getline(ss, field, ',');
        p.latency = std::stod(field);
        out[{setup, n}].push_back(p);
    }
    return !out.empty();
}

void run_own_sweep(SweepMap& out) {
    const std::map<std::pair<int, int>, std::vector<double>> grids = {
        {{0, 13}, {1300, 2600, 3900, 5200, 6500}},   {{1, 13}, {650, 1300, 1950, 2600, 3250}},
        {{2, 13}, {650, 1300, 2600, 3250, 3900}},    {{0, 53}, {325, 650, 975, 1300, 1625}},
        {{1, 53}, {104, 208, 325, 429, 520}},        {{2, 53}, {208, 416, 624, 819, 975}},
        {{0, 105}, {156, 312, 520, 624, 832}},       {{1, 105}, {52, 104, 156, 208}},
        {{2, 105}, {104, 208, 312, 416, 520}},
    };
    for (const auto& [key, rates] : grids) {
        const auto setup = static_cast<Setup>(key.first);
        for (const double rate : rates) {
            const auto r = run_point(setup, key.second, rate);
            out[{setup_name(setup), key.second}].push_back(
                Point{rate, r.point.throughput, r.point.latency_ms});
        }
    }
}

}  // namespace
}  // namespace gossipc::bench

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    print_header("Figure 4: normalized throughput at the saturation point");

    SweepMap sweeps;
    if (load_csv(sweeps)) {
        std::printf("(reusing fig3_results.csv)\n");
    } else {
        std::printf("(fig3_results.csv not found; running a reduced sweep)\n");
        run_own_sweep(sweeps);
    }

    std::map<std::pair<std::string, int>, double> sat;
    std::map<std::pair<std::string, int>, bool> saturated;
    for (const auto& [key, points] : sweeps) {
        std::vector<SweepPoint> sweep;
        for (const auto& p : points) sweep.push_back({p.rate, p.throughput, p.latency});
        const SaturationResult knee = find_saturation(sweep);
        sat[key] = points[knee.index].throughput;
        saturated[key] = knee.saturated;
        if (!knee.saturated) {
            std::fprintf(stderr,
                         "warning: %s n=%d sweep never saturated (throughput still "
                         "rising at the top of the measured range); reported value "
                         "is a lower bound, not a saturation point\n",
                         key.first.c_str(), key.second);
        }
    }

    // Normalize within each system size by the Baseline saturation.
    BenchReport report("fig4");
    std::printf("\n%8s %14s %18s %22s\n", "n", "Baseline", "Gossip", "SemanticGossip");
    for (const int n : system_sizes()) {
        const double base = sat[{"Baseline", n}];
        const double gossip = sat[{"Gossip", n}];
        const double semantic = sat[{"SemanticGossip", n}];
        if (base <= 0) continue;
        std::printf("%8d %8.0f (1.00) %10.0f (%.2f) %14.0f (%.2f)\n", n, base, gossip,
                    gossip / base, semantic, semantic / base);
        std::string key = "n";  // (not "n" + to_string: GCC 12 -Wrestrict FP)
        key += std::to_string(n);
        report.add(key + ".baseline_sat_throughput", base, "ops/s", true);
        report.add(key + ".gossip_normalized", gossip / base, "ratio", true);
        report.add(key + ".semantic_normalized", semantic / base, "ratio", true);
        // 1.0 when every setup's sweep showed a real knee at this size; 0.0
        // marks cells whose "saturation" is only the edge of the sweep.
        const bool all_saturated = saturated[{"Baseline", n}] && saturated[{"Gossip", n}] &&
                                   saturated[{"SemanticGossip", n}];
        report.add(key + ".sweep_saturated", all_saturated ? 1.0 : 0.0, "bool", true);
    }
    report.write();
    std::printf("\nPaper reference (normalized to Baseline): Gossip 0.53/0.26/0.41,\n"
                "Semantic Gossip above Gossip by 1.14x/1.79x/2.4x for n=13/53/105.\n");
    return 0;
}
