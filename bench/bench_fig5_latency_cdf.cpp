// Figure 5 — latency cumulative distribution functions for the three setups
// at n=105 under the common 104 submissions/s workload (the largest at which
// none of the setups is saturated): CDF deciles, average/stddev, the
// near-constant Gossip-vs-Semantic gap, and the distribution tail.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    print_header("Figure 5: latency distribution, n=105, 104 submissions/s, 1KB values");

    const int n = full_mode() ? 105 : 105;
    const double rate = 104.0;

    struct Run {
        Setup setup;
        ExperimentResult result;
    };
    std::vector<Run> runs;
    for (const Setup setup : {Setup::Baseline, Setup::Gossip, Setup::SemanticGossip}) {
        ExperimentConfig cfg = base_config(setup, n, rate);
        if (!full_mode()) {
            cfg.measure = SimTime::seconds(3);  // enough samples for a CDF
        }
        runs.push_back({setup, run_experiment(cfg)});
    }

    BenchReport report("fig5");
    std::printf("\n%-16s %10s %10s %8s %8s %8s %8s %9s\n", "setup", "avg(ms)", "stddev",
                "p25", "p50", "p75", "p95", "p99.9");
    for (const auto& run : runs) {
        const auto& h = run.result.workload.latencies;
        std::printf("%-16s %10.1f %10.1f %8.1f %8.1f %8.1f %8.1f %9.1f\n",
                    setup_name(run.setup), h.mean(), h.stddev(), h.percentile(25),
                    h.percentile(50), h.percentile(75), h.percentile(95), h.percentile(99.9));
        const std::string key = setup_name(run.setup);
        report.add(key + ".latency_mean_ms", h.mean(), "ms", false);
        report.add(key + ".latency_p50_ms", h.percentile(50), "ms", false);
        report.add(key + ".latency_p999_ms", h.percentile(99.9), "ms", false);
        report.add(key + ".latency_stddev_ms", h.stddev(), "ms", false);
    }

    print_rule();
    std::printf("CDF (latency in ms at each cumulative fraction):\n%8s", "frac");
    for (const auto& run : runs) std::printf(" %16s", setup_name(run.setup));
    std::printf("\n");
    for (int decile = 1; decile <= 10; ++decile) {
        std::printf("%7d%%", decile * 10);
        for (const auto& run : runs) {
            std::printf(" %16.1f", run.result.workload.latencies.percentile(decile * 10.0));
        }
        std::printf("\n");
    }

    print_rule();
    const auto& gossip = runs[1].result.workload.latencies;
    const auto& semantic = runs[2].result.workload.latencies;
    std::printf("Gossip - Semantic gap across percentiles (paper: 13-20ms, 5.0-5.6%%):\n");
    for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 97.0}) {
        const double g = gossip.percentile(p), s = semantic.percentile(p);
        std::printf("  p%-5.0f %7.1f ms vs %7.1f ms  (gap %+6.1f ms, %+5.1f%%)\n", p, g, s,
                    s - g, 100.0 * (s - g) / g);
    }
    std::printf("Average gap: %+.1f%% (paper: -5.4%%); p99.9 gap: %+.1f ms (paper: -140 ms)\n",
                100.0 * (semantic.mean() - gossip.mean()) / gossip.mean(),
                semantic.percentile(99.9) - gossip.percentile(99.9));
    std::printf("Std-dev ordering (paper: Baseline > Gossip > Semantic): %.1f / %.1f / %.1f\n",
                runs[0].result.workload.latencies.stddev(), gossip.stddev(),
                semantic.stddev());
    report.add("gossip_semantic_mean_gap_pct",
               100.0 * (semantic.mean() - gossip.mean()) / gossip.mean(), "pct", false);
    report.write();
    return 0;
}
