// Figure 3 — overall performance of Baseline, Gossip, and Semantic Gossip
// with varying system sizes (n = 13, 53, 105) and 1KB values: latency vs
// throughput curves under increasing client workloads, with the saturation
// point (max throughput/latency "power") highlighted.
//
// Also reproduces the Section 4.3 message-redundancy analysis: messages
// received by a regular gossip process vs the Baseline coordinator, the
// duplicate share, and Semantic Gossip's reduction in messages received and
// delivered.
//
// Writes fig3_results.csv for bench_fig4 to reuse.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "bench_common.hpp"

namespace gossipc::bench {
namespace {

// Rough saturation throughputs from calibration probes; the grids span
// each setup's own knee as in the paper ("increasing client workloads until
// the protocol is saturated").
double sat_estimate(Setup setup, int n) {
    switch (setup) {
        case Setup::Baseline: return n == 13 ? 6000 : n == 53 ? 1300 : 670;
        case Setup::Gossip: return n == 13 ? 2400 : n == 53 ? 430 : 170;
        case Setup::SemanticGossip: return n == 13 ? 2800 : n == 53 ? 750 : 420;
    }
    return 100;
}

std::vector<double> rate_grid(Setup setup, int n) {
    const double sat = sat_estimate(setup, n);
    std::vector<double> fractions{0.1, 0.4, 0.75, 1.0, 1.2};
    if (full_mode()) fractions = {0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0, 1.1, 1.25};
    std::vector<double> rates;
    for (const double f : fractions) {
        // Round to a multiple of 13 so all clients share one integral rate.
        rates.push_back(std::max(13.0, std::round(sat * f / 13.0) * 13.0));
    }
    rates.erase(std::unique(rates.begin(), rates.end()), rates.end());
    return rates;
}

struct Row {
    double rate, throughput, latency;
    ExperimentResult result;
};

}  // namespace
}  // namespace gossipc::bench

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    print_header(
        "Figure 3: Paxos performance under Baseline / Gossip / Semantic Gossip\n"
        "(1KB values, 13 open-loop clients; * marks the saturation point)");

    BenchReport report("fig3");
    std::ofstream csv("fig3_results.csv");
    csv << "setup,n,rate,throughput,latency_ms,arrivals,arrivals_per_proc,"
           "coordinator_arrivals,dup_frac,delivered,filtered,merged\n";

    // (setup, n) -> rows, kept for the redundancy analysis below.
    std::map<std::pair<int, int>, std::vector<Row>> all;

    for (const int n : system_sizes()) {
        for (const Setup setup : {Setup::Baseline, Setup::Gossip, Setup::SemanticGossip}) {
            std::printf("\n--- n=%d, %s ---\n", n, setup_name(setup));
            std::printf("%12s %14s %14s %10s\n", "offered/s", "throughput/s", "latency(ms)",
                        "not-ord");
            std::vector<Row> rows;
            std::vector<SweepPoint> sweep;
            for (const double rate : rate_grid(setup, n)) {
                const auto r = run_point(setup, n, rate);
                rows.push_back(Row{rate, r.point.throughput, r.point.latency_ms, r.result});
                sweep.push_back(r.point);
                csv << setup_name(setup) << ',' << n << ',' << rate << ','
                    << r.point.throughput << ',' << r.point.latency_ms << ','
                    << r.result.messages.net_arrivals << ','
                    << r.result.messages.arrivals_per_process(n) << ','
                    << r.result.messages.coordinator_arrivals << ','
                    << r.result.messages.duplicate_fraction() << ','
                    << r.result.messages.gossip_delivered << ','
                    << r.result.semantic.filtered_phase2b << ','
                    << r.result.semantic.messages_merged << "\n";
            }
            const std::size_t knee = saturation_index(sweep);
            const std::string key =
                std::string(setup_name(setup)) + ".n" + std::to_string(n);
            report.add(key + ".saturation_throughput", rows[knee].throughput, "ops/s", true);
            report.add(key + ".knee_latency_ms", rows[knee].latency, "ms", false);
            report.add(key + ".knee_dup_frac",
                       rows[knee].result.messages.duplicate_fraction(), "frac", false);
            for (std::size_t i = 0; i < rows.size(); ++i) {
                std::printf("%12.0f %14.1f %14.1f %10llu%s\n", rows[i].rate,
                            rows[i].throughput, rows[i].latency,
                            static_cast<unsigned long long>(rows[i].result.workload.not_ordered),
                            i == knee ? "  *saturation" : "");
            }
            all[{static_cast<int>(setup), n}] = std::move(rows);
        }
    }

    // --- Section 4.3 message-redundancy analysis ---
    print_rule();
    std::printf("Section 4.3 redundancy analysis (at the Gossip knee workload)\n");
    std::printf("%6s %22s %22s %8s %12s\n", "n", "gossip msgs/proc", "baseline coord msgs",
                "factor", "dup share");
    for (const int n : system_sizes()) {
        const auto& gossip_rows = all[{static_cast<int>(Setup::Gossip), n}];
        std::vector<SweepPoint> sweep;
        for (const auto& r : gossip_rows) sweep.push_back({r.rate, r.throughput, r.latency});
        const auto& knee_row = gossip_rows[saturation_index(sweep)];
        // Baseline run closest in offered rate to the gossip knee.
        const auto& baseline_rows = all[{static_cast<int>(Setup::Baseline), n}];
        const Row* closest = &baseline_rows.front();
        for (const auto& r : baseline_rows) {
            if (std::abs(r.rate - knee_row.rate) < std::abs(closest->rate - knee_row.rate)) {
                closest = &r;
            }
        }
        const double per_proc = knee_row.result.messages.arrivals_per_process(n);
        // Normalize by the window ratio implicitly: same windows everywhere.
        const double coord = static_cast<double>(closest->result.messages.coordinator_arrivals) *
                             (knee_row.rate / std::max(closest->rate, 1.0));
        std::printf("%6d %22.0f %22.0f %8.1fx %11.0f%%\n", n, per_proc, coord,
                    per_proc / std::max(coord, 1.0),
                    100.0 * knee_row.result.messages.duplicate_fraction());
    }

    print_rule();
    std::printf("Semantic Gossip message reduction (at the Gossip knee workload)\n");
    std::printf("%6s %16s %16s %12s %12s %12s\n", "n", "gossip recv", "semantic recv",
                "recv delta", "dlvr delta", "sem dup");
    for (const int n : system_sizes()) {
        const auto& gossip_rows = all[{static_cast<int>(Setup::Gossip), n}];
        std::vector<SweepPoint> sweep;
        for (const auto& r : gossip_rows) sweep.push_back({r.rate, r.throughput, r.latency});
        const auto& gk = gossip_rows[saturation_index(sweep)];
        const auto& sem_rows = all[{static_cast<int>(Setup::SemanticGossip), n}];
        const Row* sem = &sem_rows.front();
        for (const auto& r : sem_rows) {
            if (std::abs(r.rate - gk.rate) < std::abs(sem->rate - gk.rate)) sem = &r;
        }
        const double scale = gk.rate / std::max(sem->rate, 1.0);
        const double g_recv = static_cast<double>(gk.result.messages.net_arrivals);
        const double s_recv = static_cast<double>(sem->result.messages.net_arrivals) * scale;
        const double g_dlvr = static_cast<double>(gk.result.messages.gossip_delivered);
        const double s_dlvr = static_cast<double>(sem->result.messages.gossip_delivered) * scale;
        std::printf("%6d %16.0f %16.0f %+11.0f%% %+11.0f%% %11.0f%%\n", n, g_recv, s_recv,
                    100.0 * (s_recv - g_recv) / g_recv, 100.0 * (s_dlvr - g_dlvr) / g_dlvr,
                    100.0 * sem->result.messages.duplicate_fraction());
    }

    std::printf("\nPaper reference: gossip latency overhead 25-52%% over Baseline;\n"
                "saturation throughput 47/74/59%% lower (n=13/53/105); redundancy\n"
                "2x/5x/8x with 49/80/87%% duplicates; Semantic Gossip: -58%% received,\n"
                "-16%% delivered, duplicates 82%%, saturation up to 2.4x Gossip's.\n");
    std::printf("Wrote fig3_results.csv (consumed by bench_fig4).\n");
    report.write();
    return 0;
}
