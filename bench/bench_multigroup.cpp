// Multi-group sharded consensus (DESIGN.md §15): aggregate capacity and
// latency as N independent groups multiplex one deployment, swept over
// --groups {1, 2, 4, 8} × coordinator value batching {off, 8}.
//
// Lanes:
//   fixed.g<G>.b<B>.*  SemanticGossip n=13 at a fixed sub-knee aggregate
//                      rate: the groups × batching grid over the shared
//                      gossip substrate. Latency grows mildly with G (each
//                      group's traffic competes for the same substrate) and
//                      cross-group aggregation (X1) must engage whenever
//                      G > 1 — its merge counter is reported per lane.
//   scale.g<G>.*       Baseline n=13 (full mesh once G > 1), batch_size=8,
//                      each group count swept to its saturation knee. This
//                      is the headline scaling lane: in the star/mesh
//                      setups the coordinator's O(n) per-instance fan-out
//                      is the bottleneck, and rank placement (DESIGN.md
//                      §15) puts the G hubs on G different processes, so
//                      aggregate decided-values/sec scales near-linearly
//                      until replica-side work binds.
//
// Why the scaling lane is Baseline and not Gossip: gossip dissemination
// already spreads per-instance work across every process (each node relays
// and learns every group's traffic), so at n=13 the per-node substrate work
// — not the coordinator — is what saturates, and sharding the coordinator
// role moves aggregate capacity by ~1.4x at best. The fixed lanes document
// that honestly; the scale lanes isolate the effect the subsystem is
// designed for.
//
// The scale sweeps use shortened measurement windows (the knee rates are
// tens of thousands of values/sec — full windows would dominate bench
// wall-clock without changing the deterministic knee).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace gossipc::bench {
namespace {

ExperimentConfig lane_config(Setup setup, int groups, double rate,
                             std::uint32_t batch_size) {
    ExperimentConfig cfg = base_config(setup, 13, rate);
    cfg.groups = groups;
    cfg.batch_size = batch_size;
    return cfg;
}

struct Lane {
    double rate = 0;
    ExperimentResult result;
};

std::vector<Lane> run_sweep(int groups, const std::vector<double>& rates) {
    std::vector<Lane> lanes;
    lanes.reserve(rates.size());
    for (const double rate : rates) {
        Lane lane;
        lane.rate = rate;
        ExperimentConfig cfg = lane_config(Setup::Baseline, groups, rate, 8);
        cfg.warmup = SimTime::seconds(0.5);
        cfg.measure = SimTime::seconds(1.5);
        cfg.drain = SimTime::seconds(1);
        lane.result = run_experiment(cfg);
        std::printf("  groups=%d rate=%7.0f  ->  tput %8.1f ops/s  p50 %6.1f ms  "
                    "p99 %6.1f ms\n",
                    groups, rate, lane.result.workload.throughput,
                    lane.result.workload.latencies.percentile(50),
                    lane.result.workload.latencies.percentile(99));
        lanes.push_back(std::move(lane));
    }
    return lanes;
}

SaturationResult knee_of(const std::vector<Lane>& lanes) {
    std::vector<SweepPoint> sweep;
    sweep.reserve(lanes.size());
    for (const Lane& l : lanes) {
        sweep.push_back({l.rate, l.result.workload.throughput,
                         l.result.workload.latencies.mean()});
    }
    return find_saturation(sweep);
}

}  // namespace
}  // namespace gossipc::bench

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;
    std::setvbuf(stdout, nullptr, _IOLBF, 0);  // progress visible when piped

    print_header("Multi-group sharding: groups {1,2,4,8} x batching {off,8}");
    BenchReport report("multigroup");
    const std::vector<int> group_counts = {1, 2, 4, 8};

    // --- Fixed-load grid over the shared gossip substrate. ---
    // 832 values/s aggregate sits well below every lane's knee, so the grid
    // compares latency and substrate redundancy at equal delivered load.
    const double fixed_rate = 832;
    std::printf("\nfixed-load grid (SemanticGossip n=13, %d values/s):\n",
                static_cast<int>(fixed_rate));
    for (const int g : group_counts) {
        for (const std::uint32_t batch : {1u, 8u}) {
            const auto result = run_experiment(
                lane_config(Setup::SemanticGossip, g, fixed_rate, batch));
            const std::string prefix =
                "fixed.g" + std::to_string(g) + ".b" + std::to_string(batch);
            report.add_run(prefix, result);
            if (g > 1) {
                // X1 packing must engage whenever several groups share the
                // substrate; a zero here means the rule stopped firing.
                report.add(prefix + ".cross_group_merged",
                           static_cast<double>(result.semantic.cross_group_merged),
                           "count", true);
            }
            std::printf("  groups=%d batch=%u  ->  tput %7.1f ops/s  p50 %6.1f ms  "
                        "cross-group merged %llu\n",
                        g, batch, result.workload.throughput,
                        result.workload.latencies.percentile(50),
                        static_cast<unsigned long long>(
                            result.semantic.cross_group_merged));
        }
    }

    // --- Scaling lanes: per-group-count saturation sweep (Baseline). ---
    // Grids bracket each expected knee; the top rates are deliberately not
    // deep into overload (overloaded runs cost the most wall-clock). A
    // sweep that is still rising at its top rate reports sweep_saturated=0
    // and its sat_throughput is a lower bound (find_saturation contract).
    const std::vector<std::vector<double>> grids = {
        {12000, 17000, 22000},  // groups=1: knee ~17k
        {24000, 34000, 44000},  // groups=2
        {44000, 60000, 76000},  // groups=4
        {72000, 88000},         // groups=8: near-linear until replica bind
    };
    double sat_g1 = 0;
    std::printf("\nscaling sweep (Baseline n=13, batch_size=8):\n");
    for (std::size_t i = 0; i < group_counts.size(); ++i) {
        const int g = group_counts[i];
        const std::vector<Lane> lanes = run_sweep(g, grids[i]);
        const SaturationResult knee = knee_of(lanes);
        const Lane& k = lanes[knee.index];
        const std::string prefix = "scale.g" + std::to_string(g);
        report.add(prefix + ".sat_throughput", k.result.workload.throughput,
                   "ops/s", true);
        report.add(prefix + ".sat_latency_p50_ms",
                   k.result.workload.latencies.percentile(50), "ms", false);
        report.add(prefix + ".sweep_saturated", knee.saturated ? 1.0 : 0.0,
                   "bool", true);
        if (!knee.saturated) {
            std::fprintf(stderr,
                         "warning: scale.g%d sweep never saturated; "
                         "sat_throughput is a lower bound\n",
                         g);
        }
        if (g == 1) {
            sat_g1 = k.result.workload.throughput;
        } else if (sat_g1 > 0) {
            report.add(prefix + ".scaleup",
                       k.result.workload.throughput / sat_g1, "ratio", true);
        }
        std::printf("  groups=%d sat %8.1f ops/s%s\n", g,
                    k.result.workload.throughput,
                    knee.saturated ? "" : " (lower bound)");
    }

    report.write();
    return 0;
}
