// Figure 8 — Gossip vs Semantic Gossip latency across many distinct random
// overlay networks, at a workload that saturates the Gossip setup: the
// semantic techniques' improvement must hold independently of the overlay
// choice (paper: 11-39% lower latency, 23% on average).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    const bool full = full_mode();
    const int n = full ? 105 : 53;
    const int overlays = full ? 100 : 12;
    // A workload at which the Gossip setup is saturated but Semantic Gossip
    // is not (from the Figure 3 calibration).
    const double rate = full ? 169.0 : 429.0;

    print_header("Figure 8: Gossip vs Semantic Gossip across random overlays at a\n"
                 "Gossip-saturating workload");
    std::printf("n=%d, %d overlays, %.0f submissions/s\n", n, overlays, rate);

    struct Entry {
        double median_rtt_ms;
        double gossip_ms;
        double semantic_ms;
    };
    std::vector<Entry> entries;
    for (int i = 0; i < overlays; ++i) {
        const std::uint64_t seed = 8000 + static_cast<std::uint64_t>(i);
        const Graph overlay = make_connected_overlay(n, seed);
        const double rtt =
            median_rtt_from_coordinator(overlay, LatencyModel::aws()).as_millis();
        double lat[2] = {0, 0};
        int idx = 0;
        for (const Setup setup : {Setup::Gossip, Setup::SemanticGossip}) {
            ExperimentConfig cfg = base_config(setup, n, rate);
            cfg.overlay = overlay;
            cfg.measure = SimTime::seconds(2);
            lat[idx++] = run_experiment(cfg).workload.latencies.mean();
        }
        entries.push_back(Entry{rtt, lat[0], lat[1]});
    }

    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
        return a.median_rtt_ms < b.median_rtt_ms;
    });

    std::printf("\n%16s %14s %16s %14s\n", "median RTT(ms)", "Gossip(ms)", "Semantic(ms)",
                "improvement");
    double min_impr = 1e9, max_impr = -1e9, sum_impr = 0;
    for (const auto& e : entries) {
        const double impr = 100.0 * (e.gossip_ms - e.semantic_ms) / e.gossip_ms;
        min_impr = std::min(min_impr, impr);
        max_impr = std::max(max_impr, impr);
        sum_impr += impr;
        std::printf("%16.1f %14.1f %16.1f %12.1f%%\n", e.median_rtt_ms, e.gossip_ms,
                    e.semantic_ms, impr);
    }
    std::printf("\nSemantic Gossip improves latency by %.1f%% to %.1f%% (avg %.1f%%)\n",
                min_impr, max_impr, sum_impr / static_cast<double>(entries.size()));
    BenchReport report("fig8");
    report.add("improvement_min_pct", min_impr, "pct", true);
    report.add("improvement_max_pct", max_impr, "pct", true);
    report.add("improvement_avg_pct", sum_impr / static_cast<double>(entries.size()),
               "pct", true);
    report.write();
    std::printf("Paper reference: improvement 11%% to 39%% across 100 overlays, 23%% on\n"
                "average -- the gain is not an artifact of the selected overlay.\n");
    return 0;
}
