// Table 1 — WAN latencies between the coordinator's region (North Virginia)
// and the other twelve regions: configured one-way model values, and the
// same quantity measured end-to-end through the simulator (ping probes),
// which validates the substrate against the paper's table.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int main() {
    using namespace gossipc;
    using namespace gossipc::bench;

    print_header("Table 1: WAN latencies, North Virginia <-> other regions");

    // Measure: one node per region (n=14 puts process 1..13 round-robin in
    // regions 0..12; process 0 is the NV coordinator), jitter disabled.
    Simulator sim;
    Network::Params np;
    np.jitter_frac = 0.0;
    Network net(sim, LatencyModel::aws(), 14, np);

    std::printf("\n%-14s %14s %16s\n", "Region", "model (ms)", "measured (ms)");
    double measured[14] = {};
    for (ProcessId p = 2; p <= 13; ++p) {  // process 1 is NV itself
        net.allow_link(0, p);
        net.node(p).set_receive_handler(
            [&measured, p](const NetMessage&, CpuContext& ctx) {
                measured[p] = ctx.now().as_millis();
            });
        // Zero-size probe so serialization and per-byte costs vanish.
        class Probe final : public MessageBody {
        public:
            std::uint32_t wire_size() const override { return 0; }
            std::string describe() const override { return "probe"; }
        };
        net.transmit(NetMessage{0, p, std::make_shared<Probe>()}, SimTime::zero());
    }
    sim.run_until_idle();

    double max_abs_error_ms = 0;
    for (ProcessId p = 2; p <= 13; ++p) {
        const Region r = region_of_process(p, 14);
        const double model = LatencyModel::aws().one_way(Region::NorthVirginia, r).as_millis();
        const double recv_cost_ms = net.node(p).params().recv_cost.as_millis();
        const double delivered = measured[p] - recv_cost_ms;
        max_abs_error_ms = std::max(max_abs_error_ms, std::abs(delivered - model));
        std::printf("%-14s %14.0f %16.2f\n", std::string(region_name(r)).c_str(), model,
                    delivered);
    }
    BenchReport report("table1");
    report.add("max_abs_error_ms", max_abs_error_ms, "ms", false);
    report.write();

    std::printf("\nPaper Table 1 (ms): Canada 7, N.California 30, Oregon 39, London 38,\n"
                "Ireland 33, Frankfurt 44, S.Paulo 58, Tokyo 73, Mumbai 93, Sydney 98,\n"
                "Seoul 87, Singapore 105 -- the model reproduces the row verbatim.\n");
    return 0;
}
