// Fault-injection demo (Section 4.5): Paxos over gossip keeps ordering
// values while every process randomly drops a sizeable fraction of received
// messages — gossip's redundancy masks the loss without any retransmission.
// Then the loss is pushed past what redundancy can absorb, and the
// timeout-triggered repair procedures are shown recovering everything.
#include <cstdio>

#include "core/semantic_gossip.hpp"

namespace {

gossipc::ExperimentResult run_with(double loss, bool timeouts) {
    using namespace gossipc;
    ExperimentConfig cfg;
    cfg.setup = Setup::SemanticGossip;
    cfg.n = 53;
    cfg.total_rate = 52.0;
    cfg.loss_rate = loss;
    cfg.timeouts_enabled = timeouts;
    cfg.warmup = SimTime::seconds(0.5);
    cfg.measure = SimTime::seconds(3);
    cfg.drain = SimTime::seconds(timeouts ? 8 : 3);
    return run_experiment(cfg);
}

void report(const char* label, const gossipc::ExperimentResult& r) {
    std::printf("%-34s dropped %8llu msgs | ordered %4llu/%-4llu | avg %7.1f ms\n", label,
                static_cast<unsigned long long>(r.messages.net_loss_drops),
                static_cast<unsigned long long>(r.workload.submitted_in_window -
                                                r.workload.not_ordered),
                static_cast<unsigned long long>(r.workload.submitted_in_window),
                r.workload.latencies.mean());
}

}  // namespace

int main() {
    std::printf("Reliability under injected message loss (n=53, Semantic Gossip,\n"
                "52 submissions/s). First without any timeout-triggered repair,\n"
                "then with repair enabled.\n\n");

    std::printf("--- repair disabled (pure gossip redundancy) ---\n");
    for (const double loss : {0.0, 0.05, 0.10, 0.20}) {
        char label[64];
        std::snprintf(label, sizeof label, "loss %2.0f%%:", 100 * loss);
        report(label, run_with(loss, false));
    }

    std::printf("\n--- 30%% loss: redundancy alone starts to crack ---\n");
    const auto broken = run_with(0.30, false);
    report("loss 30%, repair disabled:", broken);

    const auto repaired = run_with(0.30, true);
    report("loss 30%, repair enabled:", repaired);

    std::printf("\nGossip masks moderate loss by itself (the paper found full ordering\n"
                "below 10%% loss at n=105); past that, Paxos' timeout-triggered\n"
                "retransmissions and learner gap repair recover the rest.\n");
    return repaired.workload.not_ordered == 0 ? 0 : 1;
}
