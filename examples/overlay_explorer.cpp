// Overlay exploration: generate random k-out overlays of various sizes and
// inspect the structural properties the paper's evaluation relies on —
// expected degree ~log2(n), connectivity, hop diameter, and the median RTT
// from the coordinator that "ultimately dictates the latency of a Paxos
// instance" (Section 4.6).
#include <cstdio>
#include <cstdlib>

#include "core/semantic_gossip.hpp"

int main(int argc, char** argv) {
    using namespace gossipc;

    const int samples = argc > 1 ? std::atoi(argv[1]) : 5;

    std::printf("Random k-out overlays (expected degree ~ log2 n), %d samples per size\n\n",
                samples);
    std::printf("%6s %4s %12s %10s %10s %16s %14s\n", "n", "k", "avg degree", "connected",
                "diameter", "median RTT (ms)", "max RTT (ms)");

    for (const int n : {13, 27, 53, 105, 211}) {
        for (int s = 0; s < samples; ++s) {
            const std::uint64_t seed = 100 * static_cast<std::uint64_t>(n) +
                                       static_cast<std::uint64_t>(s);
            const Graph g = make_connected_overlay(n, seed);
            const auto stats = analyze_overlay(g);
            const auto rtts = rtts_from(g, 0, LatencyModel::aws());
            SimTime max_rtt = SimTime::zero();
            for (std::size_t i = 1; i < rtts.size(); ++i) {
                if (rtts[i] != SimTime::max() && rtts[i] > max_rtt) max_rtt = rtts[i];
            }
            std::printf("%6d %4d %12.2f %10s %10d %16.1f %14.1f\n", n,
                        default_out_connections(n), stats.average_degree,
                        stats.connected ? "yes" : "NO", stats.diameter_hops,
                        median_rtt_from_coordinator(g, LatencyModel::aws()).as_millis(),
                        max_rtt.as_millis());
        }
        std::printf("\n");
    }

    std::printf("All overlays are connected by construction (make_connected_overlay\n"
                "retries seeds); degree tracks log2(n): %.1f for n=105 (paper: ~6.7).\n",
                analyze_overlay(make_connected_overlay(105, 42)).average_degree);
    return 0;
}
