// The paper's motivating scenario: a multi-administrative deployment where
// processes cannot all talk to the coordinator directly (e.g. they sit
// behind firewalls). A Baseline-style star is impossible; Paxos over gossip
// reaches consensus anyway, because gossip only needs a connected overlay.
//
// We hand-build an overlay of three administrative domains connected by two
// gateway links, so most processes are several hops from the coordinator.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/semantic_gossip.hpp"

int main() {
    using namespace gossipc;

    std::printf("Partially connected network: 3 domains x 5 processes, linked only\n"
                "through gateways. The coordinator (process 0) cannot reach most\n"
                "processes directly; consensus runs over Semantic Gossip.\n\n");

    const int n = 15;
    Graph overlay(n);
    // Domain A: processes 0-4 (ring + chord), coordinator inside.
    // Domain B: 5-9. Domain C: 10-14.
    for (int d = 0; d < 3; ++d) {
        const int base = d * 5;
        for (int i = 0; i < 5; ++i) {
            overlay.add_edge(base + i, base + (i + 1) % 5);
        }
        overlay.add_edge(base, base + 2);  // a chord for redundancy
    }
    // Gateways: A4 <-> B5, B9 <-> C10.
    overlay.add_edge(4, 5);
    overlay.add_edge(9, 10);

    const auto stats = analyze_overlay(overlay);
    std::printf("overlay: %d processes, %zu edges, avg degree %.1f, diameter %d hops\n",
                overlay.size(), overlay.edge_count(), stats.average_degree,
                stats.diameter_hops);
    const auto hops = hop_distances(overlay, 0);
    int beyond_one_hop = 0;
    for (const int h : hops) beyond_one_hop += h > 1 ? 1 : 0;
    std::printf("%d of %d processes cannot talk to the coordinator directly\n\n",
                beyond_one_hop, n - 1);

    ExperimentConfig cfg;
    cfg.setup = Setup::SemanticGossip;
    cfg.n = n;
    cfg.overlay = overlay;
    cfg.total_rate = 26.0;
    cfg.warmup = SimTime::seconds(0.5);
    cfg.measure = SimTime::seconds(4);
    cfg.drain = SimTime::seconds(2);

    const auto result = run_experiment(cfg);
    std::printf("consensus over the partially connected graph:\n");
    std::printf("  ordered %llu/%llu submitted values (%.1f decisions/s)\n",
                static_cast<unsigned long long>(result.workload.completed),
                static_cast<unsigned long long>(result.workload.submitted),
                result.workload.throughput);
    std::printf("  avg latency %.1f ms, p99 %.1f ms (multi-hop dissemination)\n",
                result.workload.latencies.mean(), result.workload.latencies.percentile(99));
    std::printf("  median RTT coordinator->processes through the overlay: %.1f ms\n\n",
                result.median_rtt.as_millis());

    // Show that the Baseline setup is structurally impossible here: building
    // a deployment that assumes the coordinator star throws as soon as the
    // coordinator tries to use a link that does not exist.
    std::printf("for contrast, Baseline on the same link set: ");
    Simulator sim;
    Network net(sim, LatencyModel::aws(), n, {});
    for (const auto& [a, b] : overlay.edges()) net.allow_link(a, b);
    DirectTransport transport(net, 0);
    PaxosConfig pc;
    pc.n = n;
    pc.id = 0;
    bool failed = false;
    net.node(0).post([&](CpuContext& ctx) {
        try {
            transport.broadcast(std::make_shared<Phase1aMsg>(0, 1, 1), ctx);
        } catch (const std::logic_error&) {
            failed = true;  // no direct link to a process behind a firewall
        }
    });
    sim.run_until_idle();
    std::printf("%s\n", failed ? "fails immediately (missing direct links), as expected."
                               : "unexpectedly succeeded?!");
    return result.workload.not_ordered == 0 && failed ? 0 : 1;
}
