// Quickstart: run Paxos over Semantic Gossip on the simulated 13-region WAN
// and print throughput, latency, and gossip-layer statistics.
//
// Usage: quickstart [n] [rate] [setup]
//   n     system size (default 13)
//   rate  client submissions/s over all 13 clients (default 50)
//   setup baseline | gossip | semantic (default semantic)
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/semantic_gossip.hpp"

namespace {

[[noreturn]] void die(const char* message) {
    std::fprintf(stderr, "quickstart: %s\nusage: quickstart [n] [rate] [setup]\n", message);
    std::exit(2);
}

// atoi/atof turn junk into 0 silently, which here means "run a degenerate
// zero-process experiment" — parse strictly and reject instead.
double parse_num(const char* what, const char* s) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE) die(what);
    return v;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gossipc;

    ExperimentConfig cfg;
    cfg.setup = Setup::SemanticGossip;
    cfg.n = argc > 1 ? static_cast<int>(parse_num("n must be a number", argv[1])) : 13;
    cfg.total_rate = argc > 2 ? parse_num("rate must be a number", argv[2]) : 50.0;
    if (cfg.n < 3) die("n must be at least 3 (quorum needs a majority)");
    if (cfg.total_rate <= 0) die("rate must be positive");
    if (argc > 3) {
        if (std::strcmp(argv[3], "baseline") == 0) cfg.setup = Setup::Baseline;
        else if (std::strcmp(argv[3], "gossip") == 0) cfg.setup = Setup::Gossip;
        else if (std::strcmp(argv[3], "semantic") == 0) cfg.setup = Setup::SemanticGossip;
        else die("setup must be baseline, gossip, or semantic");
    }
    cfg.warmup = SimTime::seconds(1);
    cfg.measure = SimTime::seconds(4);
    cfg.drain = SimTime::seconds(2);

    std::printf("setup=%s n=%d offered=%.0f/s value=1KB\n", setup_name(cfg.setup), cfg.n,
                cfg.total_rate);

    const ExperimentResult r = run_experiment(cfg);

    std::printf("throughput        : %.1f decisions/s\n", r.workload.throughput);
    std::printf("latency avg/std   : %.1f / %.1f ms\n", r.workload.latencies.mean(),
                r.workload.latencies.stddev());
    std::printf("latency p50/p95/p99: %.1f / %.1f / %.1f ms\n",
                r.workload.latencies.percentile(50), r.workload.latencies.percentile(95),
                r.workload.latencies.percentile(99));
    std::printf("submitted/completed/not-ordered: %llu / %llu / %llu\n",
                static_cast<unsigned long long>(r.workload.submitted),
                static_cast<unsigned long long>(r.workload.completed),
                static_cast<unsigned long long>(r.workload.not_ordered));
    std::printf("net arrivals      : %llu (%.0f per process)\n",
                static_cast<unsigned long long>(r.messages.net_arrivals),
                r.messages.arrivals_per_process(cfg.n));
    std::printf("coordinator recv  : %llu\n",
                static_cast<unsigned long long>(r.messages.coordinator_arrivals));
    if (cfg.setup != Setup::Baseline) {
        std::printf("gossip received   : %llu, duplicates %.1f%%\n",
                    static_cast<unsigned long long>(r.messages.gossip_messages_received),
                    100.0 * r.messages.duplicate_fraction());
        std::printf("delivered to Paxos: %llu\n",
                    static_cast<unsigned long long>(r.messages.gossip_delivered));
        std::printf("overlay           : avg degree %.1f, diameter %d, median RTT %.1f ms\n",
                    r.overlay.average_degree, r.overlay.diameter_hops,
                    r.median_rtt.as_millis());
    }
    if (cfg.setup == Setup::SemanticGossip) {
        std::printf("semantic          : filtered %llu 2b, %llu aggregates (merged %llu)\n",
                    static_cast<unsigned long long>(r.semantic.filtered_phase2b),
                    static_cast<unsigned long long>(r.semantic.aggregates_built),
                    static_cast<unsigned long long>(r.semantic.messages_merged));
    }
    return 0;
}
