// A replicated key-value store across 13 AWS regions, ordered by Paxos over
// Semantic Gossip — the state-machine-replication scenario that motivates
// the paper. Each region's client issues PUT commands; every process applies
// the decided commands in the same order, so all replicas converge to the
// same store state.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/semantic_gossip.hpp"

namespace {

/// A trivially replicated state machine: key -> (value tag, version).
struct KvStore {
    std::map<int, std::pair<gossipc::ValueId, int>> data;
    std::uint64_t applied = 0;

    void apply(gossipc::InstanceId instance, const gossipc::Value& cmd) {
        // Commands are synthetic: the key is derived from the value id.
        const int key = static_cast<int>((cmd.id.client * 31 + cmd.id.seq) % 17);
        auto& entry = data[key];
        entry.first = cmd.id;
        entry.second = static_cast<int>(instance);
        ++applied;
    }

    std::uint64_t digest() const {
        std::uint64_t h = 0;
        for (const auto& [key, entry] : data) {
            h = gossipc::hash_combine(h, static_cast<std::uint64_t>(key));
            h = gossipc::hash_combine(h, static_cast<std::uint64_t>(entry.first.client));
            h = gossipc::hash_combine(h, static_cast<std::uint64_t>(entry.first.seq));
            h = gossipc::hash_combine(h, static_cast<std::uint64_t>(entry.second));
        }
        return h;
    }
};

}  // namespace

int main() {
    using namespace gossipc;

    std::printf("WAN key-value replication: 27 processes (coordinator + 2 per region),\n"
                "13 clients issuing PUTs at 52 commands/s, Paxos over Semantic Gossip.\n\n");

    ExperimentConfig cfg;
    cfg.setup = Setup::SemanticGossip;
    cfg.n = 27;
    cfg.total_rate = 52.0;
    cfg.warmup = SimTime::seconds(0.5);
    cfg.measure = SimTime::seconds(4);
    cfg.drain = SimTime::seconds(2);

    Deployment deployment(cfg);

    // One state machine per process, fed by in-order delivery. The workload
    // already owns the delivery listener of client-hosting processes, so we
    // replicate through the learner log after the run — and through live
    // listeners on the processes without clients.
    std::vector<KvStore> replicas(static_cast<std::size_t>(cfg.n));
    const auto result = deployment.run();

    for (ProcessId id = 0; id < cfg.n; ++id) {
        auto& learner = deployment.process(id).learner();
        for (InstanceId i = 1; i < learner.frontier(); ++i) {
            if (const auto v = learner.decided_value(i)) {
                replicas[static_cast<std::size_t>(id)].apply(i, *v);
            }
        }
    }

    std::printf("ordered %llu commands at %.1f cmd/s, avg latency %.1f ms (p99 %.1f ms)\n",
                static_cast<unsigned long long>(result.workload.completed),
                result.workload.throughput, result.workload.latencies.mean(),
                result.workload.latencies.percentile(99));

    // Convergence check: every replica that applied the full log must have
    // the same store digest.
    const std::uint64_t reference = replicas[0].digest();
    const std::uint64_t reference_count = replicas[0].applied;
    int converged = 0;
    for (const auto& r : replicas) {
        if (r.applied == reference_count && r.digest() == reference) ++converged;
    }
    std::printf("replicas converged: %d/%d (store digest %016llx, %llu commands applied)\n",
                converged, cfg.n, static_cast<unsigned long long>(reference),
                static_cast<unsigned long long>(reference_count));

    std::printf("\nper-region client latency (ms):\n");
    for (const auto& client : deployment.workload().clients()) {
        const Region r = static_cast<Region>(client->id() % kNumRegions);
        std::printf("  %-14s avg %7.1f  p95 %7.1f  (%llu cmds)\n",
                    std::string(region_name(r)).c_str(), client->latencies().mean(),
                    client->latencies().percentile(95),
                    static_cast<unsigned long long>(client->counts().completed));
    }
    return converged == cfg.n ? 0 : 1;
}
