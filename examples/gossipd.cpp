// gossipd — one gossip-consensus node as a real OS process (DESIGN.md §10).
//
// Runs the unmodified protocol stack (PaxosProcess + FailureDetector) over
// the real-socket runtime: the wire codec, the poll reactor, and — behind a
// RealTransport — either the TCP connection manager or the UDP link layer
// (--transport udp: clustered datagrams with reliable-unordered repair for
// flagged control traffic, DESIGN.md §12). An n-node cluster is n of these
// processes; scripts/cluster_local.sh launches one on localhost.
//
// Examples:
//   gossipd --id 0 --cluster 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//           --setup semantic --failover --submit 100 --expect 300
//   gossipd --id 1 --config cluster.txt --decision-log node1.log
//
// Every node writes the decisions it delivers (in instance order, gap-free
// by construction) to --decision-log as "instance client seq" lines; nodes
// of one run must produce identical logs. Exit status is 0 once --expect
// decisions were delivered (or on a clean signal with no --expect), 1 when
// the run ends short of the expectation.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fault/chaos.hpp"
#include "fault/datagram_faults.hpp"
#include "group/shard.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/message.hpp"
#include "paxos/process.hpp"
#include "runtime/chaos_bridge.hpp"
#include "runtime/gated_transport.hpp"
#include "runtime/real_transport.hpp"
#include "runtime/tcp.hpp"
#include "runtime/udp.hpp"
#include "runtime/udp_link.hpp"
#include "semantic/paxos_semantics.hpp"
#include "trace/tracer.hpp"
#include "wire/codec.hpp"

namespace {

using namespace gossipc;
using namespace gossipc::runtime;

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
    if (error) std::fprintf(stderr, "gossipd: %s\n", error);
    std::fprintf(stderr,
        "usage: %s --id <int> (--cluster <h:p,h:p,...> | --config <file>) [options]\n"
        "  --id <int>             this process's index into the cluster list\n"
        "  --cluster <list>       comma-separated host:port, one per process\n"
        "  --config <file>        same, one host:port per line (# comments)\n"
        "  --setup baseline|gossip|semantic   (default semantic)\n"
        "  --groups <int>         independent consensus groups sharing this\n"
        "                         node's gossip substrate (default 1;\n"
        "                         DESIGN.md Sec. 15). With >1 the decision\n"
        "                         log gains a leading group column and\n"
        "                         --expect counts decisions across groups\n"
        "  --transport tcp|udp    socket layer (default tcp); udp clusters\n"
        "                         envelopes into datagrams and retransmits\n"
        "                         only reliable-flagged control traffic\n"
        "  --degree <k>           gossip overlay out-connections (0 = paper default)\n"
        "  --overlay-seed <u64>   overlay construction seed (default 42); must\n"
        "                         match across the cluster (same seed -> same graph)\n"
        "  --seed <u64>           protocol jitter seed (default 1)\n"
        "  --failover             failure detector + coordinator failover\n"
        "  --heartbeat <s>        heartbeat interval (default 0.1)\n"
        "  --suspect-after <s>    suspicion timeout (default 0.45)\n"
        "  --submit <n>           client values submitted by this node (default 0)\n"
        "  --rate <per-s>         this node's submission rate (default 200)\n"
        "  --value-size <bytes>   modelled value size (default 1024)\n"
        "  --expect <n>           exit 0 once this many decisions are delivered\n"
        "  --run-for <s>          hard runtime limit (default 30)\n"
        "  --linger <s>           keep forwarding after --expect is met (default 2)\n"
        "  --decision-log <file>  \"instance client seq\" per delivered decision\n"
        "  --metrics <file>       counter snapshot on shutdown (- = stderr)\n"
        "  --trace <file>         message-lifecycle trace, JSONL\n"
        "  --chaos <profile>      replay a fault schedule against this node:\n"
        "                         light|moderate|heavy|heavy_failover. Every\n"
        "                         node derives the same schedule and applies\n"
        "                         the events that touch it (crash/restart of\n"
        "                         its own stack; with --transport udp also\n"
        "                         loss/dup/reorder/truncation on its outgoing\n"
        "                         links). Implies the chaos window precedes\n"
        "                         --run-for; pair with --failover for the\n"
        "                         heavy_failover profile.\n"
        "  --chaos-seed <u64>     schedule seed (default 1); must match\n"
        "                         across the cluster (same seed -> same\n"
        "                         schedule -> identical fault logs)\n"
        "  --chaos-log <file>     write the injected-fault log on shutdown\n",
        argv0);
    std::exit(2);
}

struct Options {
    ProcessId id = -1;
    std::vector<PeerAddress> cluster;
    RealTransport::Mode mode = RealTransport::Mode::Gossip;
    bool udp = false;
    bool semantic = true;
    int groups = 1;
    int degree = 0;
    std::uint64_t overlay_seed = 42;
    std::uint64_t seed = 1;
    bool failover = false;
    double heartbeat_s = 0.1;
    double suspect_after_s = 0.45;
    long submit = 0;
    double rate = 200.0;
    std::uint32_t value_size = 1024;
    long expect = 0;
    double run_for_s = 30.0;
    double linger_s = 2.0;
    std::string decision_log;
    std::string metrics_path;
    std::string trace_path;
    std::string chaos;  ///< profile name; empty = no chaos
    std::uint64_t chaos_seed = 1;
    std::string chaos_log;
};

ChaosProfile chaos_profile_by_name(const std::string& name, const char* argv0) {
    if (name == "light") return ChaosProfile::light();
    if (name == "moderate") return ChaosProfile::moderate();
    if (name == "heavy") return ChaosProfile::heavy();
    if (name == "heavy_failover") return ChaosProfile::heavy_failover();
    usage(argv0, "bad --chaos (want light|moderate|heavy|heavy_failover)");
}

bool parse_addr(const std::string& spec, PeerAddress& out) {
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
    const long port = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) return false;
    out.host = spec.substr(0, colon);
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

std::vector<PeerAddress> parse_cluster_list(const std::string& list, const char* argv0) {
    std::vector<PeerAddress> cluster;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string spec =
            list.substr(start, comma == std::string::npos ? comma : comma - start);
        PeerAddress addr;
        if (!parse_addr(spec, addr)) usage(argv0, "bad --cluster entry (want host:port)");
        cluster.push_back(std::move(addr));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return cluster;
}

std::vector<PeerAddress> parse_cluster_file(const std::string& path, const char* argv0) {
    std::ifstream in(path);
    if (!in) usage(argv0, "cannot open --config file");
    std::vector<PeerAddress> cluster;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#') continue;
        const std::size_t last = line.find_last_not_of(" \t\r");
        PeerAddress addr;
        if (!parse_addr(line.substr(first, last - first + 1), addr)) {
            usage(argv0, "bad --config line (want host:port)");
        }
        cluster.push_back(std::move(addr));
    }
    return cluster;
}

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--id") {
            opt.id = static_cast<ProcessId>(std::atoi(next()));
        } else if (arg == "--cluster") {
            opt.cluster = parse_cluster_list(next(), argv[0]);
        } else if (arg == "--config") {
            opt.cluster = parse_cluster_file(next(), argv[0]);
        } else if (arg == "--setup") {
            const std::string v = next();
            if (v == "baseline") {
                opt.mode = RealTransport::Mode::Direct;
                opt.semantic = false;
            } else if (v == "gossip") {
                opt.mode = RealTransport::Mode::Gossip;
                opt.semantic = false;
            } else if (v == "semantic") {
                opt.mode = RealTransport::Mode::Gossip;
                opt.semantic = true;
            } else {
                usage(argv[0], "bad --setup (want baseline|gossip|semantic)");
            }
        } else if (arg == "--groups") {
            opt.groups = std::atoi(next());
        } else if (arg == "--transport") {
            const std::string v = next();
            if (v == "tcp") {
                opt.udp = false;
            } else if (v == "udp") {
                opt.udp = true;
            } else {
                usage(argv[0], "bad --transport (want tcp|udp)");
            }
        } else if (arg == "--degree") {
            opt.degree = std::atoi(next());
        } else if (arg == "--overlay-seed") {
            opt.overlay_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--failover") {
            opt.failover = true;
        } else if (arg == "--heartbeat") {
            opt.heartbeat_s = std::atof(next());
        } else if (arg == "--suspect-after") {
            opt.suspect_after_s = std::atof(next());
        } else if (arg == "--submit") {
            opt.submit = std::atol(next());
        } else if (arg == "--rate") {
            opt.rate = std::atof(next());
        } else if (arg == "--value-size") {
            opt.value_size = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--expect") {
            opt.expect = std::atol(next());
        } else if (arg == "--run-for") {
            opt.run_for_s = std::atof(next());
        } else if (arg == "--linger") {
            opt.linger_s = std::atof(next());
        } else if (arg == "--decision-log") {
            opt.decision_log = next();
        } else if (arg == "--metrics") {
            opt.metrics_path = next();
        } else if (arg == "--trace") {
            opt.trace_path = next();
        } else if (arg == "--chaos") {
            opt.chaos = next();
            (void)chaos_profile_by_name(opt.chaos, argv[0]);  // validate now
        } else if (arg == "--chaos-seed") {
            opt.chaos_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--chaos-log") {
            opt.chaos_log = next();
        } else {
            usage(argv[0], ("unknown flag " + arg).c_str());
        }
    }
    const int n = static_cast<int>(opt.cluster.size());
    if (n < 3) usage(argv[0], "need a cluster of at least 3 (--cluster/--config)");
    if (opt.id < 0 || opt.id >= n) usage(argv[0], "--id out of range for the cluster");
    if (opt.groups < 1 || opt.groups > static_cast<int>(wire::kMaxGroupFrontiers)) {
        usage(argv[0], "--groups must be in [1, 1024]");
    }
    if (opt.heartbeat_s <= 0) usage(argv[0], "--heartbeat must be positive");
    if (opt.suspect_after_s <= 0) usage(argv[0], "--suspect-after must be positive");
    if (opt.rate <= 0) usage(argv[0], "--rate must be positive");
    if (opt.submit < 0 || opt.expect < 0) usage(argv[0], "counts must be non-negative");
    if (opt.degree < 0 || opt.degree >= n) usage(argv[0], "--degree out of range");
    if (opt.run_for_s <= 0) usage(argv[0], "--run-for must be positive");
    if (opt.value_size == 0) usage(argv[0], "--value-size must be positive");
    return opt;
}

// Applies the chaos schedule's link-fault lanes at this node's socket
// boundary. Each directed link from->to is enforced exactly once, by the
// sending process, with the same pure (seed, from, to, seq) fate model the
// in-process lossy harness uses — so a datagram lost between two gossipd
// processes on loopback was lost because the schedule said so, not because
// the kernel happened to drop it. The wrapper sits between UdpLink and the
// real UdpChannel; the channel is swapped out across crash/restart (the
// socket is torn down and rebound), so it is held by pointer and delayed
// deliveries check it at fire time.
class ChaosDatagramChannel final : public DatagramChannel {
public:
    ChaosDatagramChannel(Reactor& reactor, ProcessId self, std::uint64_t seed)
        : reactor_(reactor), self_(self), model_(seed) {}

    void set_inner(DatagramChannel* inner) { inner_ = inner; }
    void set_fault(ProcessId to, const fault::DatagramFaultSpec& spec) {
        specs_[to] = spec;
    }
    void clear_fault(ProcessId to) { specs_.erase(to); }

    bool send(ProcessId to, std::span<const std::uint8_t> datagram) override {
        if (inner_ == nullptr) return false;
        const auto it = specs_.find(to);
        if (it == specs_.end() || !it->second.active()) {
            return inner_->send(to, datagram);
        }
        const auto fate = model_.decide(it->second, self_, to, seq_[to]++);
        if (fate.drop) return true;  // consumed by the wire, like real loss
        std::vector<std::uint8_t> bytes(datagram.begin(), datagram.end());
        if (fate.truncated) {
            bytes.resize(static_cast<std::size_t>(
                static_cast<double>(bytes.size()) * fate.keep_frac));
        }
        const SimTime base = it->second.extra_delay;
        if (fate.duplicate) deliver(to, bytes, base + fate.duplicate_delay);
        deliver(to, std::move(bytes), base + fate.delay);
        return true;
    }
    void set_receive_handler(RecvFn fn) override {
        recv_fn_ = std::move(fn);
        if (inner_ != nullptr) inner_->set_receive_handler(recv_fn_);
    }
    std::size_t max_datagram_bytes() const override {
        return inner_ != nullptr ? inner_->max_datagram_bytes() : 0;
    }

private:
    void deliver(ProcessId to, std::vector<std::uint8_t> bytes, SimTime delay) {
        if (delay == SimTime::zero()) {
            inner_->send(to, std::span<const std::uint8_t>(bytes));
            return;
        }
        reactor_.schedule_after(delay, [this, to, bytes = std::move(bytes)] {
            if (inner_ != nullptr) {
                inner_->send(to, std::span<const std::uint8_t>(bytes));
            }
        });
    }

    Reactor& reactor_;
    ProcessId self_;
    fault::DatagramFaultModel model_;
    DatagramChannel* inner_ = nullptr;
    RecvFn recv_fn_;
    std::map<ProcessId, fault::DatagramFaultSpec> specs_;
    std::map<ProcessId, std::uint64_t> seq_;
};

trace::Tracer::PayloadProbe paxos_payload_probe() {
    // Same classification the simulator deployment installs (core/experiment).
    return [](const MessageBody& body) {
        trace::PayloadInfo info;
        if (body.kind() != BodyKind::Paxos) return info;
        const auto& pm = static_cast<const PaxosMessage&>(body);
        info.type = static_cast<std::int16_t>(pm.type());
        info.type_name = paxos_msg_type_name(pm.type());
        info.group = pm.group();
        switch (pm.type()) {
            case PaxosMsgType::Phase2a:
                info.instance = static_cast<const Phase2aMsg&>(pm).instance();
                break;
            case PaxosMsgType::Phase2b:
                info.instance = static_cast<const Phase2bMsg&>(pm).instance();
                break;
            case PaxosMsgType::Phase2bAggregate:
                info.instance = static_cast<const Phase2bAggregateMsg&>(pm).instance();
                break;
            case PaxosMsgType::Decision:
                info.instance = static_cast<const DecisionMsg&>(pm).instance();
                break;
            case PaxosMsgType::LearnRequest:
                info.instance = static_cast<const LearnRequestMsg&>(pm).instance();
                break;
            case PaxosMsgType::GroupBatch:
                // Spans groups by construction: joinable per entry, not per
                // envelope.
                info.group = -1;
                break;
            default:
                break;
        }
        return info;
    };
}

void dump_metrics(std::FILE* out, const Options& opt, const RealTransport* transport,
                  const ConnectionManager* conns, const UdpLink* udp,
                  const group::GroupShard& shard, const PaxosSemantics* semantics,
                  const GatedTransport* gate, const ChaosBridge* bridge) {
    const auto put = [out](const char* key, std::uint64_t v) {
        std::fprintf(out, "%s %llu\n", key, static_cast<unsigned long long>(v));
    };
    std::fprintf(out, "node %d\n", opt.id);
    // Learner and protocol counters are summed across the node's groups; the
    // single-group dump is unchanged. With --groups > 1 each group's learner
    // also gets its own pair of lines for per-shard inspection.
    PaxosProcess::Counters pc;
    std::uint64_t frontier_sum = 0, delivered_sum = 0;
    for (GroupId g = 0; g < shard.num_groups(); ++g) {
        const PaxosProcess& proc = shard.process(g);
        frontier_sum += static_cast<std::uint64_t>(proc.learner().frontier());
        delivered_sum += proc.learner().delivered_count();
        const auto& c = proc.counters();
        pc.values_submitted += c.values_submitted;
        pc.messages_handled += c.messages_handled;
        pc.takeovers += c.takeovers;
        pc.step_downs += c.step_downs;
        if (shard.num_groups() > 1) {
            std::fprintf(out, "learner.g%d.frontier %llu\n", g,
                         static_cast<unsigned long long>(proc.learner().frontier()));
            std::fprintf(out, "learner.g%d.delivered %llu\n", g,
                         static_cast<unsigned long long>(
                             proc.learner().delivered_count()));
        }
    }
    put("learner.frontier", frontier_sum);
    put("learner.delivered", delivered_sum);
    put("paxos.values_submitted", pc.values_submitted);
    put("paxos.messages_handled", pc.messages_handled);
    put("paxos.takeovers", pc.takeovers);
    put("paxos.step_downs", pc.step_downs);
    if (shard.num_groups() > 1) {
        const auto& dc = shard.dispatcher().counters();
        put("group.routed", dc.routed);
        put("group.heartbeats_fanned", dc.heartbeats_fanned);
        put("group.unroutable", dc.unroutable);
    }
    if (transport) {  // null when the run ended with the node crashed
        const auto& tc = transport->counters();
        put("transport.broadcasts", tc.broadcasts);
        put("transport.envelopes_received", tc.envelopes_received);
        put("transport.messages_received", tc.messages_received);
        put("transport.duplicates", tc.duplicates);
        put("transport.delivered", tc.delivered);
        put("transport.filtered", tc.filtered);
        put("transport.aggregated_away", tc.aggregated_away);
        put("transport.envelopes_sent", tc.envelopes_sent);
        put("transport.send_queue_drops", tc.send_queue_drops);
        put("transport.decode_errors", tc.decode_errors);
    }
    if (conns) {
        const auto& cc = conns->counters();
        put("conn.dials", cc.dials);
        put("conn.accepts", cc.accepts);
        put("conn.links_up", cc.links_up);
        put("conn.disconnects", cc.disconnects);
        put("conn.frames_sent", cc.frames_sent);
        put("conn.frames_received", cc.frames_received);
        put("conn.bytes_sent", cc.bytes_sent);
        put("conn.bytes_received", cc.bytes_received);
        put("conn.send_drops_down", cc.send_drops_down);
        put("conn.send_drops_backpressure", cc.send_drops_backpressure);
        put("conn.protocol_errors", cc.protocol_errors);
    }
    if (udp) {
        const auto& uc = udp->counters();
        put("udp.datagrams_sent", uc.datagrams_sent);
        put("udp.datagrams_received", uc.datagrams_received);
        put("udp.bytes_sent", uc.bytes_sent);
        put("udp.bytes_received", uc.bytes_received);
        put("udp.bodies_sent", uc.bodies_sent);
        put("udp.bodies_received", uc.bodies_received);
        put("udp.acks_only_sent", uc.acks_only_sent);
        put("udp.jumbo_datagrams", uc.jumbo_datagrams);
        put("udp.retransmits", uc.retransmits);
        put("udp.fast_retransmits", uc.fast_retransmits);
        put("udp.reliable_acked", uc.reliable_acked);
        put("udp.reliable_dropped", uc.reliable_dropped);
        put("udp.duplicate_datagrams", uc.duplicate_datagrams);
        put("udp.stale_datagrams", uc.stale_datagrams);
        put("udp.duplicate_reliables", uc.duplicate_reliables);
        put("udp.decode_errors", uc.decode_errors);
        put("udp.send_failures", uc.send_failures);
    }
    if (semantics) {
        const auto& ss = semantics->stats();
        put("semantic.filtered_phase2b", ss.filtered_phase2b);
        put("semantic.aggregates_built", ss.aggregates_built);
        put("semantic.messages_merged", ss.messages_merged);
        put("semantic.disaggregations", ss.disaggregations);
        put("semantic.cross_group_batches", ss.cross_group_batches);
        put("semantic.cross_group_merged", ss.cross_group_merged);
    }
    if (bridge) {
        const auto& gc = gate->counters();
        put("gate.dropped_sends", gc.dropped_sends);
        put("gate.dropped_tasks", gc.dropped_tasks);
        put("gate.attaches", gc.attaches);
        const auto& bc = bridge->counters();
        put("chaos.applied", bc.applied);
        put("chaos.skipped", bc.skipped);
        put("chaos.crashes", bc.crashes);
        put("chaos.restarts", bc.restarts);
        put("chaos.wipes", bc.wipes);
        put("chaos.partitions", bc.partitions);
        put("chaos.heals", bc.heals);
        put("chaos.link_faults", bc.link_faults);
        put("chaos.link_fault_ends", bc.link_fault_ends);
        put("chaos.edges_dropped", bc.edges_dropped);
        put("chaos.edges_added", bc.edges_added);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);
    const int n = static_cast<int>(opt.cluster.size());

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    Reactor reactor;

    PaxosConfig pc;
    pc.n = n;
    pc.id = opt.id;
    pc.coordinator = 0;
    pc.seed = opt.seed;
    pc.failover_enabled = opt.failover;
    pc.heartbeat_interval = SimTime::seconds(opt.heartbeat_s);
    pc.suspect_after = SimTime::seconds(opt.suspect_after_s);
    // As in the simulator deployment: semantic filtering drops redundant
    // Phase 2b en route, so explicit heartbeats are always sent there.
    pc.heartbeat_piggyback = !opt.semantic;

    std::unique_ptr<PaxosSemantics> semantics;
    PassThroughHooks pass_through;
    GossipHooks* hooks = &pass_through;
    if (opt.semantic) {
        semantics = std::make_unique<PaxosSemantics>(opt.id, pc.quorum(),
                                                     PaxosSemantics::Options{});
        hooks = semantics.get();
    }

    // Deterministic in (n, degree, seed): every node derives the same
    // overlay and connects to its own neighbors. Kept as a live object
    // because chaos churn mutates it over the run.
    std::unique_ptr<Graph> overlay;
    std::vector<ProcessId> linked_peers;
    if (opt.mode == RealTransport::Mode::Gossip) {
        overlay = std::make_unique<Graph>(
            opt.degree > 0 ? make_random_overlay(n, opt.degree, opt.overlay_seed)
                           : make_connected_overlay(n, opt.overlay_seed));
        linked_peers = overlay->neighbors(opt.id);
    } else {
        for (ProcessId p = 0; p < n; ++p) {
            if (p != opt.id) linked_peers.push_back(p);
        }
    }

    // The socket stack is short-lived when chaos is on (a crash tears it
    // down, a restart rebinds and rebuilds it); PaxosProcess binds to the
    // stable GatedTransport facade for its whole lifetime. Without chaos the
    // facade stays attached forever and is pure pass-through.
    const PeerAddress& self_addr = opt.cluster[static_cast<std::size_t>(opt.id)];
    std::unique_ptr<ConnectionManager> conns;
    std::unique_ptr<UdpChannel> udp_channel;
    std::unique_ptr<ChaosDatagramChannel> chaos_channel;
    std::unique_ptr<UdpLink> udp_link;
    std::unique_ptr<RealTransport> transport;
    PeerChannel* chan = nullptr;
    std::uint8_t link_epoch = 0;
    GatedTransport gate(reactor, opt.id);
    if (!opt.chaos.empty() && opt.udp) {
        chaos_channel = std::make_unique<ChaosDatagramChannel>(reactor, opt.id,
                                                               opt.chaos_seed);
    }

    const auto build_stack = [&]() -> bool {
        std::string err;
        if (opt.udp) {
            const int fd = open_udp(self_addr.host, self_addr.port, &err);
            if (fd < 0) {
                std::fprintf(stderr, "gossipd: udp bind on %s:%u failed: %s\n",
                             self_addr.host.c_str(), self_addr.port, err.c_str());
                return false;
            }
            udp_channel = std::make_unique<UdpChannel>(reactor, fd, opt.cluster);
            DatagramChannel* dchan = udp_channel.get();
            if (chaos_channel) {
                chaos_channel->set_inner(udp_channel.get());
                dchan = chaos_channel.get();
            }
            UdpLink::Params lp;
            lp.epoch = link_epoch;
            udp_link = std::make_unique<UdpLink>(reactor, opt.id, n, *dchan, lp);
            chan = udp_link.get();
        } else {
            const int listen_fd = listen_tcp(self_addr.host, self_addr.port, &err);
            if (listen_fd < 0) {
                std::fprintf(stderr, "gossipd: listen on %s:%u failed: %s\n",
                             self_addr.host.c_str(), self_addr.port, err.c_str());
                return false;
            }
            conns = std::make_unique<ConnectionManager>(reactor, opt.id, opt.cluster,
                                                        listen_fd,
                                                        ConnectionManager::Params{});
            chan = conns.get();
        }
        RealTransport::Params tp;
        tp.mode = opt.mode;
        if (overlay) tp.neighbors = overlay->neighbors(opt.id);
        transport = std::make_unique<RealTransport>(reactor, *chan, std::move(tp),
                                                    *hooks);
        gate.attach(transport.get());
        return true;
    };
    if (!build_stack()) return 1;

    // The node's consensus stack: one PaxosProcess per group behind a
    // dispatcher on the gated substrate (DESIGN.md §15). --groups 1 is the
    // degenerate shard — one facade, behaviorally the single-group stack.
    group::GroupShard shard(pc, gate, opt.groups);

    // Chaos bridge: every node derives the identical schedule from
    // (n, profile, chaos-seed, overlay) — the same trick as the overlay
    // itself — and applies the events that touch it: crash/restart of its
    // own stack, outgoing-link faults (UDP only; each directed link is
    // enforced once, at the sender), and overlay churn. The rendered fault
    // log is byte-identical across all nodes of a run.
    std::vector<Value> submitted_values;  ///< re-offered after a wiped restart
    std::unique_ptr<ChaosBridge> bridge;
    if (!opt.chaos.empty()) {
        const ChaosProfile profile = chaos_profile_by_name(opt.chaos, argv[0]);
        FaultSchedule schedule = generate_chaos(n, pc.coordinator, profile,
                                                opt.chaos_seed, overlay.get(), opt.groups);
        ChaosBridge::Hooks ch;
        ch.crash_node = [&](ProcessId p) {
            if (p != opt.id) return;
            gate.detach();
            transport.reset();
            udp_link.reset();
            if (chaos_channel) chaos_channel->set_inner(nullptr);
            udp_channel.reset();
            conns.reset();
            chan = nullptr;
        };
        ch.restart_node = [&](ProcessId p, bool wiped) {
            if (p != opt.id) return;
            ++link_epoch;  // fresh link incarnation: peers reset dedup state
            if (!build_stack()) {
                g_signal = 1;  // rebind failed: shut down instead of limping
                return;
            }
            if (wiped) {
                for (GroupId g = 0; g < opt.groups; ++g) {
                    shard.process(g).wipe_state();
                }
                // The durable client re-offers everything this node ever
                // submitted; coordinator value dedup absorbs re-proposals
                // of already-decided values.
                for (const Value& v : submitted_values) shard.post_submit(v);
            }
        };
        if (chaos_channel) {
            ch.set_link = [&](ProcessId from, ProcessId to,
                              const fault::DatagramFaultSpec& spec) {
                if (from == opt.id) chaos_channel->set_fault(to, spec);
            };
            ch.clear_link = [&](ProcessId from, ProcessId to) {
                if (from == opt.id) chaos_channel->clear_fault(to);
            };
        }
        if (overlay) {
            ch.overlay = overlay.get();
            ch.drop_edge = [&](ProcessId a, ProcessId b) {
                if (!transport) return;
                if (a == opt.id) transport->remove_neighbor(b);
                if (b == opt.id) transport->remove_neighbor(a);
            };
            ch.add_edge = [&](ProcessId a, ProcessId b) {
                if (!transport) return;
                if (a == opt.id) transport->add_neighbor(b);
                if (b == opt.id) transport->add_neighbor(a);
            };
        }
        bridge = std::make_unique<ChaosBridge>(reactor, n, std::move(schedule),
                                               std::move(ch));
    }

    std::unique_ptr<trace::Tracer> tracer;
    if (!opt.trace_path.empty()) {
        tracer = std::make_unique<trace::Tracer>();
        tracer->set_payload_probe(paxos_payload_probe());
        for (GroupId g = 0; g < opt.groups; ++g) {
            shard.process(g).set_tracer(tracer.get());
        }
    }

    std::ofstream decision_log;
    if (!opt.decision_log.empty()) {
        decision_log.open(opt.decision_log, std::ios::trunc);
        if (!decision_log) {
            std::fprintf(stderr, "gossipd: cannot open decision log %s\n",
                         opt.decision_log.c_str());
            return 1;
        }
    }
    long delivered = 0;
    // Per-group delivered frontier, maintained from the listener's instance
    // numbers. Frontier-based, not count-based: each group's deliveries are
    // in instance order and gap-free, so the frontiers' sum counts distinct
    // learned decisions. A chaos wipe re-delivers from instance 1 — counting
    // those duplicates would declare the expectation met while the tail is
    // still unlearned.
    std::vector<InstanceId> group_frontier(static_cast<std::size_t>(opt.groups), 0);
    long decided_distinct = 0;
    SimTime expect_met_at = SimTime::max();
    for (GroupId g = 0; g < opt.groups; ++g) {
        shard.process(g).set_delivery_listener(
            [&, g](InstanceId instance, const Value& value, CpuContext& ctx) {
                ++delivered;
                if (decision_log.is_open()) {
                    // Leading group column only under sharding: single-group
                    // logs stay byte-compatible with existing tooling.
                    if (opt.groups > 1) decision_log << g << ' ';
                    decision_log << instance << ' ' << value.id.client << ' '
                                 << value.id.seq << '\n';
                }
                InstanceId& f = group_frontier[static_cast<std::size_t>(g)];
                if (instance > f) {
                    decided_distinct += static_cast<long>(instance - f);
                    f = instance;
                    if (opt.expect > 0 && decided_distinct >= opt.expect &&
                        expect_met_at == SimTime::max()) {
                        expect_met_at = ctx.now();
                    }
                }
            });
    }

    // Start the protocol once the connection mesh is up (or after a grace
    // period if some peer never appears): the coordinator's initial Phase 1a
    // would otherwise leave before any TCP link exists and its retry waits
    // out a full retransmission timeout. Messages lost to stragglers after
    // the start are covered by retransmission as usual.
    long submitted = 0;
    bool started = false;
    Reactor::TimerId submit_timer = 0;
    const SimTime start_grace_deadline = reactor.now() + SimTime::seconds(3.0);
    const auto start_protocol = [&] {
        started = true;
        // Arm the fault schedule relative to protocol start: the profile's
        // quiet window then follows mesh establishment on every node.
        if (bridge) bridge->arm();
        shard.post_start();
        // Client submissions, paced at --rate.
        if (opt.submit > 0) {
            const auto interval = SimTime::seconds(1.0 / opt.rate);
            submit_timer = reactor.schedule_every(interval, [&] {
                if (submitted >= opt.submit) {
                    reactor.cancel_timer(submit_timer);
                    return;
                }
                // A crashed node's client defers, exactly like the harness
                // retrying a submission aimed at a down owner.
                if (bridge && bridge->crashed(opt.id)) return;
                Value v;
                v.id = ValueId{opt.id, submitted++};
                v.size_bytes = opt.value_size;
                if (bridge) submitted_values.push_back(v);
                shard.post_submit(v);
            });
        }
    };
    Reactor::TimerId mesh_poll = reactor.schedule_every(SimTime::millis(5), [&] {
        if (started) {
            reactor.cancel_timer(mesh_poll);
            return;
        }
        bool all_up = true;
        for (const ProcessId p : linked_peers) all_up = all_up && chan->peer_up(p);
        if (all_up || reactor.now() >= start_grace_deadline) {
            reactor.cancel_timer(mesh_poll);
            start_protocol();
        }
    });

    const SimTime deadline = reactor.now() + SimTime::seconds(opt.run_for_s);
    const SimTime linger = SimTime::seconds(opt.linger_s);
    reactor.set_interrupt_check([&] {
        if (g_signal) return true;
        if (reactor.now() >= deadline) return true;
        // After the expectation is met, linger so peers still catching up can
        // pull the tail of the sequence through this node.
        return expect_met_at < SimTime::max() && reactor.now() >= expect_met_at + linger;
    });
    reactor.run();

    if (decision_log.is_open()) decision_log.close();
    if (tracer) {
        std::ofstream trace_out(opt.trace_path, std::ios::trunc);
        if (trace_out) tracer->export_jsonl(trace_out);
    }
    if (!opt.metrics_path.empty()) {
        std::FILE* out = opt.metrics_path == "-"
                             ? stderr
                             : std::fopen(opt.metrics_path.c_str(), "w");
        if (out) {
            dump_metrics(out, opt, transport.get(), conns.get(), udp_link.get(), shard,
                         semantics.get(), &gate, bridge.get());
            if (out != stderr) std::fclose(out);
        }
    }
    if (bridge && !opt.chaos_log.empty()) {
        std::ofstream chaos_out(opt.chaos_log, std::ios::trunc);
        if (chaos_out) chaos_out << bridge->rendered_log();
    }

    const bool ok = opt.expect == 0 || expect_met_at < SimTime::max();
    std::fprintf(stderr, "gossipd: node %d delivered %ld decision(s)%s\n", opt.id,
                 delivered, ok ? "" : " (short of --expect)");
    return ok ? 0 : 1;
}
