// gossipd — one gossip-consensus node as a real OS process (DESIGN.md §10).
//
// Runs the unmodified protocol stack (PaxosProcess + FailureDetector) over
// the real-socket runtime: the wire codec, the poll reactor, and — behind a
// RealTransport — either the TCP connection manager or the UDP link layer
// (--transport udp: clustered datagrams with reliable-unordered repair for
// flagged control traffic, DESIGN.md §12). An n-node cluster is n of these
// processes; scripts/cluster_local.sh launches one on localhost.
//
// Examples:
//   gossipd --id 0 --cluster 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//           --setup semantic --failover --submit 100 --expect 300
//   gossipd --id 1 --config cluster.txt --decision-log node1.log
//
// Every node writes the decisions it delivers (in instance order, gap-free
// by construction) to --decision-log as "instance client seq" lines; nodes
// of one run must produce identical logs. Exit status is 0 once --expect
// decisions were delivered (or on a clean signal with no --expect), 1 when
// the run ends short of the expectation.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "overlay/random_overlay.hpp"
#include "paxos/message.hpp"
#include "paxos/process.hpp"
#include "runtime/real_transport.hpp"
#include "runtime/tcp.hpp"
#include "runtime/udp.hpp"
#include "runtime/udp_link.hpp"
#include "semantic/paxos_semantics.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace gossipc;
using namespace gossipc::runtime;

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
    if (error) std::fprintf(stderr, "gossipd: %s\n", error);
    std::fprintf(stderr,
        "usage: %s --id <int> (--cluster <h:p,h:p,...> | --config <file>) [options]\n"
        "  --id <int>             this process's index into the cluster list\n"
        "  --cluster <list>       comma-separated host:port, one per process\n"
        "  --config <file>        same, one host:port per line (# comments)\n"
        "  --setup baseline|gossip|semantic   (default semantic)\n"
        "  --transport tcp|udp    socket layer (default tcp); udp clusters\n"
        "                         envelopes into datagrams and retransmits\n"
        "                         only reliable-flagged control traffic\n"
        "  --degree <k>           gossip overlay out-connections (0 = paper default)\n"
        "  --overlay-seed <u64>   overlay construction seed (default 42); must\n"
        "                         match across the cluster (same seed -> same graph)\n"
        "  --seed <u64>           protocol jitter seed (default 1)\n"
        "  --failover             failure detector + coordinator failover\n"
        "  --heartbeat <s>        heartbeat interval (default 0.1)\n"
        "  --suspect-after <s>    suspicion timeout (default 0.45)\n"
        "  --submit <n>           client values submitted by this node (default 0)\n"
        "  --rate <per-s>         this node's submission rate (default 200)\n"
        "  --value-size <bytes>   modelled value size (default 1024)\n"
        "  --expect <n>           exit 0 once this many decisions are delivered\n"
        "  --run-for <s>          hard runtime limit (default 30)\n"
        "  --linger <s>           keep forwarding after --expect is met (default 2)\n"
        "  --decision-log <file>  \"instance client seq\" per delivered decision\n"
        "  --metrics <file>       counter snapshot on shutdown (- = stderr)\n"
        "  --trace <file>         message-lifecycle trace, JSONL\n",
        argv0);
    std::exit(2);
}

struct Options {
    ProcessId id = -1;
    std::vector<PeerAddress> cluster;
    RealTransport::Mode mode = RealTransport::Mode::Gossip;
    bool udp = false;
    bool semantic = true;
    int degree = 0;
    std::uint64_t overlay_seed = 42;
    std::uint64_t seed = 1;
    bool failover = false;
    double heartbeat_s = 0.1;
    double suspect_after_s = 0.45;
    long submit = 0;
    double rate = 200.0;
    std::uint32_t value_size = 1024;
    long expect = 0;
    double run_for_s = 30.0;
    double linger_s = 2.0;
    std::string decision_log;
    std::string metrics_path;
    std::string trace_path;
};

bool parse_addr(const std::string& spec, PeerAddress& out) {
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
    const long port = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) return false;
    out.host = spec.substr(0, colon);
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

std::vector<PeerAddress> parse_cluster_list(const std::string& list, const char* argv0) {
    std::vector<PeerAddress> cluster;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string spec =
            list.substr(start, comma == std::string::npos ? comma : comma - start);
        PeerAddress addr;
        if (!parse_addr(spec, addr)) usage(argv0, "bad --cluster entry (want host:port)");
        cluster.push_back(std::move(addr));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return cluster;
}

std::vector<PeerAddress> parse_cluster_file(const std::string& path, const char* argv0) {
    std::ifstream in(path);
    if (!in) usage(argv0, "cannot open --config file");
    std::vector<PeerAddress> cluster;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#') continue;
        const std::size_t last = line.find_last_not_of(" \t\r");
        PeerAddress addr;
        if (!parse_addr(line.substr(first, last - first + 1), addr)) {
            usage(argv0, "bad --config line (want host:port)");
        }
        cluster.push_back(std::move(addr));
    }
    return cluster;
}

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--id") {
            opt.id = static_cast<ProcessId>(std::atoi(next()));
        } else if (arg == "--cluster") {
            opt.cluster = parse_cluster_list(next(), argv[0]);
        } else if (arg == "--config") {
            opt.cluster = parse_cluster_file(next(), argv[0]);
        } else if (arg == "--setup") {
            const std::string v = next();
            if (v == "baseline") {
                opt.mode = RealTransport::Mode::Direct;
                opt.semantic = false;
            } else if (v == "gossip") {
                opt.mode = RealTransport::Mode::Gossip;
                opt.semantic = false;
            } else if (v == "semantic") {
                opt.mode = RealTransport::Mode::Gossip;
                opt.semantic = true;
            } else {
                usage(argv[0], "bad --setup (want baseline|gossip|semantic)");
            }
        } else if (arg == "--transport") {
            const std::string v = next();
            if (v == "tcp") {
                opt.udp = false;
            } else if (v == "udp") {
                opt.udp = true;
            } else {
                usage(argv[0], "bad --transport (want tcp|udp)");
            }
        } else if (arg == "--degree") {
            opt.degree = std::atoi(next());
        } else if (arg == "--overlay-seed") {
            opt.overlay_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--failover") {
            opt.failover = true;
        } else if (arg == "--heartbeat") {
            opt.heartbeat_s = std::atof(next());
        } else if (arg == "--suspect-after") {
            opt.suspect_after_s = std::atof(next());
        } else if (arg == "--submit") {
            opt.submit = std::atol(next());
        } else if (arg == "--rate") {
            opt.rate = std::atof(next());
        } else if (arg == "--value-size") {
            opt.value_size = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--expect") {
            opt.expect = std::atol(next());
        } else if (arg == "--run-for") {
            opt.run_for_s = std::atof(next());
        } else if (arg == "--linger") {
            opt.linger_s = std::atof(next());
        } else if (arg == "--decision-log") {
            opt.decision_log = next();
        } else if (arg == "--metrics") {
            opt.metrics_path = next();
        } else if (arg == "--trace") {
            opt.trace_path = next();
        } else {
            usage(argv[0], ("unknown flag " + arg).c_str());
        }
    }
    const int n = static_cast<int>(opt.cluster.size());
    if (n < 3) usage(argv[0], "need a cluster of at least 3 (--cluster/--config)");
    if (opt.id < 0 || opt.id >= n) usage(argv[0], "--id out of range for the cluster");
    if (opt.heartbeat_s <= 0) usage(argv[0], "--heartbeat must be positive");
    if (opt.suspect_after_s <= 0) usage(argv[0], "--suspect-after must be positive");
    if (opt.rate <= 0) usage(argv[0], "--rate must be positive");
    if (opt.submit < 0 || opt.expect < 0) usage(argv[0], "counts must be non-negative");
    if (opt.degree < 0 || opt.degree >= n) usage(argv[0], "--degree out of range");
    if (opt.run_for_s <= 0) usage(argv[0], "--run-for must be positive");
    if (opt.value_size == 0) usage(argv[0], "--value-size must be positive");
    return opt;
}

trace::Tracer::PayloadProbe paxos_payload_probe() {
    // Same classification the simulator deployment installs (core/experiment).
    return [](const MessageBody& body) {
        trace::PayloadInfo info;
        if (body.kind() != BodyKind::Paxos) return info;
        const auto& pm = static_cast<const PaxosMessage&>(body);
        info.type = static_cast<std::int16_t>(pm.type());
        info.type_name = paxos_msg_type_name(pm.type());
        switch (pm.type()) {
            case PaxosMsgType::Phase2a:
                info.instance = static_cast<const Phase2aMsg&>(pm).instance();
                break;
            case PaxosMsgType::Phase2b:
                info.instance = static_cast<const Phase2bMsg&>(pm).instance();
                break;
            case PaxosMsgType::Phase2bAggregate:
                info.instance = static_cast<const Phase2bAggregateMsg&>(pm).instance();
                break;
            case PaxosMsgType::Decision:
                info.instance = static_cast<const DecisionMsg&>(pm).instance();
                break;
            case PaxosMsgType::LearnRequest:
                info.instance = static_cast<const LearnRequestMsg&>(pm).instance();
                break;
            default:
                break;
        }
        return info;
    };
}

void dump_metrics(std::FILE* out, const Options& opt, const RealTransport& transport,
                  const ConnectionManager* conns, const UdpLink* udp,
                  const PaxosProcess& proc, const PaxosSemantics* semantics) {
    const auto put = [out](const char* key, std::uint64_t v) {
        std::fprintf(out, "%s %llu\n", key, static_cast<unsigned long long>(v));
    };
    std::fprintf(out, "node %d\n", opt.id);
    put("learner.frontier", static_cast<std::uint64_t>(proc.learner().frontier()));
    put("learner.delivered", proc.learner().delivered_count());
    const auto& pc = proc.counters();
    put("paxos.values_submitted", pc.values_submitted);
    put("paxos.messages_handled", pc.messages_handled);
    put("paxos.takeovers", pc.takeovers);
    put("paxos.step_downs", pc.step_downs);
    const auto& tc = transport.counters();
    put("transport.broadcasts", tc.broadcasts);
    put("transport.envelopes_received", tc.envelopes_received);
    put("transport.messages_received", tc.messages_received);
    put("transport.duplicates", tc.duplicates);
    put("transport.delivered", tc.delivered);
    put("transport.filtered", tc.filtered);
    put("transport.aggregated_away", tc.aggregated_away);
    put("transport.envelopes_sent", tc.envelopes_sent);
    put("transport.send_queue_drops", tc.send_queue_drops);
    put("transport.decode_errors", tc.decode_errors);
    if (conns) {
        const auto& cc = conns->counters();
        put("conn.dials", cc.dials);
        put("conn.accepts", cc.accepts);
        put("conn.links_up", cc.links_up);
        put("conn.disconnects", cc.disconnects);
        put("conn.frames_sent", cc.frames_sent);
        put("conn.frames_received", cc.frames_received);
        put("conn.bytes_sent", cc.bytes_sent);
        put("conn.bytes_received", cc.bytes_received);
        put("conn.send_drops_down", cc.send_drops_down);
        put("conn.send_drops_backpressure", cc.send_drops_backpressure);
        put("conn.protocol_errors", cc.protocol_errors);
    }
    if (udp) {
        const auto& uc = udp->counters();
        put("udp.datagrams_sent", uc.datagrams_sent);
        put("udp.datagrams_received", uc.datagrams_received);
        put("udp.bytes_sent", uc.bytes_sent);
        put("udp.bytes_received", uc.bytes_received);
        put("udp.bodies_sent", uc.bodies_sent);
        put("udp.bodies_received", uc.bodies_received);
        put("udp.acks_only_sent", uc.acks_only_sent);
        put("udp.jumbo_datagrams", uc.jumbo_datagrams);
        put("udp.retransmits", uc.retransmits);
        put("udp.fast_retransmits", uc.fast_retransmits);
        put("udp.reliable_acked", uc.reliable_acked);
        put("udp.reliable_dropped", uc.reliable_dropped);
        put("udp.duplicate_datagrams", uc.duplicate_datagrams);
        put("udp.stale_datagrams", uc.stale_datagrams);
        put("udp.duplicate_reliables", uc.duplicate_reliables);
        put("udp.decode_errors", uc.decode_errors);
        put("udp.send_failures", uc.send_failures);
    }
    if (semantics) {
        const auto& ss = semantics->stats();
        put("semantic.filtered_phase2b", ss.filtered_phase2b);
        put("semantic.aggregates_built", ss.aggregates_built);
        put("semantic.messages_merged", ss.messages_merged);
        put("semantic.disaggregations", ss.disaggregations);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_options(argc, argv);
    const int n = static_cast<int>(opt.cluster.size());

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    Reactor reactor;

    std::string err;
    const PeerAddress& self_addr = opt.cluster[static_cast<std::size_t>(opt.id)];
    std::unique_ptr<ConnectionManager> conns;
    std::unique_ptr<UdpChannel> udp_channel;
    std::unique_ptr<UdpLink> udp_link;
    PeerChannel* chan = nullptr;
    if (opt.udp) {
        const int fd = open_udp(self_addr.host, self_addr.port, &err);
        if (fd < 0) {
            std::fprintf(stderr, "gossipd: udp bind on %s:%u failed: %s\n",
                         self_addr.host.c_str(), self_addr.port, err.c_str());
            return 1;
        }
        udp_channel = std::make_unique<UdpChannel>(reactor, fd, opt.cluster);
        udp_link = std::make_unique<UdpLink>(reactor, opt.id, n, *udp_channel,
                                             UdpLink::Params{});
        chan = udp_link.get();
    } else {
        const int listen_fd = listen_tcp(self_addr.host, self_addr.port, &err);
        if (listen_fd < 0) {
            std::fprintf(stderr, "gossipd: listen on %s:%u failed: %s\n",
                         self_addr.host.c_str(), self_addr.port, err.c_str());
            return 1;
        }
        conns = std::make_unique<ConnectionManager>(reactor, opt.id, opt.cluster,
                                                    listen_fd,
                                                    ConnectionManager::Params{});
        chan = conns.get();
    }

    PaxosConfig pc;
    pc.n = n;
    pc.id = opt.id;
    pc.coordinator = 0;
    pc.seed = opt.seed;
    pc.failover_enabled = opt.failover;
    pc.heartbeat_interval = SimTime::seconds(opt.heartbeat_s);
    pc.suspect_after = SimTime::seconds(opt.suspect_after_s);
    // As in the simulator deployment: semantic filtering drops redundant
    // Phase 2b en route, so explicit heartbeats are always sent there.
    pc.heartbeat_piggyback = !opt.semantic;

    std::unique_ptr<PaxosSemantics> semantics;
    PassThroughHooks pass_through;
    GossipHooks* hooks = &pass_through;
    if (opt.semantic) {
        semantics = std::make_unique<PaxosSemantics>(opt.id, pc.quorum(),
                                                     PaxosSemantics::Options{});
        hooks = semantics.get();
    }

    RealTransport::Params tp;
    tp.mode = opt.mode;
    std::vector<ProcessId> linked_peers;
    if (opt.mode == RealTransport::Mode::Gossip) {
        // Deterministic in (n, degree, seed): every node derives the same
        // overlay and connects to its own neighbors.
        const Graph overlay = opt.degree > 0
                                  ? make_random_overlay(n, opt.degree, opt.overlay_seed)
                                  : make_connected_overlay(n, opt.overlay_seed);
        tp.neighbors = overlay.neighbors(opt.id);
        linked_peers = tp.neighbors;
    } else {
        for (ProcessId p = 0; p < n; ++p) {
            if (p != opt.id) linked_peers.push_back(p);
        }
    }
    RealTransport transport(reactor, *chan, std::move(tp), *hooks);

    PaxosProcess proc(pc, transport);

    std::unique_ptr<trace::Tracer> tracer;
    if (!opt.trace_path.empty()) {
        tracer = std::make_unique<trace::Tracer>();
        tracer->set_payload_probe(paxos_payload_probe());
        proc.set_tracer(tracer.get());
    }

    std::ofstream decision_log;
    if (!opt.decision_log.empty()) {
        decision_log.open(opt.decision_log, std::ios::trunc);
        if (!decision_log) {
            std::fprintf(stderr, "gossipd: cannot open decision log %s\n",
                         opt.decision_log.c_str());
            return 1;
        }
    }
    long delivered = 0;
    SimTime expect_met_at = SimTime::max();
    proc.set_delivery_listener(
        [&](InstanceId instance, const Value& value, CpuContext& ctx) {
            ++delivered;
            if (decision_log.is_open()) {
                decision_log << instance << ' ' << value.id.client << ' '
                             << value.id.seq << '\n';
            }
            if (opt.expect > 0 && delivered == opt.expect) expect_met_at = ctx.now();
        });

    // Start the protocol once the connection mesh is up (or after a grace
    // period if some peer never appears): the coordinator's initial Phase 1a
    // would otherwise leave before any TCP link exists and its retry waits
    // out a full retransmission timeout. Messages lost to stragglers after
    // the start are covered by retransmission as usual.
    long submitted = 0;
    bool started = false;
    Reactor::TimerId submit_timer = 0;
    const SimTime start_grace_deadline = reactor.now() + SimTime::seconds(3.0);
    const auto start_protocol = [&] {
        started = true;
        proc.post_start();
        // Client submissions, paced at --rate.
        if (opt.submit > 0) {
            const auto interval = SimTime::seconds(1.0 / opt.rate);
            submit_timer = reactor.schedule_every(interval, [&] {
                if (submitted >= opt.submit) {
                    reactor.cancel_timer(submit_timer);
                    return;
                }
                Value v;
                v.id = ValueId{opt.id, submitted++};
                v.size_bytes = opt.value_size;
                proc.post_submit(v);
            });
        }
    };
    Reactor::TimerId mesh_poll = reactor.schedule_every(SimTime::millis(5), [&] {
        if (started) {
            reactor.cancel_timer(mesh_poll);
            return;
        }
        bool all_up = true;
        for (const ProcessId p : linked_peers) all_up = all_up && chan->peer_up(p);
        if (all_up || reactor.now() >= start_grace_deadline) {
            reactor.cancel_timer(mesh_poll);
            start_protocol();
        }
    });

    const SimTime deadline = reactor.now() + SimTime::seconds(opt.run_for_s);
    const SimTime linger = SimTime::seconds(opt.linger_s);
    reactor.set_interrupt_check([&] {
        if (g_signal) return true;
        if (reactor.now() >= deadline) return true;
        // After the expectation is met, linger so peers still catching up can
        // pull the tail of the sequence through this node.
        return expect_met_at < SimTime::max() && reactor.now() >= expect_met_at + linger;
    });
    reactor.run();

    if (decision_log.is_open()) decision_log.close();
    if (tracer) {
        std::ofstream trace_out(opt.trace_path, std::ios::trunc);
        if (trace_out) tracer->export_jsonl(trace_out);
    }
    if (!opt.metrics_path.empty()) {
        std::FILE* out = opt.metrics_path == "-"
                             ? stderr
                             : std::fopen(opt.metrics_path.c_str(), "w");
        if (out) {
            dump_metrics(out, opt, transport, conns.get(), udp_link.get(), proc,
                         semantics.get());
            if (out != stderr) std::fclose(out);
        }
    }

    const bool ok = opt.expect == 0 || delivered >= opt.expect;
    std::fprintf(stderr, "gossipd: node %d delivered %ld decision(s)%s\n", opt.id,
                 delivered, ok ? "" : " (short of --expect)");
    return ok ? 0 : 1;
}
