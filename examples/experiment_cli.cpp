// General-purpose experiment runner: every knob of ExperimentConfig on the
// command line, results as a human table, JSON, or a CSV row — the tool to
// script custom sweeps beyond the bundled benches.
//
// Examples:
//   experiment_cli --setup semantic --n 105 --rate 104
//   experiment_cli --setup gossip --n 53 --loss 0.2 --no-timeouts --json
//   experiment_cli --setup gossip --strategy push-pull --rate 52 --csv
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/report.hpp"
#include "core/semantic_gossip.hpp"
#include "wire/codec.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
    if (error) std::fprintf(stderr, "experiment_cli: %s\n", error);
    std::fprintf(stderr,
        "usage: %s [options]\n"
        "  --setup baseline|gossip|semantic   (default semantic)\n"
        "  --n <int>                          processes (default 13)\n"
        "  --groups <int>                     independent consensus groups sharing\n"
        "                                     the gossip substrate (default 1;\n"
        "                                     DESIGN.md Sec. 15)\n"
        "  --rate <double>                    submissions/s, all clients (default 52)\n"
        "  --value-size <bytes>               (default 1024)\n"
        "  --loss <0..1>                      receive-side loss rate (default 0)\n"
        "  --no-timeouts                      disable repair procedures\n"
        "  --strategy push|pull|push-pull     dissemination (default push)\n"
        "  --no-filtering / --no-aggregation  disable one semantic technique\n"
        "  --batch <size>                     network-level batching (default off)\n"
        "  --batch-size <n>                   coordinator value batching: values\n"
        "                                     per Paxos instance (default 1 = off)\n"
        "  --batch-delay <s>                  partial-batch flush delay (default 0.005)\n"
        "  --pending-cap <n>                  coordinator queue cap; beyond it new\n"
        "                                     values are shed (default 65536)\n"
        "  --pipeline                         pull-mode pipelining: forward in the\n"
        "                                     same step instead of next round\n"
        "  --fanout <k>                       forward to k random peers, 0 = all\n"
        "  --adaptive-fanout                  widen a restricted fanout under\n"
        "                                     send-queue pressure\n"
        "  --seed <u64> / --overlay-seed <u64>\n"
        "  --chaos light|moderate|heavy|heavy-failover\n"
        "                                     seeded fault schedule (crashes,\n"
        "                                     partitions, link faults, churn;\n"
        "                                     heavy-failover adds a permanent\n"
        "                                     coordinator crash mid-horizon)\n"
        "  --chaos-seed <u64>                 replay seed (default: --seed)\n"
        "  --failover                         failure detector + coordinator\n"
        "                                     failover (DESIGN.md Sec. 8)\n"
        "  --heartbeat <s>                    heartbeat interval (default 0.1)\n"
        "  --suspect-after <s>                suspicion timeout (default 0.45)\n"
        "  --fault-log                        print the injected-fault log\n"
        "  --trace <path>                     message-lifecycle tracing, JSONL\n"
        "                                     exported to <path> (DESIGN.md Sec. 9)\n"
        "  --trace-capacity <n>               trace ring size (default 65536)\n"
        "  --clients <int>                    client count (default 13)\n"
        "  --detector-sweep <s>               suspicion sweep interval (default 0.05)\n"
        "  --suspicion-jitter <s>             max suspicion-deadline jitter (default 0.06)\n"
        "  --retransmit-jitter <s>            max retransmit-backoff jitter (default 0.15)\n"
        "  --probe-events <n>                 invariant probe period, 0 = off\n"
        "                                     (default 25000; debug builds only)\n"
        "  --bandwidth <bytes-per-us>         per-link bandwidth (default 125)\n"
        "  --jitter-frac <0..1>               latency jitter fraction (default 0.02)\n"
        "  --warmup <s> --measure <s> --drain <s>\n"
        "  --json | --csv                     machine-readable output\n",
        argv0);
    std::exit(2);
}

// Checked numeric parsing: atof/atoi silently map junk ("abc", "12x") to a
// number, which range validation may then accept — reject anything that is
// not entirely numeric instead (the cert-err34-c rule).
double parse_num(const char* argv0, const std::string& flag, const char* s) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE) {
        usage(argv0, (flag + " expects a number, got '" + s + "'").c_str());
    }
    return v;
}

long long parse_int(const char* argv0, const std::string& flag, const char* s) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) {
        usage(argv0, (flag + " expects an integer, got '" + s + "'").c_str());
    }
    return v;
}

unsigned long long parse_u64(const char* argv0, const std::string& flag, const char* s) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || std::strchr(s, '-') != nullptr) {
        usage(argv0, (flag + " expects an unsigned integer, got '" + s + "'").c_str());
    }
    return v;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gossipc;

    ExperimentConfig cfg;
    cfg.setup = Setup::SemanticGossip;
    cfg.total_rate = 52.0;
    enum class Output { Table, Json, Csv } output = Output::Table;
    bool fault_log = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
            return argv[++i];
        };
        const auto num = [&](const char* s) { return parse_num(argv[0], arg, s); };
        const auto intval = [&](const char* s) { return parse_int(argv[0], arg, s); };
        const auto u64val = [&](const char* s) { return parse_u64(argv[0], arg, s); };
        if (arg == "--setup") {
            const std::string v = next();
            if (v == "baseline") cfg.setup = Setup::Baseline;
            else if (v == "gossip") cfg.setup = Setup::Gossip;
            else if (v == "semantic") cfg.setup = Setup::SemanticGossip;
            else usage(argv[0], "bad --setup (want baseline|gossip|semantic)");
        } else if (arg == "--n") {
            cfg.n = static_cast<int>(intval(next()));
        } else if (arg == "--groups") {
            cfg.groups = static_cast<int>(intval(next()));
        } else if (arg == "--rate") {
            cfg.total_rate = num(next());
        } else if (arg == "--value-size") {
            cfg.value_size = static_cast<std::uint32_t>(u64val(next()));
        } else if (arg == "--loss") {
            cfg.loss_rate = num(next());
        } else if (arg == "--no-timeouts") {
            cfg.timeouts_enabled = false;
        } else if (arg == "--strategy") {
            const std::string v = next();
            if (v == "push") cfg.strategy = GossipStrategy::Push;
            else if (v == "pull") cfg.strategy = GossipStrategy::Pull;
            else if (v == "push-pull") cfg.strategy = GossipStrategy::PushPull;
            else usage(argv[0], "bad --strategy (want push|pull|push-pull)");
        } else if (arg == "--no-filtering") {
            cfg.semantic.filtering = false;
        } else if (arg == "--no-aggregation") {
            cfg.semantic.aggregation = false;
        } else if (arg == "--batch") {
            cfg.gossip_params.batch_size = static_cast<std::size_t>(u64val(next()));
        } else if (arg == "--batch-size") {
            cfg.batch_size = static_cast<std::uint32_t>(u64val(next()));
        } else if (arg == "--batch-delay") {
            cfg.batch_delay = SimTime::seconds(num(next()));
        } else if (arg == "--pending-cap") {
            cfg.pending_cap = static_cast<std::size_t>(u64val(next()));
        } else if (arg == "--pipeline") {
            cfg.pipeline = true;
        } else if (arg == "--fanout") {
            cfg.fanout = static_cast<std::size_t>(u64val(next()));
        } else if (arg == "--adaptive-fanout") {
            cfg.adaptive_fanout = true;
        } else if (arg == "--seed") {
            cfg.seed = u64val(next());
        } else if (arg == "--overlay-seed") {
            cfg.overlay_seed = u64val(next());
        } else if (arg == "--chaos") {
            const std::string v = next();
            if (v == "light") cfg.chaos = ChaosProfile::light();
            else if (v == "moderate") cfg.chaos = ChaosProfile::moderate();
            else if (v == "heavy") cfg.chaos = ChaosProfile::heavy();
            else if (v == "heavy-failover") cfg.chaos = ChaosProfile::heavy_failover();
            else usage(argv[0], "bad --chaos (want light|moderate|heavy|heavy-failover)");
        } else if (arg == "--chaos-seed") {
            cfg.chaos_seed = u64val(next());
        } else if (arg == "--failover") {
            cfg.failover = true;
        } else if (arg == "--heartbeat") {
            cfg.heartbeat_interval = SimTime::seconds(num(next()));
        } else if (arg == "--suspect-after") {
            cfg.suspect_after = SimTime::seconds(num(next()));
        } else if (arg == "--fault-log") {
            fault_log = true;
        } else if (arg == "--trace") {
            cfg.trace = true;
            cfg.trace_jsonl_path = next();
        } else if (arg == "--trace-capacity") {
            cfg.trace_capacity = static_cast<std::size_t>(u64val(next()));
        } else if (arg == "--clients") {
            cfg.num_clients = static_cast<int>(intval(next()));
        } else if (arg == "--detector-sweep") {
            cfg.detector_sweep_interval = SimTime::seconds(num(next()));
        } else if (arg == "--suspicion-jitter") {
            cfg.suspicion_jitter_max = SimTime::seconds(num(next()));
        } else if (arg == "--retransmit-jitter") {
            cfg.retransmit_jitter_max = SimTime::seconds(num(next()));
        } else if (arg == "--probe-events") {
            cfg.invariant_probe_events = u64val(next());
        } else if (arg == "--bandwidth") {
            cfg.bandwidth_bytes_per_us = num(next());
        } else if (arg == "--jitter-frac") {
            cfg.jitter_frac = num(next());
        } else if (arg == "--warmup") {
            cfg.warmup = SimTime::seconds(num(next()));
        } else if (arg == "--measure") {
            cfg.measure = SimTime::seconds(num(next()));
        } else if (arg == "--drain") {
            cfg.drain = SimTime::seconds(num(next()));
        } else if (arg == "--json") {
            output = Output::Json;
        } else if (arg == "--csv") {
            output = Output::Csv;
        } else {
            usage(argv[0], ("unknown flag " + arg).c_str());
        }
    }

    // Range validation: an out-of-range knob silently produces a degenerate
    // experiment (zero division, a cluster with no quorum, a negative timer
    // interpreted as "immediately, forever") — reject it up front instead.
    if (cfg.n < 3) usage(argv[0], "--n must be at least 3 (quorum needs a majority)");
    if (cfg.groups < 1) usage(argv[0], "--groups must be at least 1");
    if (cfg.groups > static_cast<int>(wire::kMaxGroupFrontiers)) {
        usage(argv[0], "--groups exceeds the wire codec's heartbeat frontier cap (1024)");
    }
    if (cfg.total_rate <= 0) usage(argv[0], "--rate must be positive");
    if (cfg.value_size == 0) usage(argv[0], "--value-size must be positive");
    if (cfg.loss_rate < 0 || cfg.loss_rate > 1) usage(argv[0], "--loss must be in [0, 1]");
    if (cfg.gossip_params.batch_size == 0) usage(argv[0], "--batch must be at least 1");
    if (cfg.batch_size == 0) usage(argv[0], "--batch-size must be at least 1");
    if (cfg.batch_size > wire::kMaxBatchEntries) {
        usage(argv[0], "--batch-size exceeds the wire codec's component cap (4096)");
    }
    if (cfg.batch_delay < SimTime::zero()) {
        usage(argv[0], "--batch-delay must be non-negative");
    }
    if (cfg.pending_cap == 0) usage(argv[0], "--pending-cap must be at least 1");
    if (cfg.heartbeat_interval <= SimTime::zero()) {
        usage(argv[0], "--heartbeat must be positive");
    }
    if (cfg.suspect_after <= SimTime::zero()) {
        usage(argv[0], "--suspect-after must be positive");
    }
    if (cfg.trace_capacity == 0) usage(argv[0], "--trace-capacity must be positive");
    if (cfg.num_clients < 1) usage(argv[0], "--clients must be at least 1");
    if (cfg.detector_sweep_interval <= SimTime::zero()) {
        usage(argv[0], "--detector-sweep must be positive");
    }
    if (cfg.suspicion_jitter_max < SimTime::zero()) {
        usage(argv[0], "--suspicion-jitter must be non-negative");
    }
    if (cfg.retransmit_jitter_max < SimTime::zero()) {
        usage(argv[0], "--retransmit-jitter must be non-negative");
    }
    if (cfg.bandwidth_bytes_per_us <= 0) usage(argv[0], "--bandwidth must be positive");
    if (cfg.jitter_frac < 0 || cfg.jitter_frac > 1) {
        usage(argv[0], "--jitter-frac must be in [0, 1]");
    }
    if (cfg.warmup < SimTime::zero() || cfg.drain < SimTime::zero()) {
        usage(argv[0], "--warmup/--drain must be non-negative");
    }
    if (cfg.measure <= SimTime::zero()) usage(argv[0], "--measure must be positive");

    const ExperimentResult result = run_experiment(cfg);

    switch (output) {
        case Output::Json:
            std::printf("%s\n", to_json(cfg, result).c_str());
            break;
        case Output::Csv:
            std::printf("%s\n%s\n", csv_header().c_str(), to_csv_row(cfg, result).c_str());
            break;
        case Output::Table: {
            const auto& w = result.workload;
            std::printf("setup=%s n=%d rate=%.0f/s loss=%.0f%% timeouts=%s\n",
                        setup_name(cfg.setup), cfg.n, cfg.total_rate, 100 * cfg.loss_rate,
                        cfg.timeouts_enabled ? "on" : "off");
            std::printf("throughput %.1f/s | latency %.1f ms (p50 %.1f, p95 %.1f, p99 %.1f)\n",
                        w.throughput, w.latencies.mean(), w.latencies.percentile(50),
                        w.latencies.percentile(95), w.latencies.percentile(99));
            std::printf("submitted %llu, completed %llu, not ordered %llu\n",
                        static_cast<unsigned long long>(w.submitted),
                        static_cast<unsigned long long>(w.completed),
                        static_cast<unsigned long long>(w.not_ordered));
            std::printf("arrivals %llu (dups %.0f%%), filtered %llu, merged %llu\n",
                        static_cast<unsigned long long>(result.messages.net_arrivals),
                        100.0 * result.messages.duplicate_fraction(),
                        static_cast<unsigned long long>(result.semantic.filtered_phase2b),
                        static_cast<unsigned long long>(result.semantic.messages_merged));
            if (cfg.groups > 1) {
                std::printf("groups %d, decided per group:", cfg.groups);
                for (const std::uint64_t d : result.group_decided) {
                    std::printf(" %llu", static_cast<unsigned long long>(d));
                }
                std::printf(" | cross-group merges %llu\n",
                            static_cast<unsigned long long>(
                                result.semantic.cross_group_merged));
            }
            if (cfg.chaos) {
                std::printf("chaos %s seed %llu: %llu faults injected\n",
                            cfg.chaos->name.c_str(),
                            static_cast<unsigned long long>(
                                cfg.chaos_seed != 0 ? cfg.chaos_seed : cfg.seed),
                            static_cast<unsigned long long>(result.faults_injected));
            }
            if (cfg.failover) {
                const auto& f = result.failover;
                std::printf("failover: %llu suspicions, %llu restores, %llu takeovers,"
                            " %llu step-downs, heartbeats %llu sent / %llu suppressed\n",
                            static_cast<unsigned long long>(f.suspicions),
                            static_cast<unsigned long long>(f.restores),
                            static_cast<unsigned long long>(f.takeovers),
                            static_cast<unsigned long long>(f.step_downs),
                            static_cast<unsigned long long>(f.heartbeats_sent),
                            static_cast<unsigned long long>(f.heartbeats_suppressed));
            }
            break;
        }
    }
    if (fault_log) {
        for (const std::string& line : result.fault_log) std::printf("%s\n", line.c_str());
    }
    return result.workload.completed > 0 ? 0 : 1;
}
