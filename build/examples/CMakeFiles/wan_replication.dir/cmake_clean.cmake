file(REMOVE_RECURSE
  "CMakeFiles/wan_replication.dir/wan_replication.cpp.o"
  "CMakeFiles/wan_replication.dir/wan_replication.cpp.o.d"
  "wan_replication"
  "wan_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
