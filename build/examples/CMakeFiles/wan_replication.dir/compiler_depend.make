# Empty compiler generated dependencies file for wan_replication.
# This may be replaced when dependencies are built.
