file(REMOVE_RECURSE
  "CMakeFiles/reliability_demo.dir/reliability_demo.cpp.o"
  "CMakeFiles/reliability_demo.dir/reliability_demo.cpp.o.d"
  "reliability_demo"
  "reliability_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
