# Empty compiler generated dependencies file for partially_connected.
# This may be replaced when dependencies are built.
