file(REMOVE_RECURSE
  "CMakeFiles/partially_connected.dir/partially_connected.cpp.o"
  "CMakeFiles/partially_connected.dir/partially_connected.cpp.o.d"
  "partially_connected"
  "partially_connected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partially_connected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
