# Empty dependencies file for bench_fig4_saturation_throughput.
# This may be replaced when dependencies are built.
