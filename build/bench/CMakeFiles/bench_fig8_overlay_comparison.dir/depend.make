# Empty dependencies file for bench_fig8_overlay_comparison.
# This may be replaced when dependencies are built.
