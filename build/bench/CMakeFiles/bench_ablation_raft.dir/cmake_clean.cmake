file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_raft.dir/bench_ablation_raft.cpp.o"
  "CMakeFiles/bench_ablation_raft.dir/bench_ablation_raft.cpp.o.d"
  "bench_ablation_raft"
  "bench_ablation_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
