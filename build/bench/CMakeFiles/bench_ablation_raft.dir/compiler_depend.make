# Empty compiler generated dependencies file for bench_ablation_raft.
# This may be replaced when dependencies are built.
