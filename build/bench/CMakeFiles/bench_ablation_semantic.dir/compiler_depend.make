# Empty compiler generated dependencies file for bench_ablation_semantic.
# This may be replaced when dependencies are built.
