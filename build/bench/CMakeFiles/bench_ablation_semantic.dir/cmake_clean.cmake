file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_semantic.dir/bench_ablation_semantic.cpp.o"
  "CMakeFiles/bench_ablation_semantic.dir/bench_ablation_semantic.cpp.o.d"
  "bench_ablation_semantic"
  "bench_ablation_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
