file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_overlay_selection.dir/bench_fig7_overlay_selection.cpp.o"
  "CMakeFiles/bench_fig7_overlay_selection.dir/bench_fig7_overlay_selection.cpp.o.d"
  "bench_fig7_overlay_selection"
  "bench_fig7_overlay_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_overlay_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
