# Empty compiler generated dependencies file for bench_fig7_overlay_selection.
# This may be replaced when dependencies are built.
