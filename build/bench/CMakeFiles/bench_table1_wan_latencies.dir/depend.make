# Empty dependencies file for bench_table1_wan_latencies.
# This may be replaced when dependencies are built.
