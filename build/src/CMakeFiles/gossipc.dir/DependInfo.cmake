
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/gossipc.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/gossipc.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/common/rng.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/gossipc.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/gossipc.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/core/report.cpp.o.d"
  "/root/repo/src/gossip/gossip_node.cpp" "src/CMakeFiles/gossipc.dir/gossip/gossip_node.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/gossip/gossip_node.cpp.o.d"
  "/root/repo/src/gossip/seen_cache.cpp" "src/CMakeFiles/gossipc.dir/gossip/seen_cache.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/gossip/seen_cache.cpp.o.d"
  "/root/repo/src/gossip/sliding_bloom.cpp" "src/CMakeFiles/gossipc.dir/gossip/sliding_bloom.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/gossip/sliding_bloom.cpp.o.d"
  "/root/repo/src/net/latency_model.cpp" "src/CMakeFiles/gossipc.dir/net/latency_model.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/net/latency_model.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/gossipc.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/gossipc.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/net/node.cpp.o.d"
  "/root/repo/src/net/region.cpp" "src/CMakeFiles/gossipc.dir/net/region.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/net/region.cpp.o.d"
  "/root/repo/src/overlay/analysis.cpp" "src/CMakeFiles/gossipc.dir/overlay/analysis.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/overlay/analysis.cpp.o.d"
  "/root/repo/src/overlay/graph.cpp" "src/CMakeFiles/gossipc.dir/overlay/graph.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/overlay/graph.cpp.o.d"
  "/root/repo/src/overlay/random_overlay.cpp" "src/CMakeFiles/gossipc.dir/overlay/random_overlay.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/overlay/random_overlay.cpp.o.d"
  "/root/repo/src/paxos/acceptor.cpp" "src/CMakeFiles/gossipc.dir/paxos/acceptor.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/paxos/acceptor.cpp.o.d"
  "/root/repo/src/paxos/coordinator.cpp" "src/CMakeFiles/gossipc.dir/paxos/coordinator.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/paxos/coordinator.cpp.o.d"
  "/root/repo/src/paxos/learner.cpp" "src/CMakeFiles/gossipc.dir/paxos/learner.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/paxos/learner.cpp.o.d"
  "/root/repo/src/paxos/message.cpp" "src/CMakeFiles/gossipc.dir/paxos/message.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/paxos/message.cpp.o.d"
  "/root/repo/src/paxos/process.cpp" "src/CMakeFiles/gossipc.dir/paxos/process.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/paxos/process.cpp.o.d"
  "/root/repo/src/paxos/value.cpp" "src/CMakeFiles/gossipc.dir/paxos/value.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/paxos/value.cpp.o.d"
  "/root/repo/src/raft/message.cpp" "src/CMakeFiles/gossipc.dir/raft/message.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/raft/message.cpp.o.d"
  "/root/repo/src/raft/replica.cpp" "src/CMakeFiles/gossipc.dir/raft/replica.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/raft/replica.cpp.o.d"
  "/root/repo/src/raft/semantics.cpp" "src/CMakeFiles/gossipc.dir/raft/semantics.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/raft/semantics.cpp.o.d"
  "/root/repo/src/semantic/paxos_semantics.cpp" "src/CMakeFiles/gossipc.dir/semantic/paxos_semantics.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/semantic/paxos_semantics.cpp.o.d"
  "/root/repo/src/semantic/peer_view.cpp" "src/CMakeFiles/gossipc.dir/semantic/peer_view.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/semantic/peer_view.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/gossipc.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/gossipc.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/stats/counters.cpp" "src/CMakeFiles/gossipc.dir/stats/counters.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/stats/counters.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/gossipc.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/saturation.cpp" "src/CMakeFiles/gossipc.dir/stats/saturation.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/stats/saturation.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/gossipc.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/transport/direct_transport.cpp" "src/CMakeFiles/gossipc.dir/transport/direct_transport.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/transport/direct_transport.cpp.o.d"
  "/root/repo/src/transport/gossip_transport.cpp" "src/CMakeFiles/gossipc.dir/transport/gossip_transport.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/transport/gossip_transport.cpp.o.d"
  "/root/repo/src/workload/client.cpp" "src/CMakeFiles/gossipc.dir/workload/client.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/workload/client.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/gossipc.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/gossipc.dir/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
