file(REMOVE_RECURSE
  "libgossipc.a"
)
