# Empty compiler generated dependencies file for gossipc.
# This may be replaced when dependencies are built.
