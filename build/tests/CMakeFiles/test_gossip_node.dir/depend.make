# Empty dependencies file for test_gossip_node.
# This may be replaced when dependencies are built.
