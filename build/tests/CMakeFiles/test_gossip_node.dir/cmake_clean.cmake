file(REMOVE_RECURSE
  "CMakeFiles/test_gossip_node.dir/test_gossip_node.cpp.o"
  "CMakeFiles/test_gossip_node.dir/test_gossip_node.cpp.o.d"
  "test_gossip_node"
  "test_gossip_node.pdb"
  "test_gossip_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
