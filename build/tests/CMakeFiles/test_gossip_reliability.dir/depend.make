# Empty dependencies file for test_gossip_reliability.
# This may be replaced when dependencies are built.
