file(REMOVE_RECURSE
  "CMakeFiles/test_gossip_reliability.dir/test_gossip_reliability.cpp.o"
  "CMakeFiles/test_gossip_reliability.dir/test_gossip_reliability.cpp.o.d"
  "test_gossip_reliability"
  "test_gossip_reliability.pdb"
  "test_gossip_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
