# Empty dependencies file for test_seen_cache.
# This may be replaced when dependencies are built.
