file(REMOVE_RECURSE
  "CMakeFiles/test_seen_cache.dir/test_seen_cache.cpp.o"
  "CMakeFiles/test_seen_cache.dir/test_seen_cache.cpp.o.d"
  "test_seen_cache"
  "test_seen_cache.pdb"
  "test_seen_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seen_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
