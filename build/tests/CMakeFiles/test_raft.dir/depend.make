# Empty dependencies file for test_raft.
# This may be replaced when dependencies are built.
