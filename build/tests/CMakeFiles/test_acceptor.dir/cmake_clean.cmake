file(REMOVE_RECURSE
  "CMakeFiles/test_acceptor.dir/test_acceptor.cpp.o"
  "CMakeFiles/test_acceptor.dir/test_acceptor.cpp.o.d"
  "test_acceptor"
  "test_acceptor.pdb"
  "test_acceptor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acceptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
