# Empty compiler generated dependencies file for test_acceptor.
# This may be replaced when dependencies are built.
