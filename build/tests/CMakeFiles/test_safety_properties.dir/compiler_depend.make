# Empty compiler generated dependencies file for test_safety_properties.
# This may be replaced when dependencies are built.
