file(REMOVE_RECURSE
  "CMakeFiles/test_safety_properties.dir/test_safety_properties.cpp.o"
  "CMakeFiles/test_safety_properties.dir/test_safety_properties.cpp.o.d"
  "test_safety_properties"
  "test_safety_properties.pdb"
  "test_safety_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safety_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
