# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_seen_cache[1]_include.cmake")
include("/root/repo/build/tests/test_gossip_node[1]_include.cmake")
include("/root/repo/build/tests/test_message[1]_include.cmake")
include("/root/repo/build/tests/test_acceptor[1]_include.cmake")
include("/root/repo/build/tests/test_learner[1]_include.cmake")
include("/root/repo/build/tests/test_coordinator[1]_include.cmake")
include("/root/repo/build/tests/test_process[1]_include.cmake")
include("/root/repo/build/tests/test_semantic[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_safety_properties[1]_include.cmake")
include("/root/repo/build/tests/test_crash_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_raft[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_regressions[1]_include.cmake")
include("/root/repo/build/tests/test_batching[1]_include.cmake")
include("/root/repo/build/tests/test_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_gossip_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_deployment[1]_include.cmake")
