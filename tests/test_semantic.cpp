// Unit tests: PeerView bookkeeping and the PaxosSemantics hooks — filtering
// rules F1/F2, the reversible aggregation rule A1, and their interplay.
#include <gtest/gtest.h>

#include "semantic/paxos_semantics.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::make_value;
using testutil::wrap;

// --- PeerView ---

TEST(PeerViewTest, MarkAndQuery) {
    PeerView pv(3);
    EXPECT_FALSE(pv.knows_decision(1));
    pv.mark_decision(1);
    EXPECT_TRUE(pv.knows_decision(1));
    EXPECT_FALSE(pv.knows_decision(2));
}

TEST(PeerViewTest, FloorCompression) {
    PeerView pv(3);
    pv.mark_decision(2);
    pv.mark_decision(3);
    EXPECT_EQ(pv.known_floor(), 1);
    EXPECT_EQ(pv.sparse_known(), 2u);
    pv.mark_decision(1);
    EXPECT_EQ(pv.known_floor(), 4);  // 1,2,3 compressed away
    EXPECT_EQ(pv.sparse_known(), 0u);
    EXPECT_TRUE(pv.knows_decision(2));
}

TEST(PeerViewTest, VoteCountingDistinctSenders) {
    PeerView pv(3);
    EXPECT_EQ(pv.record_vote(1, 1, 42, 0), 1);
    EXPECT_EQ(pv.record_vote(1, 1, 42, 0), 1);  // duplicate sender
    EXPECT_EQ(pv.record_vote(1, 1, 42, 1), 2);
    EXPECT_EQ(pv.record_vote(1, 2, 42, 2), 1);  // different round: own tally
    EXPECT_EQ(pv.record_vote(1, 1, 43, 2), 1);  // different digest: own tally
}

TEST(PeerViewTest, VoteStateDroppedOnceKnown) {
    PeerView pv(2);
    pv.record_vote(1, 1, 42, 0);
    EXPECT_EQ(pv.tracked_instances(), 1u);
    pv.mark_decision(1);
    EXPECT_EQ(pv.tracked_instances(), 0u);
    // Further votes for known instances saturate at quorum.
    EXPECT_EQ(pv.record_vote(1, 1, 42, 5), 2);
}

TEST(PeerViewTest, RejectsBadQuorum) {
    EXPECT_THROW(PeerView(0), std::invalid_argument);
}

// --- filtering ---

struct SemanticsFixture {
    PaxosSemantics sem{0, 3, PaxosSemantics::Options{}};  // self=0, quorum=3
    Value v = make_value(7, 1);

    GossipAppMessage msg_2b(ProcessId sender, InstanceId inst, Round round = 1) {
        return wrap(testutil::make_2b(sender, inst, round, v));
    }
    GossipAppMessage msg_decision(InstanceId inst) {
        return wrap(std::make_shared<DecisionMsg>(0, inst, v.id, v.digest()));
    }
};

TEST(SemanticFilterTest, F1DecisionSupersedesPhase2b) {
    SemanticsFixture f;
    EXPECT_TRUE(f.sem.validate(f.msg_decision(1), /*peer=*/9));
    EXPECT_FALSE(f.sem.validate(f.msg_2b(1, 1), 9));  // peer already knows
    EXPECT_EQ(f.sem.stats().filtered_phase2b, 1u);
    // Other instances unaffected.
    EXPECT_TRUE(f.sem.validate(f.msg_2b(1, 2), 9));
}

TEST(SemanticFilterTest, F2MajorityOf2bSupersedesFurther2b) {
    SemanticsFixture f;
    EXPECT_TRUE(f.sem.validate(f.msg_2b(0, 1), 9));
    EXPECT_TRUE(f.sem.validate(f.msg_2b(1, 1), 9));
    EXPECT_TRUE(f.sem.validate(f.msg_2b(2, 1), 9));  // completes the quorum
    EXPECT_FALSE(f.sem.validate(f.msg_2b(3, 1), 9));
    EXPECT_FALSE(f.sem.validate(f.msg_2b(4, 1), 9));
    EXPECT_EQ(f.sem.stats().filtered_phase2b, 2u);
}

TEST(SemanticFilterTest, PerPeerStateIsIndependent) {
    SemanticsFixture f;
    EXPECT_TRUE(f.sem.validate(f.msg_decision(1), 9));
    EXPECT_FALSE(f.sem.validate(f.msg_2b(1, 1), 9));
    EXPECT_TRUE(f.sem.validate(f.msg_2b(1, 1), 8));  // peer 8 knows nothing yet
}

TEST(SemanticFilterTest, DuplicateSendersDontCompleteQuorum) {
    SemanticsFixture f;
    EXPECT_TRUE(f.sem.validate(f.msg_2b(0, 1), 9));
    EXPECT_TRUE(f.sem.validate(f.msg_2b(0, 1), 9));
    EXPECT_TRUE(f.sem.validate(f.msg_2b(0, 1), 9));
    EXPECT_TRUE(f.sem.validate(f.msg_2b(1, 1), 9));  // still only 2 distinct
}

TEST(SemanticFilterTest, OtherMessageTypesPass) {
    SemanticsFixture f;
    auto p1a = wrap(std::make_shared<Phase1aMsg>(0, 1, 1));
    auto p2a = wrap(std::make_shared<Phase2aMsg>(0, 1, 1, f.v));
    auto cv = wrap(std::make_shared<ClientValueMsg>(0, f.v));
    EXPECT_TRUE(f.sem.validate(p1a, 9));
    EXPECT_TRUE(f.sem.validate(p2a, 9));
    EXPECT_TRUE(f.sem.validate(cv, 9));
    // Even for an instance the peer knows.
    f.sem.validate(f.msg_decision(1), 9);
    EXPECT_TRUE(f.sem.validate(wrap(std::make_shared<Phase2aMsg>(0, 1, 1, f.v)), 9));
}

TEST(SemanticFilterTest, DisabledFilteringPassesEverything) {
    PaxosSemantics sem{0, 3, PaxosSemantics::Options{.filtering = false, .aggregation = true}};
    SemanticsFixture f;
    sem.validate(f.msg_decision(1), 9);
    EXPECT_TRUE(sem.validate(f.msg_2b(1, 1), 9));
    EXPECT_EQ(sem.stats().filtered_phase2b, 0u);
}

TEST(SemanticFilterTest, AggregateVotesCountTowardF2) {
    SemanticsFixture f;
    auto agg = std::make_shared<Phase2bAggregateMsg>(
        5, 1, 1, f.v.id, f.v.digest(), std::vector<ProcessId>{0, 1, 2}, 0);
    GossipAppMessage m;
    m.id = agg->unique_key();
    m.origin = 5;
    m.aggregated = true;
    m.payload = agg;
    EXPECT_TRUE(f.sem.validate(m, 9));   // carries the full quorum
    EXPECT_FALSE(f.sem.validate(f.msg_2b(3, 1), 9));
}

// --- aggregation ---

TEST(SemanticAggregationTest, MergesIdentical2b) {
    SemanticsFixture f;
    std::vector<GossipAppMessage> pending{f.msg_2b(1, 1), f.msg_2b(2, 1), f.msg_2b(3, 1)};
    const auto out = f.sem.aggregate(pending, 9);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].aggregated);
    const auto& agg = static_cast<const Phase2bAggregateMsg&>(*out[0].payload);
    EXPECT_EQ(agg.senders(), (std::vector<ProcessId>{1, 2, 3}));
    EXPECT_EQ(agg.instance(), 1);
    EXPECT_EQ(f.sem.stats().aggregates_built, 1u);
    EXPECT_EQ(f.sem.stats().messages_merged, 2u);
}

TEST(SemanticAggregationTest, DistinctInstancesNotMerged) {
    SemanticsFixture f;
    std::vector<GossipAppMessage> pending{f.msg_2b(1, 1), f.msg_2b(1, 2)};
    const auto out = f.sem.aggregate(pending, 9);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_FALSE(out[0].aggregated);
}

TEST(SemanticAggregationTest, DistinctRoundsNotMerged) {
    SemanticsFixture f;
    std::vector<GossipAppMessage> pending{f.msg_2b(1, 1, /*round=*/1),
                                          f.msg_2b(2, 1, /*round=*/2)};
    EXPECT_EQ(f.sem.aggregate(pending, 9).size(), 2u);
}

TEST(SemanticAggregationTest, NonPhase2bUntouchedAndOrderPreserved) {
    SemanticsFixture f;
    auto p2a = wrap(std::make_shared<Phase2aMsg>(0, 1, 1, f.v));
    auto dec = f.msg_decision(2);
    std::vector<GossipAppMessage> pending{p2a, f.msg_2b(1, 1), dec, f.msg_2b(2, 1)};
    const auto out = f.sem.aggregate(pending, 9);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].id, p2a.id);          // untouched, in place
    EXPECT_TRUE(out[1].aggregated);        // at the first 2b's position
    EXPECT_EQ(out[2].id, dec.id);
}

TEST(SemanticAggregationTest, SingletonsLeftAlone) {
    SemanticsFixture f;
    std::vector<GossipAppMessage> pending{f.msg_2b(1, 1)};
    const auto out = f.sem.aggregate(pending, 9);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].aggregated);
    EXPECT_EQ(f.sem.stats().aggregates_built, 0u);
}

TEST(SemanticAggregationTest, DisabledAggregationPassesThrough) {
    PaxosSemantics sem{0, 3, PaxosSemantics::Options{.filtering = true, .aggregation = false}};
    SemanticsFixture f;
    std::vector<GossipAppMessage> pending{f.msg_2b(1, 1), f.msg_2b(2, 1)};
    EXPECT_EQ(sem.aggregate(pending, 9).size(), 2u);
}

TEST(SemanticAggregationTest, RoundTripReconstructsOriginals) {
    SemanticsFixture f;
    std::vector<GossipAppMessage> pending{f.msg_2b(1, 1), f.msg_2b(2, 1), f.msg_2b(3, 1)};
    const std::vector<GossipMsgId> original_ids{pending[0].id, pending[1].id, pending[2].id};
    const auto out = f.sem.aggregate(pending, 9);
    ASSERT_EQ(out.size(), 1u);
    const auto rebuilt = f.sem.disaggregate(out[0]);
    ASSERT_EQ(rebuilt.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        // Ids match the originals, so the seen cache deduplicates across
        // aggregated and plain paths (the rule is reversible).
        EXPECT_EQ(rebuilt[i].id, original_ids[i]);
        EXPECT_FALSE(rebuilt[i].aggregated);
        const auto& m = static_cast<const Phase2bMsg&>(*rebuilt[i].payload);
        EXPECT_EQ(m.instance(), 1);
        EXPECT_EQ(m.value_digest(), f.v.digest());
    }
    EXPECT_EQ(f.sem.stats().disaggregations, 1u);
}

TEST(SemanticAggregationTest, DisaggregateOfPlainMessageIsIdentity) {
    SemanticsFixture f;
    const auto m = f.msg_2b(1, 1);
    const auto out = f.sem.disaggregate(m);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].id, m.id);
}

TEST(SemanticAggregationTest, AttemptsMergedToMax) {
    SemanticsFixture f;
    std::vector<GossipAppMessage> pending{
        wrap(testutil::make_2b(1, 1, 1, f.v, /*attempt=*/0)),
        wrap(testutil::make_2b(2, 1, 1, f.v, /*attempt=*/3)),
    };
    const auto out = f.sem.aggregate(pending, 9);
    ASSERT_EQ(out.size(), 1u);
    const auto& agg = static_cast<const Phase2bAggregateMsg&>(*out[0].payload);
    EXPECT_EQ(agg.attempt(), 3);
}

TEST(SemanticsTest, ViewOfAccessor) {
    SemanticsFixture f;
    EXPECT_EQ(f.sem.view_of(9), nullptr);
    f.sem.validate(f.msg_2b(1, 1), 9);
    ASSERT_NE(f.sem.view_of(9), nullptr);
    EXPECT_EQ(f.sem.view_of(9)->quorum(), 3);
}

}  // namespace
}  // namespace gossipc
