// Unit tests: histogram/CDF/percentiles and saturation-knee detection.
#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/saturation.hpp"

namespace gossipc {
namespace {

TEST(HistogramTest, BasicMoments) {
    Histogram h;
    for (const double s : {1.0, 2.0, 3.0, 4.0}) h.add(s);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_NEAR(h.stddev(), 1.29099, 1e-4);
}

TEST(HistogramTest, EmptyIsZero) {
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_TRUE(h.cdf().empty());
}

TEST(HistogramTest, PercentilesNearestRank) {
    Histogram h;
    for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_THROW(h.percentile(-1), std::invalid_argument);
    EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(HistogramTest, PercentileAfterMoreSamples) {
    Histogram h;
    h.add(10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
    h.add(20.0);
    h.add(30.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 20.0);  // re-sorts after growth
}

TEST(HistogramTest, CdfMonotone) {
    Histogram h;
    for (const double s : {5.0, 1.0, 3.0, 2.0, 4.0}) h.add(s);
    const auto cdf = h.cdf(10);
    ASSERT_EQ(cdf.size(), 10u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().first, 5.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
    Histogram a, b;
    a.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(SaturationTest, KneeAtPowerMaximum) {
    // Throughput tracks offered load until latency explodes.
    std::vector<SweepPoint> sweep{
        {10, 10, 100},  {20, 20, 100}, {40, 40, 105},
        {80, 80, 120},  // knee: best throughput/latency
        {160, 110, 400}, {320, 115, 1500},
    };
    EXPECT_EQ(saturation_index(sweep), 3u);
}

TEST(SaturationTest, MonotoneLatencyPicksLast) {
    std::vector<SweepPoint> sweep{{10, 10, 100}, {20, 20, 100}, {40, 40, 100}};
    EXPECT_EQ(saturation_index(sweep), 2u);
}

TEST(SaturationTest, EmptyAndDegenerate) {
    EXPECT_EQ(saturation_index({}), 0u);
    std::vector<SweepPoint> zero_latency{{10, 10, 0.0}};
    EXPECT_EQ(saturation_index(zero_latency), 0u);
}

}  // namespace
}  // namespace gossipc
