// Unit tests: histogram/CDF/percentiles, the metrics registry, and
// saturation-knee detection.
#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/registry.hpp"
#include "stats/saturation.hpp"

namespace gossipc {
namespace {

TEST(HistogramTest, BasicMoments) {
    Histogram h;
    for (const double s : {1.0, 2.0, 3.0, 4.0}) h.add(s);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_NEAR(h.stddev(), 1.29099, 1e-4);
}

TEST(HistogramTest, EmptyIsZero) {
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_TRUE(h.cdf().empty());
}

TEST(HistogramTest, PercentilesNearestRank) {
    Histogram h;
    for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_THROW(h.percentile(-1), std::invalid_argument);
    EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(HistogramTest, PercentileAfterMoreSamples) {
    Histogram h;
    h.add(10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
    h.add(20.0);
    h.add(30.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 20.0);  // re-sorts after growth
}

TEST(HistogramTest, CdfMonotone) {
    Histogram h;
    for (const double s : {5.0, 1.0, 3.0, 2.0, 4.0}) h.add(s);
    const auto cdf = h.cdf(10);
    ASSERT_EQ(cdf.size(), 10u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().first, 5.0);
}

TEST(HistogramTest, PercentileHundredIsExactMaximum) {
    Histogram h;
    for (const double s : {7.0, 3.0, 11.0}) h.add(s);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 11.0);
}

TEST(HistogramTest, CdfMorePointsThanSamplesRepeatsValues) {
    // With fewer samples than requested points the same sample serves several
    // fractions: values are non-decreasing (duplicates allowed), fractions
    // strictly increase, and the curve still ends at (max, 1.0).
    Histogram h;
    for (const double s : {1.0, 2.0, 3.0}) h.add(s);
    const auto cdf = h.cdf(9);
    ASSERT_EQ(cdf.size(), 9u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    // Each of the 3 samples covers 3 of the 9 points.
    EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
    EXPECT_DOUBLE_EQ(cdf[2].first, 1.0);
    EXPECT_DOUBLE_EQ(cdf[3].first, 2.0);
    EXPECT_DOUBLE_EQ(cdf[5].first, 2.0);
    EXPECT_DOUBLE_EQ(cdf[6].first, 3.0);
    EXPECT_DOUBLE_EQ(cdf.back().first, 3.0);
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
    Histogram a, b;
    a.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(MetricsRegistryTest, FindOrCreateAndSnapshotSortedByName) {
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.counter("z.count").add(3);
    reg.gauge("a.level").set(2.5);
    reg.histogram("m.lat").add(10.0);
    reg.histogram("m.lat").add(20.0);
    EXPECT_EQ(reg.size(), 3u);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.level");
    EXPECT_EQ(snap[0].kind, MetricsRegistry::Kind::Gauge);
    EXPECT_DOUBLE_EQ(snap[0].value, 2.5);
    EXPECT_EQ(snap[1].name, "m.lat");
    EXPECT_EQ(snap[1].kind, MetricsRegistry::Kind::Histogram);
    EXPECT_DOUBLE_EQ(snap[1].value, 2.0);  // histogram value = sample count
    EXPECT_DOUBLE_EQ(snap[1].mean, 15.0);
    EXPECT_DOUBLE_EQ(snap[1].max, 20.0);
    EXPECT_EQ(snap[2].name, "z.count");
    EXPECT_DOUBLE_EQ(snap[2].value, 3.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAcrossInsertions) {
    MetricsRegistry reg;
    auto& c = reg.counter("first");
    for (int i = 0; i < 100; ++i) {
        std::string name = "c";  // (not "c" + to_string: GCC 12 -Wrestrict FP)
        name += std::to_string(i);
        reg.counter(name);
    }
    c.add(7);
    EXPECT_EQ(reg.counter("first").value, 7u);  // same object, not a copy
}

TEST(MetricsRegistryTest, NameReuseAcrossKindsThrows) {
    MetricsRegistry reg;
    reg.counter("dup");
    EXPECT_THROW(reg.gauge("dup"), std::logic_error);
    EXPECT_THROW(reg.histogram("dup"), std::logic_error);
    EXPECT_NO_THROW(reg.counter("dup"));  // same kind: find, not create
}

TEST(SaturationTest, KneeAtPowerMaximum) {
    // Throughput tracks offered load until latency explodes.
    std::vector<SweepPoint> sweep{
        {10, 10, 100},  {20, 20, 100}, {40, 40, 105},
        {80, 80, 120},  // knee: best throughput/latency
        {160, 110, 400}, {320, 115, 1500},
    };
    EXPECT_EQ(saturation_index(sweep), 3u);
}

TEST(SaturationTest, MonotoneLatencyPicksLast) {
    std::vector<SweepPoint> sweep{{10, 10, 100}, {20, 20, 100}, {40, 40, 100}};
    EXPECT_EQ(saturation_index(sweep), 2u);
}

TEST(SaturationTest, EmptyAndDegenerate) {
    EXPECT_EQ(saturation_index({}), 0u);
    std::vector<SweepPoint> zero_latency{{10, 10, 0.0}};
    EXPECT_EQ(saturation_index(zero_latency), 0u);
}

TEST(SaturationTest, FindSaturationFlagsRealKnee) {
    std::vector<SweepPoint> sweep{
        {10, 10, 100},  {20, 20, 100}, {40, 40, 105},
        {80, 80, 120},  {160, 110, 400}, {320, 115, 1500},
    };
    const SaturationResult r = find_saturation(sweep);
    EXPECT_EQ(r.index, 3u);
    EXPECT_TRUE(r.saturated);  // power falls past the knee
}

TEST(SaturationTest, FindSaturationRejectsMonotoneSweep) {
    // Throughput (and power) still rising at the top of the range: the max-
    // power point is the last one, so the sweep never saturated and the
    // index must not be presented as a knee.
    std::vector<SweepPoint> sweep{{10, 10, 100}, {20, 20, 100}, {40, 40, 90}};
    const SaturationResult r = find_saturation(sweep);
    EXPECT_EQ(r.index, 2u);
    EXPECT_FALSE(r.saturated);
}

TEST(SaturationTest, FindSaturationDegenerateNotSaturated) {
    EXPECT_FALSE(find_saturation({}).saturated);
    std::vector<SweepPoint> zero_latency{{10, 10, 0.0}};
    const SaturationResult r = find_saturation(zero_latency);
    EXPECT_EQ(r.index, 0u);
    EXPECT_FALSE(r.saturated);
}

TEST(SaturationTest, FindSaturationIgnoresTrailingInvalidPoints) {
    // A zero-latency point after the knee is not evidence of a downturn.
    std::vector<SweepPoint> sweep{{10, 10, 100}, {20, 20, 100}, {40, 0, 0.0}};
    const SaturationResult r = find_saturation(sweep);
    EXPECT_EQ(r.index, 1u);
    EXPECT_FALSE(r.saturated);
}

}  // namespace
}  // namespace gossipc
