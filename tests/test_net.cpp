// Unit tests: regions, the latency model (Table 1 row verbatim), node CPU
// model, loss injection, and network link semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "net/latency_model.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/region.hpp"
#include "sim/simulator.hpp"

namespace gossipc {
namespace {

class TestBody final : public MessageBody {
public:
    explicit TestBody(std::uint32_t size) : size_(size) {}
    std::uint32_t wire_size() const override { return size_; }
    std::string describe() const override { return "test"; }

private:
    std::uint32_t size_;
};

NetMessage msg(ProcessId from, ProcessId to, std::uint32_t size = 100) {
    return NetMessage{from, to, std::make_shared<TestBody>(size)};
}

// --- regions ---

TEST(RegionTest, CoordinatorInNorthVirginia) {
    EXPECT_EQ(region_of_process(0, 105), Region::NorthVirginia);
    EXPECT_EQ(region_of_process(0, 13), Region::NorthVirginia);
}

TEST(RegionTest, EvenSpread) {
    // n=53: coordinator + 4 processes per region.
    std::array<int, kNumRegions> counts{};
    for (ProcessId id = 1; id < 53; ++id) {
        counts[static_cast<std::size_t>(region_of_process(id, 53))]++;
    }
    for (const int c : counts) EXPECT_EQ(c, 4);
}

TEST(RegionTest, NamesAreDistinct) {
    std::set<std::string_view> names;
    for (const Region r : all_regions()) names.insert(region_name(r));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumRegions));
}

// --- latency model ---

TEST(LatencyModelTest, Table1RowVerbatim) {
    // Table 1: one-way latencies from North Virginia, in ms.
    const auto& m = LatencyModel::aws();
    const std::pair<Region, double> expected[] = {
        {Region::Canada, 7},        {Region::NorthCalifornia, 30}, {Region::Oregon, 39},
        {Region::London, 38},       {Region::Ireland, 33},         {Region::Frankfurt, 44},
        {Region::SaoPaulo, 58},     {Region::Tokyo, 73},           {Region::Mumbai, 93},
        {Region::Sydney, 98},       {Region::Seoul, 87},           {Region::Singapore, 105},
    };
    for (const auto& [region, ms] : expected) {
        EXPECT_DOUBLE_EQ(m.one_way(Region::NorthVirginia, region).as_millis(), ms)
            << region_name(region);
    }
}

TEST(LatencyModelTest, Symmetric) {
    const auto& m = LatencyModel::aws();
    for (const Region a : all_regions()) {
        for (const Region b : all_regions()) {
            EXPECT_EQ(m.one_way(a, b), m.one_way(b, a));
        }
    }
}

TEST(LatencyModelTest, IntraRegionSmall) {
    const auto& m = LatencyModel::aws();
    for (const Region a : all_regions()) {
        EXPECT_EQ(m.one_way(a, a), m.intra_region());
        EXPECT_LT(m.intra_region(), SimTime::millis(1));
    }
}

TEST(LatencyModelTest, RttIsTwiceOneWay) {
    const auto& m = LatencyModel::aws();
    EXPECT_EQ(m.rtt(Region::NorthVirginia, Region::Tokyo),
              m.one_way(Region::NorthVirginia, Region::Tokyo) * 2);
}

TEST(LatencyModelTest, UniformModel) {
    const auto m = LatencyModel::uniform(SimTime::millis(25));
    EXPECT_EQ(m.one_way(Region::Tokyo, Region::Canada), SimTime::millis(25));
    EXPECT_EQ(m.one_way(Region::Tokyo, Region::Tokyo), m.intra_region());
}

// --- network & node ---

struct NetFixture {
    Simulator sim;
    Network net;
    explicit NetFixture(int n, Network::Params p = {}) : net(sim, LatencyModel::aws(), n, p) {}
};

TEST(NetworkTest, TransmitWithoutLinkThrows) {
    NetFixture f(4);
    EXPECT_THROW(f.net.transmit(msg(0, 1), SimTime::zero()), std::logic_error);
}

TEST(NetworkTest, SelfLinkRejected) {
    NetFixture f(4);
    EXPECT_THROW(f.net.allow_link(2, 2), std::invalid_argument);
}

TEST(NetworkTest, DeliversAfterPropagationDelay) {
    Network::Params p;
    p.jitter_frac = 0.0;
    NetFixture f(14, p);
    f.net.allow_link(0, 1);  // process 1 is in NorthVirginia region? id1 -> region 0
    int received = 0;
    SimTime at = SimTime::zero();
    f.net.node(1).set_receive_handler([&](const NetMessage&, CpuContext& ctx) {
        ++received;
        at = ctx.now();
    });
    f.net.transmit(msg(0, 1, 0), SimTime::zero());
    f.sim.run_until_idle();
    EXPECT_EQ(received, 1);
    const SimTime expected = f.net.propagation_delay(0, 1) +
                             f.net.node(1).params().recv_cost;
    EXPECT_EQ(at, expected);
}

TEST(NetworkTest, SerializationDelayScalesWithSize) {
    Network::Params p;
    p.jitter_frac = 0.0;
    p.bandwidth_bytes_per_us = 100.0;
    NetFixture f(4, p);
    f.net.allow_link(0, 1);
    std::vector<SimTime> arrivals;
    f.net.node(1).set_receive_handler(
        [&](const NetMessage&, CpuContext& ctx) { arrivals.push_back(ctx.now()); });
    f.net.transmit(msg(0, 1, 10000), SimTime::zero());  // 100us serialization
    f.sim.run_until_idle();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_GE(arrivals[0] - f.net.propagation_delay(0, 1), SimTime::micros(100));
}

TEST(NetworkTest, FifoPerLink) {
    NetFixture f(4);  // jitter on: FIFO must still hold
    f.net.allow_link(0, 1);
    std::vector<std::uint32_t> sizes;
    f.net.node(1).set_receive_handler(
        [&](const NetMessage& m, CpuContext&) { sizes.push_back(m.wire_size()); });
    for (std::uint32_t s = 1; s <= 20; ++s) f.net.transmit(msg(0, 1, s), SimTime::zero());
    f.sim.run_until_idle();
    ASSERT_EQ(sizes.size(), 20u);
    for (std::uint32_t s = 1; s <= 20; ++s) EXPECT_EQ(sizes[s - 1], s);
}

TEST(NetworkTest, JitterBounded) {
    Network::Params p;
    p.jitter_frac = 0.05;
    NetFixture f(14, p);
    f.net.allow_link(0, 8);  // id 8 -> region 7 (SaoPaulo)? region_of_process(8,14)=(8-1)%13=7
    std::vector<SimTime> arrivals;
    f.net.node(8).set_receive_handler(
        [&](const NetMessage&, CpuContext& ctx) { arrivals.push_back(ctx.now()); });
    for (int i = 0; i < 50; ++i) f.net.transmit(msg(0, 8, 0), SimTime::zero());
    f.sim.run_until_idle();
    const double base_ms = f.net.propagation_delay(0, 8).as_millis();
    for (const auto a : arrivals) {
        EXPECT_GE(a.as_millis(), base_ms * 0.95 - 0.001);
        // FIFO + recv costs make later arrivals slightly later; allow slack.
        EXPECT_LE(a.as_millis(), base_ms * 1.05 + 1.0);
    }
}

TEST(NodeTest, CpuSerializesWork) {
    Network::Params p;
    p.jitter_frac = 0.0;
    p.node.recv_cost = SimTime::micros(100);
    p.node.cpu_ns_per_byte = 0.0;
    NetFixture f(4, p);
    f.net.allow_link(0, 1);
    std::vector<SimTime> completions;
    f.net.node(1).set_receive_handler(
        [&](const NetMessage&, CpuContext& ctx) { completions.push_back(ctx.now()); });
    for (int i = 0; i < 5; ++i) f.net.transmit(msg(0, 1, 0), SimTime::zero());
    f.sim.run_until_idle();
    ASSERT_EQ(completions.size(), 5u);
    for (std::size_t i = 1; i < completions.size(); ++i) {
        EXPECT_EQ(completions[i] - completions[i - 1], SimTime::micros(100));
    }
}

TEST(NodeTest, BacklogGrowsUnderOverload) {
    Network::Params p;
    p.jitter_frac = 0.0;
    p.node.recv_cost = SimTime::millis(10);
    NetFixture f(4, p);
    f.net.allow_link(0, 1);
    f.net.node(1).set_receive_handler([](const NetMessage&, CpuContext&) {});
    for (int i = 0; i < 100; ++i) f.net.transmit(msg(0, 1, 0), SimTime::zero());
    // Run just past the first arrival: CPU now owes ~1s of work.
    f.sim.run_until(f.net.propagation_delay(0, 1) + SimTime::millis(50));
    EXPECT_GT(f.net.node(1).backlog(), SimTime::millis(100));
}

TEST(NodeTest, QueueOverflowDropsReceives) {
    Network::Params p;
    p.jitter_frac = 0.0;
    p.node.recv_cost = SimTime::millis(1);
    p.node.task_queue_cap = 10;
    NetFixture f(4, p);
    f.net.allow_link(0, 1);
    int received = 0;
    f.net.node(1).set_receive_handler([&](const NetMessage&, CpuContext&) { ++received; });
    for (int i = 0; i < 100; ++i) f.net.transmit(msg(0, 1, 0), SimTime::zero());
    f.sim.run_until_idle();
    const auto& c = f.net.node(1).counters();
    EXPECT_EQ(c.arrivals, 100u);
    EXPECT_GT(c.queue_drops, 0u);
    EXPECT_EQ(c.received + c.queue_drops, 100u);
    EXPECT_EQ(static_cast<std::uint64_t>(received), c.received);
}

TEST(NodeTest, LossInjectionApproximatesRate) {
    NetFixture f(4);
    f.net.allow_link(0, 1);
    f.net.node(1).set_loss(0.3, Rng(99));
    f.net.node(1).set_receive_handler([](const NetMessage&, CpuContext&) {});
    for (int i = 0; i < 5000; ++i) f.net.transmit(msg(0, 1, 0), SimTime::zero());
    f.sim.run_until_idle();
    const auto& c = f.net.node(1).counters();
    EXPECT_NEAR(static_cast<double>(c.loss_drops) / 5000.0, 0.3, 0.03);
}

TEST(NodeTest, CrashDropsTrafficAndRecovers) {
    NetFixture f(4);
    f.net.allow_link(0, 1);
    int received = 0;
    f.net.node(1).set_receive_handler([&](const NetMessage&, CpuContext&) { ++received; });
    f.net.node(1).crash();
    f.net.transmit(msg(0, 1, 0), SimTime::zero());
    f.sim.run_until_idle();
    EXPECT_EQ(received, 0);
    f.net.node(1).recover();
    f.net.transmit(msg(0, 1, 0), f.sim.now());
    f.sim.run_until_idle();
    EXPECT_EQ(received, 1);
}

TEST(NodeTest, TransmitInTaskConsumesSendCost) {
    Network::Params p;
    p.jitter_frac = 0.0;
    p.node.send_cost = SimTime::micros(50);
    p.node.cpu_ns_per_byte = 0.0;
    NetFixture f(4, p);
    f.net.allow_link(0, 1);
    f.net.node(1).set_receive_handler([](const NetMessage&, CpuContext&) {});
    SimTime after = SimTime::zero();
    f.net.node(0).post([&](CpuContext& ctx) {
        const SimTime before = ctx.now();
        f.net.node(0).transmit_in_task(msg(0, 1, 0), ctx);
        after = ctx.now() - before;
    });
    f.sim.run_until_idle();
    EXPECT_EQ(after, SimTime::micros(50));
    EXPECT_EQ(f.net.node(0).counters().sent, 1u);
}

TEST(NetworkTest, UniformLossAppliesToAllNodes) {
    NetFixture f(5);
    f.net.set_uniform_loss(0.5);
    for (ProcessId id = 0; id < 5; ++id) {
        EXPECT_DOUBLE_EQ(f.net.node(id).loss_rate(), 0.5);
    }
}

// Regression: set_uniform_loss used to re-derive every node's loss stream on
// each call, rewinding the RNGs — a mid-run rate change replayed the exact
// drop pattern already consumed. Streams must be derived once; later calls
// only adjust the rate.
TEST(NetworkTest, UniformLossReapplyDoesNotRewindStreams) {
    Network::Params p;
    p.jitter_frac = 0.0;
    NetFixture a(4, p), b(4, p);  // identical seeds
    for (NetFixture* f : {&a, &b}) {
        f->net.allow_link(0, 1);
        f->net.set_uniform_loss(0.3);
    }
    std::vector<std::uint32_t> got_a, got_b;
    a.net.node(1).set_receive_handler(
        [&](const NetMessage& m, CpuContext&) { got_a.push_back(m.wire_size()); });
    b.net.node(1).set_receive_handler(
        [&](const NetMessage& m, CpuContext&) { got_b.push_back(m.wire_size()); });
    for (std::uint32_t s = 1; s <= 500; ++s) a.net.transmit(msg(0, 1, s), SimTime::zero());
    for (std::uint32_t s = 1; s <= 250; ++s) b.net.transmit(msg(0, 1, s), SimTime::zero());
    b.net.set_uniform_loss(0.3);  // must be a no-op on the streams
    for (std::uint32_t s = 251; s <= 500; ++s) b.net.transmit(msg(0, 1, s), SimTime::zero());
    a.sim.run_until_idle();
    b.sim.run_until_idle();
    EXPECT_EQ(got_a, got_b);  // same drop pattern despite the re-apply
    EXPECT_GT(got_a.size(), 0u);
    EXPECT_LT(got_a.size(), 500u);  // losses actually happened
}

// --- link-level fault primitives (fault engine) ---

TEST(NetworkTest, CutLinkDropsSilentlyAndRestores) {
    NetFixture f(4);
    f.net.allow_link(0, 1);
    int received = 0;
    f.net.node(1).set_receive_handler([&](const NetMessage&, CpuContext&) { ++received; });
    f.net.set_link_cut(0, 1, true);
    EXPECT_TRUE(f.net.link_cut(0, 1));
    EXPECT_TRUE(f.net.link_cut(1, 0));  // cuts are symmetric
    f.net.transmit(msg(0, 1), SimTime::zero());  // no throw, unlike disallowed
    f.sim.run_until_idle();
    EXPECT_EQ(received, 0);
    EXPECT_EQ(f.net.fault_counters().cut_drops, 1u);
    f.net.clear_all_cuts();
    f.net.transmit(msg(0, 1), f.sim.now());
    f.sim.run_until_idle();
    EXPECT_EQ(received, 1);
}

TEST(NetworkTest, LinkFaultLossIsDirectional) {
    NetFixture f(4);
    f.net.allow_link(0, 1);
    int fwd = 0, rev = 0;
    f.net.node(1).set_receive_handler([&](const NetMessage&, CpuContext&) { ++fwd; });
    f.net.node(0).set_receive_handler([&](const NetMessage&, CpuContext&) { ++rev; });
    LinkFaultSpec spec;
    spec.loss = 1.0;
    f.net.set_link_fault(0, 1, spec);  // only the 0 -> 1 direction
    for (int i = 0; i < 10; ++i) {
        f.net.transmit(msg(0, 1), SimTime::zero());
        f.net.transmit(msg(1, 0), SimTime::zero());
    }
    f.sim.run_until_idle();
    EXPECT_EQ(fwd, 0);   // faulted direction fully lossy
    EXPECT_EQ(rev, 10);  // reverse direction untouched (asymmetric)
    EXPECT_EQ(f.net.fault_counters().loss_drops, 10u);
    f.net.clear_link_fault(0, 1);
    f.net.transmit(msg(0, 1), f.sim.now());
    f.sim.run_until_idle();
    EXPECT_EQ(fwd, 1);
}

TEST(NetworkTest, LinkFaultDelaySpikeAddsExactDelay) {
    Network::Params p;
    p.jitter_frac = 0.0;
    NetFixture f(4, p);
    f.net.allow_link(0, 1);
    SimTime at = SimTime::zero();
    f.net.node(1).set_receive_handler(
        [&](const NetMessage&, CpuContext& ctx) { at = ctx.now(); });
    LinkFaultSpec spec;
    spec.extra_delay = SimTime::millis(5);
    f.net.set_link_fault(0, 1, spec);
    f.net.transmit(msg(0, 1, 0), SimTime::zero());
    f.sim.run_until_idle();
    EXPECT_EQ(at, f.net.propagation_delay(0, 1) + SimTime::millis(5) +
                      f.net.node(1).params().recv_cost);
}

TEST(NetworkTest, LinkFaultDuplicateDeliversTwice) {
    NetFixture f(4);
    f.net.allow_link(0, 1);
    int received = 0;
    f.net.node(1).set_receive_handler([&](const NetMessage&, CpuContext&) { ++received; });
    LinkFaultSpec spec;
    spec.duplicate = 1.0;
    f.net.set_link_fault(0, 1, spec);
    for (int i = 0; i < 10; ++i) f.net.transmit(msg(0, 1), SimTime::zero());
    f.sim.run_until_idle();
    EXPECT_EQ(received, 20);
    EXPECT_EQ(f.net.fault_counters().duplicates, 10u);
}

TEST(NetworkTest, LinkFaultReorderCanOvertakeFifo) {
    Network::Params p;
    p.jitter_frac = 0.0;
    NetFixture f(4, p);
    f.net.allow_link(0, 1);
    std::vector<std::uint32_t> order;
    f.net.node(1).set_receive_handler(
        [&](const NetMessage& m, CpuContext&) { order.push_back(m.wire_size()); });
    LinkFaultSpec spec;
    spec.reorder_window = SimTime::millis(5);
    f.net.set_link_fault(0, 1, spec);
    for (std::uint32_t s = 1; s <= 30; ++s) f.net.transmit(msg(0, 1, s), SimTime::zero());
    f.sim.run_until_idle();
    ASSERT_EQ(order.size(), 30u);
    EXPECT_EQ(f.net.fault_counters().reordered, 30u);
    // Every message arrived, but not in FIFO order.
    std::vector<std::uint32_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t s = 1; s <= 30; ++s) EXPECT_EQ(sorted[s - 1], s);
    EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(NetworkTest, FaultFreeTrafficUnchangedByEngine) {
    // Installing a fault on one link must not perturb any other link's
    // timing: the fault RNG is consumed only on faulted traversals.
    Network::Params p;
    NetFixture a(4, p), b(4, p);
    for (NetFixture* f : {&a, &b}) {
        f->net.allow_link(0, 1);
        f->net.allow_link(2, 3);
    }
    LinkFaultSpec spec;
    spec.loss = 0.5;
    spec.duplicate = 0.5;
    b.net.set_link_fault(2, 3, spec);  // other link entirely
    std::vector<SimTime> times_a, times_b;
    a.net.node(1).set_receive_handler(
        [&](const NetMessage&, CpuContext& ctx) { times_a.push_back(ctx.now()); });
    b.net.node(1).set_receive_handler(
        [&](const NetMessage&, CpuContext& ctx) { times_b.push_back(ctx.now()); });
    for (int i = 0; i < 20; ++i) {
        a.net.transmit(msg(0, 1), SimTime::zero());
        b.net.transmit(msg(0, 1), SimTime::zero());
    }
    a.sim.run_until_idle();
    b.sim.run_until_idle();
    EXPECT_EQ(times_a, times_b);  // bit-identical arrivals
}

}  // namespace
}  // namespace gossipc
