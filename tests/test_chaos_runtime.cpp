// Runtime chaos bridge suite (DESIGN.md §13), registered under the
// chaos.runtime. ctest prefix: every FaultSchedule the simulator can replay
// is replayed here against the *real* runtime stack — GatedTransport facades
// over UdpLink + RealTransport, datagrams through the deterministic
// lossy-link harness, faults driven from the reactor's timer queue by
// ChaosBridge.
//
// The headline assertions mirror the simulator chaos suite's: a seeded
// light/moderate/heavy/heavy-failover sweep across all three setups must
// keep P-AGR-1 (gap-free, identical learner logs on every live node) over
// real datagrams, the permanent-coordinator-crash profile must leave zero
// live-client values permanently unordered, and replaying the same
// (profile, seed) must produce a byte-identical injected-fault log. On top
// of that: crash-gap re-baseline over real datagrams (suspect -> restore on
// a plain restart, takeover + relearn on a wiped coordinator restart), a
// crash/restart-only schedule over the real TCP loopback stack, and the
// metrics-registry names the runtime fault-pressure report publishes.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "detect/failure_detector.hpp"
#include "fault/chaos.hpp"
#include "fault/datagram_faults.hpp"
#include "fault/fault_schedule.hpp"
#include "gossip/hooks.hpp"
#include "overlay/random_overlay.hpp"
#include "paxos/process.hpp"
#include "runtime/chaos_bridge.hpp"
#include "runtime/conn_manager.hpp"
#include "runtime/gated_transport.hpp"
#include "runtime/lossy_link.hpp"
#include "runtime/real_transport.hpp"
#include "runtime/runtime_metrics.hpp"
#include "runtime/tcp.hpp"
#include "runtime/udp_link.hpp"
#include "semantic/paxos_semantics.hpp"
#include "stats/registry.hpp"

namespace gossipc::runtime {
namespace {

enum class Setup { Baseline, Gossip, Semantic };

const char* setup_name(Setup s) {
    switch (s) {
        case Setup::Baseline: return "baseline";
        case Setup::Gossip: return "gossip";
        case Setup::Semantic: return "semantic";
    }
    return "?";
}

/// Fast link parameters (mirroring the chaos.udp. suite) plus the node's
/// current link incarnation, bumped on every restart.
UdpLink::Params chaos_link_params(std::uint8_t epoch) {
    UdpLink::Params p;
    p.ack_delay = SimTime::millis(2);
    p.rto_initial = SimTime::millis(15);
    p.rto_sweep = SimTime::millis(5);
    p.keepalive = SimTime::millis(50);
    p.epoch = epoch;
    return p;
}

struct FailoverRecord {
    FailoverEvent event;
    ProcessId subject;
};

/// One cluster member. The GatedTransport facade and the PaxosProcess are
/// stable for the whole run; the socket stack underneath (UdpLink +
/// RealTransport) is destroyed on crash and rebuilt on restart with a
/// bumped link epoch, exactly what a real process restart does.
struct ChaosNode {
    std::unique_ptr<GatedTransport> gate;
    PassThroughHooks pass_through;
    std::unique_ptr<PaxosSemantics> semantics;
    std::unique_ptr<UdpLink> link;                ///< UDP lane
    std::unique_ptr<ConnectionManager> conns;     ///< TCP lane
    std::unique_ptr<RealTransport> transport;
    std::unique_ptr<PaxosProcess> proc;
    std::vector<FailoverRecord> failover_events;
    std::uint8_t epoch = 0;
    bool down = false;
};

/// In-process real-runtime cluster driven by a ChaosBridge: the runtime twin
/// of the simulator's Deployment + FaultInjector.
class RuntimeChaosCluster {
public:
    RuntimeChaosCluster(int n, Setup setup, std::uint64_t seed, FaultSchedule schedule)
        : n_(n),
          setup_(setup),
          net_(reactor_, n, seed),
          overlay_(make_connected_overlay(n, kOverlaySeed)) {
        for (int i = 0; i < n; ++i) {
            auto node = std::make_unique<ChaosNode>();
            node->gate = std::make_unique<GatedTransport>(reactor_, i);

            PaxosConfig pc;
            pc.n = n;
            pc.id = i;
            pc.coordinator = 0;
            pc.failover_enabled = true;
            pc.heartbeat_piggyback = setup != Setup::Semantic;
            pc.seed = seed;

            if (setup == Setup::Semantic) {
                node->semantics = std::make_unique<PaxosSemantics>(
                    i, pc.quorum(), PaxosSemantics::Options{});
            }
            node->proc = std::make_unique<PaxosProcess>(pc, *node->gate);
            ChaosNode* raw = node.get();
            node->proc->set_failover_listener(
                [raw](FailoverEvent ev, ProcessId subject, Round, CpuContext&) {
                    raw->failover_events.push_back(FailoverRecord{ev, subject});
                });
            nodes_.push_back(std::move(node));
        }
        for (int i = 0; i < n; ++i) build_stack(i);

        ChaosBridge::Hooks hooks;
        hooks.crash_node = [this](ProcessId p) { crash(p); };
        hooks.restart_node = [this](ProcessId p, bool wiped) { restart(p, wiped); };
        hooks.set_link = [this](ProcessId from, ProcessId to,
                                const fault::DatagramFaultSpec& spec) {
            net_.set_link_fault(from, to, spec);
        };
        hooks.clear_link = [this](ProcessId from, ProcessId to) {
            net_.clear_link_fault(from, to);
        };
        if (setup != Setup::Baseline) {
            hooks.overlay = &overlay_;
            hooks.drop_edge = [this](ProcessId a, ProcessId b) {
                if (!nodes_[static_cast<std::size_t>(a)]->down)
                    nodes_[static_cast<std::size_t>(a)]->transport->remove_neighbor(b);
                if (!nodes_[static_cast<std::size_t>(b)]->down)
                    nodes_[static_cast<std::size_t>(b)]->transport->remove_neighbor(a);
            };
            hooks.add_edge = [this](ProcessId a, ProcessId b) {
                if (!nodes_[static_cast<std::size_t>(a)]->down)
                    nodes_[static_cast<std::size_t>(a)]->transport->add_neighbor(b);
                if (!nodes_[static_cast<std::size_t>(b)]->down)
                    nodes_[static_cast<std::size_t>(b)]->transport->add_neighbor(a);
            };
        }
        bridge_ = std::make_unique<ChaosBridge>(reactor_, n, std::move(schedule),
                                                std::move(hooks));
    }

    /// Generates the schedule from (profile, seed) against the same overlay
    /// the cluster runs on — the exact replay key the simulator uses.
    RuntimeChaosCluster(int n, Setup setup, std::uint64_t seed,
                        const ChaosProfile& profile)
        : RuntimeChaosCluster(n, setup, seed,
                              generate_chaos(n, 0, profile, seed,
                                             setup == Setup::Baseline
                                                 ? nullptr
                                                 : &initial_overlay(n))) {}

    void start() {
        bridge_->arm();
        for (auto& node : nodes_) node->proc->post_start();
    }

    /// Staggers `total` submissions across the chaos window (values decided
    /// entirely before the first fault would not test much). Owners cycle
    /// over [first_owner, n); a submission aimed at a crashed owner retries
    /// until the owner is back — the client role.
    void submit(int total, SimTime window, int first_owner = 0) {
        const int owners = n_ - first_owner;
        for (int v = 0; v < total; ++v) {
            const int owner = first_owner + v % owners;
            Value value;
            value.id = ValueId{owner, next_seq_[static_cast<std::size_t>(owner)]++};
            owned_[owner].push_back(value);
            const SimTime at = SimTime::nanos(window.as_nanos() * v / total);
            reactor_.schedule_after(at, [this, owner, value] { try_submit(owner, value); });
        }
    }

    /// Runs until the whole schedule fired and every live node has learned
    /// `total` decisions.
    bool run_until_settled(int total, SimTime limit = SimTime::seconds(120)) {
        return reactor_.run_until(
            [this, total] {
                if (!bridge_->done()) return false;
                for (const auto& node : nodes_) {
                    if (node->down) continue;
                    if (node->proc->learner().frontier() <
                        static_cast<InstanceId>(total) + 1) {
                        return false;
                    }
                }
                return true;
            },
            limit);
    }

    /// Diagnostic dump for settle-timeout triage: who is stuck and why.
    void dump_state() const {
        for (int id = 0; id < n_; ++id) {
            const auto& node = *nodes_[static_cast<std::size_t>(id)];
            const auto& proc = *node.proc;
            std::fprintf(stderr,
                         "node %d down=%d frontier=%llu highest_seen=%llu believed=%d "
                         "is_coord=%d takeovers=%llu lreq_sent=%llu lreq_answered=%llu "
                         "handled=%llu\n",
                         id, node.down ? 1 : 0,
                         static_cast<unsigned long long>(proc.learner().frontier()),
                         static_cast<unsigned long long>(proc.learner().highest_seen()),
                         static_cast<int>(proc.believed_coordinator()),
                         proc.is_coordinator() ? 1 : 0,
                         static_cast<unsigned long long>(proc.counters().takeovers),
                         static_cast<unsigned long long>(proc.counters().learn_requests_sent),
                         static_cast<unsigned long long>(proc.counters().learn_requests_answered),
                         static_cast<unsigned long long>(proc.counters().messages_handled));
            const InstanceId f = proc.learner().frontier();
            std::fprintf(stderr,
                         "  at frontier %llu: knows_decision=%d value_missing=%d "
                         "value_retx=%llu\n",
                         static_cast<unsigned long long>(f),
                         proc.learner().knows_decision(f) ? 1 : 0,
                         proc.learner().value_missing(f) ? 1 : 0,
                         static_cast<unsigned long long>(proc.counters().value_retransmissions));
            if (const auto* coord = proc.coordinator()) {
                std::fprintf(stderr,
                             "  coord active=%d proposals=%llu reproposals=%llu dups=%llu\n",
                             coord->active() ? 1 : 0,
                             static_cast<unsigned long long>(coord->counters().proposals),
                             static_cast<unsigned long long>(coord->counters().reproposals),
                             static_cast<unsigned long long>(coord->counters().duplicate_values));
            }
            if (const auto* det = proc.failure_detector()) {
                std::string suspects;
                for (int p = 0; p < n_; ++p) {
                    if (det->suspects(static_cast<ProcessId>(p))) {
                        suspects += " " + std::to_string(p);
                    }
                }
                std::fprintf(stderr, "  suspects:%s\n", suspects.c_str());
            }
            if (node.link) {
                for (int p = 0; p < n_; ++p) {
                    if (p == id) continue;
                    const auto st = node.link->peer_stats(static_cast<ProcessId>(p));
                    std::fprintf(stderr,
                                 "  peer %d linked=%d heard=%d unacked=%zu pending=%zu\n", p,
                                 st.linked ? 1 : 0, st.heard ? 1 : 0, st.unacked,
                                 st.pending);
                }
            }
        }
        // Trace every submitted value that no live learner has decided: which
        // coordinator's dedup set swallowed it, and where it sits now.
        std::set<ValueId> decided;
        for (const auto& node : nodes_) {
            if (node->down) continue;
            const auto& learner = node->proc->learner();
            for (InstanceId i = 1; i <= learner.highest_seen(); ++i) {
                if (const auto v = learner.decided_value(i)) decided.insert(v->id);
            }
        }
        for (const auto& [owner, values] : owned_) {
            for (const Value& v : values) {
                if (decided.count(v.id)) continue;
                std::fprintf(stderr, "missing value owner=%d seq=%lld:", owner,
                             static_cast<long long>(v.id.seq));
                for (int id = 0; id < n_; ++id) {
                    const auto& node = *nodes_[static_cast<std::size_t>(id)];
                    if (const auto* coord = node.proc->coordinator()) {
                        std::fprintf(stderr, " n%d[seen=%d pend=%zu inflight=%zu p1=%d]",
                                     id, coord->value_seen(v.id) ? 1 : 0,
                                     coord->pending_values(),
                                     coord->undecided_proposals(),
                                     coord->phase1_complete() ? 1 : 0);
                    }
                }
                std::fprintf(stderr, "\n");
            }
        }
        // Per-instance decision table across live nodes — divergence here is
        // a safety violation, not a liveness stall.
        InstanceId max_seen = 0;
        for (const auto& node : nodes_) {
            if (!node->down) max_seen = std::max(max_seen, node->proc->learner().highest_seen());
        }
        for (InstanceId i = 1; i <= max_seen; ++i) {
            std::fprintf(stderr, "inst %llu:", static_cast<unsigned long long>(i));
            for (int id = 0; id < n_; ++id) {
                const auto& node = *nodes_[static_cast<std::size_t>(id)];
                if (node.down) { std::fprintf(stderr, " n%d=down", id); continue; }
                if (const auto v = node.proc->learner().decided_value(i)) {
                    std::fprintf(stderr, " n%d=%d.%lld", id, v->id.client,
                                 static_cast<long long>(v->id.seq));
                } else {
                    std::fprintf(stderr, " n%d=-", id);
                }
            }
            std::fprintf(stderr, "\n");
        }
        std::fprintf(stderr, "overlay edges:");
        for (int a = 0; a < n_; ++a) {
            for (ProcessId b : overlay_.neighbors(static_cast<ProcessId>(a))) {
                if (static_cast<int>(b) > a) std::fprintf(stderr, " %d-%d", a, b);
            }
        }
        std::fprintf(stderr, "\n");
    }

    /// P-AGR-1 over the live nodes' learners: exactly `total` decisions,
    /// gap-free from instance 1, identical everywhere, every value decided
    /// in exactly one instance.
    void expect_agreement(int total) {
        std::map<InstanceId, ValueId> reference;
        for (int id = 0; id < n_; ++id) {
            const auto& node = *nodes_[static_cast<std::size_t>(id)];
            if (node.down) continue;
            auto& learner = node.proc->learner();
            ASSERT_EQ(learner.frontier(), static_cast<InstanceId>(total) + 1)
                << setup_name(setup_) << ": node " << id << " frontier";
            for (InstanceId i = 1; i < learner.frontier(); ++i) {
                const auto v = learner.decided_value(i);
                ASSERT_TRUE(v.has_value()) << "gap at node " << id << " instance " << i;
                const auto [it, inserted] = reference.emplace(i, v->id);
                ASSERT_EQ(it->second, v->id)
                    << setup_name(setup_) << ": divergent decision at instance " << i
                    << " node " << id;
            }
        }
        std::set<ValueId> values;
        for (const auto& [inst, vid] : reference) {
            ASSERT_TRUE(values.insert(vid).second) << "value decided in two instances";
        }
    }

    bool saw_failover_event(FailoverEvent ev, ProcessId subject) const {
        for (const auto& node : nodes_) {
            for (const FailoverRecord& r : node->failover_events) {
                if (r.event == ev && r.subject == subject) return true;
            }
        }
        return false;
    }

    std::uint64_t total_takeovers() const {
        std::uint64_t total = 0;
        for (const auto& node : nodes_) total += node->proc->counters().takeovers;
        return total;
    }

    Reactor& reactor() { return reactor_; }
    LossyDatagramNetwork& net() { return net_; }
    ChaosBridge& bridge() { return *bridge_; }
    ChaosNode& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
    int size() const { return n_; }

private:
    static constexpr std::uint64_t kOverlaySeed = 42;

    /// The pristine overlay a schedule is generated against; the member
    /// overlay_ then evolves under churn during the run.
    static const Graph& initial_overlay(int n) {
        static std::map<int, Graph> cache;
        auto it = cache.find(n);
        if (it == cache.end()) {
            it = cache.emplace(n, make_connected_overlay(n, kOverlaySeed)).first;
        }
        return it->second;
    }

    void build_stack(int i) {
        auto& nd = *nodes_[static_cast<std::size_t>(i)];
        nd.link = std::make_unique<UdpLink>(reactor_, i, n_, net_.endpoint(i),
                                            chaos_link_params(nd.epoch));
        RealTransport::Params tp;
        if (setup_ == Setup::Baseline) {
            tp.mode = RealTransport::Mode::Direct;
        } else {
            tp.mode = RealTransport::Mode::Gossip;
            tp.neighbors = overlay_.neighbors(i);
        }
        GossipHooks* hooks = &nd.pass_through;
        if (nd.semantics) hooks = nd.semantics.get();
        nd.transport = std::make_unique<RealTransport>(reactor_, *nd.link,
                                                       std::move(tp), *hooks);
        nd.gate->attach(nd.transport.get());
    }

    void crash(ProcessId p) {
        auto& nd = *nodes_[static_cast<std::size_t>(p)];
        nd.down = true;
        nd.gate->detach();
        nd.transport.reset();
        nd.link.reset();
    }

    void restart(ProcessId p, bool wiped) {
        auto& nd = *nodes_[static_cast<std::size_t>(p)];
        nd.down = false;
        ++nd.epoch;  // fresh link incarnation: peers reset seq/rel_id dedup
        build_stack(p);
        if (wiped) {
            nd.proc->wipe_state();
            // The durable client re-offers everything this process ever
            // accepted; the coordinator's value dedup absorbs re-proposals
            // of already-decided values (exactly like simulator clients).
            for (const Value& v : owned_[p]) nd.proc->post_submit(v);
        }
    }

    void try_submit(int owner, const Value& value) {
        auto& nd = *nodes_[static_cast<std::size_t>(owner)];
        if (nd.down) {
            reactor_.schedule_after(SimTime::millis(100), [this, owner, value] {
                try_submit(owner, value);
            });
            return;
        }
        nd.proc->post_submit(value);
    }

    int n_;
    Setup setup_;
    Reactor reactor_;
    LossyDatagramNetwork net_;
    Graph overlay_;
    std::vector<std::unique_ptr<ChaosNode>> nodes_;
    std::unique_ptr<ChaosBridge> bridge_;
    std::vector<std::int64_t> next_seq_ = std::vector<std::int64_t>(
        static_cast<std::size_t>(n_), 0);
    std::map<int, std::vector<Value>> owned_;
};

ChaosProfile profile_by_name(const std::string& name) {
    if (name == "light") return ChaosProfile::light();
    if (name == "moderate") return ChaosProfile::moderate();
    if (name == "heavy") return ChaosProfile::heavy();
    if (name == "heavy_failover") return ChaosProfile::heavy_failover();
    ADD_FAILURE() << "unknown profile " << name;
    return ChaosProfile::moderate();
}

// -- the seeded sweep ---------------------------------------------------------

struct SweepEnv {
    Setup setup;
    const char* profile;
};

struct SweepOutcome {
    std::string fault_log;
    std::uint64_t applied = 0;
};

/// One full chaos run: submissions staggered through the fault window,
/// agreement asserted over every live node once the schedule resolves.
SweepOutcome run_sweep_once(const SweepEnv& env, std::uint64_t seed, int total) {
    const ChaosProfile profile = profile_by_name(env.profile);
    // heavy_failover loses the coordinator's storage for good on top of the
    // heavy wipe slots; 13 processes (the simulator's failover corpus size)
    // keeps total storage loss below a quorum — the envelope any consensus
    // protocol needs. The other profiles run the small cluster.
    const int n = profile.permanent_coordinator_crash ? 13 : 5;
    RuntimeChaosCluster cluster(n, env.setup, seed, profile);
    cluster.start();
    // heavy_failover kills process 0 for good: only live clients submit.
    const int first_owner = profile.permanent_coordinator_crash ? 1 : 0;
    cluster.submit(total, profile.start + profile.horizon, first_owner);
    const bool settled = cluster.run_until_settled(total);
    if (!settled) cluster.dump_state();
    EXPECT_TRUE(settled) << setup_name(env.setup) << "/" << env.profile
                         << " did not settle; fault log so far:\n"
                         << cluster.bridge().rendered_log();
    cluster.expect_agreement(total);
    if (profile.permanent_coordinator_crash) {
        EXPECT_TRUE(cluster.node(0).down) << "coordinator restarted unexpectedly";
        EXPECT_TRUE(cluster.saw_failover_event(FailoverEvent::Suspect, 0));
        EXPECT_GE(cluster.total_takeovers(), 1u);
    }
    SweepOutcome out;
    out.fault_log = cluster.bridge().rendered_log();
    out.applied = cluster.bridge().counters().applied;
    return out;
}

class RuntimeChaosSweep : public ::testing::TestWithParam<SweepEnv> {};

// The acceptance sweep: each (setup, profile) cell runs twice with the same
// seed over the real UDP stack; both runs must keep agreement and produce
// byte-identical injected-fault logs.
TEST_P(RuntimeChaosSweep, AgreesAndReplaysByteIdentically) {
    const SweepEnv env = GetParam();
    constexpr int kValues = 24;
    constexpr std::uint64_t kSeed = 101;
    const SweepOutcome a = run_sweep_once(env, kSeed, kValues);
    EXPECT_GT(a.applied, 0u) << "schedule never fired";
    EXPECT_FALSE(a.fault_log.empty());
    const SweepOutcome b = run_sweep_once(env, kSeed, kValues);
    EXPECT_EQ(a.fault_log, b.fault_log)
        << "injected-fault log is not a pure function of (profile, seed)";
}

std::vector<SweepEnv> sweep_envs() {
    std::vector<SweepEnv> envs;
    for (const Setup setup : {Setup::Baseline, Setup::Gossip, Setup::Semantic}) {
        for (const char* profile :
             {"light", "moderate", "heavy", "heavy_failover"}) {
            envs.push_back(SweepEnv{setup, profile});
        }
    }
    return envs;
}

INSTANTIATE_TEST_SUITE_P(Profiles, RuntimeChaosSweep, ::testing::ValuesIn(sweep_envs()),
                         [](const ::testing::TestParamInfo<SweepEnv>& info) {
                             return std::string(setup_name(info.param.setup)) + "_" +
                                    info.param.profile;
                         });

// -- crash-gap re-baseline over real datagrams --------------------------------

// A follower crashes for well past suspect_after and restarts without a
// wipe. Observers must suspect it while it is down and restore it on the
// first datagram after restart; the restarted node's own detector must
// re-baseline across the gap (its sweep chain ticked into the void while
// crashed) instead of spuriously suspecting the whole cluster, so no
// takeover ever fires.
TEST(RuntimeChaosCrashGap, RestartWithoutWipeIsSuspectedThenRestored) {
    constexpr int kValues = 20;
    FaultSchedule schedule;
    schedule.crash(SimTime::millis(600), 2);
    schedule.restart(SimTime::millis(1800), 2);
    RuntimeChaosCluster cluster(5, Setup::Baseline, /*seed=*/7, std::move(schedule));
    cluster.start();
    cluster.submit(kValues, SimTime::millis(2200));
    ASSERT_TRUE(cluster.run_until_settled(kValues, SimTime::seconds(60)))
        << "cluster did not settle";
    cluster.expect_agreement(kValues);

    EXPECT_TRUE(cluster.saw_failover_event(FailoverEvent::Suspect, 2));
    EXPECT_TRUE(cluster.saw_failover_event(FailoverEvent::Restore, 2));
    EXPECT_EQ(cluster.total_takeovers(), 0u) << "follower crash must not move rounds";
    // The re-baseline: node 2 swallowed ~1.2s of sweep ticks while crashed,
    // far past suspect_after, yet on restart it suspects nobody.
    EXPECT_EQ(cluster.node(2).proc->failure_detector()->counters().suspicions, 0u);
    for (int i = 0; i < cluster.size(); ++i) {
        EXPECT_EQ(cluster.node(i).proc->believed_coordinator(), 0) << "node " << i;
    }
}

// The coordinator crashes losing durable state and restarts later. While it
// is down rank-based succession moves coordination to process 1 over real
// datagrams (UdpLink heard-based presence feeds the detector); the wiped
// restart rejoins as a blank replica, relearns every decision through gap
// repair, and must not fire its own spurious suspicions on the way back.
TEST(RuntimeChaosCrashGap, WipedCoordinatorRestartTakesOverAndRelearns) {
    constexpr int kValues = 20;
    FaultSchedule schedule;
    schedule.crash(SimTime::millis(600), 0, /*wipe_state=*/true);
    schedule.restart(SimTime::millis(2400), 0);
    RuntimeChaosCluster cluster(5, Setup::Gossip, /*seed=*/9, std::move(schedule));
    cluster.start();
    cluster.submit(kValues, SimTime::millis(2800), /*first_owner=*/1);
    ASSERT_TRUE(cluster.run_until_settled(kValues, SimTime::seconds(60)))
        << "cluster did not settle";
    cluster.expect_agreement(kValues);

    EXPECT_TRUE(cluster.saw_failover_event(FailoverEvent::Suspect, 0));
    EXPECT_GE(cluster.total_takeovers(), 1u) << "succession never fired";
    // The wiped node relearned the full decision log (checked by
    // expect_agreement) without suspecting anyone across its crash gap.
    EXPECT_EQ(cluster.node(0).proc->failure_detector()->counters().suspicions, 0u);
    EXPECT_EQ(cluster.bridge().counters().wipes, 1u);
}

// -- TCP loopback lane --------------------------------------------------------

/// The TCP twin of RuntimeChaosCluster for schedules with no link-level
/// fates: GatedTransport facades over ConnectionManager + RealTransport on
/// real loopback sockets. A crash closes the node's listener and every
/// connection; a restart re-binds the same port and the mesh re-forms
/// through the peers' redial loops.
class TcpChaosCluster {
public:
    TcpChaosCluster(int n, Setup setup, FaultSchedule schedule)
        : n_(n), setup_(setup), overlay_(make_connected_overlay(n, 42)) {
        std::vector<int> listen_fds;
        for (int i = 0; i < n; ++i) {
            std::string err;
            const int fd = listen_tcp("127.0.0.1", 0, &err);
            EXPECT_GE(fd, 0) << err;
            listen_fds.push_back(fd);
            cluster_.push_back(PeerAddress{"127.0.0.1", local_port(fd)});
        }
        for (int i = 0; i < n; ++i) {
            auto node = std::make_unique<ChaosNode>();
            node->gate = std::make_unique<GatedTransport>(reactor_, i);

            PaxosConfig pc;
            pc.n = n;
            pc.id = i;
            pc.coordinator = 0;
            pc.failover_enabled = true;
            pc.heartbeat_piggyback = setup != Setup::Semantic;

            if (setup == Setup::Semantic) {
                node->semantics = std::make_unique<PaxosSemantics>(
                    i, pc.quorum(), PaxosSemantics::Options{});
            }
            node->proc = std::make_unique<PaxosProcess>(pc, *node->gate);
            nodes_.push_back(std::move(node));
            build_stack(i, listen_fds[static_cast<std::size_t>(i)]);
        }

        ChaosBridge::Hooks hooks;
        hooks.crash_node = [this](ProcessId p) { crash(p); };
        hooks.restart_node = [this](ProcessId p, bool wiped) { restart(p, wiped); };
        // No set_link/clear_link/overlay: the stream lane cannot express
        // datagram fates — the bridge logs those events as skipped, exactly
        // like a hook-less FaultInjector.
        bridge_ = std::make_unique<ChaosBridge>(reactor_, n, std::move(schedule),
                                                std::move(hooks));
    }

    void start() {
        const bool mesh_up = reactor_.run_until([this] { return mesh_connected(); },
                                                SimTime::seconds(10));
        ASSERT_TRUE(mesh_up) << "connection mesh did not come up";
        bridge_->arm();
        for (auto& node : nodes_) node->proc->post_start();
    }

    void submit(int total, SimTime window) {
        for (int v = 0; v < total; ++v) {
            const int owner = v % n_;
            Value value;
            value.id = ValueId{owner, next_seq_[static_cast<std::size_t>(owner)]++};
            const SimTime at = SimTime::nanos(window.as_nanos() * v / total);
            reactor_.schedule_after(at, [this, owner, value] { try_submit(owner, value); });
        }
    }

    bool run_until_settled(int total, SimTime limit = SimTime::seconds(60)) {
        return reactor_.run_until(
            [this, total] {
                if (!bridge_->done()) return false;
                for (const auto& node : nodes_) {
                    if (node->down) continue;
                    if (node->proc->learner().frontier() <
                        static_cast<InstanceId>(total) + 1) {
                        return false;
                    }
                }
                return true;
            },
            limit);
    }

    void expect_agreement(int total) {
        std::map<InstanceId, ValueId> reference;
        for (int id = 0; id < n_; ++id) {
            const auto& node = *nodes_[static_cast<std::size_t>(id)];
            if (node.down) continue;
            auto& learner = node.proc->learner();
            ASSERT_EQ(learner.frontier(), static_cast<InstanceId>(total) + 1)
                << "tcp node " << id << " frontier";
            for (InstanceId i = 1; i < learner.frontier(); ++i) {
                const auto v = learner.decided_value(i);
                ASSERT_TRUE(v.has_value()) << "gap at node " << id << " instance " << i;
                const auto [it, inserted] = reference.emplace(i, v->id);
                ASSERT_EQ(it->second, v->id) << "divergence at instance " << i;
            }
        }
    }

    ChaosBridge& bridge() { return *bridge_; }
    ChaosNode& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

private:
    /// TCP-specific stack builder: re-binds the node's fixed port (the
    /// crash closed it) and rebuilds ConnectionManager + RealTransport.
    void build_stack(int i, int listen_fd) {
        auto& nd = *nodes_[static_cast<std::size_t>(i)];
        if (listen_fd < 0) {
            std::string err;
            listen_fd = listen_tcp("127.0.0.1",
                                   cluster_[static_cast<std::size_t>(i)].port, &err);
            ASSERT_GE(listen_fd, 0) << "re-bind " << err;
        }
        nd.conns = std::make_unique<ConnectionManager>(reactor_, i, cluster_, listen_fd,
                                                       ConnectionManager::Params{});
        RealTransport::Params tp;
        if (setup_ == Setup::Baseline) {
            tp.mode = RealTransport::Mode::Direct;
        } else {
            tp.mode = RealTransport::Mode::Gossip;
            tp.neighbors = overlay_.neighbors(i);
        }
        GossipHooks* hooks = &nd.pass_through;
        if (nd.semantics) hooks = nd.semantics.get();
        nd.transport = std::make_unique<RealTransport>(reactor_, *nd.conns,
                                                       std::move(tp), *hooks);
        nd.gate->attach(nd.transport.get());
    }

    void crash(ProcessId p) {
        auto& nd = *nodes_[static_cast<std::size_t>(p)];
        nd.down = true;
        nd.gate->detach();
        nd.transport.reset();
        nd.conns.reset();  // closes the listener and every connection
    }

    void restart(ProcessId p, bool wiped) {
        auto& nd = *nodes_[static_cast<std::size_t>(p)];
        nd.down = false;
        build_stack(p, -1);
        if (wiped) nd.proc->wipe_state();
    }

    bool mesh_connected() const {
        for (int i = 0; i < n_; ++i) {
            const auto& nd = *nodes_[static_cast<std::size_t>(i)];
            if (setup_ == Setup::Baseline) {
                for (ProcessId p = 0; p < n_; ++p) {
                    if (p != i && !nd.conns->peer_up(p)) return false;
                }
            } else {
                for (const ProcessId p : overlay_.neighbors(i)) {
                    if (!nd.conns->peer_up(p)) return false;
                }
            }
        }
        return true;
    }

    void try_submit(int owner, const Value& value) {
        auto& nd = *nodes_[static_cast<std::size_t>(owner)];
        if (nd.down) {
            reactor_.schedule_after(SimTime::millis(100), [this, owner, value] {
                try_submit(owner, value);
            });
            return;
        }
        nd.proc->post_submit(value);
    }

    int n_;
    Setup setup_;
    Reactor reactor_;
    std::vector<PeerAddress> cluster_;
    Graph overlay_;
    std::vector<std::unique_ptr<ChaosNode>> nodes_;
    std::unique_ptr<ChaosBridge> bridge_;
    std::vector<std::int64_t> next_seq_ = std::vector<std::int64_t>(
        static_cast<std::size_t>(n_), 0);
};

// A crash/restart-only schedule (the fates TCP can express) over real
// loopback sockets: a follower bounce plus a coordinator bounce must leave
// the full decision log intact on every node, and the bridge's log must
// match the schedule's own rendering line for line (nothing skipped).
TEST(RuntimeChaosTcp, CrashRestartScheduleKeepsAgreementOverTcp) {
    constexpr int kValues = 20;
    FaultSchedule schedule;
    schedule.crash(SimTime::millis(400), 2);
    schedule.restart(SimTime::millis(1200), 2);
    schedule.crash(SimTime::millis(1600), 0);
    schedule.restart(SimTime::millis(2600), 0);
    const std::string expected_log = schedule.describe();
    TcpChaosCluster cluster(5, Setup::Gossip, std::move(schedule));
    cluster.start();
    cluster.submit(kValues, SimTime::millis(3000));
    ASSERT_TRUE(cluster.run_until_settled(kValues)) << "tcp lane did not settle";
    cluster.expect_agreement(kValues);
    EXPECT_EQ(cluster.bridge().counters().applied, 4u);
    EXPECT_EQ(cluster.bridge().counters().skipped, 0u);
    EXPECT_EQ(cluster.bridge().rendered_log(), expected_log);
}

// -- runtime fault-pressure metrics -------------------------------------------

// The unified registry names the runtime publishes (gclint's metrics-hygiene
// rule requires every registered literal to be pinned by a test). A lossy
// two-node exchange plus a failure detector populate every family.
TEST(RuntimeMetrics, FaultPressureLandsInUnifiedRegistry) {
    constexpr int kValues = 10;
    FaultSchedule schedule;  // no faults: this test is about the report
    RuntimeChaosCluster cluster(3, Setup::Baseline, /*seed=*/5, std::move(schedule));
    fault::DatagramFaultSpec spec;
    spec.loss = 0.20;
    spec.duplicate = 0.10;
    cluster.net().set_default_fault(spec);
    cluster.start();
    cluster.submit(kValues, SimTime::millis(200));
    ASSERT_TRUE(cluster.run_until_settled(kValues, SimTime::seconds(60)));

    MetricsRegistry reg;
    fill_udp_link_metrics(reg, *cluster.node(0).link);
    fill_lossy_network_metrics(reg, cluster.net());
    fill_detector_metrics(reg, *cluster.node(0).proc->failure_detector(), 3);

    std::set<std::string> names;
    for (const auto& sample : reg.snapshot()) names.insert(sample.name);
    const std::vector<std::string> expected = {
        "udp.link.datagrams_sent",
        "udp.link.datagrams_received",
        "udp.link.bodies_sent",
        "udp.link.bodies_received",
        "udp.link.acks_only_sent",
        "udp.link.retransmits",
        "udp.link.fast_retransmits",
        "udp.link.reliable_acked",
        "udp.link.reliable_dropped",
        "udp.link.duplicate_datagrams",
        "udp.link.stale_datagrams",
        "udp.link.duplicate_reliables",
        "udp.link.decode_errors",
        "udp.link.send_failures",
        "udp.link.epoch_resets",
        "udp.link.seq_history_evictions",
        "udp.peer.1.heard",
        "udp.peer.1.unacked",
        "udp.peer.1.max_rto_ms",
        "lossynet.sent",
        "lossynet.delivered",
        "lossynet.dropped",
        "lossynet.duplicated",
        "lossynet.reordered",
        "lossynet.truncated",
        "detector.heartbeats_sent",
        "detector.heartbeats_suppressed",
        "detector.suspicions",
        "detector.restores",
        "detector.suspect.1.now",
    };
    for (const std::string& name : expected) {
        EXPECT_TRUE(names.count(name)) << "missing metric " << name;
    }
    // The lossy profile actually exercised the counters being reported.
    EXPECT_GT(reg.counter("lossynet.dropped").value, 0u);
    EXPECT_GT(reg.counter("udp.link.datagrams_sent").value, 0u);
}

}  // namespace
}  // namespace gossipc::runtime
