// Unit tests: learner quorum detection, Decision handling, in-order no-gap
// delivery, and value-payload repair states.
#include <gtest/gtest.h>

#include "paxos/learner.hpp"
#include "test_util.hpp"

namespace gossipc {
namespace {

using testutil::make_value;

struct LearnerFixture {
    Learner learner{2};  // quorum of 2 (n=3)
    std::vector<std::pair<InstanceId, Value>> delivered;
    std::vector<std::pair<InstanceId, bool>> decided;  // (instance, via_quorum)
    CpuContext ctx{SimTime::zero()};

    LearnerFixture() {
        learner.set_deliver([this](InstanceId i, const Value& v, CpuContext&) {
            delivered.emplace_back(i, v);
        });
        learner.set_decided_listener(
            [this](InstanceId i, const Value&, bool via_quorum, CpuContext&) {
                decided.emplace_back(i, via_quorum);
            });
    }

    void give_2a(InstanceId i, Round r, const Value& v) {
        learner.on_phase2a(Phase2aMsg{0, i, r, v}, ctx);
    }
    void give_2b(ProcessId sender, InstanceId i, Round r, const Value& v) {
        learner.on_phase2b(Phase2bMsg{sender, i, r, v.id, v.digest()}, ctx);
    }
};

TEST(LearnerTest, LearnsFromQuorumOf2b) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    f.give_2a(1, 1, v);
    f.give_2b(0, 1, 1, v);
    EXPECT_TRUE(f.delivered.empty());  // one vote is not a quorum
    f.give_2b(1, 1, 1, v);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_EQ(f.delivered[0].first, 1);
    EXPECT_EQ(f.delivered[0].second, v);
    ASSERT_EQ(f.decided.size(), 1u);
    EXPECT_TRUE(f.decided[0].second);  // via quorum
}

TEST(LearnerTest, DuplicateVotesDontCount) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    f.give_2a(1, 1, v);
    f.give_2b(0, 1, 1, v);
    f.give_2b(0, 1, 1, v);
    f.give_2b(0, 1, 1, v);
    EXPECT_TRUE(f.delivered.empty());
}

TEST(LearnerTest, VotesForDifferentRoundsDontMix) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    f.give_2a(1, 1, v);
    f.give_2b(0, 1, 1, v);
    f.give_2b(1, 1, 2, v);  // same value, different round
    EXPECT_TRUE(f.delivered.empty());
    f.give_2b(2, 1, 2, v);
    EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(LearnerTest, LearnsFromDecision) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    f.give_2a(1, 1, v);
    f.learner.on_decision(DecisionMsg{0, 1, v.id, v.digest()}, f.ctx);
    ASSERT_EQ(f.delivered.size(), 1u);
    ASSERT_EQ(f.decided.size(), 1u);
    EXPECT_FALSE(f.decided[0].second);  // not via quorum
}

TEST(LearnerTest, InOrderNoGapDelivery) {
    LearnerFixture f;
    const Value v1 = make_value(0, 1), v2 = make_value(0, 2), v3 = make_value(0, 3);
    f.give_2a(1, 1, v1);
    f.give_2a(2, 1, v2);
    f.give_2a(3, 1, v3);
    // Decide 3 and 2 first: nothing delivered until 1 decides.
    f.learner.on_decision(DecisionMsg{0, 3, v3.id, v3.digest()}, f.ctx);
    f.learner.on_decision(DecisionMsg{0, 2, v2.id, v2.digest()}, f.ctx);
    EXPECT_TRUE(f.delivered.empty());
    EXPECT_EQ(f.learner.frontier(), 1);
    f.learner.on_decision(DecisionMsg{0, 1, v1.id, v1.digest()}, f.ctx);
    ASSERT_EQ(f.delivered.size(), 3u);
    EXPECT_EQ(f.delivered[0].first, 1);
    EXPECT_EQ(f.delivered[1].first, 2);
    EXPECT_EQ(f.delivered[2].first, 3);
    EXPECT_EQ(f.learner.frontier(), 4);
}

TEST(LearnerTest, DecisionWithoutValueStallsUntilRepaired) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    // No Phase 2a seen: digest cannot be resolved.
    f.learner.on_decision(DecisionMsg{0, 1, v.id, v.digest()}, f.ctx);
    EXPECT_TRUE(f.delivered.empty());
    EXPECT_TRUE(f.learner.knows_decision(1));
    EXPECT_TRUE(f.learner.value_missing(1));
    // Repair Decision carries the full value.
    f.learner.on_decision(DecisionMsg{0, 1, v.id, v.digest(), v}, f.ctx);
    ASSERT_EQ(f.delivered.size(), 1u);
    EXPECT_FALSE(f.learner.value_missing(1));
}

TEST(LearnerTest, HighestSeenTracksAllMessageKinds) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    EXPECT_EQ(f.learner.highest_seen(), 0);
    f.give_2a(4, 1, v);
    EXPECT_EQ(f.learner.highest_seen(), 4);
    f.give_2b(0, 9, 1, v);
    EXPECT_EQ(f.learner.highest_seen(), 9);
    f.learner.on_decision(DecisionMsg{0, 2, v.id, v.digest()}, f.ctx);
    EXPECT_EQ(f.learner.highest_seen(), 9);
}

TEST(LearnerTest, DecidedValueFromLogAndInFlight) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    EXPECT_FALSE(f.learner.decided_value(1).has_value());
    f.give_2a(1, 1, v);
    f.give_2b(0, 1, 1, v);
    f.give_2b(1, 1, 1, v);
    ASSERT_TRUE(f.learner.decided_value(1).has_value());  // from the log
    EXPECT_EQ(f.learner.decided_value(1)->id, v.id);
    EXPECT_TRUE(f.learner.knows_decision(1));
    EXPECT_EQ(f.learner.delivered_count(), 1u);
}

TEST(LearnerTest, TruncateLogBelow) {
    LearnerFixture f;
    for (InstanceId i = 1; i <= 5; ++i) {
        const Value v = make_value(0, i);
        f.give_2a(i, 1, v);
        f.learner.on_decision(DecisionMsg{0, i, v.id, v.digest()}, f.ctx);
    }
    EXPECT_EQ(f.learner.delivered_count(), 5u);
    f.learner.truncate_log_below(4);
    EXPECT_FALSE(f.learner.decided_value(2).has_value());
    EXPECT_TRUE(f.learner.decided_value(4).has_value());
    // knows_decision still true below the frontier (delivered history).
    EXPECT_TRUE(f.learner.knows_decision(2));
}

TEST(LearnerTest, LateMessagesForDeliveredInstancesIgnored) {
    LearnerFixture f;
    const Value v = make_value(0, 1);
    f.give_2a(1, 1, v);
    f.learner.on_decision(DecisionMsg{0, 1, v.id, v.digest()}, f.ctx);
    EXPECT_EQ(f.delivered.size(), 1u);
    f.give_2b(0, 1, 1, v);
    f.give_2b(1, 1, 1, v);
    f.learner.on_decision(DecisionMsg{0, 1, v.id, v.digest()}, f.ctx);
    EXPECT_EQ(f.delivered.size(), 1u);  // no double delivery
}

TEST(LearnerTest, RejectsNonPositiveQuorum) {
    EXPECT_THROW(Learner(0), std::invalid_argument);
}

}  // namespace
}  // namespace gossipc
