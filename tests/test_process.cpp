// Unit tests for PaxosProcess message dispatch, plus small end-to-end Paxos
// deployments over a fully connected DirectTransport network: normal
// operation, concurrent coordinators (safety), crash/recovery, gap repair.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/network.hpp"
#include "paxos/process.hpp"
#include "test_util.hpp"
#include "transport/direct_transport.hpp"

namespace gossipc {
namespace {

using testutil::FakeTransport;
using testutil::make_value;

// --- dispatch-level tests with FakeTransport ---

TEST(ProcessDispatchTest, AcceptorRepliesToPhase1a) {
    Simulator sim;
    FakeTransport t(sim, 1);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 1;
    pc.timeouts_enabled = false;
    PaxosProcess p(pc, t);
    t.inject(std::make_shared<Phase1aMsg>(0, 1, 1));
    const auto p1b = t.sent_of(PaxosMsgType::Phase1b);
    ASSERT_EQ(p1b.size(), 1u);
    // Reply is addressed to the round owner (process 0 owns round 1).
    EXPECT_FALSE(t.sent.back().broadcast);
    EXPECT_EQ(t.sent.back().to, 0);
}

TEST(ProcessDispatchTest, AcceptorAcceptsAndVotes) {
    Simulator sim;
    FakeTransport t(sim, 1);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 1;
    pc.timeouts_enabled = false;
    PaxosProcess p(pc, t);
    const Value v = make_value(0, 7);
    t.inject(std::make_shared<Phase2aMsg>(0, 1, 1, v));
    const auto p2b = t.sent_of(PaxosMsgType::Phase2b);
    ASSERT_EQ(p2b.size(), 1u);
    const auto& m = static_cast<const Phase2bMsg&>(*p2b[0]);
    EXPECT_EQ(m.instance(), 1);
    EXPECT_EQ(m.value_digest(), v.digest());
    EXPECT_EQ(t.sent.back().to, 0);
}

TEST(ProcessDispatchTest, NoVoteBelowPromise) {
    Simulator sim;
    FakeTransport t(sim, 1);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 1;
    pc.timeouts_enabled = false;
    PaxosProcess p(pc, t);
    t.inject(std::make_shared<Phase1aMsg>(1, 5, 1));  // promise round 5
    t.inject(std::make_shared<Phase2aMsg>(0, 1, 1, make_value(0, 7)));
    EXPECT_TRUE(t.sent_of(PaxosMsgType::Phase2b).empty());
}

TEST(ProcessDispatchTest, NonCoordinatorForwardsClientValues) {
    Simulator sim;
    FakeTransport t(sim, 2);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 2;
    pc.coordinator = 0;
    pc.timeouts_enabled = false;
    PaxosProcess p(pc, t);
    CpuContext ctx{SimTime::zero()};
    p.submit(make_value(5, 1), ctx);
    const auto cv = t.sent_of(PaxosMsgType::ClientValue);
    ASSERT_EQ(cv.size(), 1u);
    EXPECT_EQ(t.sent.back().to, 0);
}

TEST(ProcessDispatchTest, NonCoordinatorIgnoresForeignClientValues) {
    Simulator sim;
    FakeTransport t(sim, 2);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 2;
    pc.timeouts_enabled = false;
    PaxosProcess p(pc, t);
    t.inject(std::make_shared<ClientValueMsg>(1, make_value(5, 1)));
    EXPECT_TRUE(t.sent.empty());  // only the coordinator proposes
}

TEST(ProcessDispatchTest, CoordinatorAnswersLearnRequests) {
    Simulator sim;
    FakeTransport t(sim, 0);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 0;
    pc.timeouts_enabled = false;
    PaxosProcess p(pc, t);
    const Value v = make_value(0, 1);
    // Make the coordinator learn instance 1.
    t.inject(std::make_shared<Phase2aMsg>(0, 1, 1, v));
    t.inject(testutil::make_2b(1, 1, 1, v));
    t.inject(testutil::make_2b(2, 1, 1, v));
    t.sent.clear();
    t.inject(std::make_shared<LearnRequestMsg>(2, 1, 0));
    const auto replies = t.sent_of(PaxosMsgType::Decision);
    ASSERT_EQ(replies.size(), 1u);
    const auto& d = static_cast<const DecisionMsg&>(*replies[0]);
    EXPECT_EQ(d.instance(), 1);
    ASSERT_TRUE(d.full_value().has_value());
    EXPECT_EQ(*d.full_value(), v);
    EXPECT_EQ(t.sent.back().to, 2);
}

TEST(ProcessDispatchTest, LearnRequestForUnknownInstanceUnanswered) {
    Simulator sim;
    FakeTransport t(sim, 0);
    PaxosConfig pc;
    pc.n = 3;
    pc.id = 0;
    pc.timeouts_enabled = false;
    PaxosProcess p(pc, t);
    t.inject(std::make_shared<LearnRequestMsg>(2, 1, 0));
    EXPECT_TRUE(t.sent_of(PaxosMsgType::Decision).empty());
}

TEST(ProcessDispatchTest, RejectsBadConfig) {
    Simulator sim;
    FakeTransport t(sim, 0);
    PaxosConfig pc;
    pc.n = 0;
    pc.id = 0;
    EXPECT_THROW(PaxosProcess(pc, t), std::invalid_argument);
}

// --- end-to-end mini-deployments over DirectTransport (full mesh) ---

struct MeshFixture {
    Simulator sim;
    Network net;
    std::vector<std::unique_ptr<DirectTransport>> transports;
    std::vector<std::unique_ptr<PaxosProcess>> processes;
    // per process: delivered (instance -> value id)
    std::vector<std::map<InstanceId, ValueId>> logs;

    explicit MeshFixture(int n, bool timeouts = true)
        : net(sim, LatencyModel::aws(), n, Network::Params{}), logs(static_cast<std::size_t>(n)) {
        net.allow_all_links();
        for (ProcessId id = 0; id < n; ++id) {
            transports.push_back(std::make_unique<DirectTransport>(net, id));
            PaxosConfig pc;
            pc.n = n;
            pc.id = id;
            pc.coordinator = 0;
            pc.timeouts_enabled = timeouts;
            processes.push_back(std::make_unique<PaxosProcess>(pc, *transports.back()));
            processes.back()->set_delivery_listener(
                [this, id](InstanceId i, const Value& v, CpuContext&) {
                    logs[static_cast<std::size_t>(id)][i] = v.id;
                });
        }
        for (auto& p : processes) p->post_start();
    }

    /// No two processes deliver different values for the same instance.
    void expect_agreement() const {
        for (std::size_t a = 0; a < logs.size(); ++a) {
            for (std::size_t b = a + 1; b < logs.size(); ++b) {
                for (const auto& [inst, vid] : logs[a]) {
                    const auto it = logs[b].find(inst);
                    if (it != logs[b].end()) {
                        EXPECT_EQ(vid, it->second) << "instance " << inst;
                    }
                }
            }
        }
    }
};

TEST(PaxosMeshTest, OrdersSubmittedValuesEverywhere) {
    MeshFixture f(5);
    for (int s = 1; s <= 10; ++s) {
        f.processes[static_cast<std::size_t>(s % 5)]->post_submit(make_value(s % 5, s));
    }
    f.sim.run_until(SimTime::seconds(3));
    for (const auto& log : f.logs) EXPECT_EQ(log.size(), 10u);
    f.expect_agreement();
}

TEST(PaxosMeshTest, AgreementUnderMessageLoss) {
    MeshFixture f(5);
    f.net.set_uniform_loss(0.15);  // timeouts repair the losses
    for (int s = 1; s <= 20; ++s) f.processes[0]->post_submit(make_value(0, s));
    f.sim.run_until(SimTime::seconds(20));
    f.expect_agreement();
    // The coordinator itself must have learned everything.
    EXPECT_EQ(f.logs[0].size(), 20u);
}

TEST(PaxosMeshTest, ConcurrentCoordinatorsAreSafe) {
    MeshFixture f(5);
    for (int s = 1; s <= 5; ++s) f.processes[0]->post_submit(make_value(0, s));
    f.sim.run_until(SimTime::seconds(1));
    // A second process usurps coordination with a higher round and proposes
    // its own values; decided instances must not change.
    const auto coordinator_log = f.logs[0];
    f.processes[1]->become_coordinator();
    for (int s = 1; s <= 5; ++s) f.processes[1]->post_submit(make_value(1, s));
    f.sim.run_until(SimTime::seconds(6));
    f.expect_agreement();
    for (const auto& [inst, vid] : coordinator_log) {
        // Everything decided under the old coordinator survives verbatim.
        ASSERT_TRUE(f.logs[1].contains(inst));
        EXPECT_EQ(f.logs[1].at(inst), vid);
    }
}

TEST(PaxosMeshTest, AcceptorCrashMinorityHarmless) {
    MeshFixture f(5);
    f.net.node(3).crash();
    f.net.node(4).crash();
    for (int s = 1; s <= 10; ++s) f.processes[0]->post_submit(make_value(0, s));
    f.sim.run_until(SimTime::seconds(5));
    EXPECT_EQ(f.logs[0].size(), 10u);  // quorum of 3 suffices
    f.expect_agreement();
}

TEST(PaxosMeshTest, CrashedProcessCatchesUpAfterRecovery) {
    MeshFixture f(5);
    f.net.node(4).crash();
    for (int s = 1; s <= 5; ++s) f.processes[0]->post_submit(make_value(0, s));
    f.sim.run_until(SimTime::seconds(2));
    EXPECT_TRUE(f.logs[4].empty());
    f.net.node(4).recover();
    // Gap repair (LearnRequest) needs the recovered process to notice the
    // gap; new traffic reveals it.
    for (int s = 6; s <= 8; ++s) f.processes[0]->post_submit(make_value(0, s));
    f.sim.run_until(SimTime::seconds(15));
    EXPECT_EQ(f.logs[4].size(), 8u);
    f.expect_agreement();
}

TEST(PaxosMeshTest, NoTimeoutsMeansNoRepairTraffic) {
    MeshFixture f(3, /*timeouts=*/false);
    for (int s = 1; s <= 3; ++s) f.processes[0]->post_submit(make_value(0, s));
    f.sim.run_until(SimTime::seconds(5));
    for (const auto& p : f.processes) {
        EXPECT_EQ(p->counters().learn_requests_sent, 0u);
        if (p->coordinator()) {
            EXPECT_EQ(p->coordinator()->counters().retransmissions, 0u);
        }
    }
    EXPECT_EQ(f.logs[2].size(), 3u);  // still decides without loss
}

}  // namespace
}  // namespace gossipc
