// Unit & property tests: graph, random k-out overlays, overlay analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "net/latency_model.hpp"
#include "overlay/analysis.hpp"
#include "overlay/graph.hpp"
#include "overlay/random_overlay.hpp"

namespace gossipc {
namespace {

TEST(GraphTest, BasicEdges) {
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.edge_count(), 2u);
    EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(GraphTest, RejectsBadEdges) {
    Graph g(3);
    g.add_edge(0, 1);
    EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);  // duplicate
    EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);  // self loop
    EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
    EXPECT_THROW(Graph(0), std::invalid_argument);
}

TEST(GraphTest, EdgesListSortedPairs) {
    Graph g(4);
    g.add_edge(2, 0);
    g.add_edge(3, 1);
    const auto e = g.edges();
    ASSERT_EQ(e.size(), 2u);
    for (const auto& [a, b] : e) EXPECT_LT(a, b);
}

TEST(RandomOverlayTest, DefaultKMatchesLog2Degree) {
    // 2k ~ log2(n): n=13 -> k=2, n=53 -> k=3, n=105 -> k=4 (Section 4.2/4.3).
    EXPECT_EQ(default_out_connections(13), 2);
    EXPECT_EQ(default_out_connections(53), 3);
    EXPECT_EQ(default_out_connections(105), 4);
    EXPECT_EQ(default_out_connections(2), 1);
    EXPECT_EQ(default_out_connections(1), 0);
}

TEST(RandomOverlayTest, DeterministicBySeed) {
    const Graph a = make_random_overlay(50, 3, 7);
    const Graph b = make_random_overlay(50, 3, 7);
    EXPECT_EQ(a.edges(), b.edges());
    const Graph c = make_random_overlay(50, 3, 8);
    EXPECT_NE(a.edges(), c.edges());
}

TEST(RandomOverlayTest, DegreeBounds) {
    const int n = 60, k = 3;
    const Graph g = make_random_overlay(n, k, 11);
    for (ProcessId v = 0; v < n; ++v) {
        EXPECT_GE(g.degree(v), 0);
        EXPECT_LE(g.degree(v), n - 1);
    }
    // Average degree close to 2k (slightly less due to deduplication).
    EXPECT_GT(g.average_degree(), 1.5 * k);
    EXPECT_LE(g.average_degree(), 2.0 * k);
}

TEST(RandomOverlayTest, RejectsBadK) {
    EXPECT_THROW(make_random_overlay(5, 5, 1), std::invalid_argument);
    EXPECT_THROW(make_random_overlay(5, -1, 1), std::invalid_argument);
}

class OverlayConnectivity : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(OverlayConnectivity, ConnectedOverlayIsConnected) {
    const auto [n, seed] = GetParam();
    const Graph g = make_connected_overlay(n, seed);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.size(), n);
    // Expected degree ~ log2(n), within a factor of 2.
    const double target = std::log2(static_cast<double>(n));
    EXPECT_GT(g.average_degree(), target / 2.0);
    EXPECT_LT(g.average_degree(), target * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, OverlayConnectivity,
    ::testing::Combine(::testing::Values(5, 13, 30, 53, 105),
                       ::testing::Values(1ull, 2ull, 3ull, 42ull, 1234ull)));

TEST(AnalysisTest, HopDistances) {
    Graph g(5);  // path 0-1-2-3-4
    for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
    const auto d = hop_distances(g, 0);
    EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(AnalysisTest, DisconnectedMarked) {
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_FALSE(is_connected(g));
    const auto d = hop_distances(g, 0);
    EXPECT_EQ(d[2], -1);
    const auto stats = analyze_overlay(g);
    EXPECT_FALSE(stats.connected);
    EXPECT_EQ(stats.diameter_hops, -1);
}

TEST(AnalysisTest, OverlayStatsOnKnownGraph) {
    Graph g(4);  // star around 0
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    const auto stats = analyze_overlay(g);
    EXPECT_TRUE(stats.connected);
    EXPECT_EQ(stats.diameter_hops, 2);
    EXPECT_EQ(stats.min_degree, 1);
    EXPECT_EQ(stats.max_degree, 3);
    EXPECT_DOUBLE_EQ(stats.average_degree, 1.5);
}

TEST(AnalysisTest, ShortestDelaysUseLatencyModel) {
    // Path 0-1-2 under a uniform 10ms model: 0->2 costs 20ms via 1.
    const auto m = LatencyModel::uniform(SimTime::millis(10), SimTime::millis(10));
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    const auto d = shortest_delays(g, 0, m);
    EXPECT_EQ(d[0], SimTime::zero());
    EXPECT_EQ(d[1], SimTime::millis(10));
    EXPECT_EQ(d[2], SimTime::millis(20));
}

TEST(AnalysisTest, ShortestDelayPrefersCheaperPath) {
    // 0-1 direct exists but going around can never be cheaper; with AWS
    // latencies, verify Dijkstra picks min(direct, two-hop).
    const auto& m = LatencyModel::aws();
    Graph g(14);
    g.add_edge(0, 9);   // id 9 -> region (9-1)%13 = 8 (Tokyo): 73ms
    g.add_edge(0, 12);  // id 12 -> region 11 (Seoul): 87ms
    g.add_edge(12, 9);  // Seoul-Tokyo: 17ms
    const auto d = shortest_delays(g, 0, m);
    EXPECT_EQ(d[9], SimTime::millis(73));   // direct beats 87+17
    EXPECT_EQ(d[12], SimTime::millis(87));  // direct beats 73+17? no: 90 > 87
}

TEST(AnalysisTest, UnreachableIsMax) {
    Graph g(3);
    g.add_edge(0, 1);
    const auto d = shortest_delays(g, 0, LatencyModel::aws());
    EXPECT_EQ(d[2], SimTime::max());
}

TEST(AnalysisTest, MedianRttFromCoordinator) {
    // Star around coordinator: RTTs are 2x one-way to each region.
    Graph g(5);
    for (int i = 1; i < 5; ++i) g.add_edge(0, i);
    const auto median = median_rtt_from_coordinator(g, LatencyModel::aws());
    // Regions of processes 1..4 are NV(intra 0.25), Canada(7), NCal(30),
    // Oregon(39). RTTs: 0.5, 14, 60, 78 -> median (index 2 of 4) = 60.
    EXPECT_EQ(median, SimTime::millis(60));
}

TEST(AnalysisTest, RttsAreTwiceOneWay) {
    const Graph g = make_connected_overlay(20, 5);
    const auto ow = shortest_delays(g, 0, LatencyModel::aws());
    const auto rtt = rtts_from(g, 0, LatencyModel::aws());
    for (std::size_t i = 0; i < ow.size(); ++i) {
        EXPECT_EQ(rtt[i], ow[i] * 2);
    }
}

}  // namespace
}  // namespace gossipc
